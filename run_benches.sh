#!/bin/sh
# Regenerates every paper table/figure and the extension ablations.
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "=== $b ==="
  "$b" || echo "BENCH $b FAILED"
done
