#!/bin/sh
# Regenerates every paper table/figure and the extension ablations.
# Exits nonzero when any bench fails, so CI (and scripts) can catch a
# broken bench instead of a log line scrolling past.
cd "$(dirname "$0")"
failed=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "=== $b ==="
  if ! "$b"; then
    echo "BENCH $b FAILED"
    failed=$((failed + 1))
  fi
done
if [ "$failed" -gt 0 ]; then
  echo "$failed bench(es) FAILED"
  exit 1
fi
