// Photonic-yield example: probability that a Y-branch splitter arm drops
// below 32% power transmission under line-edge (boundary) deformation — the
// paper's test case #9 — plus a look at what the learned proposal says
// about the *failure mechanism* (which deformation modes matter).
//
// Run: ./build/examples/ybranch_yield [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/nofis.hpp"
#include "rng/normal.hpp"
#include "testcases/circuit_cases.hpp"

int main(int argc, char** argv) {
    using namespace nofis;

    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

    testcases::YBranchCase yb;
    const std::vector<double> nominal(yb.dim(), 0.0);
    std::printf("Photonic Y-branch, %zu deformation modes\n", yb.dim());
    std::printf("Nominal transmission: %.1f%% (spec: >= 32%%)\n",
                100.0 * yb.model().transmission(nominal));

    const auto budget = yb.nofis_budget();
    core::NofisConfig cfg;
    cfg.epochs = budget.epochs;
    cfg.samples_per_epoch = budget.samples_per_epoch;
    cfg.n_is = budget.n_is;
    cfg.tau = budget.tau;
    core::NofisEstimator nofis(cfg,
                               core::LevelSchedule::manual(budget.levels));
    rng::Engine eng(seed);
    auto run = nofis.run(yb, eng);

    std::printf("\nNOFIS (%zu calls): P[T < 32%%] = %.3e  (golden %.3e)\n",
                run.estimate.calls, run.estimate.p_hat, yb.golden_pr());

    // Failure-mechanism analysis: the learned proposal q_MK concentrates on
    // the failure set, so its per-mode second moments reveal which
    // deformation modes drive transmission loss.
    rng::Engine probe(seed + 1);
    const auto samples = run.flow->sample(probe, 2000, run.flow->num_blocks());
    std::printf("\nDeformation-mode energy of the learned failure "
                "distribution\n(E[x_k^2] under q_MK; p would give 1.0 "
                "everywhere):\n");
    for (std::size_t k = 0; k < yb.dim(); ++k) {
        double m2 = 0.0;
        for (std::size_t r = 0; r < samples.z.rows(); ++r)
            m2 += samples.z(r, k) * samples.z(r, k);
        m2 /= static_cast<double>(samples.z.rows());
        if (k < 8 || m2 > 1.5)
            std::printf("  mode %2zu: E[x^2] = %.2f %s\n", k + 1, m2,
                        m2 > 1.5 ? "<== failure driver" : "");
    }
    std::printf("\n(Low-order modes dominate: slowly-varying width errors "
                "couple power into the lossy mode most effectively.)\n");
    return 0;
}
