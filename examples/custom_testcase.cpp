// Bring-your-own-simulator example: wrap any expensive characteristic
// function g(x) as a RareEventProblem, let the auto-level extension build
// the nested subset schedule from a pilot batch, and estimate the failure
// probability — no hand-tuned levels needed.
//
// The toy "simulator" here is an SRAM read-stability flavoured margin:
// two cross-coupled inverters whose static noise margin collapses when the
// six threshold-voltage variations conspire.
//
// Run: ./build/examples/custom_testcase [seed]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/levels.hpp"
#include "core/nofis.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;

/// A behavioural static-noise-margin model of a 6T SRAM cell: the margin of
/// each inverter degrades with its device mismatches; the cell fails when
/// the worse side dips below 40 mV.
class SramCell final : public estimators::RareEventProblem {
public:
    std::size_t dim() const noexcept override { return 6; }

    double g(std::span<const double> x) const override {
        // Per-side margins [V]: nominal 180 mV, degraded by pull-down /
        // pass-gate / pull-up mismatch with classic sensitivities, plus a
        // weak quadratic interaction term.
        const double left = 0.180 - 0.020 * x[0] - 0.014 * x[1] +
                            0.008 * x[2] - 0.002 * x[0] * x[1];
        const double right = 0.180 - 0.020 * x[3] - 0.014 * x[4] +
                             0.008 * x[5] - 0.002 * x[3] * x[4];
        return std::min(left, right) - 0.040;
    }
};

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

    SramCell cell;
    std::printf("Custom test case: 6T SRAM static-noise-margin model\n");
    std::printf("Nominal margin above spec: %.1f mV\n",
                1000.0 * cell.g(std::vector<double>(6, 0.0)));

    // 1. Let the library pick the nested subset levels from a pilot batch
    //    (the paper's future-work extension; calls are counted).
    rng::Engine eng(seed);
    estimators::CountedProblem counted(cell);
    core::AutoLevelConfig auto_cfg;
    auto_cfg.num_levels = 5;
    auto_cfg.pilot_samples = 500;
    const auto levels = core::auto_levels(counted, eng, auto_cfg);
    std::printf("\nAuto-selected levels (pilot of %zu calls):", counted.calls());
    for (double a : levels.levels()) std::printf(" %.4f", a);
    std::printf("\n");

    // 2. Run NOFIS with a moderate budget.
    core::NofisConfig cfg;
    cfg.epochs = 80;
    cfg.samples_per_epoch = 50;
    cfg.n_is = 2000;
    cfg.tau = 400.0;  // g is in volts: τ ~ O(1 / level-scale)
    core::NofisEstimator est(cfg, levels);
    const auto run = est.run(cell, eng);

    std::printf("\nNOFIS estimate: P[fail] = %.3e  (%zu calls + %zu pilot)\n",
                run.estimate.p_hat, run.estimate.calls, counted.calls());
    std::printf("Per-stage inside-fraction:");
    for (const auto& s : run.stages)
        std::printf(" %.0f%%", 100.0 * s.inside_fraction);
    std::printf("\nIS diagnostics: %zu hits, ESS %.1f\n", run.is_diag.hits,
                run.is_diag.effective_sample_size);

    // 3. Sanity-check with a one-shot importance re-estimate at larger N_IS
    //    from the same trained flow (no retraining).
    const auto recheck = core::NofisEstimator::importance_estimate(
        *run.flow, cell, eng, 8000);
    std::printf("Re-estimate with N_IS = 8000: P = %.3e (%zu extra calls)\n",
                recheck.p_hat, recheck.calls);
    return 0;
}
