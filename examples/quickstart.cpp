// Quickstart: estimate the rare failure probability of the paper's "Leaf"
// test case (two discs deep in the tail of N(0,I), P_r ≈ 4.7e-6) with NOFIS
// and compare against plain Monte Carlo at a larger budget.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/nofis.hpp"
#include "estimators/monte_carlo.hpp"
#include "testcases/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace nofis;

    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
    rng::Engine eng(seed);

    testcases::LeafCase problem;
    const double golden = problem.golden_pr();
    std::printf("Problem: %s (D = %zu), golden P_r = %.3e\n",
                problem.name().c_str(), problem.dim(), golden);

    // --- NOFIS -------------------------------------------------------------
    const auto budget = problem.nofis_budget();
    core::NofisConfig cfg;
    cfg.epochs = budget.epochs;
    cfg.samples_per_epoch = budget.samples_per_epoch;
    cfg.n_is = budget.n_is;
    cfg.tau = budget.tau;
    cfg.layers_per_block = budget.layers_per_block;
    cfg.hidden = budget.hidden;
    cfg.learning_rate = budget.learning_rate;

    core::NofisEstimator nofis(cfg, core::LevelSchedule::manual(budget.levels));
    auto run = nofis.run(problem, eng);

    std::printf("\nNOFIS stages:\n");
    // Skipped epochs hold NaN loss sentinels; report the finite endpoints.
    for (const auto& s : run.stages)
        std::printf("  stage %zu (a = %6.2f): loss %8.3f -> %8.3f, "
                    "inside %.0f%%\n",
                    s.stage, s.level, s.first_finite_loss(),
                    s.last_finite_loss(), 100.0 * s.inside_fraction);

    std::printf("\nNOFIS estimate: %.3e  (calls %zu, log-err %.3f, "
                "IS hits %zu/%zu, ESS %.1f)\n",
                run.estimate.p_hat, run.estimate.calls,
                estimators::log_error(run.estimate.p_hat, golden),
                run.is_diag.hits, cfg.n_is,
                run.is_diag.effective_sample_size);

    // --- Monte Carlo at a larger budget --------------------------------------
    estimators::MonteCarloEstimator mc({.num_samples = 50000, .batch = 8192});
    const auto mc_res = mc.estimate(problem, eng);
    std::printf("MC estimate:    %.3e  (calls %zu, log-err %.3f)\n",
                mc_res.p_hat, mc_res.calls,
                estimators::log_error(mc_res.p_hat, golden));
    return 0;
}
