// SRAM read-stability yield — the application the paper's introduction
// motivates (an SRAM cell must fail with probability below ~1e-6 for the
// array to yield). Every g() call here is a real nonlinear circuit
// simulation: two butterfly-curve traces, each point a Newton DC solve of
// the 3-transistor half cell, followed by Seevinck SNM extraction.
//
// Run: ./build/examples/sram_yield [seed]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/nofis.hpp"
#include "estimators/monte_carlo.hpp"
#include "estimators/sus.hpp"
#include "rng/normal.hpp"
#include "testcases/sram_case.hpp"

int main(int argc, char** argv) {
    using namespace nofis;

    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 17;

    testcases::SramCase cell;
    const std::vector<double> nominal(cell.dim(), 0.0);
    std::printf("6T SRAM cell, read configuration, %zu VT-mismatch "
                "variables\n", cell.dim());
    std::printf("Nominal read SNM: %.1f mV (spec: >= %.0f mV)\n",
                1000.0 * (cell.g(nominal) + testcases::SramCase::kSnmMin),
                1000.0 * testcases::SramCase::kSnmMin);

    // Show the failure mechanism: the classic read-upset corner.
    std::vector<double> corner = {2.0, 0.0, -2.0, 0.0, 0.0, 0.0};
    std::printf("Weak pull-down + strong access corner (2σ): SNM = %.1f mV\n",
                1000.0 * (cell.g(corner) + testcases::SramCase::kSnmMin));

    const auto budget = cell.nofis_budget();
    core::NofisConfig cfg;
    cfg.epochs = budget.epochs;
    cfg.samples_per_epoch = budget.samples_per_epoch;
    cfg.n_is = budget.n_is;
    cfg.tau = budget.tau;
    core::NofisEstimator nofis(cfg,
                               core::LevelSchedule::manual(budget.levels));
    rng::Engine eng(seed);
    const auto run = nofis.run(cell, eng);
    std::printf("\nNOFIS (%zu simulations): P[SNM < spec] = %.3e "
                "(log-err vs golden %.2f)\n",
                run.estimate.calls, run.estimate.p_hat,
                estimators::log_error(run.estimate.p_hat, cell.golden_pr()));
    if (run.estimate.p_hat > 0.0)
        std::printf("Cell yield: %.2f sigma — array of 1 Mb fails with "
                    "P ≈ %.1f%%\n",
                    -rng::normal_quantile(run.estimate.p_hat),
                    100.0 * (1.0 - std::pow(1.0 - run.estimate.p_hat,
                                            1048576.0)));

    estimators::SubsetSimulationEstimator sus({.samples_per_level = 3700,
                                               .p0 = 0.1,
                                               .max_levels = 9,
                                               .proposal_spread = 1.0});
    const auto sus_res = sus.estimate(cell, eng);
    std::printf("SUS   (%zu simulations): P = %.3e\n", sus_res.calls,
                sus_res.p_hat);
    std::printf("(Plain MC would need ~%.0fM simulations for 10%% accuracy.)\n",
                100.0 / cell.golden_pr() / 1e6);
    return 0;
}
