// Circuit-yield example: estimate the probability that a three-stage opamp
// misses its 72 dB gain spec under process variation — the paper's test
// case #6 — and turn it into a yield (in sigma) figure.
//
// Demonstrates the full EDA path of the library:
//   1. the MNA small-signal macromodel (src/circuit) as the expensive g(),
//   2. per-case NOFIS budgets from the test-case registry,
//   3. call-counted comparison against subset simulation and Monte Carlo,
//   4. proposal diagnostics (effective sample size, IS hit rate).
//
// Run: ./build/examples/opamp_yield [seed]

#include <cstdio>
#include <cstdlib>

#include "core/nofis.hpp"
#include "estimators/monte_carlo.hpp"
#include "estimators/sus.hpp"
#include "rng/normal.hpp"
#include "testcases/circuit_cases.hpp"

int main(int argc, char** argv) {
    using namespace nofis;

    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

    testcases::OpampCase opamp;
    const std::vector<double> nominal(opamp.dim(), 0.0);
    std::printf("Three-stage opamp, %zu process variables\n", opamp.dim());
    std::printf("Nominal gain: %.2f dB (spec: 72 dB, margin %.2f dB)\n",
                opamp.model().gain_db(nominal) ,
                opamp.g(nominal));

    // --- NOFIS at the paper's 45K-call budget -------------------------------
    const auto budget = opamp.nofis_budget();
    core::NofisConfig cfg;
    cfg.epochs = budget.epochs;
    cfg.samples_per_epoch = budget.samples_per_epoch;
    cfg.n_is = budget.n_is;
    cfg.tau = budget.tau;
    cfg.learning_rate = budget.learning_rate;
    cfg.lr_decay = budget.lr_decay;
    core::NofisEstimator nofis(cfg,
                               core::LevelSchedule::manual(budget.levels));
    rng::Engine eng(seed);
    const auto run = nofis.run(opamp, eng);

    std::printf("\nNOFIS (%zu calls):\n", run.estimate.calls);
    std::printf("  P[gain < 72 dB] = %.3e\n", run.estimate.p_hat);
    if (run.estimate.p_hat > 0.0) {
        // One-sided yield expressed in sigma.
        const double sigma_yield =
            -rng::normal_quantile(run.estimate.p_hat);
        std::printf("  yield            = %.4f%%  (%.2f sigma)\n",
                    100.0 * (1.0 - run.estimate.p_hat), sigma_yield);
    }
    std::printf("  IS diagnostics   : %zu/%zu hits, ESS %.1f, max w %.2e\n",
                run.is_diag.hits, cfg.n_is,
                run.is_diag.effective_sample_size, run.is_diag.max_weight);

    // --- Classical baselines at comparable budgets ----------------------------
    estimators::SubsetSimulationEstimator sus(
        {.samples_per_level = 7500, .p0 = 0.1, .max_levels = 8,
         .proposal_spread = 1.0});
    const auto sus_res = sus.estimate(opamp, eng);
    std::printf("\nSUS   (%zu calls): P = %.3e\n", sus_res.calls,
                sus_res.p_hat);

    estimators::MonteCarloEstimator mc({.num_samples = 45000, .batch = 8192});
    const auto mc_res = mc.estimate(opamp, eng);
    std::printf("MC    (%zu calls): P = %.3e%s\n", mc_res.calls, mc_res.p_hat,
                mc_res.p_hat == 0.0 ? "  <- too rare for plain MC" : "");

    std::printf("\nReference (calibrated golden): %.3e\n", opamp.golden_pr());
    return 0;
}
