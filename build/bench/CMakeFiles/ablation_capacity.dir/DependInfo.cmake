
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_capacity.cpp" "bench/CMakeFiles/ablation_capacity.dir/ablation_capacity.cpp.o" "gcc" "bench/CMakeFiles/ablation_capacity.dir/ablation_capacity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_testcases.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
