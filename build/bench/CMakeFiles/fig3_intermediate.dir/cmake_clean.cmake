file(REMOVE_RECURSE
  "CMakeFiles/fig3_intermediate.dir/fig3_intermediate.cpp.o"
  "CMakeFiles/fig3_intermediate.dir/fig3_intermediate.cpp.o.d"
  "fig3_intermediate"
  "fig3_intermediate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_intermediate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
