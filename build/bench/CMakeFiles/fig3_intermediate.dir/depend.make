# Empty dependencies file for fig3_intermediate.
# This may be replaced when dependencies are built.
