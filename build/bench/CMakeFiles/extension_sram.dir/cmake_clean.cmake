file(REMOVE_RECURSE
  "CMakeFiles/extension_sram.dir/extension_sram.cpp.o"
  "CMakeFiles/extension_sram.dir/extension_sram.cpp.o.d"
  "extension_sram"
  "extension_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
