# Empty dependencies file for extension_sram.
# This may be replaced when dependencies are built.
