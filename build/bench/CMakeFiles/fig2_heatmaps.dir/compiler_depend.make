# Empty compiler generated dependencies file for fig2_heatmaps.
# This may be replaced when dependencies are built.
