file(REMOVE_RECURSE
  "CMakeFiles/fig2_heatmaps.dir/fig2_heatmaps.cpp.o"
  "CMakeFiles/fig2_heatmaps.dir/fig2_heatmaps.cpp.o.d"
  "fig2_heatmaps"
  "fig2_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
