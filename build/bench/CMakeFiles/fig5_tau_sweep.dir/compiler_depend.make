# Empty compiler generated dependencies file for fig5_tau_sweep.
# This may be replaced when dependencies are built.
