file(REMOVE_RECURSE
  "CMakeFiles/ablation_autolevel.dir/ablation_autolevel.cpp.o"
  "CMakeFiles/ablation_autolevel.dir/ablation_autolevel.cpp.o.d"
  "ablation_autolevel"
  "ablation_autolevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autolevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
