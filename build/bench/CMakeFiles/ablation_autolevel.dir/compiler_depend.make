# Empty compiler generated dependencies file for ablation_autolevel.
# This may be replaced when dependencies are built.
