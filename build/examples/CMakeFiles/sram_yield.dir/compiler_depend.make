# Empty compiler generated dependencies file for sram_yield.
# This may be replaced when dependencies are built.
