file(REMOVE_RECURSE
  "CMakeFiles/sram_yield.dir/sram_yield.cpp.o"
  "CMakeFiles/sram_yield.dir/sram_yield.cpp.o.d"
  "sram_yield"
  "sram_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sram_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
