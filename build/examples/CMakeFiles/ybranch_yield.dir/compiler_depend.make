# Empty compiler generated dependencies file for ybranch_yield.
# This may be replaced when dependencies are built.
