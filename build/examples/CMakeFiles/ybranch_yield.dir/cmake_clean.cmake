file(REMOVE_RECURSE
  "CMakeFiles/ybranch_yield.dir/ybranch_yield.cpp.o"
  "CMakeFiles/ybranch_yield.dir/ybranch_yield.cpp.o.d"
  "ybranch_yield"
  "ybranch_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ybranch_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
