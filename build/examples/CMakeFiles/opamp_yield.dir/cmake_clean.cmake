file(REMOVE_RECURSE
  "CMakeFiles/opamp_yield.dir/opamp_yield.cpp.o"
  "CMakeFiles/opamp_yield.dir/opamp_yield.cpp.o.d"
  "opamp_yield"
  "opamp_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
