file(REMOVE_RECURSE
  "CMakeFiles/custom_testcase.dir/custom_testcase.cpp.o"
  "CMakeFiles/custom_testcase.dir/custom_testcase.cpp.o.d"
  "custom_testcase"
  "custom_testcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_testcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
