# Empty dependencies file for custom_testcase.
# This may be replaced when dependencies are built.
