# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/autodiff_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/circuit_test[1]_include.cmake")
include("/root/repo/build/tests/photonic_test[1]_include.cmake")
include("/root/repo/build/tests/testcases_test[1]_include.cmake")
include("/root/repo/build/tests/estimators_test[1]_include.cmake")
include("/root/repo/build/tests/nofis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/flow_layers_test[1]_include.cmake")
include("/root/repo/build/tests/transient_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/nonlinear_test[1]_include.cmake")
include("/root/repo/build/tests/estimator_properties_test[1]_include.cmake")
