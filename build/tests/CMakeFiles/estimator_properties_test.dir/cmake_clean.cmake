file(REMOVE_RECURSE
  "CMakeFiles/estimator_properties_test.dir/estimator_properties_test.cpp.o"
  "CMakeFiles/estimator_properties_test.dir/estimator_properties_test.cpp.o.d"
  "estimator_properties_test"
  "estimator_properties_test.pdb"
  "estimator_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimator_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
