# Empty compiler generated dependencies file for photonic_test.
# This may be replaced when dependencies are built.
