file(REMOVE_RECURSE
  "CMakeFiles/photonic_test.dir/photonic_test.cpp.o"
  "CMakeFiles/photonic_test.dir/photonic_test.cpp.o.d"
  "photonic_test"
  "photonic_test.pdb"
  "photonic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photonic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
