# Empty compiler generated dependencies file for nofis_test.
# This may be replaced when dependencies are built.
