file(REMOVE_RECURSE
  "CMakeFiles/nofis_test.dir/nofis_test.cpp.o"
  "CMakeFiles/nofis_test.dir/nofis_test.cpp.o.d"
  "nofis_test"
  "nofis_test.pdb"
  "nofis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
