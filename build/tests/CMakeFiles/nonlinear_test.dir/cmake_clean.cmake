file(REMOVE_RECURSE
  "CMakeFiles/nonlinear_test.dir/nonlinear_test.cpp.o"
  "CMakeFiles/nonlinear_test.dir/nonlinear_test.cpp.o.d"
  "nonlinear_test"
  "nonlinear_test.pdb"
  "nonlinear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
