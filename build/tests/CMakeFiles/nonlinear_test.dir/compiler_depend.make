# Empty compiler generated dependencies file for nonlinear_test.
# This may be replaced when dependencies are built.
