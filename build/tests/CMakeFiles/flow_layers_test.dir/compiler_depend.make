# Empty compiler generated dependencies file for flow_layers_test.
# This may be replaced when dependencies are built.
