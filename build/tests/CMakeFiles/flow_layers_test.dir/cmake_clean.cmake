file(REMOVE_RECURSE
  "CMakeFiles/flow_layers_test.dir/flow_layers_test.cpp.o"
  "CMakeFiles/flow_layers_test.dir/flow_layers_test.cpp.o.d"
  "flow_layers_test"
  "flow_layers_test.pdb"
  "flow_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
