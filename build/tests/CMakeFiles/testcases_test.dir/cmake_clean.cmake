file(REMOVE_RECURSE
  "CMakeFiles/testcases_test.dir/testcases_test.cpp.o"
  "CMakeFiles/testcases_test.dir/testcases_test.cpp.o.d"
  "testcases_test"
  "testcases_test.pdb"
  "testcases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testcases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
