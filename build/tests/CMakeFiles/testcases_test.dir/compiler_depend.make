# Empty compiler generated dependencies file for testcases_test.
# This may be replaced when dependencies are built.
