file(REMOVE_RECURSE
  "libnofis_rng.a"
)
