file(REMOVE_RECURSE
  "CMakeFiles/nofis_rng.dir/rng/engine.cpp.o"
  "CMakeFiles/nofis_rng.dir/rng/engine.cpp.o.d"
  "CMakeFiles/nofis_rng.dir/rng/normal.cpp.o"
  "CMakeFiles/nofis_rng.dir/rng/normal.cpp.o.d"
  "libnofis_rng.a"
  "libnofis_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
