# Empty dependencies file for nofis_rng.
# This may be replaced when dependencies are built.
