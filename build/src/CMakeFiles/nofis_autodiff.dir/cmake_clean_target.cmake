file(REMOVE_RECURSE
  "libnofis_autodiff.a"
)
