# Empty dependencies file for nofis_autodiff.
# This may be replaced when dependencies are built.
