
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/gradcheck.cpp" "src/CMakeFiles/nofis_autodiff.dir/autodiff/gradcheck.cpp.o" "gcc" "src/CMakeFiles/nofis_autodiff.dir/autodiff/gradcheck.cpp.o.d"
  "/root/repo/src/autodiff/ops.cpp" "src/CMakeFiles/nofis_autodiff.dir/autodiff/ops.cpp.o" "gcc" "src/CMakeFiles/nofis_autodiff.dir/autodiff/ops.cpp.o.d"
  "/root/repo/src/autodiff/var.cpp" "src/CMakeFiles/nofis_autodiff.dir/autodiff/var.cpp.o" "gcc" "src/CMakeFiles/nofis_autodiff.dir/autodiff/var.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
