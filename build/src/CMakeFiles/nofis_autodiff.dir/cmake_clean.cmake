file(REMOVE_RECURSE
  "CMakeFiles/nofis_autodiff.dir/autodiff/gradcheck.cpp.o"
  "CMakeFiles/nofis_autodiff.dir/autodiff/gradcheck.cpp.o.d"
  "CMakeFiles/nofis_autodiff.dir/autodiff/ops.cpp.o"
  "CMakeFiles/nofis_autodiff.dir/autodiff/ops.cpp.o.d"
  "CMakeFiles/nofis_autodiff.dir/autodiff/var.cpp.o"
  "CMakeFiles/nofis_autodiff.dir/autodiff/var.cpp.o.d"
  "libnofis_autodiff.a"
  "libnofis_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
