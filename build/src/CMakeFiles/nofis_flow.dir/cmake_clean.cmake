file(REMOVE_RECURSE
  "CMakeFiles/nofis_flow.dir/flow/actnorm.cpp.o"
  "CMakeFiles/nofis_flow.dir/flow/actnorm.cpp.o.d"
  "CMakeFiles/nofis_flow.dir/flow/additive_coupling.cpp.o"
  "CMakeFiles/nofis_flow.dir/flow/additive_coupling.cpp.o.d"
  "CMakeFiles/nofis_flow.dir/flow/coupling.cpp.o"
  "CMakeFiles/nofis_flow.dir/flow/coupling.cpp.o.d"
  "CMakeFiles/nofis_flow.dir/flow/coupling_stack.cpp.o"
  "CMakeFiles/nofis_flow.dir/flow/coupling_stack.cpp.o.d"
  "CMakeFiles/nofis_flow.dir/flow/serialize.cpp.o"
  "CMakeFiles/nofis_flow.dir/flow/serialize.cpp.o.d"
  "libnofis_flow.a"
  "libnofis_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
