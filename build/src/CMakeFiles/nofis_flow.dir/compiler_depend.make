# Empty compiler generated dependencies file for nofis_flow.
# This may be replaced when dependencies are built.
