
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/actnorm.cpp" "src/CMakeFiles/nofis_flow.dir/flow/actnorm.cpp.o" "gcc" "src/CMakeFiles/nofis_flow.dir/flow/actnorm.cpp.o.d"
  "/root/repo/src/flow/additive_coupling.cpp" "src/CMakeFiles/nofis_flow.dir/flow/additive_coupling.cpp.o" "gcc" "src/CMakeFiles/nofis_flow.dir/flow/additive_coupling.cpp.o.d"
  "/root/repo/src/flow/coupling.cpp" "src/CMakeFiles/nofis_flow.dir/flow/coupling.cpp.o" "gcc" "src/CMakeFiles/nofis_flow.dir/flow/coupling.cpp.o.d"
  "/root/repo/src/flow/coupling_stack.cpp" "src/CMakeFiles/nofis_flow.dir/flow/coupling_stack.cpp.o" "gcc" "src/CMakeFiles/nofis_flow.dir/flow/coupling_stack.cpp.o.d"
  "/root/repo/src/flow/serialize.cpp" "src/CMakeFiles/nofis_flow.dir/flow/serialize.cpp.o" "gcc" "src/CMakeFiles/nofis_flow.dir/flow/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
