file(REMOVE_RECURSE
  "libnofis_flow.a"
)
