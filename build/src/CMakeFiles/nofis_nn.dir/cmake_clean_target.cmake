file(REMOVE_RECURSE
  "libnofis_nn.a"
)
