file(REMOVE_RECURSE
  "CMakeFiles/nofis_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/nofis_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/nofis_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/nofis_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/nofis_nn.dir/nn/mlp.cpp.o"
  "CMakeFiles/nofis_nn.dir/nn/mlp.cpp.o.d"
  "CMakeFiles/nofis_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/nofis_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/nofis_nn.dir/nn/trainer.cpp.o"
  "CMakeFiles/nofis_nn.dir/nn/trainer.cpp.o.d"
  "libnofis_nn.a"
  "libnofis_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
