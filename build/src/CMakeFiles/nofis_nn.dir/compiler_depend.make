# Empty compiler generated dependencies file for nofis_nn.
# This may be replaced when dependencies are built.
