# Empty dependencies file for nofis_testcases.
# This may be replaced when dependencies are built.
