
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testcases/circuit_cases.cpp" "src/CMakeFiles/nofis_testcases.dir/testcases/circuit_cases.cpp.o" "gcc" "src/CMakeFiles/nofis_testcases.dir/testcases/circuit_cases.cpp.o.d"
  "/root/repo/src/testcases/deepnet62.cpp" "src/CMakeFiles/nofis_testcases.dir/testcases/deepnet62.cpp.o" "gcc" "src/CMakeFiles/nofis_testcases.dir/testcases/deepnet62.cpp.o.d"
  "/root/repo/src/testcases/oscillator.cpp" "src/CMakeFiles/nofis_testcases.dir/testcases/oscillator.cpp.o" "gcc" "src/CMakeFiles/nofis_testcases.dir/testcases/oscillator.cpp.o.d"
  "/root/repo/src/testcases/registry.cpp" "src/CMakeFiles/nofis_testcases.dir/testcases/registry.cpp.o" "gcc" "src/CMakeFiles/nofis_testcases.dir/testcases/registry.cpp.o.d"
  "/root/repo/src/testcases/sram_case.cpp" "src/CMakeFiles/nofis_testcases.dir/testcases/sram_case.cpp.o" "gcc" "src/CMakeFiles/nofis_testcases.dir/testcases/sram_case.cpp.o.d"
  "/root/repo/src/testcases/synthetic.cpp" "src/CMakeFiles/nofis_testcases.dir/testcases/synthetic.cpp.o" "gcc" "src/CMakeFiles/nofis_testcases.dir/testcases/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_photonic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
