file(REMOVE_RECURSE
  "CMakeFiles/nofis_testcases.dir/testcases/circuit_cases.cpp.o"
  "CMakeFiles/nofis_testcases.dir/testcases/circuit_cases.cpp.o.d"
  "CMakeFiles/nofis_testcases.dir/testcases/deepnet62.cpp.o"
  "CMakeFiles/nofis_testcases.dir/testcases/deepnet62.cpp.o.d"
  "CMakeFiles/nofis_testcases.dir/testcases/oscillator.cpp.o"
  "CMakeFiles/nofis_testcases.dir/testcases/oscillator.cpp.o.d"
  "CMakeFiles/nofis_testcases.dir/testcases/registry.cpp.o"
  "CMakeFiles/nofis_testcases.dir/testcases/registry.cpp.o.d"
  "CMakeFiles/nofis_testcases.dir/testcases/sram_case.cpp.o"
  "CMakeFiles/nofis_testcases.dir/testcases/sram_case.cpp.o.d"
  "CMakeFiles/nofis_testcases.dir/testcases/synthetic.cpp.o"
  "CMakeFiles/nofis_testcases.dir/testcases/synthetic.cpp.o.d"
  "libnofis_testcases.a"
  "libnofis_testcases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_testcases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
