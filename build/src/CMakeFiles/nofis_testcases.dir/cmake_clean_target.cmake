file(REMOVE_RECURSE
  "libnofis_testcases.a"
)
