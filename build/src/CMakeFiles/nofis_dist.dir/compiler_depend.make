# Empty compiler generated dependencies file for nofis_dist.
# This may be replaced when dependencies are built.
