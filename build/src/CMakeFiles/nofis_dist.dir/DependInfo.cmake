
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/diag_gaussian.cpp" "src/CMakeFiles/nofis_dist.dir/dist/diag_gaussian.cpp.o" "gcc" "src/CMakeFiles/nofis_dist.dir/dist/diag_gaussian.cpp.o.d"
  "/root/repo/src/dist/full_gaussian.cpp" "src/CMakeFiles/nofis_dist.dir/dist/full_gaussian.cpp.o" "gcc" "src/CMakeFiles/nofis_dist.dir/dist/full_gaussian.cpp.o.d"
  "/root/repo/src/dist/gaussian_mixture.cpp" "src/CMakeFiles/nofis_dist.dir/dist/gaussian_mixture.cpp.o" "gcc" "src/CMakeFiles/nofis_dist.dir/dist/gaussian_mixture.cpp.o.d"
  "/root/repo/src/dist/standard_normal.cpp" "src/CMakeFiles/nofis_dist.dir/dist/standard_normal.cpp.o" "gcc" "src/CMakeFiles/nofis_dist.dir/dist/standard_normal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
