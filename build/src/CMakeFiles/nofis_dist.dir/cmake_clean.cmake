file(REMOVE_RECURSE
  "CMakeFiles/nofis_dist.dir/dist/diag_gaussian.cpp.o"
  "CMakeFiles/nofis_dist.dir/dist/diag_gaussian.cpp.o.d"
  "CMakeFiles/nofis_dist.dir/dist/full_gaussian.cpp.o"
  "CMakeFiles/nofis_dist.dir/dist/full_gaussian.cpp.o.d"
  "CMakeFiles/nofis_dist.dir/dist/gaussian_mixture.cpp.o"
  "CMakeFiles/nofis_dist.dir/dist/gaussian_mixture.cpp.o.d"
  "CMakeFiles/nofis_dist.dir/dist/standard_normal.cpp.o"
  "CMakeFiles/nofis_dist.dir/dist/standard_normal.cpp.o.d"
  "libnofis_dist.a"
  "libnofis_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
