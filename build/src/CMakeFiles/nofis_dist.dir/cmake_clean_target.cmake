file(REMOVE_RECURSE
  "libnofis_dist.a"
)
