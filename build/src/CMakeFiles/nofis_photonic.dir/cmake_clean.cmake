file(REMOVE_RECURSE
  "CMakeFiles/nofis_photonic.dir/photonic/ybranch.cpp.o"
  "CMakeFiles/nofis_photonic.dir/photonic/ybranch.cpp.o.d"
  "libnofis_photonic.a"
  "libnofis_photonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_photonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
