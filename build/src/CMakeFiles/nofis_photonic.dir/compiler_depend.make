# Empty compiler generated dependencies file for nofis_photonic.
# This may be replaced when dependencies are built.
