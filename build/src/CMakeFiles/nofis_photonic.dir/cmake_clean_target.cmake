file(REMOVE_RECURSE
  "libnofis_photonic.a"
)
