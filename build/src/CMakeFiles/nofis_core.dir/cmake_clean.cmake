file(REMOVE_RECURSE
  "CMakeFiles/nofis_core.dir/core/diagnostics.cpp.o"
  "CMakeFiles/nofis_core.dir/core/diagnostics.cpp.o.d"
  "CMakeFiles/nofis_core.dir/core/levels.cpp.o"
  "CMakeFiles/nofis_core.dir/core/levels.cpp.o.d"
  "CMakeFiles/nofis_core.dir/core/nofis.cpp.o"
  "CMakeFiles/nofis_core.dir/core/nofis.cpp.o.d"
  "libnofis_core.a"
  "libnofis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
