file(REMOVE_RECURSE
  "libnofis_core.a"
)
