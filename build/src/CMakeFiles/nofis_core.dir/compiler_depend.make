# Empty compiler generated dependencies file for nofis_core.
# This may be replaced when dependencies are built.
