# Empty compiler generated dependencies file for nofis_circuit.
# This may be replaced when dependencies are built.
