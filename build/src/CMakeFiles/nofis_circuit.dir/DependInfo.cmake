
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/ac.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/ac.cpp.o.d"
  "/root/repo/src/circuit/charge_pump.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/charge_pump.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/charge_pump.cpp.o.d"
  "/root/repo/src/circuit/dc.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/dc.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/dc.cpp.o.d"
  "/root/repo/src/circuit/mna.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/mna.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/mna.cpp.o.d"
  "/root/repo/src/circuit/netlist.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/netlist.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/netlist.cpp.o.d"
  "/root/repo/src/circuit/nonlinear.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/nonlinear.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/nonlinear.cpp.o.d"
  "/root/repo/src/circuit/opamp.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/opamp.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/opamp.cpp.o.d"
  "/root/repo/src/circuit/sram.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/sram.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/sram.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/CMakeFiles/nofis_circuit.dir/circuit/transient.cpp.o" "gcc" "src/CMakeFiles/nofis_circuit.dir/circuit/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
