file(REMOVE_RECURSE
  "libnofis_circuit.a"
)
