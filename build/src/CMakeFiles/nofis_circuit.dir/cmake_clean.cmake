file(REMOVE_RECURSE
  "CMakeFiles/nofis_circuit.dir/circuit/ac.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/ac.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/charge_pump.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/charge_pump.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/dc.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/dc.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/mna.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/mna.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/netlist.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/netlist.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/nonlinear.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/nonlinear.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/opamp.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/opamp.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/sram.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/sram.cpp.o.d"
  "CMakeFiles/nofis_circuit.dir/circuit/transient.cpp.o"
  "CMakeFiles/nofis_circuit.dir/circuit/transient.cpp.o.d"
  "libnofis_circuit.a"
  "libnofis_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
