file(REMOVE_RECURSE
  "libnofis_linalg.a"
)
