# Empty compiler generated dependencies file for nofis_linalg.
# This may be replaced when dependencies are built.
