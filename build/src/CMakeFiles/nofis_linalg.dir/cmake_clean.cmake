file(REMOVE_RECURSE
  "CMakeFiles/nofis_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/nofis_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/nofis_linalg.dir/linalg/least_squares.cpp.o"
  "CMakeFiles/nofis_linalg.dir/linalg/least_squares.cpp.o.d"
  "CMakeFiles/nofis_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/nofis_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/nofis_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/nofis_linalg.dir/linalg/matrix.cpp.o.d"
  "libnofis_linalg.a"
  "libnofis_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
