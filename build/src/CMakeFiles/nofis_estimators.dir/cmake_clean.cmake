file(REMOVE_RECURSE
  "CMakeFiles/nofis_estimators.dir/estimators/adaptive_is.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/adaptive_is.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/line_sampling.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/line_sampling.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/monte_carlo.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/monte_carlo.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/problem.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/problem.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/sir.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/sir.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/sss.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/sss.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/suc.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/suc.cpp.o.d"
  "CMakeFiles/nofis_estimators.dir/estimators/sus.cpp.o"
  "CMakeFiles/nofis_estimators.dir/estimators/sus.cpp.o.d"
  "libnofis_estimators.a"
  "libnofis_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
