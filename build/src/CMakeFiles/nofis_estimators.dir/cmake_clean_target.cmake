file(REMOVE_RECURSE
  "libnofis_estimators.a"
)
