# Empty compiler generated dependencies file for nofis_estimators.
# This may be replaced when dependencies are built.
