
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/adaptive_is.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/adaptive_is.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/adaptive_is.cpp.o.d"
  "/root/repo/src/estimators/line_sampling.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/line_sampling.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/line_sampling.cpp.o.d"
  "/root/repo/src/estimators/monte_carlo.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/monte_carlo.cpp.o.d"
  "/root/repo/src/estimators/problem.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/problem.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/problem.cpp.o.d"
  "/root/repo/src/estimators/sir.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/sir.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/sir.cpp.o.d"
  "/root/repo/src/estimators/sss.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/sss.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/sss.cpp.o.d"
  "/root/repo/src/estimators/suc.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/suc.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/suc.cpp.o.d"
  "/root/repo/src/estimators/sus.cpp" "src/CMakeFiles/nofis_estimators.dir/estimators/sus.cpp.o" "gcc" "src/CMakeFiles/nofis_estimators.dir/estimators/sus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nofis_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nofis_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
