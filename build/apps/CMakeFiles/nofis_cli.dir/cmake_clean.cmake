file(REMOVE_RECURSE
  "CMakeFiles/nofis_cli.dir/nofis_cli.cpp.o"
  "CMakeFiles/nofis_cli.dir/nofis_cli.cpp.o.d"
  "nofis_cli"
  "nofis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nofis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
