# Empty compiler generated dependencies file for nofis_cli.
# This may be replaced when dependencies are built.
