#pragma once

// Shared glue for the experiment harnesses in bench/: builds each method's
// estimator from a test case's per-case budgets, runs repeated estimates,
// and aggregates the Table-1 metrics (mean calls, mean |log error|).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/nofis.hpp"
#include "estimators/latent_explore_is.hpp"
#include "evalcache/cached_problem.hpp"
#include "evalcache/eval_cache.hpp"
#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/atomic_file.hpp"
#include "util/parse.hpp"
#include "estimators/adaptive_is.hpp"
#include "estimators/monte_carlo.hpp"
#include "estimators/sir.hpp"
#include "estimators/sss.hpp"
#include "estimators/suc.hpp"
#include "estimators/sus.hpp"
#include "testcases/case_factory.hpp"
#include "testcases/registry.hpp"

namespace nofis::bench {

inline core::NofisConfig nofis_config_from_budget(
    const testcases::NofisBudget& b) {
    core::NofisConfig cfg;
    cfg.layers_per_block = b.layers_per_block;
    cfg.hidden = b.hidden;
    cfg.epochs = b.epochs;
    cfg.samples_per_epoch = b.samples_per_epoch;
    cfg.learning_rate = b.learning_rate;
    cfg.lr_decay = b.lr_decay;
    cfg.tau = b.tau;
    cfg.n_is = b.n_is;
    cfg.defensive_weight = b.defensive_weight;
    cfg.defensive_sigma = b.defensive_sigma;
    return cfg;
}

inline std::vector<std::string> all_method_names() {
    return {"MC", "SIR", "SUC", "SUS", "SSS", "Adapt-IS", "NOFIS"};
}

/// True for the NOFIS-family methods ("NOFIS", "NOFIS-LE", ...) that wire
/// the evaluation cache through their own config instead of an external
/// CachedProblem wrapper.
inline bool nofis_family(const std::string& method) {
    return method.rfind("NOFIS", 0) == 0;
}

/// Parses a --coupling flag value; throws (CLI exit 2) on anything else.
inline flow::CouplingKind parse_coupling(const std::string& name) {
    if (name == "affine") return flow::CouplingKind::kAffine;
    if (name == "additive") return flow::CouplingKind::kAdditive;
    if (name == "rqs") return flow::CouplingKind::kRqs;
    throw std::invalid_argument("unknown coupling '" + name +
                                "' (expected affine|additive|rqs)");
}

/// Builds the estimator for `method` sized by the case's budgets. A non-null
/// `cache` is wired into NOFIS's config (the estimator composes
/// Guarded(Cached(g)) internally); the baselines take it at the call site —
/// see run_cell — because their problem is wrapped externally.
/// `coupling_override`: non-empty forces the NOFIS flow's coupling family
/// ("affine" | "additive" | "rqs"); ignored by the baseline methods.
/// `latent`: non-null tunes the latent-exploration knobs of "NOFIS" /
/// "NOFIS-LE" (the latter always explores; for plain "NOFIS" the config's
/// own `enabled` decides). Ignored by the baselines.
inline std::unique_ptr<estimators::Estimator> make_estimator(
    const std::string& method, const testcases::TestCase& tc,
    std::shared_ptr<evalcache::EvalCache> cache = nullptr,
    const std::string& coupling_override = "",
    const latent::LatentConfig* latent = nullptr) {
    const auto bb = tc.baseline_budget();
    if (method == "MC")
        return std::make_unique<estimators::MonteCarloEstimator>(
            estimators::MonteCarloEstimator::Config{bb.mc_samples, 8192});
    if (method == "SIR") {
        estimators::SirEstimator::Config cfg;
        cfg.train_samples = bb.sir_train_samples;
        cfg.surrogate_evals = bb.sir_surrogate_evals;
        return std::make_unique<estimators::SirEstimator>(cfg);
    }
    if (method == "SUC") {
        estimators::SubsetClassificationEstimator::Config cfg;
        cfg.samples_per_level = bb.suc_samples_per_level;
        cfg.max_levels = bb.suc_max_levels;
        return std::make_unique<estimators::SubsetClassificationEstimator>(cfg);
    }
    if (method == "SUS") {
        estimators::SubsetSimulationEstimator::Config cfg;
        cfg.samples_per_level = bb.sus_samples_per_level;
        cfg.max_levels = bb.sus_max_levels;
        return std::make_unique<estimators::SubsetSimulationEstimator>(cfg);
    }
    if (method == "SSS") {
        estimators::ScaledSigmaEstimator::Config cfg;
        cfg.total_samples = bb.sss_total_samples;
        return std::make_unique<estimators::ScaledSigmaEstimator>(cfg);
    }
    if (method == "Adapt-IS") {
        estimators::AdaptiveIsEstimator::Config cfg;
        cfg.iterations = bb.ais_iterations;
        cfg.samples_per_iteration = bb.ais_samples_per_iteration;
        cfg.final_samples = bb.ais_final_samples;
        return std::make_unique<estimators::AdaptiveIsEstimator>(cfg);
    }
    if (nofis_family(method)) {
        const auto nb = tc.nofis_budget();
        auto cfg = nofis_config_from_budget(nb);
        if (!coupling_override.empty())
            cfg.coupling = parse_coupling(coupling_override);
        if (latent != nullptr) cfg.latent = *latent;
        if (cache) {
            cfg.cache = std::move(cache);
            cfg.cache_key = testcases::cache_key(tc);
        }
        if (method == "NOFIS-LE")
            return std::make_unique<estimators::LatentExploreIs>(
                std::move(cfg), core::LevelSchedule::manual(nb.levels));
        if (method == "NOFIS")
            return std::make_unique<core::NofisEstimator>(
                std::move(cfg), core::LevelSchedule::manual(nb.levels));
    }
    throw std::invalid_argument("make_estimator: unknown method " + method);
}

struct CellResult {
    double mean_calls = 0.0;
    /// Mean g-calls served from the evaluation cache (0 without a cache).
    /// Fresh simulator work per run is mean_calls - mean_cached_calls.
    double mean_cached_calls = 0.0;
    double mean_log_error = 0.0;
    std::size_t failures = 0;  ///< runs flagged failed ("—" when all fail)
    std::size_t repeats = 0;
};

/// Runs `repeats` independent estimates of `method` on `tc`. A non-null
/// `cache` memoizes g across the repeats (and across cells sharing the
/// cache): NOFIS consults it through its config, the baselines through an
/// external CachedProblem wrapper. Estimates are bitwise identical with the
/// cache off, cold, or warm — only the fresh/cached split moves.
inline CellResult run_cell(const std::string& method,
                           const testcases::TestCase& tc, std::size_t repeats,
                           std::uint64_t seed,
                           std::shared_ptr<evalcache::EvalCache> cache =
                               nullptr) {
    const auto est = make_estimator(method, tc, cache);
    std::unique_ptr<evalcache::CachedProblem> cached;
    const estimators::RareEventProblem* problem = &tc;
    if (cache && !nofis_family(method)) {
        cached = std::make_unique<evalcache::CachedProblem>(
            tc, cache, testcases::cache_key(tc));
        problem = cached.get();
    }
    CellResult cell;
    cell.repeats = repeats;
    for (std::size_t r = 0; r < repeats; ++r) {
        const std::size_t hits_before = cached ? cached->hits() : 0;
        rng::Engine eng(seed + 7919 * r);
        const auto res = est->estimate(*problem, eng);
        // NOFIS accounts its own cached share (and telemetry split) inside
        // run(); the wrapper's hit delta is the baselines' share.
        const std::size_t run_cached =
            cached ? std::min(cached->hits() - hits_before, res.calls)
                   : res.cached_calls;
        if (!nofis_family(method))
            evalcache::report_call_split(res.calls, run_cached);
        if (res.failed) ++cell.failures;
        cell.mean_calls += static_cast<double>(res.calls);
        cell.mean_cached_calls += static_cast<double>(run_cached);
        cell.mean_log_error += estimators::log_error(res.p_hat, tc.golden_pr());
    }
    cell.mean_calls /= static_cast<double>(repeats);
    cell.mean_cached_calls /= static_cast<double>(repeats);
    cell.mean_log_error /= static_cast<double>(repeats);
    return cell;
}

/// "12.3K" style formatting used by the paper's Table 1.
inline std::string format_calls(double calls) {
    char buf[32];
    if (calls >= 1000.0)
        std::snprintf(buf, sizeof(buf), "%.1fK", calls / 1000.0);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", calls);
    return buf;
}

/// Parses "a,b,c" lists from CLI flags.
inline std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/// Minimal flag reader: returns the value following "--name", or fallback.
inline std::string arg_value(int argc, char** argv, const char* name,
                             const std::string& fallback) {
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
    return fallback;
}

/// True when the boolean flag "--name" appears anywhere in argv.
inline bool flag_present(int argc, char** argv, const char* name) {
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], name) == 0) return true;
    return false;
}

/// Strict numeric flag readers. A malformed value ("--repeats abc", "12x",
/// "-3" for a count) is a hard error with a diagnostic and exit code 2 —
/// never a silent 0 that makes the run "succeed" doing nothing.
[[noreturn]] inline void flag_error(const char* name,
                                    const std::string& value) {
    std::fprintf(stderr,
                 "error: invalid value '%s' for %s (expected a number)\n",
                 value.c_str(), name);
    std::exit(2);
}

inline std::size_t size_flag(int argc, char** argv, const char* name,
                             const std::string& fallback) {
    const std::string raw = arg_value(argc, argv, name, fallback);
    const auto parsed = util::parse_u64(raw);
    if (!parsed) flag_error(name, raw);
    return static_cast<std::size_t>(*parsed);
}

inline std::uint64_t u64_flag(int argc, char** argv, const char* name,
                              const std::string& fallback) {
    const std::string raw = arg_value(argc, argv, name, fallback);
    const auto parsed = util::parse_u64(raw);
    if (!parsed) flag_error(name, raw);
    return *parsed;
}

inline double double_flag(int argc, char** argv, const char* name,
                          const std::string& fallback) {
    const std::string raw = arg_value(argc, argv, name, fallback);
    const auto parsed = util::parse_double(raw);
    if (!parsed) flag_error(name, raw);
    return *parsed;
}

/// Reads the --latent-* flags of the latent-space exploration estimator
/// (DESIGN.md §16): `--latent-explore` turns the feature on;
/// `--latent-chains K`, `--latent-steps S`, `--latent-alpha A` and
/// `--latent-anneal linear|geom|none` tune it (all honoured even when the
/// feature is off, for callers that enable it programmatically).
inline latent::LatentConfig latent_config_from_flags(int argc, char** argv) {
    latent::LatentConfig lc;
    lc.enabled = flag_present(argc, argv, "--latent-explore");
    lc.chains = size_flag(argc, argv, "--latent-chains", "8");
    lc.steps = size_flag(argc, argv, "--latent-steps", "40");
    lc.alpha = double_flag(argc, argv, "--latent-alpha", "0.8");
    lc.anneal =
        latent::parse_anneal(arg_value(argc, argv, "--latent-anneal", "linear"));
    return lc;
}

/// Applies a "--threads N" flag (0 / absent = NOFIS_THREADS env or hardware
/// concurrency) to the global evaluation pool. Results are bitwise
/// identical for any value; the flag only changes wall-clock time.
inline void apply_threads_flag(int argc, char** argv) {
    const auto threads = size_flag(argc, argv, "--threads", "0");
    if (threads > 0) parallel::set_num_threads(threads);
}

/// Applies a "--kernels auto|scalar|simd" flag (absent = NOFIS_KERNELS env,
/// then auto). Like --threads the choice never changes results — scalar and
/// simd kernels are bitwise identical (DESIGN.md §13) — only wall-clock.
/// A malformed value is a hard error with exit code 2.
inline void apply_kernels_flag(int argc, char** argv) {
    const std::string raw = arg_value(argc, argv, "--kernels", "");
    if (raw.empty()) return;
    const auto choice = linalg::kernels::parse_choice(raw);
    if (!choice) {
        std::fprintf(
            stderr,
            "error: invalid value '%s' for --kernels (expected auto, scalar "
            "or simd)\n",
            raw.c_str());
        std::exit(2);
    }
    linalg::kernels::set_choice(*choice);
}

/// Builds the shared g-evaluation cache from `--cache-mem-mb N` (in-memory
/// budget, MiB) and `--cache-dir DIR` (optional persistent tier). Returns
/// null when neither flag is given — the zero-cost no-cache path. Like
/// --threads and --metrics-out, the flags never change results: estimates
/// are bitwise identical with the cache off, cold, or warm.
inline std::shared_ptr<evalcache::EvalCache> cache_from_flags(int argc,
                                                              char** argv) {
    const auto mem_mb = size_flag(argc, argv, "--cache-mem-mb", "0");
    const std::string dir = arg_value(argc, argv, "--cache-dir", "");
    if (mem_mb == 0 && dir.empty()) return nullptr;
    evalcache::CacheConfig cfg;
    if (mem_mb > 0) cfg.mem_bytes = mem_mb << 20;
    cfg.dir = dir;
    return std::make_shared<evalcache::EvalCache>(cfg);
}

/// Run telemetry for a whole binary invocation: construct one of these
/// early in main(); when the user passed `--metrics-out FILE.json` it
/// activates a process-global telemetry::RunTrace that the instrumented
/// library code (NofisEstimator::run, GuardedProblem, the thread pool, the
/// tiled matmul) reports into, and finish() — called by the destructor at
/// the latest — appends the pool stats and writes the record as JSON.
/// Without the flag everything stays in the zero-cost off mode.
class MetricsSession {
public:
    MetricsSession(int argc, char** argv)
        : path_(arg_value(argc, argv, "--metrics-out", "")) {
        if (enabled()) telemetry::set_active(&trace_);
    }
    ~MetricsSession() { finish(); }
    MetricsSession(const MetricsSession&) = delete;
    MetricsSession& operator=(const MetricsSession&) = delete;

    bool enabled() const noexcept { return !path_.empty(); }
    telemetry::RunTrace& trace() noexcept { return trace_; }
    const std::string& path() const noexcept { return path_; }

    /// Hands the metrics file over to another writer: deactivates telemetry
    /// and suppresses this session's write, leaving whatever that writer
    /// put at the path untouched. The cluster front uses this after
    /// aggregating per-worker records into the very same --metrics-out.
    void disarm() {
        finished_ = true;
        telemetry::set_active(nullptr);
    }

    /// Writes the JSON record (idempotent). Returns false when the file
    /// could not be written; callers that care propagate a nonzero exit.
    /// The write is atomic (temp + fsync + rename), so a crash or injected
    /// I/O fault mid-write never leaves a truncated JSON file where a
    /// previous good one was.
    bool finish() {
        if (!enabled() || finished_) return ok_;
        finished_ = true;
        parallel::export_pool_stats(trace_);
        telemetry::set_active(nullptr);
        try {
            util::AtomicFile file(path_);
            trace_.write_json(file.stream());
            file.stream() << '\n';
            file.commit();
            ok_ = true;
        } catch (const std::exception& e) {
            ok_ = false;
            std::fprintf(stderr, "error: cannot write metrics to '%s': %s\n",
                         path_.c_str(), e.what());
        }
        return ok_;
    }

private:
    std::string path_;
    telemetry::RunTrace trace_;
    bool finished_ = false;
    bool ok_ = true;
};

}  // namespace nofis::bench
