// Evaluation-cache micro-benchmark: runs each (method, case) cell twice
// against one shared evalcache::EvalCache — a cold pass that populates it
// and a warm pass that replays the identical seeds — and reports the warm
// hit rate and wall-clock speedup next to an uncached reference pass.
//
//   ./bench/cache_bench [--methods MC,SUS] [--cases Leaf,Rosen]
//       [--repeats 2] [--seed 1] [--cache-mem-mb 64] [--cache-dir DIR]
//       [--threads N] [--metrics-out cache_metrics.json]
//
// The bench doubles as a regression check: estimates must be bitwise
// identical across the uncached, cold and warm passes (g is pure), and the
// warm pass of a sufficiently large cache must serve every arrival. Any
// violation exits nonzero so run_benches.sh flags it.
//
// With --metrics-out the headline numbers land in the telemetry record as
// cache.hit_rate / cache.warm_speedup metrics alongside the cache's own
// hit/miss/eviction counters.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace nofis;
using namespace nofis::bench;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto methods =
        split_csv(arg_value(argc, argv, "--methods", "MC,SUS"));
    const auto cases = split_csv(arg_value(argc, argv, "--cases", "Leaf"));
    const auto repeats = size_flag(argc, argv, "--repeats", "2");
    const auto seed = u64_flag(argc, argv, "--seed", "1");
    const auto mem_mb = size_flag(argc, argv, "--cache-mem-mb", "256");
    const std::string dir = arg_value(argc, argv, "--cache-dir", "");

    evalcache::CacheConfig ccfg;
    ccfg.mem_bytes = mem_mb << 20;
    ccfg.dir = dir;
    const auto cache = std::make_shared<evalcache::EvalCache>(ccfg);

    std::printf("%-8s %-10s %10s %10s %10s %9s %9s\n", "method", "case",
                "nocache_s", "cold_s", "warm_s", "speedup", "hit_rate");

    bool ok = true;
    double worst_hit_rate = 1.0;
    double total_nocache = 0.0, total_warm = 0.0;
    for (const auto& method : methods) {
        for (const auto& case_name : cases) {
            const auto& tc = testcases::CaseFactory::global().get(case_name);

            const auto t0 = Clock::now();
            const auto plain = run_cell(method, tc, repeats, seed);
            const double nocache_s = seconds_since(t0);

            const auto t1 = Clock::now();
            const auto cold = run_cell(method, tc, repeats, seed, cache);
            const double cold_s = seconds_since(t1);

            const auto t2 = Clock::now();
            const auto warm = run_cell(method, tc, repeats, seed, cache);
            const double warm_s = seconds_since(t2);

            // Estimates are a pure function of (method, case, seed): the
            // cache may only change where values come from, never what
            // they are.
            if (plain.mean_log_error != cold.mean_log_error ||
                plain.mean_log_error != warm.mean_log_error ||
                plain.mean_calls != warm.mean_calls) {
                std::fprintf(stderr,
                             "FAIL: %s/%s results differ across cache "
                             "states\n",
                             method.c_str(), case_name.c_str());
                ok = false;
            }
            const double hit_rate =
                warm.mean_calls > 0.0 ? warm.mean_cached_calls / warm.mean_calls
                                      : 0.0;
            if (hit_rate < worst_hit_rate) worst_hit_rate = hit_rate;
            total_nocache += nocache_s;
            total_warm += warm_s;

            std::printf("%-8s %-10s %10.3f %10.3f %10.3f %8.2fx %8.1f%%\n",
                        method.c_str(), case_name.c_str(), nocache_s, cold_s,
                        warm_s, warm_s > 0.0 ? nocache_s / warm_s : 0.0,
                        100.0 * hit_rate);
        }
    }

    const double speedup = total_warm > 0.0 ? total_nocache / total_warm : 0.0;
    std::printf("overall: %.2fx warm speedup, worst hit rate %.1f%%\n",
                speedup, 100.0 * worst_hit_rate);
    std::printf(
        "(closed-form synthetic g costs less than a cache probe, so a "
        "speedup < 1x here is\n expected — the cache pays off when g is a "
        "real simulation; hit rate is the signal.)\n");
    telemetry::metric("cache.hit_rate", worst_hit_rate);
    telemetry::metric("cache.warm_speedup", speedup);

    // The synthetic cases replay their exact seeds, so a warm pass under an
    // adequate memory budget must be all hits.
    if (worst_hit_rate < 1.0) {
        std::fprintf(stderr,
                     "FAIL: warm pass was not fully served from the cache "
                     "(worst hit rate %.3f)\n",
                     worst_hit_rate);
        ok = false;
    }
    if (!metrics.finish()) ok = false;
    return ok ? 0 : 1;
}
