// Latent-space exploration ablation (DESIGN.md §16): plain final IS versus
// annealed-MCMC latent exploration with a defensive-mixture proposal, on the
// same trained flow at IDENTICAL total g-budgets. The latent estimator
// carves K·(S+1) exploration calls out of the n_is budget, so any accuracy
// win is free — it never spends more simulator work than the baseline.
//
// Usage: latent_bench [--cases YBranch,Levy,Powell] [--repeats 3]
//        [--latent-chains K] [--latent-steps S] [--latent-alpha A]
//        [--latent-anneal linear|geom|none] [--train-seed N] [--seed N]
//
// Exit status is the acceptance gate, not just a log line:
//   * On YBranch (when benched) the latent mean |log error| must be <= the
//     plain final-IS mean at the same budget, else FAIL (exit 1).
//   * The latent estimate must be bitwise identical across --threads {1,8}
//     x cache {off, cold, warm} x kernels {scalar, simd}, else FAIL.

#include <cmath>
#include <cstring>

#include "bench_common.hpp"
#include "estimators/guarded_problem.hpp"
#include "latent/latent_explore.hpp"
#include "testcases/registry.hpp"

namespace {

/// Bitwise double comparison — the determinism contract is equality of the
/// representation, not closeness.
bool same_bits(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "3");
    const auto cases =
        split_csv(arg_value(argc, argv, "--cases", "YBranch,Levy,Powell"));
    const auto train_seed = u64_flag(argc, argv, "--train-seed", "9001");
    const auto est_seed = u64_flag(argc, argv, "--seed", "777");
    latent::LatentConfig lcfg = latent_config_from_flags(argc, argv);
    lcfg.enabled = true;

    std::printf("Latent exploration vs plain final IS — %zu repeat(s), "
                "identical g-budget per row\n", repeats);
    std::printf("%-10s %-10s %-9s %-9s %-7s %-7s %-8s %-7s\n", "case",
                "estimator", "log-err", "ess", "hits", "calls", "accept",
                "comps");

    bool failed = false;
    for (const auto& name : cases) {
        const auto tc = testcases::make_case(name);
        const auto budget = tc->nofis_budget();
        const auto cfg = nofis_config_from_budget(budget);
        const core::NofisEstimator trainer(
            cfg, core::LevelSchedule::manual(budget.levels));
        rng::Engine teng(train_seed);
        const auto run = trainer.run(*tc, teng);
        if (run.flow == nullptr) {
            std::printf("%-10s training did not return a flow — FAIL\n",
                        name.c_str());
            failed = true;
            continue;
        }
        const flow::CouplingStack& stack = *run.flow;
        const estimators::GuardedProblem guarded(*tc);

        struct Acc {
            double err = 0.0, ess = 0.0, hits = 0.0, calls = 0.0;
            double accept = 0.0, comps = 0.0;
        } plain, lat;
        for (std::size_t r = 0; r < repeats; ++r) {
            const std::uint64_t seed = est_seed + 101 * r;
            {
                rng::Engine eng(seed);
                core::IsDiagnostics d;
                const auto res = core::NofisEstimator::importance_estimate(
                    stack, *tc, eng, cfg.n_is, &d, cfg.defensive_weight,
                    cfg.defensive_sigma);
                plain.err += estimators::log_error(res.p_hat, tc->golden_pr());
                plain.ess += d.effective_sample_size;
                plain.hits += static_cast<double>(d.hits);
                plain.calls += static_cast<double>(res.calls);
            }
            {
                rng::Engine eng(seed);
                core::IsDiagnostics d;
                latent::LatentReport rep;
                const auto res = latent::explore_and_estimate(
                    stack, guarded, eng, cfg.n_is, cfg.tau,
                    budget.levels.front(), lcfg, &d, &rep);
                lat.err += estimators::log_error(res.p_hat, tc->golden_pr());
                lat.ess += d.effective_sample_size;
                lat.hits += static_cast<double>(d.hits);
                lat.calls += static_cast<double>(res.calls);
                lat.accept += rep.acceptance_rate;
                lat.comps += static_cast<double>(rep.components);
            }
        }
        const auto dr = static_cast<double>(repeats);
        std::printf("%-10s %-10s %-9.3f %-9.1f %-7.0f %-7.0f %-8s %-7s\n",
                    name.c_str(), "plain", plain.err / dr, plain.ess / dr,
                    plain.hits / dr, plain.calls / dr, "-", "-");
        std::printf("%-10s %-10s %-9.3f %-9.1f %-7.0f %-7.0f %-8.3f %-7.0f\n",
                    name.c_str(), "latent", lat.err / dr, lat.ess / dr,
                    lat.hits / dr, lat.calls / dr, lat.accept / dr,
                    lat.comps / dr);
        std::fflush(stdout);
        if (!same_bits(plain.calls, lat.calls)) {
            std::printf("  FAIL: g-budgets differ (plain %.0f vs latent "
                        "%.0f)\n", plain.calls / dr, lat.calls / dr);
            failed = true;
        }
        if (name == "YBranch" && !(lat.err <= plain.err)) {
            std::printf("  FAIL: latent mean log-err %.3f > plain %.3f on "
                        "YBranch at identical budget\n", lat.err / dr,
                        plain.err / dr);
            failed = true;
        }

        // Determinism matrix on the post-training phase: the latent
        // estimate must not depend on thread count, kernel flavour, or
        // cache state (DESIGN.md §13/§16).
        double ref_p = 0.0;
        bool have_ref = false;
        bool det_ok = true;
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            parallel::set_num_threads(threads);
            for (const char* kname : {"scalar", "simd"}) {
                linalg::kernels::set_choice(
                    *linalg::kernels::parse_choice(kname));
                auto cache = std::make_shared<evalcache::EvalCache>(
                    evalcache::CacheConfig{});
                for (const char* mode : {"off", "cold", "warm"}) {
                    std::unique_ptr<evalcache::CachedProblem> cached;
                    const estimators::RareEventProblem* prob = &guarded;
                    if (std::strcmp(mode, "off") != 0) {
                        cached = std::make_unique<evalcache::CachedProblem>(
                            *tc, cache, testcases::cache_key(*tc));
                        prob = cached.get();
                    }
                    rng::Engine eng(est_seed);
                    const auto res = latent::explore_and_estimate(
                        *run.flow, *prob, eng, cfg.n_is, cfg.tau,
                        budget.levels.front(), lcfg);
                    if (!have_ref) {
                        ref_p = res.p_hat;
                        have_ref = true;
                    } else if (!same_bits(res.p_hat, ref_p)) {
                        std::printf("  FAIL: determinism break at threads=%zu "
                                    "kernels=%s cache=%s (p_hat %.17g vs "
                                    "%.17g)\n", threads, kname, mode,
                                    res.p_hat, ref_p);
                        det_ok = false;
                    }
                }
            }
        }
        linalg::kernels::set_choice(linalg::kernels::Choice::kAuto);
        if (det_ok)
            std::printf("  determinism: threads {1,8} x kernels "
                        "{scalar,simd} x cache {off,cold,warm} bitwise OK\n");
        else
            failed = true;
    }

    std::printf("\n(The latent estimator re-invests part of the final-IS "
                "budget into annealed Metropolis chains in the flow's base "
                "space; the defensive mixture\nalpha*flow + "
                "(1-alpha)*refined bounds the weight blow-up when the flow "
                "under-covers a failure lobe. alpha -> 1 degenerates to "
                "plain final IS.\nSee EXPERIMENTS.md §latent-explore for "
                "measured tables.)\n");
    if (failed) {
        std::printf("latent_bench: FAIL\n");
        return 1;
    }
    std::printf("latent_bench: PASS\n");
    return 0;
}
