// Extension experiment (beyond the paper's Table 1): the 6T SRAM
// read-stability case on the Newton nonlinear-DC substrate — the exact
// application domain the paper's introduction motivates. Reported in the
// same calls / log-error format as Table 1.
//
// Usage: extension_sram [--repeats 2] [--methods MC,SUS,NOFIS]

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "2");
    const auto methods =
        split_csv(arg_value(argc, argv, "--methods", "MC,SUS,NOFIS"));

    const auto tc = testcases::make_case("Sram6T");
    std::printf("Extension: 6T SRAM read-SNM failure (nonlinear Newton "
                "solves), golden P_r = %.3e, %zu repeat(s)\n",
                tc->golden_pr(), repeats);
    std::printf("%-8s %-12s %-10s\n", "method", "calls", "log-err");
    for (const auto& m : methods) {
        const auto cell = run_cell(m, *tc, repeats, 777);
        std::printf("%-8s %-12s %-10.3f%s\n", m.c_str(),
                    format_calls(cell.mean_calls).c_str(),
                    cell.mean_log_error,
                    cell.failures == cell.repeats ? "  (—)" : "");
        std::fflush(stdout);
    }
    std::printf("\n(NOFIS reaches sub-e accuracy at ~22K simulations; MC at "
                "this budget returns 0.)\n");
    return 0;
}
