// Extension ablation (the paper's future-work item): automatic nested-subset
// selection via pilot quantiles (core::auto_levels) versus the hand-tuned
// manual schedules of Table 1. Pilot calls are charged to the budget.
//
// Usage: ablation_autolevel [--repeats 3] [--cases Leaf,Opamp,Oscillator]

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "3");
    const auto cases = split_csv(
        arg_value(argc, argv, "--cases", "Leaf,Opamp,Oscillator"));

    std::printf("Auto-level extension ablation — %zu repeat(s)\n", repeats);
    std::printf("%-12s %-18s %-18s\n", "case", "manual (calls/err)",
                "auto (calls/err)");

    for (const auto& name : cases) {
        const auto tc = testcases::make_case(name);
        const auto budget = tc->nofis_budget();
        core::NofisConfig cfg = nofis_config_from_budget(budget);

        double manual_err = 0.0;
        double manual_calls = 0.0;
        double auto_err = 0.0;
        double auto_calls = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            rng::Engine eng(901 + 37 * r);
            core::NofisEstimator manual(
                cfg, core::LevelSchedule::manual(budget.levels));
            const auto mres = manual.estimate(*tc, eng);
            manual_err += estimators::log_error(mres.p_hat, tc->golden_pr());
            manual_calls += static_cast<double>(mres.calls);

            rng::Engine eng2(902 + 37 * r);
            estimators::CountedProblem counted(*tc);
            core::AutoLevelConfig acfg;
            acfg.num_levels = budget.levels.size();
            acfg.pilot_samples = 500;
            const auto auto_ls = core::auto_levels(counted, eng2, acfg);
            core::NofisEstimator auto_est(cfg, auto_ls);
            const auto ares = auto_est.estimate(*tc, eng2);
            auto_err += estimators::log_error(ares.p_hat, tc->golden_pr());
            auto_calls +=
                static_cast<double>(ares.calls + counted.calls());
        }
        const auto dr = static_cast<double>(repeats);
        std::printf("%-12s %8s / %-7.3f %8s / %-7.3f\n", name.c_str(),
                    format_calls(manual_calls / dr).c_str(), manual_err / dr,
                    format_calls(auto_calls / dr).c_str(), auto_err / dr);
        std::fflush(stdout);
    }
    std::printf("\n(Measured: pilot-quantile auto levels match or beat the "
                "hand-tuned schedules at ~500 extra calls — a positive "
                "answer to the paper's open problem on these cases.)\n");
    return 0;
}
