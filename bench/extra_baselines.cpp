// Extension bench: line sampling (the classical method behind the paper's
// oscillator reference [18]) against NOFIS and SUS on cases spanning the
// geometry spectrum — from a nearly-affine limit state (Oscillator) to
// curved/multimodal regions (Leaf, YBranch) where direction-based methods
// lose ground.
//
// Usage: extra_baselines [--repeats 3] [--cases Leaf,Oscillator,YBranch]

#include <cmath>

#include "bench_common.hpp"
#include "estimators/line_sampling.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "3");
    const auto cases = split_csv(
        arg_value(argc, argv, "--cases", "Leaf,Oscillator,YBranch"));

    std::printf("Line-sampling extension vs NOFIS/SUS — %zu repeat(s)\n",
                repeats);
    std::printf("%-12s %-20s %-20s %-20s\n", "case", "LineSampling",
                "SUS", "NOFIS");

    for (const auto& name : cases) {
        const auto tc = testcases::make_case(name);
        std::printf("%-12s", name.c_str());

        // Line sampling sized to ~10-15% of the NOFIS budget: its strength
        // is extreme efficiency when the geometry cooperates.
        estimators::LineSamplingEstimator ls(
            {.num_lines = 300, .pilot_samples = 500, .pilot_sigma = 3.0});
        double err = 0.0;
        double calls = 0.0;
        std::size_t fails = 0;
        for (std::size_t r = 0; r < repeats; ++r) {
            rng::Engine eng(31337 + 7 * r);
            const auto res = ls.estimate(*tc, eng);
            if (res.failed) ++fails;
            err += estimators::log_error(res.p_hat, tc->golden_pr());
            calls += static_cast<double>(res.calls);
        }
        {
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%s / %.2f%s",
                          format_calls(calls / repeats).c_str(),
                          err / static_cast<double>(repeats),
                          fails == repeats ? " (—)" : "");
            std::printf(" %-20s", buf);
            std::fflush(stdout);
        }
        for (const char* method : {"SUS", "NOFIS"}) {
            const auto cell = run_cell(method, *tc, repeats, 31337);
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%s / %.2f",
                          format_calls(cell.mean_calls).c_str(),
                          cell.mean_log_error);
            std::printf(" %-20s", buf);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\n(Line sampling shines on near-affine limit states at a "
                "fraction of the budget, but needs a single dominant\n"
                "failure direction — the trade NOFIS does not make.)\n");
    return 0;
}
