// Architecture ablation: RealNVP affine couplings (the paper's backbone)
// versus NICE additive couplings (volume preserving) versus affine+ActNorm,
// on the Leaf case at the fixed Table-1 budget.
//
// Usage: ablation_coupling [--repeats 3]

#include <cmath>

#include "bench_common.hpp"
#include "testcases/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "3");

    testcases::LeafCase leaf;
    const auto budget = leaf.nofis_budget();

    struct Variant {
        const char* name;
        flow::CouplingKind kind;
        bool actnorm;
    };
    const Variant variants[] = {
        {"affine (RealNVP)", flow::CouplingKind::kAffine, false},
        {"affine + ActNorm", flow::CouplingKind::kAffine, true},
        {"additive (NICE)", flow::CouplingKind::kAdditive, false},
        {"additive + ActNorm", flow::CouplingKind::kAdditive, true},
    };

    std::printf("Coupling-architecture ablation on Leaf — %zu repeat(s), "
                "%zu-call budget\n", repeats, budget.total_calls());
    std::printf("%-20s %-10s %-10s %-8s\n", "variant", "log-err", "ess",
                "hits");

    for (const auto& v : variants) {
        core::NofisConfig cfg = nofis_config_from_budget(budget);
        cfg.coupling = v.kind;
        cfg.use_actnorm = v.actnorm;
        core::NofisEstimator est(cfg,
                                 core::LevelSchedule::manual(budget.levels));
        double err = 0.0;
        double ess = 0.0;
        double hits = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            rng::Engine eng(4321 + 13 * r);
            const auto run = est.run(leaf, eng);
            err += estimators::log_error(run.estimate.p_hat,
                                         leaf.golden_pr());
            ess += run.is_diag.effective_sample_size;
            hits += static_cast<double>(run.is_diag.hits);
        }
        const auto dr = static_cast<double>(repeats);
        std::printf("%-20s %-10.3f %-10.1f %-8.0f\n", v.name, err / dr,
                    ess / dr, hits / dr);
        std::fflush(stdout);
    }
    std::printf("\n(Finding: in this few-update training regime the "
                "volume-preserving NICE coupling is often MORE accurate "
                "than RealNVP —\nwithout exp scalings it trains more "
                "stably; see EXPERIMENTS.md §coupling-ablation.)\n");
    return 0;
}
