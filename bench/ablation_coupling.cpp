// Architecture ablation: RealNVP affine couplings (the paper's backbone)
// versus NICE additive couplings (volume preserving) versus monotone
// rational-quadratic spline couplings (neural spline flows), each with and
// without ActNorm, at the case's fixed Table-1 budget.
//
// Usage: ablation_coupling [--case Leaf] [--repeats 3] [--rqs-bins 8]
//        [--rqs-tail 5]
//
// Multi-modal failure regions (YBranch, DeepNet62) are where the spline's
// extra expressiveness should pay off; Leaf is the sanity baseline.

#include <cmath>

#include "bench_common.hpp"
#include "testcases/registry.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "3");
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const auto rqs_bins = size_flag(argc, argv, "--rqs-bins", "8");
    // Rare failure regions live at 4-6σ; the spline is the identity outside
    // [-B, B], so the default box is wider here than the NSF image-data
    // convention of 3.
    const auto rqs_tail = double_flag(argc, argv, "--rqs-tail", "5");

    const auto tc = testcases::make_case(case_name);
    const auto budget = tc->nofis_budget();

    struct Variant {
        const char* name;
        flow::CouplingKind kind;
        bool actnorm;
    };
    const Variant variants[] = {
        {"affine (RealNVP)", flow::CouplingKind::kAffine, false},
        {"affine + ActNorm", flow::CouplingKind::kAffine, true},
        {"additive (NICE)", flow::CouplingKind::kAdditive, false},
        {"additive + ActNorm", flow::CouplingKind::kAdditive, true},
        {"rqs (spline)", flow::CouplingKind::kRqs, false},
        {"rqs + ActNorm", flow::CouplingKind::kRqs, true},
    };

    std::printf("Coupling-architecture ablation on %s — %zu repeat(s), "
                "%zu-call budget\n", case_name.c_str(), repeats,
                budget.total_calls());
    std::printf("%-20s %-10s %-10s %-8s\n", "variant", "log-err", "ess",
                "hits");

    for (const auto& v : variants) {
        core::NofisConfig cfg = nofis_config_from_budget(budget);
        cfg.coupling = v.kind;
        cfg.use_actnorm = v.actnorm;
        cfg.rqs_bins = rqs_bins;
        cfg.rqs_tail = rqs_tail;
        core::NofisEstimator est(cfg,
                                 core::LevelSchedule::manual(budget.levels));
        double err = 0.0;
        double ess = 0.0;
        double hits = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            rng::Engine eng(4321 + 13 * r);
            const auto run = est.run(*tc, eng);
            err += estimators::log_error(run.estimate.p_hat,
                                         tc->golden_pr());
            ess += run.is_diag.effective_sample_size;
            hits += static_cast<double>(run.is_diag.hits);
        }
        const auto dr = static_cast<double>(repeats);
        std::printf("%-20s %-10.3f %-10.1f %-8.0f\n", v.name, err / dr,
                    ess / dr, hits / dr);
        std::fflush(stdout);
    }
    std::printf("\n(Findings: in this few-update training regime the "
                "volume-preserving NICE coupling is often MORE accurate "
                "than RealNVP on unimodal cases —\nwithout exp scalings it "
                "trains more stably. On the multi-modal photonic case "
                "(--case YBranch) the rqs spline's piecewise\nmonotone map "
                "beats the affine baseline at the same g-budget; the spline "
                "is identity outside [-tail, tail], so keep\n--rqs-tail "
                "beyond the case's failure sigma. See EXPERIMENTS.md "
                "§coupling-ablation for measured tables.)\n");
    return 0;
}
