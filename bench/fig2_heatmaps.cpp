// Regenerates Figure 2: for four deliberately-shaped 2-D failure regions in
// the tail of p = N(0, I), compares the theoretically-optimal proposal
// q*(x) ∝ p(x)·1[x ∈ Ω] against the NOFIS-learned proposal q_MK in the
// unlimited-function-call regime.
//
// Outputs: per-case CSV heatmap grids (x, y, q_star, q_learned) under
// fig2_out/, plus a printed L1 density-agreement summary (0 = disjoint,
// 1 = identical) and the inside-Ω mass of the learned proposal.
//
// Usage: fig2_heatmaps [--out fig2_out] [--grid 120] [--epochs 220]

#include <cmath>
#include <functional>
#include <numbers>
#include <filesystem>
#include <fstream>

#include "bench_common.hpp"
#include "rng/normal.hpp"

namespace {

using namespace nofis;

/// A 2-D synthetic region with its NOFIS level schedule.
struct Shape {
    std::string name;
    std::function<double(double, double)> g;
    std::vector<double> levels;
    double tau;
};

class ShapeProblem final : public estimators::RareEventProblem {
public:
    explicit ShapeProblem(const Shape& s) : shape_(&s) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override {
        return shape_->g(x[0], x[1]);
    }
    double fd_step() const noexcept override { return 1e-6; }

private:
    const Shape* shape_;
};

std::vector<Shape> make_shapes() {
    std::vector<Shape> shapes;
    // (b) The paper's two-leaf region: discs of radius 1 at ±(3.8, 3.8).
    shapes.push_back(
        {"leaf",
         [](double x, double y) {
             const double dp = (x + 3.8) * (x + 3.8) + (y + 3.8) * (y + 3.8);
             const double dm = (x - 3.8) * (x - 3.8) + (y - 3.8) * (y - 3.8);
             return std::min(dp, dm) - 1.0;
         },
         {40.0, 28.0, 18.0, 10.0, 4.0, 0.0},
         30.0});
    // (c) A thin annulus far from the origin: 4.2 <= |x| <= 4.6.
    shapes.push_back(
        {"ring",
         [](double x, double y) {
             const double r = std::sqrt(x * x + y * y);
             return std::abs(r - 4.4) - 0.2;
         },
         {3.0, 2.0, 1.2, 0.6, 0.0},
         30.0});
    // (d) A tilted slab segment in the upper tail.
    shapes.push_back(
        {"slab",
         [](double x, double y) {
             const double along = (x + y) / std::numbers::sqrt2;
             const double across = (x - y) / std::numbers::sqrt2;
             return std::max(4.3 - along, std::abs(across) - 1.5);
         },
         {4.0, 2.6, 1.5, 0.6, 0.0},
         25.0});
    // (e) Two crescent "moons" (min of two shifted annulus halves).
    shapes.push_back(
        {"moons",
         [](double x, double y) {
             const auto moon = [](double cx, double cy, double px,
                                  double py) {
                 const double r =
                     std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
                 const double band = std::abs(r - 1.4) - 0.35;
                 const double cut = (py - cy) * ((cy > 0) ? -1.0 : 1.0);
                 return std::max(band, cut);
             };
             return std::min(moon(4.0, 2.5, x, y), moon(-4.0, -2.5, x, y));
         },
         {9.0, 5.5, 3.0, 1.2, 0.0},
         25.0});
    return shapes;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);
    const std::string out_dir = arg_value(argc, argv, "--out", "fig2_out");
    const auto grid = size_flag(argc, argv, "--grid", "120");
    const auto epochs = size_flag(argc, argv, "--epochs", "220");
    std::filesystem::create_directories(out_dir);

    std::printf("Figure 2 reproduction (unlimited-call regime)\n");
    std::printf("%-8s %12s %14s %14s\n", "case", "L1-agree",
                "mass-inside", "grid-file");

    for (const auto& shape : make_shapes()) {
        ShapeProblem problem(shape);

        core::NofisConfig cfg;
        cfg.epochs = epochs;
        cfg.samples_per_epoch = 200;
        cfg.n_is = 10;
        cfg.tau = shape.tau;
        cfg.learning_rate = 7e-3;
        cfg.lr_decay = 0.995;
        core::NofisEstimator est(cfg,
                                 core::LevelSchedule::manual(shape.levels));
        rng::Engine eng(20240623);
        auto run = est.run(problem, eng);
        const auto& flow = *run.flow;

        // Evaluate q* and q_MK on the grid; normalise q* over the grid.
        const double lim = 6.5;
        const double h = 2.0 * lim / static_cast<double>(grid);
        linalg::Matrix pt(1, 2);
        std::vector<double> qstar(grid * grid, 0.0);
        std::vector<double> qlearn(grid * grid, 0.0);
        double star_total = 0.0;
        double learn_total = 0.0;
        for (std::size_t i = 0; i < grid; ++i) {
            for (std::size_t j = 0; j < grid; ++j) {
                const double x = -lim + (static_cast<double>(i) + 0.5) * h;
                const double y = -lim + (static_cast<double>(j) + 0.5) * h;
                pt(0, 0) = x;
                pt(0, 1) = y;
                const double inside = shape.g(x, y) <= 0.0 ? 1.0 : 0.0;
                const double p =
                    std::exp(rng::standard_normal_log_pdf(pt.row_span(0)));
                qstar[i * grid + j] = inside * p;
                star_total += inside * p;
                const double q =
                    std::exp(flow.log_prob(pt, flow.num_blocks())[0]);
                qlearn[i * grid + j] = q;
                learn_total += q * h * h;
            }
        }
        // L1 agreement = 1 - 0.5 ∫|q* - q| (both grid-normalised).
        double l1 = 0.0;
        double mass_inside = 0.0;
        for (std::size_t k = 0; k < grid * grid; ++k) {
            const double a = qstar[k] / star_total;
            const double b = qlearn[k] * h * h / std::max(learn_total, 1e-30);
            l1 += std::abs(a - b);
            if (qstar[k] > 0.0) mass_inside += qlearn[k] * h * h;
        }
        const double agreement = 1.0 - 0.5 * l1;

        const std::string file = out_dir + "/" + shape.name + ".csv";
        std::ofstream os(file);
        os << "x,y,q_star,q_learned\n";
        for (std::size_t i = 0; i < grid; ++i)
            for (std::size_t j = 0; j < grid; ++j) {
                const double x = -lim + (static_cast<double>(i) + 0.5) * h;
                const double y = -lim + (static_cast<double>(j) + 0.5) * h;
                os << x << ',' << y << ',' << qstar[i * grid + j] / star_total
                   << ',' << qlearn[i * grid + j] << '\n';
            }
        std::printf("%-8s %12.3f %14.3f %14s\n", shape.name.c_str(),
                    agreement, mass_inside, file.c_str());
        std::fflush(stdout);
    }
    std::printf("\n(The paper reports visual alignment. Measured here: "
                "mass-inside ~0.7-0.9 everywhere and L1-agree up to ~0.75;\n"
                "the annulus is the hardest shape — a flow must tear a hole "
                "into a Gaussian.)\n");
    return 0;
}
