// Regenerates Figure 5 (left): ablations on the three circuit cases —
//   Nominal   : the Table-1 configuration,
//   NoFreeze  : earlier blocks stay trainable at every stage,
//   LongThre  : the level sequence stretched to M = 9,
//   SmallTemp : τ = 1.
// The paper's observation: none of the deviations consistently improves on
// the nominal configuration.
//
// Usage: fig5_ablation [--repeats 3] [--cases Opamp,ChargePump,YBranch]

#include <cmath>

#include "bench_common.hpp"

namespace {

/// Stretches a level schedule to `target` levels by linear interpolation in
/// index space (keeps a_1 and a_M = 0).
std::vector<double> densify_levels(const std::vector<double>& levels,
                                   std::size_t target) {
    std::vector<double> out(target);
    const double last = static_cast<double>(levels.size() - 1);
    for (std::size_t i = 0; i < target; ++i) {
        const double pos =
            last * static_cast<double>(i) / static_cast<double>(target - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, levels.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out[i] = (1.0 - frac) * levels[lo] + frac * levels[hi];
    }
    out.back() = 0.0;
    // Deduplicate any interpolation ties.
    for (std::size_t i = 1; i + 1 < out.size(); ++i)
        if (out[i] >= out[i - 1]) out[i] = out[i - 1] * 0.75;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "2");
    const auto cases = split_csv(
        arg_value(argc, argv, "--cases", "Opamp,ChargePump,YBranch"));

    std::printf("Figure 5 (left) reproduction — ablations, %zu repeat(s)\n",
                repeats);
    std::printf("%-12s %-10s %-10s %-10s %-10s\n", "case", "Nominal",
                "NoFreeze", "LongThre", "SmallTemp");

    for (const auto& name : cases) {
        const auto tc = testcases::make_case(name);
        const auto budget = tc->nofis_budget();
        std::printf("%-12s", name.c_str());

        const auto run_variant = [&](const core::NofisConfig& cfg,
                                     const std::vector<double>& levels) {
            core::NofisEstimator est(cfg,
                                     core::LevelSchedule::manual(levels));
            double err = 0.0;
            for (std::size_t r = 0; r < repeats; ++r) {
                rng::Engine eng(555 + 101 * r);
                const auto res = est.estimate(*tc, eng);
                err += estimators::log_error(res.p_hat, tc->golden_pr());
            }
            return err / static_cast<double>(repeats);
        };

        core::NofisConfig nominal = nofis_config_from_budget(budget);
        std::printf(" %-10.3f", run_variant(nominal, budget.levels));
        std::fflush(stdout);

        core::NofisConfig no_freeze = nominal;
        no_freeze.freeze_previous = false;
        std::printf(" %-10.3f", run_variant(no_freeze, budget.levels));
        std::fflush(stdout);

        // LongThre: M = 9, same total training calls (E scaled down).
        core::NofisConfig long_thre = nominal;
        const auto levels9 = densify_levels(budget.levels, 9);
        long_thre.epochs = std::max<std::size_t>(
            1, budget.epochs * budget.levels.size() / 9);
        std::printf(" %-10.3f", run_variant(long_thre, levels9));
        std::fflush(stdout);

        core::NofisConfig small_temp = nominal;
        // "τ = 1" in the paper is relative to g's natural O(1) scale; keep
        // the same 1:nominal ratio for cases whose g units differ.
        small_temp.tau = nominal.tau / 15.0;
        std::printf(" %-10.3f\n", run_variant(small_temp, budget.levels));
        std::fflush(stdout);
    }
    std::printf("\n(Expect Nominal to be best or tied on most rows.)\n");
    return 0;
}
