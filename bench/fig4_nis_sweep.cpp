// Regenerates Figure 4: trains the Leaf proposal once at the Table-1 call
// budget, then re-estimates P_r from the same trained flow with increasing
// N_IS. The paper's observation: accuracy keeps improving with N_IS even
// when the learned proposal is degraded by the budget limit.
//
// Usage: fig4_nis_sweep [--repeats 5] [--seed 1]

#include <cmath>

#include "bench_common.hpp"
#include "testcases/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "5");
    const auto seed = u64_flag(argc, argv, "--seed", "1");

    testcases::LeafCase leaf;
    const auto budget = leaf.nofis_budget();
    const std::size_t nis_grid[] = {20, 50, 100, 200, 500, 1000, 2000, 5000};

    std::printf("Figure 4 reproduction — log-error vs N_IS on Leaf "
                "(%zu trained flows)\n", repeats);
    std::printf("%-8s", "N_IS");
    for (std::size_t r = 0; r < repeats; ++r) std::printf("   run%zu", r);
    std::printf("    mean\n");

    // Train `repeats` independent proposals at the paper's training budget.
    std::vector<std::unique_ptr<flow::CouplingStack>> flows;
    core::NofisConfig cfg = nofis_config_from_budget(budget);
    core::NofisEstimator est(cfg, core::LevelSchedule::manual(budget.levels));
    for (std::size_t r = 0; r < repeats; ++r) {
        rng::Engine eng(seed + 31 * r);
        flows.push_back(est.run(leaf, eng).flow);
    }

    for (std::size_t nis : nis_grid) {
        std::printf("%-8zu", nis);
        double mean = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            rng::Engine eng(10 * seed + 977 * r + nis);
            const auto res = core::NofisEstimator::importance_estimate(
                *flows[r], leaf, eng, nis, nullptr, cfg.defensive_weight,
                cfg.defensive_sigma);
            const double err =
                estimators::log_error(res.p_hat, leaf.golden_pr());
            std::printf(" %7.3f", err);
            mean += err;
        }
        std::printf(" %7.3f\n", mean / static_cast<double>(repeats));
        std::fflush(stdout);
    }
    std::printf("\n(Expect the mean column to decrease as N_IS grows, "
                "mirroring the paper's right panel.)\n");
    return 0;
}
