// Micro-benchmarks (google-benchmark) for the numeric substrates: matmul,
// LU solve, coupling-layer forward/inverse, full-flow sampling, MNA AC
// solve, and one g() evaluation of each expensive test-case model. These
// bound the wall-clock cost of a NOFIS run (MEN forward passes + g calls).

#include <benchmark/benchmark.h>

#include "circuit/ac.hpp"
#include "circuit/charge_pump.hpp"
#include "circuit/opamp.hpp"
#include "estimators/problem.hpp"
#include "flow/coupling_stack.hpp"
#include "linalg/lu.hpp"
#include "parallel/thread_pool.hpp"
#include "photonic/ybranch.hpp"
#include "rng/normal.hpp"
#include "testcases/registry.hpp"

namespace {

using namespace nofis;

void BM_MatMul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    // Pinned to one lane so the serial-kernel numbers stay comparable
    // across runs; BM_MatMulThreaded measures the parallel scaling.
    parallel::set_num_threads(1);
    rng::Engine eng(1);
    const auto a = rng::standard_normal_matrix(eng, n, n);
    const auto b = rng::standard_normal_matrix(eng, n, n);
    for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_MatMulThreaded(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto threads = static_cast<std::size_t>(state.range(1));
    parallel::set_num_threads(threads);
    rng::Engine eng(1);
    const auto a = rng::standard_normal_matrix(eng, n, n);
    const auto b = rng::standard_normal_matrix(eng, n, n);
    for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
    parallel::set_num_threads(1);
}
BENCHMARK(BM_MatMulThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

// Batched g over a block of samples — the training-loop hot path. The
// per-row results are bitwise identical for every thread count; only the
// wall-clock changes.
void BM_BatchGEval(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    parallel::set_num_threads(threads);
    const auto tc = testcases::make_case("Opamp");
    estimators::CountedProblem counted(*tc);
    rng::Engine eng(9);
    const auto x = rng::standard_normal_matrix(eng, 256, tc->dim());
    for (auto _ : state) benchmark::DoNotOptimize(counted.g_rows(x));
    state.SetItemsProcessed(state.iterations() * x.rows());
    parallel::set_num_threads(1);
}
BENCHMARK(BM_BatchGEval)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LuSolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Engine eng(2);
    const auto a = rng::standard_normal_matrix(eng, n, n) +
                   linalg::Matrix::identity(n) * (2.0 * std::sqrt(n));
    std::vector<double> b(n);
    rng::fill_standard_normal(eng, b);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::LuDecomposition(a).solve(b));
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_CouplingForward(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    rng::Engine eng(3);
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 1;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    const auto z0 = rng::standard_normal_matrix(eng, 100, dim);
    std::vector<double> ld(100);
    for (auto _ : state) {
        std::fill(ld.begin(), ld.end(), 0.0);
        benchmark::DoNotOptimize(stack.transport_range(z0, 0, 1, ld));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CouplingForward)->Arg(2)->Arg(16)->Arg(62);

void BM_FlowSampleWithLogProb(benchmark::State& state) {
    rng::Engine eng(4);
    flow::StackConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 5;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.sample(eng, 100, 5));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FlowSampleWithLogProb);

void BM_FlowInverseLogProb(benchmark::State& state) {
    rng::Engine eng(5);
    flow::StackConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 5;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    const auto s = stack.sample(eng, 100, 5);
    for (auto _ : state) benchmark::DoNotOptimize(stack.log_prob(s.z, 5));
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FlowInverseLogProb);

void BM_OpampGainEval(benchmark::State& state) {
    circuit::OpampModel amp;
    rng::Engine eng(6);
    std::vector<double> x(5);
    for (auto _ : state) {
        rng::fill_standard_normal(eng, x);
        benchmark::DoNotOptimize(amp.gain_db(x));
    }
}
BENCHMARK(BM_OpampGainEval);

void BM_ChargePumpEval(benchmark::State& state) {
    circuit::ChargePumpModel cp;
    rng::Engine eng(7);
    std::vector<double> x(16);
    for (auto _ : state) {
        rng::fill_standard_normal(eng, x);
        benchmark::DoNotOptimize(cp.mismatch_amps(x));
    }
}
BENCHMARK(BM_ChargePumpEval);

void BM_YBranchEval(benchmark::State& state) {
    photonic::YBranchModel yb;
    rng::Engine eng(8);
    std::vector<double> x(26);
    for (auto _ : state) {
        rng::fill_standard_normal(eng, x);
        benchmark::DoNotOptimize(yb.transmission(x));
    }
}
BENCHMARK(BM_YBranchEval);

}  // namespace

BENCHMARK_MAIN();
