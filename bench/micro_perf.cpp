// Micro-benchmarks (google-benchmark) for the numeric substrates: matmul,
// LU solve, coupling-layer forward/inverse, full-flow sampling, MNA AC
// solve, and one g() evaluation of each expensive test-case model. These
// bound the wall-clock cost of a NOFIS run (MEN forward passes + g calls).

#include <benchmark/benchmark.h>

#include "autodiff/ops.hpp"
#include "circuit/ac.hpp"
#include "circuit/charge_pump.hpp"
#include "circuit/opamp.hpp"
#include "estimators/problem.hpp"
#include "flow/coupling_stack.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/lu.hpp"
#include "parallel/thread_pool.hpp"
#include "photonic/ybranch.hpp"
#include "rng/normal.hpp"
#include "testcases/registry.hpp"

namespace {

using namespace nofis;

/// Kernel-variant benches take the flavour as range arg: 0 = scalar
/// (reference kernels + legacy tape inference), 1 = simd (fused +
/// vectorized). Results are bitwise identical; the ratio is the PR's
/// speedup claim.
void apply_kernel_arg(std::int64_t arg) {
    linalg::kernels::set_choice(arg == 0 ? linalg::kernels::Choice::kScalar
                                         : linalg::kernels::Choice::kSimd);
}

void BM_MatMul(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    apply_kernel_arg(state.range(1));
    // Pinned to one lane so the kernel numbers stay comparable across
    // runs; BM_MatMulThreaded measures the parallel scaling.
    parallel::set_num_threads(1);
    rng::Engine eng(1);
    const auto a = rng::standard_normal_matrix(eng, n, n);
    const auto b = rng::standard_normal_matrix(eng, n, n);
    for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

// One full training epoch of the final NOFIS block, shaped like the
// NofisEstimator loop under freeze_previous: frozen blocks transport the
// batch on the pure-value path, the trained block builds the autodiff
// graph, and the loss backward-sweeps it. Under `simd` the frozen
// transport runs the fused tape-free kernels; under `scalar` it takes the
// legacy Var round-trip — the ratio is the train-epoch speedup claim.
void BM_TrainEpoch(benchmark::State& state) {
    apply_kernel_arg(state.range(0));
    parallel::set_num_threads(1);
    rng::Engine eng(11);
    flow::StackConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 5;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    rng::Engine batch_eng(42);
    const auto z0 = rng::standard_normal_matrix(batch_eng, 256, cfg.dim);
    std::vector<double> ld(z0.rows());
    for (auto _ : state) {
        std::fill(ld.begin(), ld.end(), 0.0);
        const auto z_in = stack.transport_range(z0, 0, 4, ld);
        auto fwd = stack.forward_range(autodiff::Var(z_in), 4, 5);
        auto loss = autodiff::neg(autodiff::mean(fwd.log_det));
        loss.backward();
        benchmark::DoNotOptimize(loss.value());
        for (auto& p : stack.params()) p.zero_grad();
    }
    state.SetItemsProcessed(state.iterations() * z0.rows());
}
BENCHMARK(BM_TrainEpoch)->Arg(0)->Arg(1);

// The serving hot path in isolation: batched transport through the whole
// stack on the value path (what sample/log_prob/IS reweighting run).
void BM_TransportValues(benchmark::State& state) {
    apply_kernel_arg(state.range(0));
    parallel::set_num_threads(1);
    rng::Engine eng(12);
    flow::StackConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 5;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    rng::Engine batch_eng(43);
    const auto z0 = rng::standard_normal_matrix(batch_eng, 256, cfg.dim);
    std::vector<double> ld(z0.rows());
    for (auto _ : state) {
        std::fill(ld.begin(), ld.end(), 0.0);
        benchmark::DoNotOptimize(stack.transport_range(z0, 0, 5, ld));
    }
    state.SetItemsProcessed(state.iterations() * z0.rows());
}
BENCHMARK(BM_TransportValues)->Arg(0)->Arg(1);

void BM_MatMulThreaded(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto threads = static_cast<std::size_t>(state.range(1));
    parallel::set_num_threads(threads);
    rng::Engine eng(1);
    const auto a = rng::standard_normal_matrix(eng, n, n);
    const auto b = rng::standard_normal_matrix(eng, n, n);
    for (auto _ : state) benchmark::DoNotOptimize(a.matmul(b));
    state.SetItemsProcessed(state.iterations() * n * n * n);
    parallel::set_num_threads(1);
}
BENCHMARK(BM_MatMulThreaded)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

// Batched g over a block of samples — the training-loop hot path. The
// per-row results are bitwise identical for every thread count; only the
// wall-clock changes.
void BM_BatchGEval(benchmark::State& state) {
    const auto threads = static_cast<std::size_t>(state.range(0));
    parallel::set_num_threads(threads);
    const auto tc = testcases::make_case("Opamp");
    estimators::CountedProblem counted(*tc);
    rng::Engine eng(9);
    const auto x = rng::standard_normal_matrix(eng, 256, tc->dim());
    for (auto _ : state) benchmark::DoNotOptimize(counted.g_rows(x));
    state.SetItemsProcessed(state.iterations() * x.rows());
    parallel::set_num_threads(1);
}
BENCHMARK(BM_BatchGEval)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LuSolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    rng::Engine eng(2);
    const auto a = rng::standard_normal_matrix(eng, n, n) +
                   linalg::Matrix::identity(n) * (2.0 * std::sqrt(n));
    std::vector<double> b(n);
    rng::fill_standard_normal(eng, b);
    for (auto _ : state)
        benchmark::DoNotOptimize(linalg::LuDecomposition(a).solve(b));
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128);

void BM_CouplingForward(benchmark::State& state) {
    const auto dim = static_cast<std::size_t>(state.range(0));
    rng::Engine eng(3);
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 1;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    const auto z0 = rng::standard_normal_matrix(eng, 100, dim);
    std::vector<double> ld(100);
    for (auto _ : state) {
        std::fill(ld.begin(), ld.end(), 0.0);
        benchmark::DoNotOptimize(stack.transport_range(z0, 0, 1, ld));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CouplingForward)->Arg(2)->Arg(16)->Arg(62);

void BM_FlowSampleWithLogProb(benchmark::State& state) {
    rng::Engine eng(4);
    flow::StackConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 5;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(stack.sample(eng, 100, 5));
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FlowSampleWithLogProb);

void BM_FlowInverseLogProb(benchmark::State& state) {
    rng::Engine eng(5);
    flow::StackConfig cfg;
    cfg.dim = 16;
    cfg.num_blocks = 5;
    cfg.layers_per_block = 8;
    flow::CouplingStack stack(cfg, eng);
    const auto s = stack.sample(eng, 100, 5);
    for (auto _ : state) benchmark::DoNotOptimize(stack.log_prob(s.z, 5));
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FlowInverseLogProb);

void BM_OpampGainEval(benchmark::State& state) {
    circuit::OpampModel amp;
    rng::Engine eng(6);
    std::vector<double> x(5);
    for (auto _ : state) {
        rng::fill_standard_normal(eng, x);
        benchmark::DoNotOptimize(amp.gain_db(x));
    }
}
BENCHMARK(BM_OpampGainEval);

void BM_ChargePumpEval(benchmark::State& state) {
    circuit::ChargePumpModel cp;
    rng::Engine eng(7);
    std::vector<double> x(16);
    for (auto _ : state) {
        rng::fill_standard_normal(eng, x);
        benchmark::DoNotOptimize(cp.mismatch_amps(x));
    }
}
BENCHMARK(BM_ChargePumpEval);

void BM_YBranchEval(benchmark::State& state) {
    photonic::YBranchModel yb;
    rng::Engine eng(8);
    std::vector<double> x(26);
    for (auto _ : state) {
        rng::fill_standard_normal(eng, x);
        benchmark::DoNotOptimize(yb.transmission(x));
    }
}
BENCHMARK(BM_YBranchEval);

}  // namespace

BENCHMARK_MAIN();
