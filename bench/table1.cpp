// Regenerates Table 1 of the paper: 10 test cases x 7 methods, reported as
// "calls / log-error" averaged over repeated runs.
//
// Usage:
//   table1 [--cases Leaf,Cube,...] [--methods MC,SUS,NOFIS,...]
//          [--repeats N] [--seed S] [--threads T]
//
// Defaults run every case and method at 2 repeats (the paper uses 20; pass
// --repeats 20 to match, at ~10x the runtime). A cell where every repeat
// collapses prints "—", matching the paper's convention.

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);
    const auto case_names =
        split_csv(arg_value(argc, argv, "--cases",
                            "Leaf,Cube,Rosen,Levy,Powell,Opamp,Oscillator,"
                            "ChargePump,YBranch,DeepNet62"));
    const auto methods = split_csv(
        arg_value(argc, argv, "--methods", "MC,SIR,SUC,SUS,SSS,Adapt-IS,NOFIS"));
    const auto repeats = size_flag(argc, argv, "--repeats", "2");
    const auto seed = u64_flag(argc, argv, "--seed", "20240101");

    std::printf("Table 1 reproduction — %zu repeat(s), seed %llu\n", repeats,
                static_cast<unsigned long long>(seed));
    std::printf("%-12s %-4s %-10s", "Case", "Dim", "Golden");
    for (const auto& m : methods) std::printf(" | %-16s", m.c_str());
    std::printf("\n");

    for (const auto& cname : case_names) {
        const auto tc = testcases::make_case(cname);
        std::printf("%-12s %-4zu %-10.2e", cname.c_str(), tc->dim(),
                    tc->golden_pr());
        for (const auto& m : methods) {
            const auto cell = run_cell(m, *tc, repeats, seed);
            if (cell.failures == cell.repeats) {
                std::printf(" | %-16s", "      —");
            } else {
                char buf[48];
                std::snprintf(buf, sizeof(buf), "%s / %.2f",
                              format_calls(cell.mean_calls).c_str(),
                              cell.mean_log_error);
                std::printf(" | %-16s", buf);
            }
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    return 0;
}
