// Throughput harness for the serving stack, in two modes.
//
// In-process (default): drives a BatchScheduler to saturation through the
// serve::Client (no sockets, so the number measured is the scheduler + flow
// math, not loopback TCP) and reports requests/sec plus request-latency
// percentiles. With --metrics-out the figures land in the telemetry record
// as serve.throughput_rps / serve.latency_p{50,95,99}_ms alongside the
// scheduler's own batch counters.
//
//   ./bench/serve_bench --clients 8 --requests 500 --n 8 --max-batch-rows 0
//       --threads 0 --metrics-out serve_metrics.json
//
// Cluster sweep (--workers "1,2,4"): for each worker count W spawns the
// front/worker topology of DESIGN.md §15 (the front in-process, W
// `nofis_cli serve` worker processes) and drives it over loopback TCP with
// a fixed, deterministic request schedule across eight models chosen so
// every sweep keeps the workers evenly loaded (the model names' routing
// residues balance for W in {1,2,4}). Each worker gets
// max(1, hw_threads / W) --threads. The run FAILs (exit 1) when
//   * any served byte differs from the first sweep's (the 1-worker
//     reference) — the cluster must serve exactly a single worker's bytes,
//   * on a host with >= 8 hardware threads, the 4-worker sweep moves fewer
//     than 3x the rows/s of the 1-worker sweep.
// --cli PATH points at the nofis_cli binary (default: ../apps/nofis_cli
// next to this binary).
//
// Each client issues `--requests` sample requests with a sliding window of
// outstanding futures, so the scheduler always has work to coalesce without
// overflowing its bounded queue.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "flow/serialize.hpp"
#include "rng/engine.hpp"
#include "serve/cluster/cluster.hpp"
#include "serve/model_registry.hpp"
#include "serve/scheduler.hpp"
#include "serve/tcp_client.hpp"

namespace {

using namespace nofis;
using Clock = std::chrono::steady_clock;

/// Writes a freshly initialised stack into `dir` under each `name` when the
/// user did not point --models at real trained proposals. All names share
/// one architecture and seed: the sweep compares bytes across worker
/// counts, not across models.
void write_default_models(const std::string& dir, std::size_t dim,
                          const std::vector<std::string>& names) {
    std::filesystem::create_directories(dir);
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 4;
    cfg.layers_per_block = 4;
    cfg.hidden = {32, 32};
    rng::Engine eng(2024);
    const flow::CouplingStack stack(cfg, eng);
    for (const auto& name : names)
        flow::save_stack(stack, dir + "/" + name + ".nofisflow");
}

double percentile(std::vector<double>& sorted_ms, double q) {
    if (sorted_ms.empty()) return 0.0;
    const std::size_t idx = std::min(
        sorted_ms.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted_ms.size())));
    return sorted_ms[idx];
}

struct ClientStats {
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::vector<double> latency_ms;       ///< one per completed request
    std::vector<std::string> responses;   ///< raw lines, request order
};

ClientStats run_client(serve::BatchScheduler& scheduler, std::size_t requests,
                       std::size_t rows, std::uint64_t seed_base,
                       std::size_t window) {
    serve::Client client(scheduler);
    ClientStats stats;
    stats.latency_ms.reserve(requests);
    std::vector<std::future<serve::Response>> outstanding;
    std::deque<Clock::time_point> submitted;
    outstanding.reserve(window);
    const auto drain_one = [&] {
        const serve::Response res = outstanding.front().get();
        outstanding.erase(outstanding.begin());
        // Latency as a windowed client sees it: submit -> response in hand
        // (responses drain in request order, like the wire protocol).
        stats.latency_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      submitted.front())
                .count());
        submitted.pop_front();
        if (res.ok)
            ++stats.ok;
        else
            ++stats.failed;
    };
    for (std::size_t i = 0; i < requests; ++i) {
        serve::Request req;
        req.id = i + 1;
        req.op = serve::Op::kSample;
        req.model = "bench";
        req.seed = seed_base + i;
        req.n = rows;
        submitted.push_back(Clock::now());
        outstanding.push_back(client.async(std::move(req)));
        if (outstanding.size() >= window) drain_one();
    }
    while (!outstanding.empty()) drain_one();
    return stats;
}

// ---------------------------------------------------------------------------
// Cluster sweep
// ---------------------------------------------------------------------------

/// Model names whose FNV-1a routing residues are balanced for 1, 2 and 4
/// workers: m0..m7 hit residues {0,3,2,1,0,3,2,1} mod 4 and alternate
/// perfectly mod 2, so every sweep loads each worker equally.
std::vector<std::string> sweep_models() {
    std::vector<std::string> names;
    for (int i = 0; i < 8; ++i) names.push_back("m" + std::to_string(i));
    return names;
}

/// One TCP client: `requests` pipelined sample requests against `model`
/// with a deterministic id/seed schedule (identical across sweeps, so the
/// response bytes must be identical too).
ClientStats run_tcp_client(std::uint16_t port, const std::string& model,
                           std::size_t requests, std::size_t rows,
                           std::uint64_t seed_base, std::size_t window) {
    serve::TcpClient client("127.0.0.1", port);
    ClientStats stats;
    stats.latency_ms.reserve(requests);
    stats.responses.reserve(requests);
    std::deque<Clock::time_point> sent;
    const auto recv_one = [&] {
        const std::string line = client.recv_line();
        stats.latency_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      sent.front())
                .count());
        sent.pop_front();
        if (serve::Response::decode(line).ok)
            ++stats.ok;
        else
            ++stats.failed;
        stats.responses.push_back(line);
    };
    for (std::size_t i = 0; i < requests; ++i) {
        serve::Request req;
        req.id = i + 1;
        req.op = serve::Op::kSample;
        req.model = model;
        req.seed = seed_base + i;
        req.n = rows;
        client.send_line(req.encode());
        sent.push_back(Clock::now());
        if (sent.size() >= window) recv_one();
    }
    while (!sent.empty()) recv_one();
    return stats;
}

struct SweepResult {
    std::size_t workers = 0;
    double seconds = 0.0;
    double rows_per_sec = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    std::size_t ok = 0, failed = 0;
    std::vector<std::vector<std::string>> responses;  ///< per client
};

SweepResult run_sweep(const std::string& cli, const std::string& model_dir,
                      std::size_t workers, std::size_t clients,
                      std::size_t requests, std::size_t rows,
                      std::uint64_t seed, std::size_t window) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    serve::cluster::ClusterConfig cfg;
    cfg.workers = workers;
    cfg.worker.command = {cli};
    cfg.worker.model_dir = model_dir;
    // Split the host's threads across the workers so every sweep uses the
    // same hardware budget; the speedup measured is the topology's, not an
    // artifact of oversubscription.
    cfg.worker.threads = std::max<std::size_t>(1, hw / workers);
    serve::cluster::Cluster cluster(cfg);

    const std::vector<std::string> models = sweep_models();
    {
        // Warm every worker's registry (model load is lazy) outside the
        // timed region.
        serve::TcpClient warm("127.0.0.1", cluster.port());
        for (const auto& m : models) {
            serve::Request req;
            req.id = 1;
            req.op = serve::Op::kSample;
            req.model = m;
            req.seed = seed;
            req.n = 1;
            warm.call_raw(req.encode());
        }
    }

    SweepResult result;
    result.workers = workers;
    const auto start = Clock::now();
    std::vector<std::future<ClientStats>> futures;
    futures.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c)
        futures.push_back(std::async(std::launch::async, [&, c] {
            return run_tcp_client(cluster.port(), models[c % models.size()],
                                  requests, rows, seed + 1'000'000 * (c + 1),
                                  window);
        }));
    std::vector<double> latencies;
    for (auto& f : futures) {
        ClientStats s = f.get();
        result.ok += s.ok;
        result.failed += s.failed;
        latencies.insert(latencies.end(), s.latency_ms.begin(),
                         s.latency_ms.end());
        result.responses.push_back(std::move(s.responses));
    }
    result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    cluster.shutdown();

    const double issued = static_cast<double>(clients * requests);
    result.rows_per_sec = result.seconds > 0.0
                              ? issued * static_cast<double>(rows) /
                                    result.seconds
                              : 0.0;
    std::sort(latencies.begin(), latencies.end());
    result.p50 = percentile(latencies, 0.50);
    result.p95 = percentile(latencies, 0.95);
    result.p99 = percentile(latencies, 0.99);
    return result;
}

std::string default_cli_path(const char* argv0) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path self = fs::read_symlink("/proc/self/exe", ec);
    if (ec) self = argv0;
    return (self.parent_path().parent_path() / "apps" / "nofis_cli").string();
}

int run_sweep_mode(int argc, char** argv, const std::string& workers_csv,
                   bench::MetricsSession& metrics) {
    using bench::size_flag;
    using bench::u64_flag;

    std::vector<std::size_t> worker_counts;
    for (const auto& tok : bench::split_csv(workers_csv)) {
        const auto parsed = util::parse_u64(tok);
        if (!parsed || *parsed == 0) {
            std::fprintf(stderr,
                         "error: invalid value '%s' for --workers "
                         "(expected e.g. \"1,2,4\")\n",
                         workers_csv.c_str());
            return 2;
        }
        worker_counts.push_back(static_cast<std::size_t>(*parsed));
    }

    const std::string cli =
        bench::arg_value(argc, argv, "--cli", default_cli_path(argv[0]));
    if (!std::filesystem::exists(cli)) {
        std::fprintf(stderr,
                     "error: nofis_cli not found at '%s' (pass --cli PATH)\n",
                     cli.c_str());
        return 2;
    }

    const std::size_t clients = size_flag(argc, argv, "--clients", "8");
    const std::size_t requests = size_flag(argc, argv, "--requests", "100");
    const std::size_t rows = size_flag(argc, argv, "--n", "8");
    const std::size_t window = size_flag(argc, argv, "--window", "32");
    const std::size_t dim = size_flag(argc, argv, "--dim", "6");
    const std::uint64_t seed = u64_flag(argc, argv, "--seed", "17");

    const std::string model_dir =
        (std::filesystem::temp_directory_path() /
         ("nofis_serve_bench_" + std::to_string(::getpid())))
            .string();
    write_default_models(model_dir, dim, sweep_models());

    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    std::printf("serve_bench: cluster sweep workers={%s} clients=%zu "
                "requests=%zu rows=%zu hw_threads=%zu\n",
                workers_csv.c_str(), clients, requests, rows, hw);

    std::vector<SweepResult> results;
    for (const std::size_t w : worker_counts) {
        results.push_back(run_sweep(cli, model_dir, w, clients, requests,
                                    rows, seed, window));
        const SweepResult& r = results.back();
        std::printf("serve_bench: workers=%zu ok=%zu failed=%zu wall=%.3fs "
                    "rows/s=%.0f p50=%.2fms p95=%.2fms p99=%.2fms\n",
                    r.workers, r.ok, r.failed, r.seconds, r.rows_per_sec,
                    r.p50, r.p95, r.p99);
        const std::string prefix =
            "serve.w" + std::to_string(r.workers) + ".";
        telemetry::metric(prefix + "rows_per_sec", r.rows_per_sec);
        telemetry::metric(prefix + "latency_p50_ms", r.p50);
        telemetry::metric(prefix + "latency_p95_ms", r.p95);
        telemetry::metric(prefix + "latency_p99_ms", r.p99);
    }

    bool failed = false;
    for (const auto& r : results)
        if (r.failed > 0) {
            std::printf("serve_bench: FAIL: %zu request(s) failed at "
                        "workers=%zu\n",
                        r.failed, r.workers);
            failed = true;
        }

    // Byte identity across worker counts: every sweep must serve exactly
    // the bytes of the first (the 1-worker reference when the sweep list
    // starts at 1).
    for (std::size_t s = 1; s < results.size(); ++s) {
        if (results[s].responses != results[0].responses) {
            std::printf("serve_bench: FAIL: served bytes at workers=%zu "
                        "differ from the workers=%zu reference\n",
                        results[s].workers, results[0].workers);
            failed = true;
        }
    }
    if (results.size() > 1 && !failed)
        std::printf("serve_bench: served bytes identical across worker "
                    "counts\n");

    // Throughput criterion: 4 workers must move >= 3x the rows/s of 1
    // worker — on hardware that can actually host 4 busy workers.
    const auto find = [&](std::size_t w) -> const SweepResult* {
        for (const auto& r : results)
            if (r.workers == w) return &r;
        return nullptr;
    };
    const SweepResult* one = find(1);
    const SweepResult* four = find(4);
    if (one != nullptr && four != nullptr) {
        const double speedup = one->rows_per_sec > 0.0
                                   ? four->rows_per_sec / one->rows_per_sec
                                   : 0.0;
        telemetry::metric("serve.speedup_w4_over_w1", speedup);
        if (hw >= 8) {
            std::printf("serve_bench: speedup(4 workers / 1 worker) = "
                        "%.2fx (require >= 3x)\n",
                        speedup);
            if (speedup < 3.0) {
                std::printf("serve_bench: FAIL: 4-worker throughput below "
                            "3x single-worker\n");
                failed = true;
            }
        } else {
            std::printf("serve_bench: speedup(4/1) = %.2fx (3x check "
                        "skipped: %zu hw thread(s) < 8)\n",
                        speedup, hw);
        }
    }

    std::error_code ec;
    std::filesystem::remove_all(model_dir, ec);
    if (!metrics.finish()) return 1;
    return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nofis;
    using bench::size_flag;
    using bench::u64_flag;

    bench::MetricsSession metrics(argc, argv);
    bench::apply_threads_flag(argc, argv);
    bench::apply_kernels_flag(argc, argv);

    const std::string workers_csv =
        bench::arg_value(argc, argv, "--workers", "");
    if (!workers_csv.empty())
        return run_sweep_mode(argc, argv, workers_csv, metrics);

    const std::size_t clients = size_flag(argc, argv, "--clients", "8");
    const std::size_t requests = size_flag(argc, argv, "--requests", "500");
    const std::size_t rows = size_flag(argc, argv, "--n", "8");
    const std::size_t window = size_flag(argc, argv, "--window", "64");
    const std::size_t dim = size_flag(argc, argv, "--dim", "6");
    const std::uint64_t seed = u64_flag(argc, argv, "--seed", "17");

    std::string model_dir = bench::arg_value(argc, argv, "--models", "");
    if (model_dir.empty()) {
        model_dir = std::filesystem::temp_directory_path() /
                    ("nofis_serve_bench_" + std::to_string(::getpid()));
        write_default_models(model_dir, dim, {"bench"});
    }

    serve::SchedulerConfig cfg;
    cfg.max_batch_rows = size_flag(argc, argv, "--max-batch-rows", "0");
    cfg.max_wait_us = u64_flag(argc, argv, "--max-wait-us", "200");
    cfg.max_queue = size_flag(argc, argv, "--max-queue", "4096");

    serve::ModelRegistry registry(model_dir);
    try {
        registry.get("bench");  // load outside the timed region
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_bench: cannot load model 'bench' from %s: %s\n",
                     model_dir.c_str(), e.what());
        return 1;
    }
    serve::BatchScheduler scheduler(registry, cfg);

    const auto start = Clock::now();
    std::vector<std::future<ClientStats>> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c)
        workers.push_back(std::async(std::launch::async, [&, c] {
            return run_client(scheduler, requests, rows,
                              seed + 1'000'000 * (c + 1), window);
        }));
    ClientStats total;
    std::vector<double> latencies;
    for (auto& w : workers) {
        ClientStats s = w.get();
        total.ok += s.ok;
        total.failed += s.failed;
        latencies.insert(latencies.end(), s.latency_ms.begin(),
                         s.latency_ms.end());
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    scheduler.stop();

    const double issued = static_cast<double>(clients * requests);
    const double rps = seconds > 0.0 ? issued / seconds : 0.0;
    const double rows_per_sec = rps * static_cast<double>(rows);
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);
    std::printf(
        "serve_bench: clients=%zu requests=%zu rows=%zu window=%zu "
        "max_batch_rows=%zu threads=%zu kernels=%s backend=%s\n",
        clients, requests, rows, window, scheduler.config().max_batch_rows,
        parallel::num_threads(), linalg::kernels::choice_name(),
        linalg::kernels::simd_backend());
    std::printf("serve_bench: ok=%zu failed=%zu wall=%.3fs\n", total.ok,
                total.failed, seconds);
    std::printf("serve_bench: throughput=%.0f req/s (%.0f rows/s)\n", rps,
                rows_per_sec);
    std::printf("serve_bench: latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
                p50, p95, p99);

    telemetry::metric("serve.throughput_rps", rps);
    telemetry::metric("serve.throughput_rows_per_sec", rows_per_sec);
    telemetry::metric("serve.bench_wall_seconds", seconds);
    telemetry::metric("serve.latency_p50_ms", p50);
    telemetry::metric("serve.latency_p95_ms", p95);
    telemetry::metric("serve.latency_p99_ms", p99);
    telemetry::count("serve.bench_requests_ok", total.ok);
    if (!metrics.finish()) return 1;
    return total.failed == 0 ? 0 : 1;
}
