// Throughput harness for the serving stack: drives a BatchScheduler to
// saturation through the in-process serve::Client (no sockets, so the number
// measured is the scheduler + flow math, not loopback TCP) and reports
// requests/sec. With --metrics-out the figure lands in the telemetry record
// as serve.throughput_rps alongside the scheduler's own batch counters.
//
//   ./bench/serve_bench --clients 8 --requests 500 --n 8 --max-batch-rows 0
//       --threads 0 --metrics-out serve_metrics.json
//
// Each client issues `--requests` sample requests with a sliding window of
// outstanding futures, so the scheduler always has work to coalesce without
// overflowing its bounded queue.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "flow/serialize.hpp"
#include "rng/engine.hpp"
#include "serve/model_registry.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace nofis;

/// Writes a freshly initialised stack into `dir` as "bench.nofisflow" when
/// the user did not point --models at real trained proposals.
void write_default_model(const std::string& dir, std::size_t dim) {
    std::filesystem::create_directories(dir);
    flow::StackConfig cfg;
    cfg.dim = dim;
    cfg.num_blocks = 4;
    cfg.layers_per_block = 4;
    cfg.hidden = {32, 32};
    rng::Engine eng(2024);
    flow::save_stack(flow::CouplingStack(cfg, eng), dir + "/bench.nofisflow");
}

struct ClientStats {
    std::size_t ok = 0;
    std::size_t failed = 0;
};

ClientStats run_client(serve::BatchScheduler& scheduler, std::size_t requests,
                       std::size_t rows, std::uint64_t seed_base,
                       std::size_t window) {
    serve::Client client(scheduler);
    ClientStats stats;
    std::vector<std::future<serve::Response>> outstanding;
    outstanding.reserve(window);
    const auto drain_one = [&] {
        const serve::Response res = outstanding.front().get();
        outstanding.erase(outstanding.begin());
        if (res.ok)
            ++stats.ok;
        else
            ++stats.failed;
    };
    for (std::size_t i = 0; i < requests; ++i) {
        serve::Request req;
        req.id = i + 1;
        req.op = serve::Op::kSample;
        req.model = "bench";
        req.seed = seed_base + i;
        req.n = rows;
        outstanding.push_back(client.async(std::move(req)));
        if (outstanding.size() >= window) drain_one();
    }
    while (!outstanding.empty()) drain_one();
    return stats;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nofis;
    using bench::size_flag;
    using bench::u64_flag;

    bench::MetricsSession metrics(argc, argv);
    bench::apply_threads_flag(argc, argv);
    bench::apply_kernels_flag(argc, argv);

    const std::size_t clients = size_flag(argc, argv, "--clients", "8");
    const std::size_t requests = size_flag(argc, argv, "--requests", "500");
    const std::size_t rows = size_flag(argc, argv, "--n", "8");
    const std::size_t window = size_flag(argc, argv, "--window", "64");
    const std::size_t dim = size_flag(argc, argv, "--dim", "6");
    const std::uint64_t seed = u64_flag(argc, argv, "--seed", "17");

    std::string model_dir = bench::arg_value(argc, argv, "--models", "");
    if (model_dir.empty()) {
        model_dir = std::filesystem::temp_directory_path() /
                    ("nofis_serve_bench_" + std::to_string(::getpid()));
        write_default_model(model_dir, dim);
    }

    serve::SchedulerConfig cfg;
    cfg.max_batch_rows = size_flag(argc, argv, "--max-batch-rows", "0");
    cfg.max_wait_us = u64_flag(argc, argv, "--max-wait-us", "200");
    cfg.max_queue = size_flag(argc, argv, "--max-queue", "4096");

    serve::ModelRegistry registry(model_dir);
    try {
        registry.get("bench");  // load outside the timed region
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_bench: cannot load model 'bench' from %s: %s\n",
                     model_dir.c_str(), e.what());
        return 1;
    }
    serve::BatchScheduler scheduler(registry, cfg);

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::future<ClientStats>> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c)
        workers.push_back(std::async(std::launch::async, [&, c] {
            return run_client(scheduler, requests, rows,
                              seed + 1'000'000 * (c + 1), window);
        }));
    ClientStats total;
    for (auto& w : workers) {
        const ClientStats s = w.get();
        total.ok += s.ok;
        total.failed += s.failed;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    scheduler.stop();

    const double issued = static_cast<double>(clients * requests);
    const double rps = seconds > 0.0 ? issued / seconds : 0.0;
    const double rows_per_sec = rps * static_cast<double>(rows);
    std::printf(
        "serve_bench: clients=%zu requests=%zu rows=%zu window=%zu "
        "max_batch_rows=%zu threads=%zu kernels=%s backend=%s\n",
        clients, requests, rows, window, scheduler.config().max_batch_rows,
        parallel::num_threads(), linalg::kernels::choice_name(),
        linalg::kernels::simd_backend());
    std::printf("serve_bench: ok=%zu failed=%zu wall=%.3fs\n", total.ok,
                total.failed, seconds);
    std::printf("serve_bench: throughput=%.0f req/s (%.0f rows/s)\n", rps,
                rows_per_sec);

    telemetry::metric("serve.throughput_rps", rps);
    telemetry::metric("serve.throughput_rows_per_sec", rows_per_sec);
    telemetry::metric("serve.bench_wall_seconds", seconds);
    telemetry::count("serve.bench_requests_ok", total.ok);
    if (!metrics.finish()) return 1;
    return total.failed == 0 ? 0 : 1;
}
