// Design-choice ablation called out in DESIGN.md: flow capacity. Sweeps the
// coupling depth K (layers per block) and the conditioner width on the Leaf
// case at the fixed Table-1 call budget.
//
// Usage: ablation_capacity [--repeats 3]

#include <cmath>

#include "bench_common.hpp"
#include "testcases/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "2");

    testcases::LeafCase leaf;
    const auto budget = leaf.nofis_budget();

    std::printf("Flow-capacity ablation on Leaf — %zu repeat(s), fixed "
                "%zu-call budget\n", repeats, budget.total_calls());
    std::printf("%-6s %-8s %-10s %-10s\n", "K", "hidden", "log-err",
                "ess");

    for (std::size_t k : {2u, 4u, 8u, 16u}) {
        for (std::size_t hidden : {8u, 32u, 64u}) {
            core::NofisConfig cfg = nofis_config_from_budget(budget);
            cfg.layers_per_block = k;
            cfg.hidden = {hidden, hidden};
            core::NofisEstimator est(
                cfg, core::LevelSchedule::manual(budget.levels));
            double err = 0.0;
            double ess = 0.0;
            for (std::size_t r = 0; r < repeats; ++r) {
                rng::Engine eng(1234 + 17 * r);
                const auto run = est.run(leaf, eng);
                err += estimators::log_error(run.estimate.p_hat,
                                             leaf.golden_pr());
                ess += run.is_diag.effective_sample_size;
            }
            std::printf("%-6zu %-8zu %-10.3f %-10.1f\n", k, hidden,
                        err / static_cast<double>(repeats),
                        ess / static_cast<double>(repeats));
            std::fflush(stdout);
        }
    }
    std::printf("\n(Expect K = 8 / hidden = 32 — the paper's RealNVP scale "
                "— to sit in the sweet spot; K = 2 underfits.)\n");
    return 0;
}
