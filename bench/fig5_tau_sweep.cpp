// Regenerates Figure 5 (right): NOFIS log-error versus the temperature τ on
// the three circuit test cases. The paper's observations: (i) robustness
// over a wide τ band, (ii) a tuned τ can beat the nominal setting.
//
// τ is swept as a multiple of each case's nominal τ, since our circuit
// cases express g in different physical units (dB, A, transmission) — the
// paper's absolute grid {1..300} assumes O(1) g.
//
// Usage: fig5_tau_sweep [--repeats 3] [--cases Opamp,ChargePump,YBranch]

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);

    const auto repeats = size_flag(argc, argv, "--repeats", "2");
    const auto cases = split_csv(
        arg_value(argc, argv, "--cases", "Opamp,ChargePump,YBranch"));
    const double multipliers[] = {1.0 / 15.0, 0.2, 0.5, 1.0, 2.0, 5.0, 13.0};

    std::printf("Figure 5 (right) reproduction — log-error vs τ, "
                "%zu repeat(s)\n", repeats);
    std::printf("%-12s", "tau/nominal");
    for (const auto& c : cases) std::printf(" %-12s", c.c_str());
    std::printf("\n");

    std::vector<std::unique_ptr<testcases::TestCase>> tcs;
    for (const auto& name : cases) tcs.push_back(testcases::make_case(name));

    for (double mult : multipliers) {
        std::printf("%-12.3f", mult);
        for (const auto& tc : tcs) {
            const auto budget = tc->nofis_budget();
            core::NofisConfig cfg = nofis_config_from_budget(budget);
            cfg.tau = budget.tau * mult;
            core::NofisEstimator est(
                cfg, core::LevelSchedule::manual(budget.levels));
            double err = 0.0;
            for (std::size_t r = 0; r < repeats; ++r) {
                rng::Engine eng(777 + 211 * r);
                const auto res = est.estimate(*tc, eng);
                err += estimators::log_error(res.p_hat, tc->golden_pr());
            }
            std::printf(" %-12.3f", err / static_cast<double>(repeats));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    std::printf("\n(Expect a flat basin around 1x nominal and degradation "
                "at the extremes.)\n");
    return 0;
}
