// Regenerates Figure 3: trains NOFIS on the Leaf case with the paper's
// visualization level sequence {26, 15, 8, 3, 0} (K = 8, M = 5) and checks
// that the intermediate anchor distributions q_8..q_40 march outward with
// ring radii matching √(a_m + 1); also dumps the per-stage loss curves
// (Figure 3(e)) as CSV.
//
// Usage: fig3_intermediate [--epochs 200] [--out fig3_loss.csv]
//        [--threads N]

#include <algorithm>
#include <cmath>
#include <fstream>

#include "bench_common.hpp"
#include "rng/normal.hpp"
#include "testcases/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace nofis;
    using namespace nofis::bench;

    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);
    const auto epochs = size_flag(argc, argv, "--epochs", "200");
    const std::string out = arg_value(argc, argv, "--out", "fig3_loss.csv");

    testcases::LeafCase leaf;
    // The paper's Figure 2(b)/3 settings: K = 8, M = 5, a = {26,15,8,3,0}.
    // A connected warm-up level (40) is prepended for mode retention (see
    // EXPERIMENTS.md §Leaf); anchors 2..6 then correspond to the paper's.
    const std::vector<double> levels = {40.0, 26.0, 15.0, 8.0, 3.0, 0.0};

    core::NofisConfig cfg;
    cfg.epochs = epochs;
    cfg.samples_per_epoch = 150;
    cfg.n_is = 10;
    cfg.tau = 30.0;
    cfg.lr_decay = 0.995;
    core::NofisEstimator est(cfg, core::LevelSchedule::manual(levels));
    rng::Engine eng(7);
    auto run = est.run(leaf, eng);
    const auto& flow = *run.flow;

    std::printf("Figure 3 reproduction — anchor ring radii (Leaf)\n");
    std::printf("The region Ω_{a_m} is a disc of radius √(a_m+1) around\n");
    std::printf("(±3.8, ±3.8); the learned q_{mK}'s sample-radius upper\n");
    std::printf("quantile should track that disc radius as m grows.\n");
    std::printf("%-8s %-8s %-14s %-14s %-12s\n", "anchor", "a_m",
                "disc radius", "p90 radius", "mean radius");

    rng::Engine probe(99);
    const linalg::Matrix z0 = rng::standard_normal_matrix(probe, 4000, 2);
    for (std::size_t m = 1; m <= flow.num_blocks(); ++m) {
        const auto s = flow.transport(z0, m);
        // Radius statistics relative to the nearest disc centre.
        std::vector<double> radii(s.z.rows());
        double mean_r = 0.0;
        for (std::size_t r = 0; r < s.z.rows(); ++r) {
            const double x = s.z(r, 0);
            const double y = s.z(r, 1);
            const double cx = (x + y) > 0.0 ? 3.8 : -3.8;
            radii[r] = std::sqrt((x - cx) * (x - cx) + (y - cx) * (y - cx));
            mean_r += radii[r];
        }
        mean_r /= static_cast<double>(radii.size());
        std::sort(radii.begin(), radii.end());
        const double p90 = radii[radii.size() * 9 / 10];
        const double disc = std::sqrt(levels[m - 1] + 1.0);
        std::printf("q_%-6zu %-8.1f %-14.3f %-14.3f %-12.3f\n",
                    m * cfg.layers_per_block, levels[m - 1], disc, p90,
                    mean_r);
    }

    std::ofstream os(out);
    os << core::loss_curve_csv(run.stages);
    std::printf("\nPer-stage loss curves (Figure 3(e)) written to %s\n",
                out.c_str());
    // Summary: every stage's loss should end below where it started.
    // Skipped epochs hold NaN sentinels, so take the finite endpoints.
    for (const auto& s : run.stages)
        std::printf("  stage %zu (a=%5.1f): loss %9.3f -> %9.3f\n", s.stage,
                    s.level, s.first_finite_loss(), s.last_finite_loss());
    return 0;
}
