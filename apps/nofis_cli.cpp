// nofis_cli — command-line front end for the library.
//
//   nofis_cli list
//       Show the registered test cases with golden probabilities and
//       per-case budgets.
//   nofis_cli estimate --case Leaf [--method NOFIS] [--repeats 3] [--seed 1]
//       Run one estimator at its Table-1 budget and report
//       estimate / calls / log-error per repeat.
//   nofis_cli levels --case Opamp [--num 5] [--pilot 500] [--seed 1]
//       Print an automatically selected nested-subset schedule.
//   nofis_cli train --case Leaf --save leaf.nofisflow [--seed 1]
//            [--inject-nan 0.05] [--inject-throw 0.01] [--policy retry]
//       Train the NOFIS proposal at the case budget and serialise it,
//       printing the run-health summary (faults, rollbacks, proposal
//       quality). The --inject-* flags wrap the case in the deterministic
//       fault injector to exercise the guardrails; --policy selects the
//       guard response (retry | clamp | propagate).
//   nofis_cli reuse --case Leaf --load leaf.nofisflow [--nis 5000] [--seed 2]
//       Reload a trained proposal and draw a fresh importance-sampling
//       estimate without retraining.
//
// Every command accepts --threads N to size the parallel evaluation pool
// (0 / absent = NOFIS_THREADS env or hardware concurrency). Output is
// bitwise identical for any thread count; the flag only changes wall-clock
// time.
//
// Every command also accepts --metrics-out FILE.json: the run is executed
// with the telemetry layer active and a machine-readable record (per-stage
// and per-phase wall-clock spans, g-call / fault / rollback counters,
// ESS and weight diagnostics, thread-pool utilisation) is written to FILE
// as a single JSON object. Telemetry never perturbs results: estimates are
// bitwise identical with or without the flag.

#include <cstdio>
#include <cstring>

#include "../bench/bench_common.hpp"
#include "core/levels.hpp"
#include "flow/serialize.hpp"
#include "testcases/fault_injector.hpp"

namespace {

using namespace nofis;
using namespace nofis::bench;

int cmd_list() {
    std::printf("%-12s %-5s %-12s %-14s %-10s\n", "case", "dim", "golden",
                "nofis calls", "levels");
    for (const auto& name : testcases::all_case_names()) {
        const auto tc = testcases::make_case(name);
        const auto b = tc->nofis_budget();
        std::printf("%-12s %-5zu %-12.3e %-14zu %zu\n", name.c_str(),
                    tc->dim(), tc->golden_pr(), b.total_calls(),
                    b.levels.size());
    }
    return 0;
}

int cmd_estimate(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const std::string method = arg_value(argc, argv, "--method", "NOFIS");
    const auto repeats = size_flag(argc, argv, "--repeats", "3");
    const auto seed = u64_flag(argc, argv, "--seed", "1");

    const auto tc = testcases::make_case(case_name);
    const auto est = make_estimator(method, *tc);
    std::printf("%s on %s (golden %.3e), %zu repeat(s)\n", method.c_str(),
                case_name.c_str(), tc->golden_pr(), repeats);
    double mean_err = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const telemetry::ScopedSpan repeat_span("repeat");
        rng::Engine eng(seed + 7919 * r);
        const auto res = est->estimate(*tc, eng);
        const double err = estimators::log_error(res.p_hat, tc->golden_pr());
        mean_err += err;
        // Non-NOFIS methods don't instrument their internals; record the
        // estimate-level numbers here so every method yields a usable
        // metrics record. (NOFIS runs count their own calls/diagnostics.)
        telemetry::count("estimate.runs");
        if (method != "NOFIS") telemetry::count("calls", res.calls);
        telemetry::metric("p_hat", res.p_hat);
        std::printf("  run %zu: p = %.4e  calls = %zu  log-err = %.3f%s\n",
                    r, res.p_hat, res.calls, err,
                    res.failed ? "  [FAILED]" : "");
    }
    const double mean = mean_err / static_cast<double>(repeats);
    telemetry::metric("mean_log_error", mean);
    std::printf("mean log-error: %.3f\n", mean);
    return 0;
}

int cmd_levels(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const auto num = size_flag(argc, argv, "--num", "5");
    const auto pilot = size_flag(argc, argv, "--pilot", "500");
    const auto seed = u64_flag(argc, argv, "--seed", "1");

    const auto tc = testcases::make_case(case_name);
    estimators::CountedProblem counted(*tc);
    rng::Engine eng(seed);
    core::AutoLevelConfig cfg;
    cfg.num_levels = num;
    cfg.pilot_samples = pilot;
    const auto levels = core::auto_levels(counted, eng, cfg);
    std::printf("auto levels for %s (%zu pilot calls):\n", case_name.c_str(),
                counted.calls());
    for (double a : levels.levels()) std::printf("  %.6g\n", a);
    const auto manual = tc->nofis_budget().levels;
    std::printf("hand-tuned schedule for comparison:\n");
    for (double a : manual) std::printf("  %.6g\n", a);
    return 0;
}

estimators::GuardConfig::Policy parse_policy(const std::string& name) {
    using Policy = estimators::GuardConfig::Policy;
    if (name == "retry") return Policy::kRetryPerturb;
    if (name == "clamp") return Policy::kClampToFail;
    if (name == "propagate") return Policy::kPropagate;
    std::fprintf(stderr, "warning: unknown policy '%s', using retry\n",
                 name.c_str());
    return Policy::kRetryPerturb;
}

int cmd_train(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const std::string path =
        arg_value(argc, argv, "--save", case_name + ".nofisflow");
    const auto seed = u64_flag(argc, argv, "--seed", "1");
    const double nan_rate = double_flag(argc, argv, "--inject-nan", "0");
    const double throw_rate = double_flag(argc, argv, "--inject-throw", "0");

    const auto tc = testcases::make_case(case_name);
    const auto budget = tc->nofis_budget();
    auto cfg = nofis_config_from_budget(budget);
    cfg.guard.policy =
        parse_policy(arg_value(argc, argv, "--policy", "retry"));
    // Routed through the config (rather than only the global pool) so the
    // NofisConfig knob is exercised end-to-end.
    cfg.threads = size_flag(argc, argv, "--threads", "0");
    core::NofisEstimator est(cfg,
                             core::LevelSchedule::manual(budget.levels));

    // Optional deterministic fault injection, for exercising the guardrails
    // against a known fault load.
    testcases::FaultInjectorConfig icfg;
    icfg.nan_rate = nan_rate;
    icfg.throw_rate = throw_rate;
    icfg.seed = seed;
    const testcases::FaultInjector injected(*tc, icfg);
    const estimators::RareEventProblem& problem =
        (nan_rate > 0.0 || throw_rate > 0.0)
            ? static_cast<const estimators::RareEventProblem&>(injected)
            : *tc;

    rng::Engine eng(seed);
    auto run = est.run(problem, eng);
    std::printf("trained %s: p = %.4e (calls %zu, log-err %.3f)\n",
                case_name.c_str(), run.estimate.p_hat, run.estimate.calls,
                estimators::log_error(run.estimate.p_hat, tc->golden_pr()));
    std::printf("%s\n", run.health.summary().c_str());
    if (nan_rate > 0.0 || throw_rate > 0.0)
        std::printf("injector: %zu fault(s) injected over %zu call(s)\n",
                    injected.injected_total(), injected.calls());
    flow::save_stack(*run.flow, path);
    std::printf("proposal saved to %s\n", path.c_str());
    return 0;
}

int cmd_reuse(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const std::string path =
        arg_value(argc, argv, "--load", case_name + ".nofisflow");
    const auto nis = size_flag(argc, argv, "--nis", "5000");
    const auto seed = u64_flag(argc, argv, "--seed", "2");

    const auto tc = testcases::make_case(case_name);
    const auto stack = flow::load_stack(path);
    if (stack.dim() != tc->dim()) {
        std::fprintf(stderr, "error: flow dim %zu != case dim %zu\n",
                     stack.dim(), tc->dim());
        return 1;
    }
    rng::Engine eng(seed);
    core::IsDiagnostics diag;
    const auto res = core::NofisEstimator::importance_estimate(
        stack, *tc, eng, nis, &diag);
    telemetry::count("calls", res.calls);
    telemetry::metric("p_hat", res.p_hat);
    telemetry::metric("ess_hits", diag.effective_sample_size);
    telemetry::metric("ess_all", diag.ess_all);
    telemetry::metric("max_weight", diag.max_weight);
    telemetry::metric("weight_cv", diag.weight_cv);
    std::printf("reused proposal from %s on %s:\n", path.c_str(),
                case_name.c_str());
    std::printf("  p = %.4e  calls = %zu  log-err = %.3f  hits = %zu  "
                "ESS = %.1f  ESS(all) = %.1f  weight-CV = %.2f\n",
                res.p_hat, res.calls,
                estimators::log_error(res.p_hat, tc->golden_pr()), diag.hits,
                diag.effective_sample_size, diag.ess_all, diag.weight_cv);
    return 0;
}

void usage() {
    std::fprintf(stderr,
                 "usage: nofis_cli <list|estimate|levels|train|reuse> "
                 "[options] [--threads N] [--metrics-out FILE.json]\n"
                 "(see the header of apps/nofis_cli.cpp)\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 1;
    }
    apply_threads_flag(argc, argv);
    MetricsSession metrics(argc, argv);
    const std::string cmd = argv[1];
    int rc = -1;
    try {
        if (cmd == "list") rc = cmd_list();
        if (cmd == "estimate") rc = cmd_estimate(argc, argv);
        if (cmd == "levels") rc = cmd_levels(argc, argv);
        if (cmd == "train") rc = cmd_train(argc, argv);
        if (cmd == "reuse") rc = cmd_reuse(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    if (rc < 0) {
        usage();
        return 1;
    }
    if (!metrics.finish() && rc == 0) rc = 1;
    return rc;
}
