// nofis_cli — command-line front end for the library.
//
//   nofis_cli list
//       Show the registered test cases with golden probabilities and
//       per-case budgets.
//   nofis_cli estimate --case Leaf [--method NOFIS] [--repeats 3] [--seed 1]
//            [--coupling affine|additive|rqs]
//       Run one estimator at its Table-1 budget and report
//       estimate / calls / log-error per repeat. --coupling overrides the
//       NOFIS proposal's coupling family (ignored by baselines).
//   nofis_cli levels --case Opamp [--num 5] [--pilot 500] [--seed 1]
//       Print an automatically selected nested-subset schedule.
//   nofis_cli train --case Leaf --save leaf.nofisflow [--seed 1]
//            [--coupling affine|additive|rqs] [--rqs-bins 8] [--rqs-tail 5]
//            [--inject-nan 0.05] [--inject-throw 0.01] [--policy retry]
//            [--checkpoint-dir D] [--checkpoint-every K] [--resume]
//            [--checkpoint-keep 3]
//       Train the NOFIS proposal at the case budget and serialise it,
//       printing the run-health summary (faults, rollbacks, proposal
//       quality). The --inject-* flags wrap the case in the deterministic
//       fault injector to exercise the guardrails; --policy selects the
//       guard response (retry | clamp | propagate). `run` is an alias.
//       With --checkpoint-dir a durable snapshot is written at every stage
//       boundary (and every --checkpoint-every epochs inside a stage);
//       SIGINT/SIGTERM finish the in-flight stage, write a final snapshot,
//       and exit cleanly. --resume restarts from the latest valid snapshot
//       and produces stdout, metrics and a saved model byte-identical to an
//       uninterrupted run (DESIGN.md §12).
//   nofis_cli reuse --case Leaf --load leaf.nofisflow [--nis 5000] [--seed 2]
//       Reload a trained proposal and draw a fresh importance-sampling
//       estimate without retraining.
//
// estimate, train and reuse accept the latent-space exploration flags
// (DESIGN.md §16): --latent-explore splits the final-IS budget between
// K annealed Metropolis chains in the trained flow's base space
// (--latent-chains K, --latent-steps S, --latent-anneal linear|geom|none)
// and a defensive-mixture final estimate over α·flow + (1−α)·refined
// (--latent-alpha A). Total g-budget is identical to plain final IS;
// results stay bitwise identical across --threads, --kernels, and cache
// off/cold/warm. `estimate --method NOFIS-LE` runs the same split at the
// case budget.
//   nofis_cli info FILE.nofisflow
//       Print a saved stack's metadata (dim, blocks, coupling kind,
//       parameter count) without running anything.
//   nofis_cli serve --models DIR [--port 0] [--max-batch-rows N]
//            [--max-wait-us 200] [--max-queue 1024] [--workers N]
//            [--backlog B]
//       Serve every .nofisflow in DIR over a loopback TCP socket speaking
//       the line-delimited JSON protocol of DESIGN.md §10. Prints
//       "nofis-serve: ready port=P" once listening; stops cleanly on a
//       `shutdown` request or SIGINT/SIGTERM. Responses are bitwise
//       identical regardless of batching, queue order or --threads.
//       --workers N > 1 switches to the scale-out topology of DESIGN.md
//       §15: N worker processes (each a full server on an ephemeral port)
//       behind one front that routes by model name, respawns crashed
//       workers, drains on reload and SIGTERM, and — with --metrics-out —
//       writes one aggregated fleet record. A shared --cache-dir is safe
//       across workers (the eval logs lock on disk).
//   nofis_cli query --port P [--host 127.0.0.1] --op OP [--model NAME]
//            [--seed S] [--n N] [--case NAME] [--x "0.1,0.2;..."]
//            [--timeout-us T] [--id K] [--worker W] | --file requests.jsonl
//       Issue one request (or pipeline every line of --file) against a
//       running server and print the raw response line(s). Exits 0 when
//       every response is ok, 1 otherwise. --op drain/resume with --worker W
//       stop/restart routing to one cluster worker.
//
// Every command accepts --threads N to size the parallel evaluation pool
// (0 / absent = NOFIS_THREADS env or hardware concurrency) and
// --kernels auto|scalar|simd to pick the numeric kernel flavour (absent =
// NOFIS_KERNELS env, then auto = simd). Output is bitwise identical for any
// thread count and either kernel flavour; both flags only change wall-clock
// time.
//
//   nofis_cli cache-info --cache-dir DIR
//       Describe every evaluation log (*.evc) in DIR: case key, dim,
//       record count, file/valid bytes, and whether a torn tail was
//       detected. Read-only.
//   nofis_cli cache-compact --cache-dir DIR
//       Rewrite each evaluation log keeping the last record per input row
//       and dropping any torn tail (atomic temp-file + rename).
//
// estimate, train and reuse additionally accept --cache-mem-mb N and
// --cache-dir DIR to memoize g-evaluations (serve takes the same flags for
// a cache shared across requests). The cache never changes results — output
// is bitwise identical with it off, cold, or warm; only the
// g_calls.fresh/g_calls.cached split in --metrics-out moves.
//
// Every command also accepts --metrics-out FILE.json: the run is executed
// with the telemetry layer active and a machine-readable record (per-stage
// and per-phase wall-clock spans, g-call / fault / rollback counters,
// ESS and weight diagnostics, thread-pool utilisation) is written to FILE
// as a single JSON object. Telemetry never perturbs results: estimates are
// bitwise identical with or without the flag.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "../bench/bench_common.hpp"
#include "core/levels.hpp"
#include "flow/serialize.hpp"
#include "flow/stack_info.hpp"
#include "serve/cluster/cluster.hpp"
#include "serve/server.hpp"
#include "serve/tcp_client.hpp"
#include "testcases/fault_injector.hpp"

namespace {

using namespace nofis;
using namespace nofis::bench;

int cmd_list() {
    std::printf("%-12s %-5s %-12s %-14s %-10s\n", "case", "dim", "golden",
                "nofis calls", "levels");
    for (const auto& name : testcases::all_case_names()) {
        const auto tc = testcases::make_case(name);
        const auto b = tc->nofis_budget();
        std::printf("%-12s %-5zu %-12.3e %-14zu %zu\n", name.c_str(),
                    tc->dim(), tc->golden_pr(), b.total_calls(),
                    b.levels.size());
    }
    return 0;
}

int cmd_estimate(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const std::string method = arg_value(argc, argv, "--method", "NOFIS");
    const auto repeats = size_flag(argc, argv, "--repeats", "3");
    const auto seed = u64_flag(argc, argv, "--seed", "1");
    const std::string coupling = arg_value(argc, argv, "--coupling", "");

    const auto cache = cache_from_flags(argc, argv);
    const auto tc = testcases::make_case(case_name);
    const auto latent_cfg = latent_config_from_flags(argc, argv);
    const auto est = make_estimator(method, *tc, cache, coupling, &latent_cfg);
    // NOFIS consults the cache through its config; the baselines evaluate
    // through an external wrapper. Estimates (and this command's stdout)
    // are bitwise identical with the cache off, cold, or warm — the
    // fresh/cached split lands in --metrics-out only.
    std::optional<evalcache::CachedProblem> cached;
    const estimators::RareEventProblem* problem = tc.get();
    if (cache && !nofis_family(method)) {
        cached.emplace(*tc, cache, testcases::cache_key(*tc));
        problem = &*cached;
    }
    std::printf("%s on %s (golden %.3e), %zu repeat(s)\n", method.c_str(),
                case_name.c_str(), tc->golden_pr(), repeats);
    double mean_err = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const telemetry::ScopedSpan repeat_span("repeat");
        const std::size_t hits_before = cached ? cached->hits() : 0;
        rng::Engine eng(seed + 7919 * r);
        const auto res = est->estimate(*problem, eng);
        const double err = estimators::log_error(res.p_hat, tc->golden_pr());
        mean_err += err;
        // Non-NOFIS methods don't instrument their internals; record the
        // estimate-level numbers here so every method yields a usable
        // metrics record. (NOFIS runs count their own calls/diagnostics
        // and fresh-vs-cached split.)
        telemetry::count("estimate.runs");
        if (!nofis_family(method)) {
            telemetry::count("calls", res.calls);
            evalcache::report_call_split(
                res.calls,
                cached ? std::min(cached->hits() - hits_before, res.calls)
                       : std::size_t{0});
        }
        telemetry::metric("p_hat", res.p_hat);
        std::printf("  run %zu: p = %.4e  calls = %zu  log-err = %.3f%s\n",
                    r, res.p_hat, res.calls, err,
                    res.failed ? "  [FAILED]" : "");
    }
    const double mean = mean_err / static_cast<double>(repeats);
    telemetry::metric("mean_log_error", mean);
    std::printf("mean log-error: %.3f\n", mean);
    return 0;
}

int cmd_levels(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const auto num = size_flag(argc, argv, "--num", "5");
    const auto pilot = size_flag(argc, argv, "--pilot", "500");
    const auto seed = u64_flag(argc, argv, "--seed", "1");

    const auto tc = testcases::make_case(case_name);
    estimators::CountedProblem counted(*tc);
    rng::Engine eng(seed);
    core::AutoLevelConfig cfg;
    cfg.num_levels = num;
    cfg.pilot_samples = pilot;
    const auto levels = core::auto_levels(counted, eng, cfg);
    std::printf("auto levels for %s (%zu pilot calls):\n", case_name.c_str(),
                counted.calls());
    for (double a : levels.levels()) std::printf("  %.6g\n", a);
    const auto manual = tc->nofis_budget().levels;
    std::printf("hand-tuned schedule for comparison:\n");
    for (double a : manual) std::printf("  %.6g\n", a);
    return 0;
}

estimators::GuardConfig::Policy parse_policy(const std::string& name) {
    using Policy = estimators::GuardConfig::Policy;
    if (name == "retry") return Policy::kRetryPerturb;
    if (name == "clamp") return Policy::kClampToFail;
    if (name == "propagate") return Policy::kPropagate;
    std::fprintf(stderr, "warning: unknown policy '%s', using retry\n",
                 name.c_str());
    return Policy::kRetryPerturb;
}

int cmd_train(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const std::string path =
        arg_value(argc, argv, "--save", case_name + ".nofisflow");
    const auto seed = u64_flag(argc, argv, "--seed", "1");
    const double nan_rate = double_flag(argc, argv, "--inject-nan", "0");
    const double throw_rate = double_flag(argc, argv, "--inject-throw", "0");

    const auto tc = testcases::make_case(case_name);
    const auto budget = tc->nofis_budget();
    auto cfg = nofis_config_from_budget(budget);
    // Coupling family for the proposal flow: affine (default) | additive |
    // rqs. The spline knobs only matter under --coupling rqs and are
    // ignored (not even fingerprinted) otherwise.
    const std::string coupling = arg_value(argc, argv, "--coupling", "");
    if (!coupling.empty()) cfg.coupling = parse_coupling(coupling);
    cfg.rqs_bins = size_flag(argc, argv, "--rqs-bins", "8");
    cfg.rqs_tail = double_flag(argc, argv, "--rqs-tail", "5");
    cfg.guard.policy =
        parse_policy(arg_value(argc, argv, "--policy", "retry"));
    // Latent-space exploration (DESIGN.md §16): splits n_is between the
    // annealed chains and the defensive-mixture final IS.
    cfg.latent = latent_config_from_flags(argc, argv);
    // Routed through the config (rather than only the global pool) so the
    // NofisConfig knob is exercised end-to-end.
    cfg.threads = size_flag(argc, argv, "--threads", "0");
    // Optional memoization of g; under fault injection the guard sits above
    // the cache, so only true (finite, successfully evaluated) values are
    // ever stored — the namespace stays safe to share with clean runs.
    cfg.cache = cache_from_flags(argc, argv);
    cfg.cache_key = testcases::cache_key(case_name, tc->dim());

    // Crash-safe training (DESIGN.md §12): durable snapshots at every stage
    // boundary (plus every --checkpoint-every epochs), resumed bitwise with
    // --resume. The run identity folds in everything that shapes the
    // trajectory — including the seed and injected-fault rates via the salt
    // below — so snapshots from a different run can never be resumed.
    cfg.checkpoint.dir = arg_value(argc, argv, "--checkpoint-dir", "");
    cfg.checkpoint.every_epochs =
        size_flag(argc, argv, "--checkpoint-every", "0");
    cfg.checkpoint.resume = flag_present(argc, argv, "--resume");
    cfg.checkpoint.keep = size_flag(argc, argv, "--checkpoint-keep", "3");
    {
        checkpoint::FingerprintBuilder salt;
        salt.add(seed).add(nan_rate).add(throw_rate).add(case_name);
        cfg.checkpoint.salt = salt.value();
    }
    if (cfg.checkpoint.enabled()) checkpoint::install_stop_handlers();

    core::NofisEstimator est(cfg,
                             core::LevelSchedule::manual(budget.levels));

    // Optional deterministic fault injection, for exercising the guardrails
    // against a known fault load.
    testcases::FaultInjectorConfig icfg;
    icfg.nan_rate = nan_rate;
    icfg.throw_rate = throw_rate;
    icfg.seed = seed;
    const testcases::FaultInjector injected(*tc, icfg);
    const estimators::RareEventProblem& problem =
        (nan_rate > 0.0 || throw_rate > 0.0)
            ? static_cast<const estimators::RareEventProblem&>(injected)
            : *tc;

    rng::Engine eng(seed);
    if (cfg.checkpoint.resume)
        std::fprintf(stderr, "resuming from checkpoints in %s (if any)\n",
                     cfg.checkpoint.dir.c_str());
    auto run = est.run(problem, eng);
    if (run.interrupted) {
        // Keep every resume/interrupt notice on stderr: a resumed run's
        // stdout must be byte-identical to an uninterrupted run's.
        std::fprintf(stderr,
                     "interrupted: checkpoint written to %s; rerun with "
                     "--resume to continue\n",
                     cfg.checkpoint.dir.c_str());
        return 0;
    }
    std::printf("trained %s: p = %.4e (calls %zu, log-err %.3f)\n",
                case_name.c_str(), run.estimate.p_hat, run.estimate.calls,
                estimators::log_error(run.estimate.p_hat, tc->golden_pr()));
    if (cfg.latent.enabled) {
        const auto& lr = run.latent_report;
        std::printf("latent: chains = %zu  steps = %zu  alpha = %.2f  "
                    "anneal = %s  explore-calls = %zu  final-is = %zu  "
                    "accept = %.3f  components = %zu\n",
                    cfg.latent.chains, cfg.latent.steps, cfg.latent.alpha,
                    latent::anneal_name(cfg.latent.anneal), lr.explore_calls,
                    lr.final_is_draws, lr.acceptance_rate, lr.components);
    }
    std::printf("%s\n", run.health.summary().c_str());
    if (nan_rate > 0.0 || throw_rate > 0.0) {
        // The ledger counts THIS process's arrivals, so a resumed run's
        // numbers legitimately differ from an uninterrupted run's. Under
        // checkpointing the line moves to stderr to keep stdout bitwise
        // comparable across kill/resume.
        std::FILE* out = cfg.checkpoint.enabled() ? stderr : stdout;
        std::fprintf(out, "injector: %zu fault(s) injected over %zu call(s)\n",
                     injected.injected_total(), injected.calls());
    }
    flow::save_stack(*run.flow, path);
    std::printf("proposal saved to %s\n", path.c_str());
    return 0;
}

int cmd_reuse(int argc, char** argv) {
    const std::string case_name = arg_value(argc, argv, "--case", "Leaf");
    const std::string path =
        arg_value(argc, argv, "--load", case_name + ".nofisflow");
    const auto nis = size_flag(argc, argv, "--nis", "5000");
    const auto seed = u64_flag(argc, argv, "--seed", "2");

    const auto tc = testcases::make_case(case_name);
    const auto stack = flow::load_stack(path);
    if (stack.dim() != tc->dim()) {
        std::fprintf(stderr, "error: flow dim %zu != case dim %zu\n",
                     stack.dim(), tc->dim());
        return 1;
    }
    const auto cache = cache_from_flags(argc, argv);
    std::optional<evalcache::CachedProblem> cached;
    const estimators::RareEventProblem* problem = tc.get();
    if (cache) {
        cached.emplace(*tc, cache, testcases::cache_key(*tc));
        problem = &*cached;
    }
    rng::Engine eng(seed);
    core::IsDiagnostics diag;
    // Latent-space exploration on a reloaded stack (DESIGN.md §16): the
    // chains need the tempered-target shape, which comes from the case's
    // own budget (τ and the first, easiest level of its schedule).
    const auto latent_cfg = latent_config_from_flags(argc, argv);
    estimators::EstimateResult res;
    std::size_t final_is_draws = nis;
    latent::LatentReport lrep;
    if (latent_cfg.enabled) {
        // Same composition as a training run: Guarded(Cached(problem)), so
        // chain evaluations replay/cache like every other consumer.
        const estimators::GuardedProblem guarded(*problem);
        const auto budget = tc->nofis_budget();
        res = latent::explore_and_estimate(stack, guarded, eng, nis,
                                           budget.tau, budget.levels.front(),
                                           latent_cfg, &diag, &lrep);
        final_is_draws = lrep.final_is_draws;
    } else {
        res = core::NofisEstimator::importance_estimate(stack, *problem, eng,
                                                        nis, &diag);
    }
    telemetry::count("calls", res.calls);
    evalcache::report_call_split(
        res.calls,
        cached ? std::min(cached->hits(), res.calls) : std::size_t{0});
    telemetry::metric("p_hat", res.p_hat);
    telemetry::metric("ess_hits", diag.effective_sample_size);
    telemetry::metric("ess_all", diag.ess_all);
    telemetry::metric("max_weight", diag.max_weight);
    telemetry::metric("weight_cv", diag.weight_cv);
    std::printf("reused proposal from %s on %s:\n", path.c_str(),
                case_name.c_str());
    // Stats line is append-only (existing CI diffs parse the prefix): the
    // estimator strategy and the final-IS draw count ride at the end.
    std::printf("  p = %.4e  calls = %zu  log-err = %.3f  hits = %zu  "
                "ESS = %.1f  ESS(all) = %.1f  weight-CV = %.2f  "
                "strategy = %s  final-is = %zu\n",
                res.p_hat, res.calls,
                estimators::log_error(res.p_hat, tc->golden_pr()), diag.hits,
                diag.effective_sample_size, diag.ess_all, diag.weight_cv,
                latent_cfg.enabled ? "latent-explore" : "final-is",
                final_is_draws);
    if (latent_cfg.enabled)
        std::printf("  latent: chains = %zu  steps = %zu  alpha = %.2f  "
                    "anneal = %s  explore-calls = %zu  accept = %.3f  "
                    "components = %zu\n",
                    latent_cfg.chains, latent_cfg.steps, latent_cfg.alpha,
                    latent::anneal_name(latent_cfg.anneal), lrep.explore_calls,
                    lrep.acceptance_rate, lrep.components);
    return 0;
}

int cmd_info(int argc, char** argv) {
    if (argc < 3 || argv[2][0] == '-') {
        std::fprintf(stderr, "usage: nofis_cli info FILE.nofisflow\n");
        return 2;
    }
    const std::string path = argv[2];
    const auto info = flow::stack_info(path);
    std::printf("file: %s\n", path.c_str());
    std::printf("dim: %zu\n", info.dim);
    std::printf("blocks: %zu (M)\n", info.num_blocks);
    std::printf("layers_per_block: %zu (K)\n", info.layers_per_block);
    std::printf("coupling: %s\n",
                flow::coupling_kind_name(info.coupling).c_str());
    if (info.coupling == flow::CouplingKind::kRqs) {
        std::printf("rqs_bins: %zu\n", info.rqs_bins);
        std::printf("rqs_tail: %g\n", info.rqs_tail);
    }
    std::printf("actnorm: %s\n", info.use_actnorm ? "on" : "off");
    std::printf("hidden:");
    for (std::size_t h : info.hidden) std::printf(" %zu", h);
    std::printf("\n");
    std::printf("scale_cap: %g\n", info.scale_cap);
    std::printf("params: %zu tensors, %zu values\n", info.param_tensors,
                info.param_values);
    return 0;
}

std::vector<std::filesystem::path> cache_logs_in(const std::string& dir) {
    namespace fs = std::filesystem;
    std::vector<fs::path> logs;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() && entry.path().extension() == ".evc")
            logs.push_back(entry.path());
    std::sort(logs.begin(), logs.end());
    return logs;
}

int cmd_cache_info(int argc, char** argv) {
    const std::string dir = arg_value(argc, argv, "--cache-dir", "");
    if (dir.empty() || !std::filesystem::is_directory(dir)) {
        std::fprintf(stderr, "usage: nofis_cli cache-info --cache-dir DIR\n");
        return 2;
    }
    std::printf("%-20s %-5s %-9s %-11s %-11s %s\n", "case", "dim", "records",
                "bytes", "valid", "tail");
    for (const auto& path : cache_logs_in(dir)) {
        const auto info = evalcache::DiskLog::inspect(path.string());
        if (!info) {
            std::printf("%-20s (not a NOFIS eval log)\n",
                        path.filename().string().c_str());
            continue;
        }
        std::printf("%-20s %-5zu %-9zu %-11llu %-11llu %s\n",
                    info->case_key.c_str(), info->dim, info->records,
                    static_cast<unsigned long long>(info->file_bytes),
                    static_cast<unsigned long long>(info->valid_bytes),
                    info->tail_truncated ? "TRUNCATED" : "clean");
    }
    return 0;
}

int cmd_cache_compact(int argc, char** argv) {
    const std::string dir = arg_value(argc, argv, "--cache-dir", "");
    if (dir.empty() || !std::filesystem::is_directory(dir)) {
        std::fprintf(stderr,
                     "usage: nofis_cli cache-compact --cache-dir DIR\n");
        return 2;
    }
    for (const auto& path : cache_logs_in(dir)) {
        try {
            const auto r = evalcache::DiskLog::compact(path.string());
            std::printf("%s: %zu -> %zu record(s), %llu -> %llu byte(s)\n",
                        path.filename().string().c_str(), r.records_before,
                        r.records_after,
                        static_cast<unsigned long long>(r.bytes_before),
                        static_cast<unsigned long long>(r.bytes_after));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "%s: skipped (%s)\n",
                         path.filename().string().c_str(), e.what());
        }
    }
    return 0;
}

std::atomic<bool> g_signal_stop{false};

void on_signal(int) { g_signal_stop.store(true, std::memory_order_relaxed); }

/// Multi-worker serve (--workers N > 1): spawn N copies of this binary as
/// single-registry workers behind one front that routes by model name
/// (DESIGN.md §15). The front re-execs /proc/self/exe, so the workers are
/// always the same build as the front.
int cmd_serve_cluster(int argc, char** argv, std::size_t workers,
                      MetricsSession& metrics) {
    serve::cluster::ClusterConfig cfg;
    cfg.workers = workers;
    const auto port = size_flag(argc, argv, "--port", "0");
    if (port > 65535) {
        std::fprintf(stderr, "error: invalid port %zu\n", port);
        return 2;
    }
    cfg.port = static_cast<std::uint16_t>(port);
    const auto backlog = size_flag(argc, argv, "--backlog", "0");
    if (backlog > 0) cfg.backlog = static_cast<int>(backlog);
    cfg.worker.command = {
        std::filesystem::read_symlink("/proc/self/exe").string()};
    cfg.worker.model_dir = arg_value(argc, argv, "--models", ".");
    cfg.worker.max_batch_rows =
        size_flag(argc, argv, "--max-batch-rows", "0");
    cfg.worker.max_wait_us = u64_flag(argc, argv, "--max-wait-us", "200");
    cfg.worker.max_queue = size_flag(argc, argv, "--max-queue", "1024");
    cfg.worker.cache_mem_mb = size_flag(argc, argv, "--cache-mem-mb", "0");
    cfg.worker.cache_dir = arg_value(argc, argv, "--cache-dir", "");
    cfg.worker.threads = size_flag(argc, argv, "--threads", "0");
    cfg.metrics_out = metrics.path();

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    serve::cluster::Cluster cluster(cfg);
    std::printf("serving models from %s on %s:%u (%zu workers)\n",
                cfg.worker.model_dir.c_str(), cfg.host.c_str(),
                static_cast<unsigned>(cluster.port()), cluster.workers());
    for (std::size_t i = 0; i < cluster.workers(); ++i)
        std::printf("nofis-serve: worker %zu pid=%d port=%u\n", i,
                    static_cast<int>(cluster.worker_pid(i)),
                    static_cast<unsigned>(cluster.worker_port(i)));
    std::printf("nofis-serve: ready port=%u\n",
                static_cast<unsigned>(cluster.port()));
    std::fflush(stdout);
    // SIGTERM/SIGINT land in g_signal_stop; shutdown() is the
    // drain-all-then-exit path either way.
    cluster.wait(&g_signal_stop);
    cluster.shutdown();
    int rc = 0;
    if (metrics.enabled()) {
        // The workers wrote per-worker records on their way down; fold them
        // (plus the front's routing counters) into the one --metrics-out
        // the caller asked for, and keep main()'s MetricsSession from
        // overwriting it.
        if (!cluster.write_metrics(metrics.path())) rc = 1;
        metrics.disarm();
    }
    std::printf("nofis-serve: stopped\n");
    return rc;
}

int cmd_serve(int argc, char** argv, MetricsSession& metrics) {
    const auto workers = size_flag(argc, argv, "--workers", "1");
    if (workers > 1) return cmd_serve_cluster(argc, argv, workers, metrics);

    serve::ServerConfig cfg;
    cfg.model_dir = arg_value(argc, argv, "--models", ".");
    const auto port = size_flag(argc, argv, "--port", "0");
    if (port > 65535) {
        std::fprintf(stderr, "error: invalid port %zu\n", port);
        return 2;
    }
    cfg.port = static_cast<std::uint16_t>(port);
    const auto backlog = size_flag(argc, argv, "--backlog", "0");
    if (backlog > 0) cfg.backlog = static_cast<int>(backlog);
    cfg.scheduler.max_batch_rows =
        size_flag(argc, argv, "--max-batch-rows", "0");
    cfg.scheduler.max_wait_us = u64_flag(argc, argv, "--max-wait-us", "200");
    cfg.scheduler.max_queue = size_flag(argc, argv, "--max-queue", "1024");
    cfg.scheduler.cache_mem_mb = size_flag(argc, argv, "--cache-mem-mb", "0");
    cfg.scheduler.cache_dir = arg_value(argc, argv, "--cache-dir", "");

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    serve::Server server(cfg);
    std::printf("serving models from %s on %s:%u\n", cfg.model_dir.c_str(),
                cfg.host.c_str(), static_cast<unsigned>(server.port()));
    std::printf("nofis-serve: ready port=%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.wait(&g_signal_stop);
    server.shutdown();
    std::printf("nofis-serve: stopped\n");
    return 0;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t next = s.find(sep, pos);
        if (next == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
    return out;
}

/// "0.1,0.2;0.3,0.4" → 2x2 matrix (rows split on ';', cells on ',').
linalg::Matrix parse_points(const std::string& text) {
    const auto rows = split_on(text, ';');
    if (rows.empty()) throw std::runtime_error("--x: no rows");
    std::vector<std::vector<double>> parsed;
    for (const auto& row : rows) {
        std::vector<double> cells;
        for (const auto& cell : split_csv(row)) {
            const auto v = util::parse_double(cell);
            if (!v)
                throw std::runtime_error("--x: malformed number '" + cell +
                                         "'");
            cells.push_back(*v);
        }
        if (!parsed.empty() && cells.size() != parsed.front().size())
            throw std::runtime_error("--x: ragged rows");
        parsed.push_back(std::move(cells));
    }
    linalg::Matrix x(parsed.size(), parsed.front().size());
    for (std::size_t r = 0; r < parsed.size(); ++r)
        for (std::size_t c = 0; c < parsed[r].size(); ++c)
            x(r, c) = parsed[r][c];
    return x;
}

int cmd_query(int argc, char** argv) {
    const std::string host = arg_value(argc, argv, "--host", "127.0.0.1");
    const auto port = size_flag(argc, argv, "--port", "0");
    if (port == 0 || port > 65535) {
        std::fprintf(stderr, "error: query requires --port P\n");
        return 2;
    }
    serve::TcpClient client(host, static_cast<std::uint16_t>(port));

    const std::string file = arg_value(argc, argv, "--file", "");
    std::vector<std::string> request_lines;
    if (!file.empty()) {
        std::ifstream is(file);
        if (!is) {
            std::fprintf(stderr, "error: cannot open '%s'\n", file.c_str());
            return 2;
        }
        std::string line;
        while (std::getline(is, line))
            if (!line.empty()) request_lines.push_back(line);
    } else {
        serve::Request req;
        const std::string op = arg_value(argc, argv, "--op", "ping");
        bool known = false;
        for (serve::Op candidate :
             {serve::Op::kSample, serve::Op::kLogProb, serve::Op::kEstimate,
              serve::Op::kInfo, serve::Op::kListModels, serve::Op::kReload,
              serve::Op::kEvict, serve::Op::kDrain, serve::Op::kResume,
              serve::Op::kPing, serve::Op::kShutdown}) {
            if (serve::op_name(candidate) == op) {
                req.op = candidate;
                known = true;
            }
        }
        if (!known) {
            std::fprintf(stderr, "error: unknown --op '%s'\n", op.c_str());
            return 2;
        }
        req.id = u64_flag(argc, argv, "--id", "1");
        req.model = arg_value(argc, argv, "--model", "");
        req.seed = u64_flag(argc, argv, "--seed", "0");
        req.n = size_flag(argc, argv, "--n",
                          arg_value(argc, argv, "--nis", "1000"));
        req.case_name = arg_value(argc, argv, "--case", "");
        req.timeout_us = u64_flag(argc, argv, "--timeout-us", "0");
        // Cluster admin target for drain/resume; absent = whole fleet (or,
        // against a single worker, its own queue).
        if (!arg_value(argc, argv, "--worker", "").empty())
            req.worker = static_cast<std::int64_t>(
                u64_flag(argc, argv, "--worker", "0"));
        const std::string points = arg_value(argc, argv, "--x", "");
        if (!points.empty()) req.x = parse_points(points);
        request_lines.push_back(req.encode());
    }

    const auto responses = client.pipeline_raw(request_lines);
    bool all_ok = true;
    for (const auto& line : responses) {
        std::printf("%s\n", line.c_str());
        const auto res = serve::Response::decode(line);
        all_ok = all_ok && res.ok;
    }
    return all_ok ? 0 : 1;
}

void usage() {
    std::fprintf(
        stderr,
        "usage: nofis_cli <list|estimate|levels|train|run|reuse|info|serve"
        "|query|cache-info|cache-compact>"
        " [options] [--threads N] [--kernels auto|scalar|simd]"
        " [--metrics-out FILE.json]\n"
        "(see the header of apps/nofis_cli.cpp)\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 1;
    }
    apply_threads_flag(argc, argv);
    apply_kernels_flag(argc, argv);
    MetricsSession metrics(argc, argv);
    const std::string cmd = argv[1];
    int rc = -1;
    try {
        if (cmd == "list") rc = cmd_list();
        if (cmd == "estimate") rc = cmd_estimate(argc, argv);
        if (cmd == "levels") rc = cmd_levels(argc, argv);
        // `run` is the checkpoint-era alias for `train` (ISSUE 6's
        // "nofis_cli run --checkpoint-dir D --resume" spelling); both
        // accept the same flags.
        if (cmd == "train" || cmd == "run") rc = cmd_train(argc, argv);
        if (cmd == "reuse") rc = cmd_reuse(argc, argv);
        if (cmd == "info") rc = cmd_info(argc, argv);
        if (cmd == "serve") rc = cmd_serve(argc, argv, metrics);
        if (cmd == "query") rc = cmd_query(argc, argv);
        if (cmd == "cache-info") rc = cmd_cache_info(argc, argv);
        if (cmd == "cache-compact") rc = cmd_cache_compact(argc, argv);
    } catch (const std::exception& e) {
        // Uniform failure contract with the strict flag parsing: any
        // diagnosed error (missing .nofisflow file, malformed model,
        // unreachable server, ...) prints its message and exits 2 instead
        // of escaping as an uncaught exception.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (rc < 0) {
        usage();
        return 1;
    }
    if (!metrics.finish() && rc == 0) rc = 1;
    return rc;
}
