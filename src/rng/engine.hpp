#pragma once

#include <array>
#include <cstdint>

namespace nofis::rng {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna).
///
/// Chosen over std::mt19937_64 for speed and for cheap, well-defined
/// substreams: `split()` derives an independent child stream via splitmix64
/// hashing so that every estimator / repeat / worker in a benchmark gets a
/// reproducible but decorrelated stream from one experiment seed.
class Engine {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit words with splitmix64 expansion of `seed`.
    explicit Engine(std::uint64_t seed = 0xda3e39cb94b95bdbULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    result_type operator()() noexcept;

    /// Uniform double in [0, 1) with 53-bit resolution.
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n); n must be positive.
    std::uint64_t uniform_index(std::uint64_t n) noexcept;

    /// Derives a reproducible independent child stream. Advances this
    /// stream by one draw.
    Engine split() noexcept;

    /// Raw stream position: the four 64-bit state words. Capturing and
    /// restoring them resumes the stream exactly where it was — the
    /// checkpoint/resume subsystem persists this so a restarted run draws
    /// the same sequence an uninterrupted run would have.
    using State = std::array<std::uint64_t, 4>;
    State state() const noexcept { return s_; }
    /// Restores a captured state verbatim. An all-zero state is invalid for
    /// xoshiro and is nudged to the same guard value the constructor uses.
    void set_state(const State& s) noexcept {
        s_ = s;
        if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
    }

private:
    std::array<std::uint64_t, 4> s_{};
};

/// Derives the `stream_id`-th independent substream of a master `seed`
/// without consuming any draws from an existing engine. The (seed, id) pair
/// is mixed through splitmix64 before the usual seeding expansion, so
/// substream(s, i) and substream(s, j) are decorrelated for i != j and the
/// mapping is stable under changes to the number of streams requested —
/// chain 3 always gets the same stream whether 4 or 400 chains run.
Engine substream(std::uint64_t seed, std::uint64_t stream_id) noexcept;

}  // namespace nofis::rng
