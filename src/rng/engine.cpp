#include "rng/engine.hpp"

namespace nofis::rng {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Engine::Engine(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
    // Guard against the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Engine::result_type Engine::operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double Engine::uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Engine::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Engine::uniform_index(std::uint64_t n) noexcept {
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>((*this)()) * n >> 64);
}

Engine Engine::split() noexcept {
    return Engine((*this)() ^ 0x2545f4914f6cdd1dULL);
}

Engine substream(std::uint64_t seed, std::uint64_t stream_id) noexcept {
    // Avalanche-mix the seed BEFORE folding in the id: xoring the id into
    // the merely-advanced state would alias the substream families of
    // nearby seeds (seed+gamma differs by 1 between seed 1 and 2, so
    // substream(1, i) would equal substream(2, i^1)). After full mixing,
    // a cross-seed collision needs mix(s1) ^ mix(s2) inside the id range —
    // vanishingly unlikely — and a second round decorrelates nearby ids.
    std::uint64_t sm = seed;
    std::uint64_t mixed = splitmix64(sm) ^ stream_id;
    return Engine(splitmix64(mixed));
}

}  // namespace nofis::rng
