#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "rng/engine.hpp"

namespace nofis::rng {

/// One standard-normal draw (Box–Muller, one value per call; the spare is
/// intentionally discarded to keep streams stateless and splittable).
double standard_normal(Engine& eng) noexcept;

/// Fills `out` with i.i.d. N(0,1) draws.
void fill_standard_normal(Engine& eng, std::span<double> out) noexcept;

/// (n x d) matrix of i.i.d. N(0,1) draws — the base-distribution sampler for
/// flows and all estimator proposal seeds.
linalg::Matrix standard_normal_matrix(Engine& eng, std::size_t n,
                                      std::size_t d);

/// log pdf of N(0,1) at x.
double normal_log_pdf(double x) noexcept;

/// log pdf of a D-dim standard normal at row-vector x.
double standard_normal_log_pdf(std::span<const double> x) noexcept;

/// Standard normal CDF Φ(x).
double normal_cdf(double x) noexcept;

/// Standard normal inverse CDF Φ⁻¹(p) (Acklam's rational approximation with
/// one Halley refinement step; |error| < 1e-13 on (0,1)).
double normal_quantile(double p);

}  // namespace nofis::rng
