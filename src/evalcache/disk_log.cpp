#include "evalcache/disk_log.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/io_fault.hpp"

namespace nofis::evalcache {

namespace {

constexpr char kMagic[8] = {'N', 'O', 'F', 'I', 'S', 'E', 'V', 'C'};
constexpr std::uint32_t kVersion = 1;

/// Opens the sidecar lock file guarding cross-process access to `path`.
/// Returns -1 when it cannot be created; locking then degrades to a no-op,
/// which is the historical single-process behaviour.
int open_lock_file(const std::string& path) {
    return ::open((path + ".lck").c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                  0644);
}

/// RAII flock(LOCK_EX) over a sidecar fd; no-op when fd < 0. flock locks
/// the open file description, so two DiskLog instances exclude each other
/// even inside one process.
class ScopedFlock {
public:
    explicit ScopedFlock(int fd) : fd_(fd) {
        if (fd_ >= 0)
            while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
            }
    }
    ~ScopedFlock() {
        if (fd_ >= 0) ::flock(fd_, LOCK_UN);
    }
    ScopedFlock(const ScopedFlock&) = delete;
    ScopedFlock& operator=(const ScopedFlock&) = delete;

private:
    int fd_ = -1;
};

struct FdCloser {
    int fd = -1;
    ~FdCloser() {
        if (fd >= 0) ::close(fd);
    }
};

std::uint64_t inode_of(const std::string& path) {
    struct stat st {};
    if (::stat(path.c_str(), &st) != 0) return 0;
    return static_cast<std::uint64_t>(st.st_ino);
}

struct RawHeader {
    char magic[8];
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t dim;
    std::uint32_t key_len;
};

template <typename T>
bool read_pod(std::istream& is, T& out) {
    is.read(reinterpret_cast<char*>(&out), sizeof(T));
    return is.gcount() == static_cast<std::streamsize>(sizeof(T));
}

template <typename T>
void write_pod(std::ostream& os, const T& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Reads the header; returns the (case_key, dim, payload-start offset) or
/// nullopt when the file does not start with a valid header.
struct ParsedHeader {
    std::string case_key;
    std::size_t dim;
    std::uint64_t body_begin;
};

std::optional<ParsedHeader> parse_header(std::istream& is) {
    RawHeader h{};
    is.seekg(0);
    if (!read_pod(is, h)) return std::nullopt;
    if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
    if (h.version != kVersion) return std::nullopt;
    if (h.key_len == 0 || h.key_len > 4096) return std::nullopt;
    std::string key(h.key_len, '\0');
    is.read(key.data(), h.key_len);
    if (is.gcount() != static_cast<std::streamsize>(h.key_len))
        return std::nullopt;
    return ParsedHeader{std::move(key), static_cast<std::size_t>(h.dim),
                        sizeof(RawHeader) + h.key_len};
}

/// Scans records from `begin`; calls fn(payload_offset, payload) for each
/// intact record and returns the offset just past the last one.
std::uint64_t scan_records(
    std::istream& is, std::uint64_t begin, std::size_t dim,
    std::uint64_t file_size, bool& tail_truncated,
    const std::function<void(std::uint64_t, const std::vector<char>&)>& fn) {
    const std::size_t payload_len = dim * 8 + 8;
    std::vector<char> payload(payload_len);
    std::uint64_t pos = begin;
    tail_truncated = false;
    is.clear();
    while (pos + 4 + payload_len + 8 <= file_size) {
        is.seekg(static_cast<std::streamoff>(pos));
        std::uint32_t len = 0;
        std::uint64_t checksum = 0;
        if (!read_pod(is, len) || len != payload_len) break;
        is.read(payload.data(), static_cast<std::streamsize>(payload_len));
        if (is.gcount() != static_cast<std::streamsize>(payload_len)) break;
        if (!read_pod(is, checksum)) break;
        if (checksum != fnv1a64(payload.data(), payload_len)) break;
        fn(pos + 4, payload);
        pos += 4 + payload_len + 8;
    }
    if (pos < file_size) tail_truncated = true;
    is.clear();
    return pos;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

DiskLog::DiskLog(std::string path, std::string case_key, std::size_t dim)
    : path_(std::move(path)), case_key_(std::move(case_key)), dim_(dim) {
    if (dim_ == 0) throw std::runtime_error("DiskLog: dim must be positive");
    lock_fd_ = open_lock_file(path_);
    const ScopedFlock guard(lock_fd_);
    open_and_recover();
}

DiskLog::~DiskLog() {
    try {
        if (file_.is_open()) sync();
    } catch (...) {
        // Destructor sync is best-effort; the checksummed format makes an
        // unsynced tail recoverable (truncated) on the next open.
    }
    if (lock_fd_ >= 0) ::close(lock_fd_);
}

void DiskLog::sync() {
    file_.flush();
    util::fsync_path(path_);
    appends_since_sync_ = 0;
}

void DiskLog::write_header() {
    RawHeader h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kVersion;
    h.reserved = 0;
    h.dim = dim_;
    h.key_len = static_cast<std::uint32_t>(case_key_.size());
    write_pod(file_, h);
    file_.write(case_key_.data(),
                static_cast<std::streamsize>(case_key_.size()));
    file_.flush();
    end_ = sizeof(RawHeader) + case_key_.size();
}

void DiskLog::open_and_recover() {
    namespace fs = std::filesystem;
    std::error_code ec;
    const bool exists = fs::exists(path_, ec) && fs::file_size(path_, ec) > 0;

    if (!exists) {
        file_.open(path_, std::ios::out | std::ios::binary | std::ios::trunc);
        if (!file_)
            throw std::runtime_error("DiskLog: cannot create '" + path_ + "'");
        write_header();
        file_.close();
    } else {
        std::ifstream is(path_, std::ios::binary);
        if (!is)
            throw std::runtime_error("DiskLog: cannot open '" + path_ + "'");
        const auto header = parse_header(is);
        if (!header)
            throw std::runtime_error("DiskLog: '" + path_ +
                                     "' is not a NOFIS eval log");
        if (header->dim != dim_ || header->case_key != case_key_)
            throw std::runtime_error(
                "DiskLog: '" + path_ + "' belongs to '" + header->case_key +
                "' (dim " + std::to_string(header->dim) +
                "), expected '" + case_key_ + "' (dim " +
                std::to_string(dim_) + ")");
        const std::uint64_t file_size = fs::file_size(path_);
        records_ = 0;
        end_ = scan_records(is, header->body_begin, dim_, file_size,
                            tail_truncated_,
                            [&](std::uint64_t, const std::vector<char>&) {
                                ++records_;
                            });
        is.close();
        // Drop the torn tail on disk so every later reader (and the append
        // position below) sees only intact records.
        if (end_ < file_size) fs::resize_file(path_, end_, ec);
    }

    file_.open(path_, std::ios::in | std::ios::out | std::ios::binary);
    if (!file_)
        throw std::runtime_error("DiskLog: cannot reopen '" + path_ + "'");
    file_.seekp(static_cast<std::streamoff>(end_));
    body_begin_ = sizeof(RawHeader) + case_key_.size();
    ino_ = inode_of(path_);
}

void DiskLog::reopen_if_replaced() {
    // A compaction in another process replaced the inode (rename over the
    // path). Our reads keep working against the old inode — this process's
    // offsets are only valid there — but appends must land in the live file
    // or they would vanish when the old inode's last fd closes.
    const std::uint64_t ino = inode_of(path_);
    if (ino == ino_ && ino != 0) return;
    file_.close();
    open_and_recover();
}

void DiskLog::seek_true_end() {
    // Another process may have appended since our last look: the true end
    // is the file size, rounded down to a record boundary (every record in
    // one log has the same size). An unaligned tail means a writer died
    // mid-append; truncating it repairs the log for everyone.
    std::error_code ec;
    const std::uint64_t size = std::filesystem::file_size(path_, ec);
    if (ec || size < body_begin_) return;  // keep our view; append verifies
    const std::uint64_t aligned =
        body_begin_ + (size - body_begin_) / record_bytes() * record_bytes();
    if (aligned < size) std::filesystem::resize_file(path_, aligned, ec);
    if (aligned != end_) {
        end_ = aligned;
        records_ =
            static_cast<std::size_t>((end_ - body_begin_) / record_bytes());
    }
}

void DiskLog::scan(const std::function<void(std::uint64_t,
                                            std::span<const double>, double)>&
                       fn) {
    std::vector<double> x(dim_);
    bool torn = false;
    scan_records(
        file_, sizeof(RawHeader) + case_key_.size(), dim_, end_, torn,
        [&](std::uint64_t payload_offset, const std::vector<char>& payload) {
            std::memcpy(x.data(), payload.data(), dim_ * 8);
            double v = 0.0;
            std::memcpy(&v, payload.data() + dim_ * 8, 8);
            fn(payload_offset, x, v);
        });
}

std::uint64_t DiskLog::append(std::span<const double> x, double value) {
    if (x.size() != dim_)
        throw std::invalid_argument("DiskLog::append: dimension mismatch");
    const ScopedFlock guard(lock_fd_);
    reopen_if_replaced();
    seek_true_end();
    std::vector<char> payload(x.size_bytes() + 8);
    std::memcpy(payload.data(), x.data(), x.size_bytes());
    std::memcpy(payload.data() + x.size_bytes(), &value, 8);
    const std::uint64_t payload_offset = end_ + 4;
    // The checksum always covers the TRUE payload; an injected bit-flip
    // below therefore produces a record that fails verification on read —
    // exactly what real silent corruption looks like.
    const std::uint64_t checksum = fnv1a64(payload.data(), payload.size());

    util::IoFault fault = util::IoFault::kNone;
    if (util::IoFaultInjector* inj = util::io_fault_injector())
        fault = inj->next_write_fault();
    if (fault == util::IoFault::kEnospc)
        throw std::runtime_error("DiskLog: injected ENOSPC on '" + path_ +
                                 "'");
    if (fault == util::IoFault::kCorruptBit)
        payload[0] = static_cast<char>(payload[0] ^ 0x01);

    file_.clear();
    file_.seekp(static_cast<std::streamoff>(end_));
    const auto len = static_cast<std::uint32_t>(payload.size());
    write_pod(file_, len);
    if (fault == util::IoFault::kTornWrite) {
        // Half the payload reaches the disk, then the "device" fails. The
        // in-memory end_ stays put, so the next append's record-boundary
        // repair truncates the torn bytes (so does any other process's);
        // if the process dies first, open_and_recover truncates.
        file_.write(payload.data(),
                    static_cast<std::streamsize>(payload.size() / 2));
        file_.flush();
        throw std::runtime_error("DiskLog: injected torn write on '" + path_ +
                                 "'");
    }
    file_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    write_pod(file_, checksum);
    file_.flush();
    if (!file_)
        throw std::runtime_error("DiskLog: append to '" + path_ + "' failed");
    end_ += record_bytes();
    ++records_;
    if (++appends_since_sync_ >= kSyncEvery) sync();
    return payload_offset;
}

bool DiskLog::read_at(std::uint64_t offset, std::span<double> x_out,
                      double& value) {
    if (x_out.size() != dim_ || offset + payload_bytes() + 8 > end_)
        return false;
    if (util::IoFaultInjector* inj = util::io_fault_injector()) {
        const util::IoFault fault = inj->next_read_fault();
        // Short read and read-side corruption both surface as a failed
        // record fetch: the caller treats it as a cache miss and
        // re-evaluates, never as data.
        if (fault != util::IoFault::kNone) return false;
    }
    std::vector<char> payload(payload_bytes());
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(offset));
    file_.read(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (file_.gcount() != static_cast<std::streamsize>(payload.size()))
        return false;
    std::uint64_t checksum = 0;
    if (!read_pod(file_, checksum)) return false;
    if (checksum != fnv1a64(payload.data(), payload.size())) return false;
    std::memcpy(x_out.data(), payload.data(), dim_ * 8);
    std::memcpy(&value, payload.data() + dim_ * 8, 8);
    return true;
}

std::optional<LogInfo> DiskLog::inspect(const std::string& path) {
    namespace fs = std::filesystem;
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    const auto header = parse_header(is);
    if (!header) return std::nullopt;
    LogInfo info;
    info.path = path;
    info.case_key = header->case_key;
    info.dim = header->dim;
    std::error_code ec;
    info.file_bytes = fs::file_size(path, ec);
    info.valid_bytes = scan_records(
        is, header->body_begin, header->dim, info.file_bytes,
        info.tail_truncated,
        [&](std::uint64_t, const std::vector<char>&) { ++info.records; });
    return info;
}

CompactResult DiskLog::compact(const std::string& path) {
    namespace fs = std::filesystem;
    // Exclude concurrent appenders (other processes sharing the cache dir)
    // for the whole read-rewrite-rename: a record appended mid-compaction
    // would be silently dropped by the rename.
    const FdCloser lock{open_lock_file(path)};
    const ScopedFlock guard(lock.fd);
    const auto info = inspect(path);
    if (!info)
        throw std::runtime_error("compact: '" + path +
                                 "' is not a NOFIS eval log");
    CompactResult result;
    result.records_before = info->records;
    result.bytes_before = info->file_bytes;

    // Last write wins per exact input row; insertion order of the survivors
    // follows their final write so a rewritten log replays identically.
    std::ifstream is(path, std::ios::binary);
    const auto header = parse_header(is);
    std::map<std::vector<char>, std::pair<std::size_t, double>> latest;
    std::size_t order = 0;
    bool torn = false;
    scan_records(is, header->body_begin, header->dim, info->valid_bytes, torn,
                 [&](std::uint64_t, const std::vector<char>& payload) {
                     std::vector<char> key(payload.begin(),
                                           payload.end() - 8);
                     double v = 0.0;
                     std::memcpy(&v, payload.data() + header->dim * 8, 8);
                     latest[std::move(key)] = {order++, v};
                 });
    is.close();

    std::vector<std::pair<std::size_t, const std::vector<char>*>> by_order;
    by_order.reserve(latest.size());
    for (const auto& [key, ov] : latest) by_order.push_back({ov.first, &key});
    std::sort(by_order.begin(), by_order.end());

    const std::string tmp = path + ".compact.tmp";
    std::error_code ec;
    fs::remove(tmp, ec);  // stale temp from an interrupted compaction
    {
        DiskLog out(tmp, header->case_key, header->dim);
        std::vector<double> x(header->dim);
        for (const auto& [ord, key] : by_order) {
            (void)ord;
            std::memcpy(x.data(), key->data(), header->dim * 8);
            out.append(x, latest.at(*key).second);
        }
        result.records_after = out.records();
        result.bytes_after = out.valid_bytes();
        // The replacement must be durable BEFORE it replaces the original:
        // rename-then-sync could publish a file whose bytes never hit the
        // platter, losing every record to a crash.
        out.sync();
    }
    fs::rename(tmp, path);
    util::fsync_parent_dir(path);
    fs::remove(tmp + ".lck", ec);  // sidecar of the temp log
    return result;
}

}  // namespace nofis::evalcache
