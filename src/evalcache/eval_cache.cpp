#include "evalcache/eval_cache.hpp"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace nofis::evalcache {

namespace {

/// Rounds up to a power of two (shard counts index with a mask).
std::size_t pow2_at_least(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

bool same_row(std::span<const double> a, const std::vector<double>& b)
    noexcept {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

/// One cached evaluation. The full input row is stored so a lookup is
/// decided by byte equality, never by the 64-bit hash alone.
struct EvalCache::Entry {
    std::uint64_t hash = 0;
    Namespace ns = nullptr;
    std::vector<double> x;
    double value = 0.0;
};

struct EvalCache::Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        index;
    std::size_t bytes = 0;
};

struct EvalCache::NamespaceState {
    std::string key;
    std::size_t dim = 0;
    std::uint32_t id = 0;   ///< folded into the key hash
    std::mutex disk_mutex;  ///< serialises log reads/appends and the index
    std::unique_ptr<DiskLog> log;
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> disk_index;
};

EvalCache::EvalCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
    const std::size_t n = pow2_at_least(cfg_.shards == 0 ? 1 : cfg_.shards);
    shard_mask_ = n - 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

EvalCache::~EvalCache() = default;

std::size_t EvalCache::entry_bytes(std::size_t dim) noexcept {
    // Input row + value + list/map node bookkeeping. The constant slightly
    // overcharges small rows, which errs toward staying under the cap.
    return dim * sizeof(double) + 96;
}

std::uint64_t EvalCache::hash_key(Namespace ns,
                                  std::span<const double> x) const noexcept {
    if (cfg_.test_constant_hash) return 0x4e0f15ca11ULL;
    std::uint64_t h = fnv1a64(x.data(), x.size() * sizeof(double));
    // Fold the namespace in so the same row under two cases cannot alias.
    h ^= (static_cast<std::uint64_t>(ns->id) + 1) * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return h;
}

EvalCache::Shard& EvalCache::shard_for(std::uint64_t hash) noexcept {
    return *shards_[(hash >> 48) & shard_mask_];
}

std::string EvalCache::log_filename(const std::string& case_key) {
    std::string name;
    name.reserve(case_key.size() + 4);
    for (char c : case_key) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-';
        name.push_back(ok ? c : '_');
    }
    if (name.empty()) name = "case";
    return name + ".evc";
}

EvalCache::Namespace EvalCache::open_namespace(const std::string& case_key,
                                               std::size_t dim) {
    const std::lock_guard<std::mutex> lock(ns_mutex_);
    if (const auto it = ns_by_key_.find(case_key); it != ns_by_key_.end()) {
        if (it->second->dim != dim)
            throw std::runtime_error(
                "EvalCache: namespace '" + case_key + "' opened with dim " +
                std::to_string(dim) + ", but it has dim " +
                std::to_string(it->second->dim));
        return it->second;
    }

    auto state = std::make_unique<NamespaceState>();
    state->key = case_key;
    state->dim = dim;
    state->id = static_cast<std::uint32_t>(namespaces_.size());
    const Namespace ns = state.get();

    if (!cfg_.dir.empty()) {
        // Disk-I/O span: covers log open, torn-tail recovery and the index
        // scan. Only records when the caller owns the active span tree.
        const telemetry::ScopedSpan disk_span("cache_disk_open");
        std::filesystem::create_directories(cfg_.dir);
        const std::string path =
            (std::filesystem::path(cfg_.dir) / log_filename(case_key))
                .string();
        state->log = std::make_unique<DiskLog>(path, case_key, dim);
        state->log->scan([&](std::uint64_t offset, std::span<const double> x,
                             double value) {
            (void)value;
            state->disk_index[hash_key(ns, x)].push_back(offset);
        });
        disk_records_.fetch_add(state->log->records(),
                                std::memory_order_relaxed);
        telemetry::count("cache.disk_records", state->log->records());
    }

    namespaces_.push_back(std::move(state));
    ns_by_key_.emplace(case_key, ns);
    return ns;
}

bool EvalCache::lookup(Namespace ns, std::span<const double> x,
                       double& value) {
    const std::uint64_t hash = hash_key(ns, x);

    {
        Shard& shard = shard_for(hash);
        const std::lock_guard<std::mutex> lock(shard.mutex);
        if (const auto it = shard.index.find(hash); it != shard.index.end()) {
            for (const auto& entry_it : it->second) {
                if (entry_it->ns != ns || !same_row(x, entry_it->x)) continue;
                value = entry_it->value;
                shard.lru.splice(shard.lru.begin(), shard.lru, entry_it);
                hits_.fetch_add(1, std::memory_order_relaxed);
                telemetry::count("cache.hits");
                return true;
            }
        }
    }

    // Tier 2: probe the namespace's disk index, verify the stored row
    // byte-for-byte, and promote the hit into tier 1.
    NamespaceState& state = *ns;
    if (state.log) {
        std::vector<double> row(state.dim);
        double v = 0.0;
        bool found = false;
        {
            const std::lock_guard<std::mutex> lock(state.disk_mutex);
            if (const auto it = state.disk_index.find(hash);
                it != state.disk_index.end()) {
                for (const std::uint64_t offset : it->second) {
                    if (!state.log->read_at(offset, row, v)) continue;
                    telemetry::count("cache.disk_reads");
                    if (!same_row(x, row)) continue;
                    found = true;
                    break;
                }
            }
        }
        if (found) {
            value = v;
            insert_mem(ns, hash, x, v);
            hits_.fetch_add(1, std::memory_order_relaxed);
            disk_hits_.fetch_add(1, std::memory_order_relaxed);
            telemetry::count("cache.hits");
            telemetry::count("cache.disk_hits");
            return true;
        }
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    telemetry::count("cache.misses");
    return false;
}

bool EvalCache::insert_mem(Namespace ns, std::uint64_t hash,
                           std::span<const double> x, double value) {
    Shard& shard = shard_for(hash);
    const std::size_t eb = entry_bytes(x.size());
    const std::size_t shard_cap =
        std::max<std::size_t>(cfg_.mem_bytes / shards_.size(), 1);
    std::size_t evicted = 0;
    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        auto& bucket = shard.index[hash];
        for (const auto& entry_it : bucket)
            if (entry_it->ns == ns && same_row(x, entry_it->x))
                return false;  // first write wins; g is pure

        shard.lru.push_front(
            Entry{hash, ns, std::vector<double>(x.begin(), x.end()), value});
        bucket.push_back(shard.lru.begin());
        shard.bytes += eb;
        bytes_.fetch_add(eb, std::memory_order_relaxed);
        entries_.fetch_add(1, std::memory_order_relaxed);

        // LRU eviction at the byte cap (the newest entry always survives,
        // even when it alone exceeds the shard's slice).
        while (shard.bytes > shard_cap && shard.lru.size() > 1) {
            const auto victim = std::prev(shard.lru.end());
            auto& vb = shard.index[victim->hash];
            for (auto vit = vb.begin(); vit != vb.end(); ++vit) {
                if (*vit == victim) {
                    vb.erase(vit);
                    break;
                }
            }
            if (vb.empty()) shard.index.erase(victim->hash);
            const std::size_t victim_bytes = entry_bytes(victim->x.size());
            shard.bytes -= victim_bytes;
            bytes_.fetch_sub(victim_bytes, std::memory_order_relaxed);
            entries_.fetch_sub(1, std::memory_order_relaxed);
            shard.lru.pop_back();
            ++evicted;
        }
    }
    insertions_.fetch_add(1, std::memory_order_relaxed);
    if (evicted > 0) {
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        telemetry::count("cache.evictions", evicted);
    }
    telemetry::metric("cache.bytes",
                      static_cast<double>(
                          bytes_.load(std::memory_order_relaxed)));
    return true;
}

void EvalCache::insert(Namespace ns, std::span<const double> x,
                       double value) {
    // A faulted evaluation (NaN/inf) must never be replayed as truth.
    if (!std::isfinite(value)) return;
    NamespaceState& state = *ns;
    if (x.size() != state.dim) return;

    const std::uint64_t hash = hash_key(ns, x);
    if (!insert_mem(ns, hash, x, value)) return;

    if (state.log) {
        // A failed append (ENOSPC, torn write — real or injected) must not
        // poison the computation: the value is already served from tier 1,
        // so losing the durable copy costs a future cold-start re-eval at
        // worst. Swallow, count, continue.
        try {
            const std::lock_guard<std::mutex> lock(state.disk_mutex);
            const std::uint64_t offset = state.log->append(x, value);
            state.disk_index[hash].push_back(offset);
            disk_appends_.fetch_add(1, std::memory_order_relaxed);
            telemetry::count("cache.disk_appends");
        } catch (const std::exception&) {
            disk_errors_.fetch_add(1, std::memory_order_relaxed);
            telemetry::count("cache.disk_errors");
        }
    }
}

CacheStats EvalCache::stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    s.disk_records = disk_records_.load(std::memory_order_relaxed);
    s.disk_appends = disk_appends_.load(std::memory_order_relaxed);
    s.disk_errors = disk_errors_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace nofis::evalcache
