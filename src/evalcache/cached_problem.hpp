#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "estimators/problem.hpp"
#include "evalcache/eval_cache.hpp"

namespace nofis::evalcache {

/// Memoizing decorator around any RareEventProblem, backed by a (shared)
/// EvalCache. Composes with GuardedProblem / CountedProblem in either
/// order:
///
///   * Guarded(Cached(problem)) — the estimator's nominal wiring: the cache
///     sits closest to the expensive g, so retry probes also consult it,
///     and only raw simulator outputs are ever stored.
///   * Cached(Guarded(problem)) — caller-side wiring for the baselines: the
///     guard resolves faults first and the cache stores the final value.
///
/// Poisoning rules (the satellite invariant): an evaluation that throws
/// propagates without storing anything, and a non-finite value is returned
/// but never inserted — EvalCache::insert drops it too, as a second line of
/// defence. Under retry-perturb, only the final successful (x, g(x)) pair
/// lands in the cache (keyed by the perturbed row the retry evaluated).
///
/// Accounting: hits()/misses() count value lookups on THIS decorator
/// instance — the honest fresh-vs-cached split for one run, even when the
/// underlying EvalCache is shared across concurrent runs. Gradient calls
/// pass through uncounted (a gradient cannot be served from a value cache,
/// so it is always fresh work), but their returned value is inserted
/// opportunistically so later value lookups at the same row hit.
///
/// Determinism: g is a pure function of its input row and values round-trip
/// bit-for-bit, so results are bitwise identical with the cache off, cold,
/// warm, or shared across thread counts — only the fresh-call count
/// changes.
class CachedProblem final : public estimators::RareEventProblem {
public:
    /// `case_key` names the cache namespace (use testcases::cache_key for
    /// registry cases). Throws when the key was opened with another dim.
    CachedProblem(const estimators::RareEventProblem& inner,
                  std::shared_ptr<EvalCache> cache, const std::string& case_key);

    std::size_t dim() const noexcept override { return inner_->dim(); }
    double fd_step() const noexcept override { return inner_->fd_step(); }

    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;
    double g_indexed(std::size_t index,
                     std::span<const double> x) const override;
    double g_grad_indexed(std::size_t index, std::span<const double> x,
                          std::span<double> grad_out) const override;

    /// Value lookups served from the cache / evaluated fresh, on this
    /// decorator instance.
    std::size_t hits() const noexcept {
        return hits_.load(std::memory_order_relaxed);
    }
    std::size_t misses() const noexcept {
        return misses_.load(std::memory_order_relaxed);
    }

    const std::shared_ptr<EvalCache>& cache() const noexcept {
        return cache_;
    }
    const estimators::RareEventProblem& inner() const noexcept {
        return *inner_;
    }

private:
    const estimators::RareEventProblem* inner_;
    std::shared_ptr<EvalCache> cache_;
    EvalCache::Namespace ns_;
    mutable std::atomic<std::size_t> hits_{0};
    mutable std::atomic<std::size_t> misses_{0};
};

/// Adds the honest g-call split to the active telemetry trace:
/// g_calls.total / g_calls.cached / g_calls.fresh, with
/// fresh + cached == total by construction. Every site that reports a
/// call total goes through here so the invariant holds record-wide.
void report_call_split(std::size_t total_calls, std::size_t cached_calls);

}  // namespace nofis::evalcache

namespace nofis::estimators {
/// The decorator composes with GuardedProblem/CountedProblem, so it is
/// aliased into the estimators vocabulary alongside them.
using CachedProblem = evalcache::CachedProblem;
}  // namespace nofis::estimators
