#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace nofis::evalcache {

/// On-disk format of one g-evaluation log (tier 2 of the cache):
///
///   header:  magic "NOFISEVC" | u32 version | u32 reserved
///            u64 dim | u32 key_len | key bytes
///   record:  u32 payload_len (= dim*8 + 8)
///            payload = dim input doubles, raw bits | g value, raw bits
///            u64 FNV-1a checksum of the payload
///
/// Records are append-only and each carries its own length and checksum, so
/// a crash mid-append can corrupt at most the unfinished tail: open() scans
/// forward, keeps every record that passes its length and checksum, and
/// truncates the file at the first torn or corrupt one. Values round-trip
/// as raw 8-byte patterns, so a cached g is returned bit-for-bit.
///
/// Multi-process sharing (cluster workers with one --cache-dir): a sidecar
/// `<path>.lck` file is flock(2)ed around open/recovery, every append, and
/// compaction, so concurrent writers interleave whole records. Appends seek
/// to the true end of file under the lock (another process may have grown
/// it); every record in one log has the same size, so an unaligned tail left
/// by a crashed writer is repaired by truncating to the last record
/// boundary. A compaction by another process replaces the inode; append
/// detects that (stat) and transparently reopens, while reads keep using the
/// already-open (old) inode, where this process's offsets stay valid.
/// Duplicate rows appended by different processes are benign: g is pure,
/// and compaction dedups last-write-wins.
///
/// The log stores byte order of the machine that wrote it (cache files are
/// a local acceleration, not an interchange format); the header is enough
/// for `nofis_cli cache-info` to describe a file standalone.

/// FNV-1a over `n` bytes; the per-record checksum.
std::uint64_t fnv1a64(const void* data, std::size_t n) noexcept;

/// Parsed header plus scan results of one log file.
struct LogInfo {
    std::string path;
    std::string case_key;       ///< cache namespace ("<case>#d<dim>")
    std::size_t dim = 0;
    std::size_t records = 0;    ///< records that passed checksum on scan
    std::uint64_t file_bytes = 0;
    std::uint64_t valid_bytes = 0;  ///< header + intact records
    bool tail_truncated = false;    ///< scan found a torn/corrupt tail
};

/// Result of rewriting a log with duplicate keys (last write wins) and any
/// torn tail dropped.
struct CompactResult {
    std::size_t records_before = 0;
    std::size_t records_after = 0;
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;
};

/// One append-only evaluation log. Not internally synchronised: EvalCache
/// serialises access per namespace.
class DiskLog {
public:
    /// Opens (or creates) the log at `path` for namespace `case_key` with
    /// input dimension `dim`. Existing files are scanned; a torn tail is
    /// truncated so appends continue from the last intact record. Throws
    /// std::runtime_error on an unreadable file or a header that does not
    /// match (wrong magic/version/dim/key).
    DiskLog(std::string path, std::string case_key, std::size_t dim);

    /// Best-effort final sync; never throws.
    ~DiskLog();

    /// Invokes `fn(offset, x, value)` for every intact record, in append
    /// order. Offsets are stable (byte position of the record's payload).
    void scan(const std::function<void(std::uint64_t, std::span<const double>,
                                       double)>& fn);

    /// Appends one record and flushes; returns the payload offset. Every
    /// `kSyncEvery` appends the file is additionally fsynced (bounded-loss
    /// durability: a power cut costs at most the unsynced tail, which the
    /// next open truncates at the first torn record). Consults the global
    /// util::IoFaultInjector, so injected ENOSPC / torn-write / bit-flip
    /// faults exercise exactly this path.
    std::uint64_t append(std::span<const double> x, double value);

    /// Flushes stream buffers and fsyncs the log file. Throws
    /// std::runtime_error when the kernel reports the sync failed.
    void sync();

    /// Appends between automatic fsyncs (see append()).
    static constexpr std::size_t kSyncEvery = 64;

    /// Reads the record whose payload starts at `offset` into x_out/value.
    /// Returns false when the offset is out of range or the record fails
    /// its checksum (a compaction raced us, or the caller is confused).
    bool read_at(std::uint64_t offset, std::span<double> x_out,
                 double& value);

    std::size_t records() const noexcept { return records_; }
    std::uint64_t valid_bytes() const noexcept { return end_; }
    const std::string& path() const noexcept { return path_; }
    bool tail_was_truncated() const noexcept { return tail_truncated_; }

    std::size_t record_bytes() const noexcept {
        return 4 + payload_bytes() + 8;
    }
    std::size_t payload_bytes() const noexcept { return dim_ * 8 + 8; }

    /// Header + scan of an arbitrary log file, without opening it for
    /// writing. Returns std::nullopt when the file is not a NOFIS eval log.
    static std::optional<LogInfo> inspect(const std::string& path);

    /// Rewrites `path` keeping the last record per exact input row and
    /// dropping any torn tail; atomic (write temp + rename). Throws
    /// std::runtime_error when the file is not a valid log.
    static CompactResult compact(const std::string& path);

private:
    void open_and_recover();  ///< caller must hold the sidecar lock
    void write_header();
    void reopen_if_replaced();
    void seek_true_end();

    std::string path_;
    std::string case_key_;
    std::size_t dim_ = 0;
    std::fstream file_;
    int lock_fd_ = -1;           ///< sidecar `<path>.lck`, flock'd per append
    std::uint64_t ino_ = 0;      ///< inode backing file_; detects compaction
    std::uint64_t body_begin_ = 0;  ///< offset of the first record
    std::uint64_t end_ = 0;      ///< byte offset just past the last record
    std::size_t records_ = 0;
    std::size_t appends_since_sync_ = 0;
    bool tail_truncated_ = false;
};

}  // namespace nofis::evalcache
