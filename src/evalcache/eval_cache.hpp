#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "evalcache/disk_log.hpp"

namespace nofis::evalcache {

/// Two-tier memoization settings for g(x) evaluations.
struct CacheConfig {
    /// Tier-1 (in-memory) capacity in bytes, across all shards. Each cached
    /// entry is charged its input row, value and bookkeeping overhead; the
    /// per-shard LRU evicts once its slice of this budget is exceeded.
    std::size_t mem_bytes = 64ull << 20;
    /// Tier-2 directory: one append-only, checksummed log per
    /// (test case, dim). Empty = in-memory only.
    std::string dir;
    /// Striped-mutex shard count (rounded up to a power of two) so
    /// parallel_for lanes and the serve scheduler can hit the cache
    /// concurrently.
    std::size_t shards = 16;
    /// Test hook: collapse every key onto one hash value, forcing maximal
    /// collisions. Correctness must not change — entries are verified
    /// against the full input row bytes, never just the hash.
    bool test_constant_hash = false;
};

/// Snapshot of the cache's counters (all monotonic except bytes/entries).
struct CacheStats {
    std::uint64_t hits = 0;          ///< lookups served (memory + disk)
    std::uint64_t disk_hits = 0;     ///< subset of hits read from tier 2
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;         ///< current tier-1 footprint
    std::uint64_t entries = 0;       ///< current tier-1 entry count
    std::uint64_t disk_records = 0;  ///< records indexed across open logs
    std::uint64_t disk_appends = 0;
    /// Disk-tier append failures (real or injected ENOSPC / torn writes)
    /// swallowed by insert(): the value stays served from tier 1 and the
    /// run continues; only durability of that record is lost.
    std::uint64_t disk_errors = 0;

    double hit_rate() const noexcept {
        const std::uint64_t total = hits + misses;
        return total > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    }
};

/// Process-wide memoization of g(x) evaluations, shared by estimator runs,
/// benches and the serve scheduler (DESIGN.md §11).
///
///   * Tier 1: sharded in-memory LRU. Each shard has its own mutex, so
///     concurrent lookups from parallel_for lanes stripe across locks.
///     Entries store the full input row — a lookup compares every byte of
///     x, so 64-bit hash collisions cannot alias two inputs by
///     construction.
///   * Tier 2 (optional): one crash-safe append-only log per namespace
///     (test case + dim) under `dir`. Opened logs are indexed by hash →
///     file offset; a tier-1 miss probes the index, reads the record back,
///     verifies the stored row bytes, and promotes the hit into tier 1.
///
/// Correctness contract: g is a pure function of its input row, so serving
/// a hit is bitwise identical to re-evaluating — results never depend on
/// the cache being off, cold, warm, or shared across thread counts; only
/// the fresh-call count changes. The cache never stores non-finite values
/// (a faulted evaluation must not be replayed as truth; see
/// estimators::CachedProblem).
///
/// Telemetry: cache.hits / cache.misses / cache.evictions counters and a
/// cache.bytes metric on the active trace; namespace opens record their
/// disk scan under a "cache_disk_open" span.
class EvalCache {
public:
    struct NamespaceState;
    /// Opaque handle to one (case key, dim) namespace. Stable for the
    /// cache's lifetime, so hot-path lookups never touch the namespace
    /// registry (or its lock) again after open_namespace.
    using Namespace = NamespaceState*;

    explicit EvalCache(CacheConfig cfg);
    ~EvalCache();
    EvalCache(const EvalCache&) = delete;
    EvalCache& operator=(const EvalCache&) = delete;

    /// Resolves (creating on first use) the namespace for `case_key` with
    /// input dimension `dim`. With a disk tier this opens/recovers the
    /// namespace's log and indexes its records. Throws std::runtime_error
    /// when `case_key` was previously opened with a different dim or its
    /// log file is unusable.
    Namespace open_namespace(const std::string& case_key, std::size_t dim);

    /// Tier-1 then tier-2 lookup; on a hit writes the cached g into `value`
    /// and returns true. `x` must match the namespace dim.
    bool lookup(Namespace ns, std::span<const double> x, double& value);

    /// Stores (x, value). Non-finite values and duplicate keys are ignored
    /// (first write wins — g is pure, so a duplicate carries the same
    /// value). With a disk tier the record is also appended to the log.
    void insert(Namespace ns, std::span<const double> x, double value);

    CacheStats stats() const;
    const CacheConfig& config() const noexcept { return cfg_; }

    /// Canonical log filename for a namespace key (sanitised so arbitrary
    /// case keys cannot escape the cache directory).
    static std::string log_filename(const std::string& case_key);

    /// Bytes one tier-1 entry of input dimension `dim` is charged against
    /// mem_bytes (row storage plus node bookkeeping).
    static std::size_t entry_bytes(std::size_t dim) noexcept;

private:
    struct Entry;
    struct Shard;

    std::uint64_t hash_key(Namespace ns,
                           std::span<const double> x) const noexcept;
    Shard& shard_for(std::uint64_t hash) noexcept;
    /// Inserts into tier 1 only; returns false when the key already exists.
    bool insert_mem(Namespace ns, std::uint64_t hash,
                    std::span<const double> x, double value);

    CacheConfig cfg_;
    std::size_t shard_mask_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex ns_mutex_;
    std::map<std::string, Namespace> ns_by_key_;
    std::vector<std::unique_ptr<NamespaceState>> namespaces_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> disk_hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> insertions_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> entries_{0};
    std::atomic<std::uint64_t> disk_records_{0};
    std::atomic<std::uint64_t> disk_appends_{0};
    std::atomic<std::uint64_t> disk_errors_{0};
};

}  // namespace nofis::evalcache
