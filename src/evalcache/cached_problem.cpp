#include "evalcache/cached_problem.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace nofis::evalcache {

CachedProblem::CachedProblem(const estimators::RareEventProblem& inner,
                             std::shared_ptr<EvalCache> cache,
                             const std::string& case_key)
    : inner_(&inner),
      cache_(std::move(cache)),
      ns_(cache_->open_namespace(case_key, inner.dim())) {}

double CachedProblem::g_indexed(std::size_t index,
                                std::span<const double> x) const {
    double value = 0.0;
    if (cache_->lookup(ns_, x, value)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return value;
    }
    // Count the miss before evaluating: a throwing evaluation was still an
    // arrival, and it must propagate without storing anything.
    misses_.fetch_add(1, std::memory_order_relaxed);
    value = inner_->g_indexed(index, x);
    cache_->insert(ns_, x, value);  // drops non-finite values
    return value;
}

double CachedProblem::g(std::span<const double> x) const {
    double value = 0.0;
    if (cache_->lookup(ns_, x, value)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return value;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    value = inner_->g(x);  // un-indexed path: let a stateful inner self-index
    cache_->insert(ns_, x, value);
    return value;
}

double CachedProblem::g_grad_indexed(std::size_t index,
                                     std::span<const double> x,
                                     std::span<double> grad_out) const {
    // A gradient cannot be served from the value cache, so the call passes
    // through (always fresh, not counted in hits/misses); the value it
    // returns is stored so later value lookups at this row hit.
    const double value = inner_->g_grad_indexed(index, x, grad_out);
    cache_->insert(ns_, x, value);
    return value;
}

double CachedProblem::g_grad(std::span<const double> x,
                             std::span<double> grad_out) const {
    const double value = inner_->g_grad(x, grad_out);
    cache_->insert(ns_, x, value);
    return value;
}

void report_call_split(std::size_t total_calls, std::size_t cached_calls) {
    if (telemetry::RunTrace* tr = telemetry::active()) {
        const std::size_t cached = std::min(cached_calls, total_calls);
        tr->add_counter("g_calls.total", total_calls);
        tr->add_counter("g_calls.cached", cached);
        tr->add_counter("g_calls.fresh", total_calls - cached);
    }
}

}  // namespace nofis::evalcache
