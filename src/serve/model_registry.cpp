#include "serve/model_registry.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "flow/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace nofis::serve {

namespace {
constexpr const char* kSuffix = ".nofisflow";

bool valid_name(const std::string& name) {
    if (name.empty() || name.front() == '.') return false;
    return name.find('/') == std::string::npos &&
           name.find('\\') == std::string::npos;
}
}  // namespace

ModelRegistry::ModelRegistry(std::string dir) : dir_(std::move(dir)) {}

std::string ModelRegistry::path_for(const std::string& name) const {
    if (!valid_name(name))
        throw ServeError(ErrorCode::kBadRequest,
                         "invalid model name '" + name + "'");
    return dir_ + "/" + name + kSuffix;
}

std::shared_ptr<const Model> ModelRegistry::load_locked(
    const std::string& name) {
    const std::string path = path_for(name);
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        throw ServeError(ErrorCode::kUnknownModel,
                         "no model '" + name + "' in " + dir_);
    auto model = std::make_shared<const Model>(name, flow::load_stack(path));
    telemetry::count("serve.registry.loads");
    return model;
}

std::shared_ptr<const Model> ModelRegistry::get(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = models_.find(name);
    if (it != models_.end()) return it->second;
    auto model = load_locked(name);
    models_.emplace(name, model);
    return model;
}

std::shared_ptr<const Model> ModelRegistry::reload(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto model = load_locked(name);
    models_[name] = model;
    return model;
}

bool ModelRegistry::evict(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return models_.erase(name) > 0;
}

std::vector<std::string> ModelRegistry::available() const {
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
        const std::string file = entry.path().filename().string();
        if (file.size() <= std::strlen(kSuffix)) continue;
        if (file.substr(file.size() - std::strlen(kSuffix)) != kSuffix)
            continue;
        const std::string name =
            file.substr(0, file.size() - std::strlen(kSuffix));
        if (valid_name(name)) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<std::string> ModelRegistry::resident() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto& [name, model] : models_) names.push_back(name);
    return names;
}

}  // namespace nofis::serve
