#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace nofis::serve {

namespace {

void send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) throw std::runtime_error("send failed");
        sent += static_cast<std::size_t>(n);
    }
}

}  // namespace

/// One accepted connection: a reader thread that decodes lines and submits
/// them, and a writer thread that emits responses in request order. The fd
/// stays allocated until server teardown (shutdown() only half-closes), so
/// a racing teardown can never close a recycled descriptor.
struct Server::Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::future<Response>> pending;  ///< responses, request order
    bool read_done = false;
    bool broken = false;  ///< write side failed; drain without sending
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      registry_(cfg_.model_dir),
      scheduler_(registry_, cfg_.scheduler) {
    scheduler_.set_shutdown_handler([this] { request_shutdown(); });

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw std::runtime_error("serve: bad host '" + cfg_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("serve: cannot bind " + cfg_.host + ":" +
                                 std::to_string(cfg_.port));
    }
    if (::listen(listen_fd_, cfg_.backlog) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("serve: listen() failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { shutdown(); }

void Server::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopped_.load(std::memory_order_relaxed)) return;
            const int err = errno;
            // Transient failures must not kill the listener: EINTR and
            // ECONNABORTED (peer gave up while queued) retry immediately;
            // resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) backs off
            // briefly so in-flight connections can close and free
            // descriptors. Only a genuinely dead listener ends the loop.
            if (err == EINTR || err == ECONNABORTED) continue;
            if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
                err == ENOMEM) {
                telemetry::count("serve.accept_backoff");
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                continue;
            }
            return;  // EBADF/EINVAL: listener closed underneath us
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        telemetry::count("serve.connections");

        const std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.push_back(std::make_unique<Connection>());
        Connection& conn = *connections_.back();
        conn.fd = fd;
        serve_connection(conn);
    }
}

void Server::serve_connection(Connection& conn) {
    conn.reader = std::thread([this, &conn] {
        std::string buffer;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
            if (n <= 0) break;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t start = 0;
            for (;;) {
                const std::size_t nl = buffer.find('\n', start);
                if (nl == std::string::npos) break;
                std::string_view line(buffer.data() + start, nl - start);
                start = nl + 1;
                if (line.empty()) continue;

                std::future<Response> future;
                try {
                    future = scheduler_.submit(Request::decode(line));
                } catch (const ServeError& e) {
                    std::promise<Response> ready;
                    ready.set_value(Response::failure(Request{}, e));
                    future = ready.get_future();
                }
                {
                    const std::lock_guard<std::mutex> lock(conn.mutex);
                    conn.pending.push_back(std::move(future));
                }
                conn.cv.notify_all();
            }
            buffer.erase(0, start);
        }
        {
            const std::lock_guard<std::mutex> lock(conn.mutex);
            conn.read_done = true;
        }
        conn.cv.notify_all();
    });

    conn.writer = std::thread([&conn] {
        for (;;) {
            std::future<Response> next;
            {
                std::unique_lock<std::mutex> lock(conn.mutex);
                conn.cv.wait(lock, [&] {
                    return !conn.pending.empty() || conn.read_done;
                });
                if (conn.pending.empty()) return;  // read_done && drained
                next = std::move(conn.pending.front());
                conn.pending.pop_front();
            }
            // Futures always complete (the scheduler resolves or rejects
            // every submission), so this never blocks past shutdown.
            const Response res = next.get();
            if (conn.broken) continue;
            try {
                send_all(conn.fd, res.encode() + "\n");
            } catch (const std::exception&) {
                conn.broken = true;  // keep draining so futures are consumed
            }
        }
    });
}

void Server::wait(const std::atomic<bool>* stop_flag) {
    std::unique_lock<std::mutex> lock(wait_mutex_);
    while (!shutdown_requested_) {
        if (stop_flag != nullptr && stop_flag->load(std::memory_order_relaxed))
            break;
        wait_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
}

void Server::request_shutdown() {
    {
        const std::lock_guard<std::mutex> lock(wait_mutex_);
        shutdown_requested_ = true;
    }
    wait_cv_.notify_all();
}

void Server::close_listener() {
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);  // unblocks accept() on Linux
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void Server::shutdown() {
    if (stopped_.exchange(true)) return;
    request_shutdown();
    close_listener();
    if (accept_thread_.joinable()) accept_thread_.join();

    // Drain + stop the scheduler first: every in-flight future resolves, so
    // connection writers cannot block on get() below.
    scheduler_.stop();

    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& conn : connections_) {
        ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader's recv
        if (conn->reader.joinable()) conn->reader.join();
        if (conn->writer.joinable()) conn->writer.join();
        ::close(conn->fd);
        conn->fd = -1;
    }
    connections_.clear();
}

}  // namespace nofis::serve
