#include "serve/cluster/cluster.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "serve/tcp_client.hpp"
#include "telemetry/telemetry.hpp"
#include "util/atomic_file.hpp"

namespace nofis::serve::cluster {

namespace {

void send_all(int fd, const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) throw std::runtime_error("send failed");
        sent += static_cast<std::size_t>(n);
    }
}

}  // namespace

std::size_t route_worker(std::string_view model,
                         std::size_t workers) noexcept {
    if (workers <= 1) return 0;
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : model) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h % workers);
}

/// One worker slot: the process plus the routing state the front keeps for
/// it. `generation` bumps on every respawn so cached connections to the old
/// process are recognised as stale; `in_flight` counts requests forwarded
/// but not yet answered, which is what drain waits on.
struct Cluster::Slot {
    std::size_t index = 0;
    std::mutex mutex;
    std::condition_variable cv;
    std::unique_ptr<WorkerProcess> proc;  ///< null mid-respawn
    std::uint64_t generation = 0;
    bool draining = false;
    std::size_t in_flight = 0;
    std::uint64_t restarts = 0;
};

/// One accepted client connection. The reader thread decodes each line and
/// either answers it at the front (admin verbs) or forwards it, pipelined,
/// over this connection's private link to the owning worker; a FIFO tag
/// queue records where each response will come from. The writer thread pops
/// tags in order and relays one response line per tag — worker links answer
/// in request order, so client order is preserved without response ids.
struct Cluster::ClientConn {
    int fd = -1;
    std::thread reader;
    std::thread writer;

    struct Tag {
        int worker = -1;                  ///< -1 = answered at the front
        std::shared_ptr<TcpClient> link;  ///< link the request went out on
        std::uint64_t id = 0;
        Op op = Op::kPing;
        std::string local;  ///< ready response line when worker == -1
    };
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Tag> pending;
    bool read_done = false;
    bool broken = false;

    /// Reader-thread state: one lazily opened link per worker slot. Tags
    /// hold a shared_ptr to the link they were sent on, so a reconnect
    /// (after a worker respawn) never yanks a link out from under the
    /// writer draining earlier responses.
    struct Link {
        std::shared_ptr<TcpClient> client;
        std::uint64_t generation = 0;
    };
    std::vector<Link> links;
};

Cluster::Cluster(ClusterConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.workers == 0) cfg_.workers = 1;
    slots_.reserve(cfg_.workers);
    for (std::size_t i = 0; i < cfg_.workers; ++i) {
        slots_.push_back(std::make_unique<Slot>());
        slots_.back()->index = i;
    }
    // Workers first: a client connecting the moment port() is published
    // must find routable workers. A spawn failure here throws; member
    // destructors terminate the workers already running.
    for (std::size_t i = 0; i < slots_.size(); ++i) spawn_slot(i);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("cluster: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw std::runtime_error("cluster: bad host '" + cfg_.host + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("cluster: cannot bind " + cfg_.host + ":" +
                                 std::to_string(cfg_.port));
    }
    if (::listen(listen_fd_, cfg_.backlog) != 0) {
        ::close(listen_fd_);
        throw std::runtime_error("cluster: listen() failed");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);

    accept_thread_ = std::thread([this] { accept_loop(); });
    health_thread_ = std::thread([this] { health_loop(); });
}

Cluster::~Cluster() { shutdown(); }

std::string Cluster::worker_metrics_path(std::size_t i) const {
    if (cfg_.metrics_out.empty()) return "";
    return cfg_.metrics_out + ".worker-" + std::to_string(i) + ".json";
}

void Cluster::spawn_slot(std::size_t i) {
    WorkerOptions opts = cfg_.worker;
    opts.metrics_out = worker_metrics_path(i);
    auto proc = std::make_unique<WorkerProcess>(opts);
    Slot& slot = *slots_[i];
    const std::lock_guard<std::mutex> lock(slot.mutex);
    slot.proc = std::move(proc);
    ++slot.generation;
    slot.cv.notify_all();
}

pid_t Cluster::worker_pid(std::size_t i) {
    Slot& slot = *slots_.at(i);
    const std::lock_guard<std::mutex> lock(slot.mutex);
    return slot.proc ? slot.proc->pid() : -1;
}

std::uint16_t Cluster::worker_port(std::size_t i) {
    Slot& slot = *slots_.at(i);
    const std::lock_guard<std::mutex> lock(slot.mutex);
    return slot.proc ? slot.proc->port() : 0;
}

std::uint64_t Cluster::worker_restarts(std::size_t i) {
    Slot& slot = *slots_.at(i);
    const std::lock_guard<std::mutex> lock(slot.mutex);
    return slot.restarts;
}

void Cluster::accept_loop() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed)) return;
            const int err = errno;
            if (err == EINTR || err == ECONNABORTED) continue;
            if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
                err == ENOMEM) {
                std::this_thread::sleep_for(std::chrono::milliseconds(10));
                continue;
            }
            return;  // listener closed underneath us
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        telemetry::count("serve.front.connections");

        const std::lock_guard<std::mutex> lock(conn_mutex_);
        connections_.push_back(std::make_unique<ClientConn>());
        ClientConn& conn = *connections_.back();
        conn.fd = fd;
        conn.links.resize(slots_.size());
        serve_client(conn);
    }
}

void Cluster::push_local(ClientConn& conn, std::string response) {
    {
        const std::lock_guard<std::mutex> lock(conn.mutex);
        ClientConn::Tag tag;
        tag.local = std::move(response);
        conn.pending.push_back(std::move(tag));
    }
    conn.cv.notify_all();
}

void Cluster::forward_line(ClientConn& conn, std::size_t w,
                           const Request& req, const std::string& line) {
    Slot& slot = *slots_[w];
    std::uint16_t port = 0;
    std::uint64_t gen = 0;
    {
        std::unique_lock<std::mutex> lock(slot.mutex);
        // Routing-level drain: a draining worker receives nothing new, so
        // requests park here until resume (or shutdown).
        slot.cv.wait(lock, [&] {
            return !slot.draining ||
                   stopping_.load(std::memory_order_relaxed);
        });
        if (stopping_.load(std::memory_order_relaxed)) {
            push_local(conn,
                       Response::failure(req, ErrorCode::kShuttingDown,
                                         "cluster stopping")
                           .encode());
            return;
        }
        if (!slot.proc) {
            // Mid-respawn window: fail fast with a structured error, never
            // hang the client.
            telemetry::count("serve.front.worker_unavailable");
            push_local(conn,
                       Response::failure(
                           req, ErrorCode::kWorkerUnavailable,
                           "worker " + std::to_string(w) + " is restarting")
                           .encode());
            return;
        }
        port = slot.proc->port();
        gen = slot.generation;
        ++slot.in_flight;
    }

    const auto fail = [&] {
        {
            const std::lock_guard<std::mutex> lock(slot.mutex);
            if (slot.in_flight > 0) --slot.in_flight;
        }
        slot.cv.notify_all();
        telemetry::count("serve.front.worker_unavailable");
        push_local(conn,
                   Response::failure(req, ErrorCode::kWorkerUnavailable,
                                     "worker " + std::to_string(w) +
                                         " is unreachable; respawning")
                       .encode());
    };

    ClientConn::Link& link = conn.links[w];
    if (!link.client || link.generation != gen) {
        try {
            link.client = std::make_shared<TcpClient>(cfg_.host, port);
            link.generation = gen;
        } catch (const std::exception&) {
            link.client.reset();
            fail();
            return;
        }
    }
    try {
        link.client->send_line(line);
    } catch (const std::exception&) {
        link.client.reset();
        fail();
        return;
    }
    telemetry::count("serve.front.forwarded");
    {
        const std::lock_guard<std::mutex> lock(conn.mutex);
        ClientConn::Tag tag;
        tag.worker = static_cast<int>(w);
        tag.link = link.client;
        tag.id = req.id;
        tag.op = req.op;
        conn.pending.push_back(std::move(tag));
    }
    conn.cv.notify_all();
}

std::string Cluster::admin_call(std::size_t w, const Request& req,
                                const std::string& line) {
    Slot& slot = *slots_[w];
    std::uint16_t port = 0;
    {
        const std::lock_guard<std::mutex> lock(slot.mutex);
        if (slot.proc) port = slot.proc->port();
    }
    if (port != 0) {
        try {
            TcpClient admin(cfg_.host, port);
            return admin.call_raw(line);
        } catch (const std::exception&) {
        }
    }
    telemetry::count("serve.front.worker_unavailable");
    return Response::failure(req, ErrorCode::kWorkerUnavailable,
                             "worker " + std::to_string(w) + " unavailable")
        .encode();
}

void Cluster::route_line(ClientConn& conn, const std::string& line) {
    telemetry::count("serve.front.requests");
    Request req;
    try {
        req = Request::decode(line);
    } catch (const ServeError& e) {
        push_local(conn, Response::failure(Request{}, e).encode());
        return;
    }
    switch (req.op) {
        case Op::kPing: {
            // Answered at the front; `workers` on top of the worker shape
            // tells clients they are talking to a cluster.
            Json result = Json::object();
            result.set("pong", Json::boolean(true));
            result.set("workers", Json::number_u64(slots_.size()));
            push_local(conn,
                       Response::success(req, std::move(result)).encode());
            return;
        }
        case Op::kDrain:
        case Op::kResume: {
            if (req.worker >= static_cast<std::int64_t>(slots_.size())) {
                push_local(conn,
                           Response::failure(req, ErrorCode::kBadRequest,
                                             "no worker " +
                                                 std::to_string(req.worker))
                               .encode());
                return;
            }
            const bool drain = req.op == Op::kDrain;
            if (drain) telemetry::count("serve.front.drains");
            if (req.worker >= 0) {
                drain ? drain_slot(static_cast<std::size_t>(req.worker))
                      : resume_slot(static_cast<std::size_t>(req.worker));
            } else {
                for (std::size_t i = 0; i < slots_.size(); ++i)
                    drain ? drain_slot(i) : resume_slot(i);
            }
            Json result = Json::object();
            result.set(drain ? "drained" : "resumed", Json::boolean(true));
            push_local(conn,
                       Response::success(req, std::move(result)).encode());
            return;
        }
        case Op::kShutdown: {
            Json result = Json::object();
            result.set("stopping", Json::boolean(true));
            push_local(conn,
                       Response::success(req, std::move(result)).encode());
            request_shutdown();
            return;
        }
        case Op::kListModels:
            // Every worker serves the same model directory; worker 0
            // answers for the fleet.
            forward_line(conn, 0, req, line);
            return;
        case Op::kReload: {
            // Zero-downtime reload: stop routing to the owner, let its
            // queue drain, swap on the worker, resume. Requests for the
            // model arriving meanwhile wait at the routing gate instead of
            // racing the swap.
            const std::size_t w = route_worker(req.model, slots_.size());
            drain_slot(w);
            std::string response = admin_call(w, req, line);
            resume_slot(w);
            push_local(conn, std::move(response));
            return;
        }
        default:
            forward_line(conn, route_worker(req.model, slots_.size()), req,
                         line);
            return;
    }
}

void Cluster::serve_client(ClientConn& conn) {
    conn.reader = std::thread([this, &conn] {
        std::string buffer;
        char chunk[4096];
        for (;;) {
            const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
            if (n <= 0) break;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t start = 0;
            for (;;) {
                const std::size_t nl = buffer.find('\n', start);
                if (nl == std::string::npos) break;
                const std::string line = buffer.substr(start, nl - start);
                start = nl + 1;
                if (!line.empty()) route_line(conn, line);
            }
            buffer.erase(0, start);
        }
        {
            const std::lock_guard<std::mutex> lock(conn.mutex);
            conn.read_done = true;
        }
        conn.cv.notify_all();
    });

    conn.writer = std::thread([this, &conn] {
        for (;;) {
            ClientConn::Tag tag;
            {
                std::unique_lock<std::mutex> lock(conn.mutex);
                conn.cv.wait(lock, [&] {
                    return !conn.pending.empty() || conn.read_done;
                });
                if (conn.pending.empty()) return;  // read_done && drained
                tag = std::move(conn.pending.front());
                conn.pending.pop_front();
            }
            std::string response;
            if (tag.worker < 0) {
                response = std::move(tag.local);
            } else {
                bool got = false;
                try {
                    response = tag.link->recv_line();
                    got = true;
                } catch (const std::exception&) {
                }
                Slot& slot = *slots_[static_cast<std::size_t>(tag.worker)];
                {
                    const std::lock_guard<std::mutex> lock(slot.mutex);
                    if (slot.in_flight > 0) --slot.in_flight;
                }
                slot.cv.notify_all();
                if (!got) {
                    // The worker died between accepting the request and
                    // answering: the client gets a structured error with
                    // its own id, not a hang or a dropped line.
                    Request stub;
                    stub.id = tag.id;
                    stub.op = tag.op;
                    telemetry::count("serve.front.worker_unavailable");
                    response =
                        Response::failure(stub, ErrorCode::kWorkerUnavailable,
                                          "worker " +
                                              std::to_string(tag.worker) +
                                              " died mid-request; respawning")
                            .encode();
                }
            }
            if (conn.broken) continue;
            try {
                send_all(conn.fd, response + "\n");
            } catch (const std::exception&) {
                conn.broken = true;  // drain remaining tags silently
            }
        }
    });
}

void Cluster::health_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            Slot& slot = *slots_[i];
            std::unique_ptr<WorkerProcess> dead;
            {
                const std::lock_guard<std::mutex> lock(slot.mutex);
                if (slot.proc && !slot.proc->alive()) {
                    dead = std::move(slot.proc);
                    ++slot.restarts;
                }
            }
            if (!dead) continue;
            telemetry::count("serve.front.restarts");
            std::fprintf(stderr,
                         "nofis-serve: worker %zu (pid %d) died; "
                         "respawning\n",
                         i, static_cast<int>(dead->pid()));
            dead.reset();  // already reaped by alive(); releases the pipe
            try {
                spawn_slot(i);
                std::fprintf(stderr,
                             "nofis-serve: worker %zu respawned pid=%d "
                             "port=%u\n",
                             i, static_cast<int>(worker_pid(i)),
                             static_cast<unsigned>(worker_port(i)));
            } catch (const std::exception& e) {
                // Slot stays empty (requests fail fast); retried next tick.
                std::fprintf(stderr,
                             "nofis-serve: respawn of worker %zu failed: "
                             "%s\n",
                             i, e.what());
            }
        }
        // Short poll keeps the worker_unavailable window tight without
        // burning CPU.
        for (int t = 0; t < 2 && !stopping_.load(std::memory_order_relaxed);
             ++t)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void Cluster::drain_slot(std::size_t i) {
    Slot& slot = *slots_[i];
    std::unique_lock<std::mutex> lock(slot.mutex);
    slot.draining = true;
    // Writers decrement in_flight as worker responses arrive (or fail), so
    // this terminates even when the worker crashed mid-drain.
    slot.cv.wait(lock, [&] {
        return slot.in_flight == 0 ||
               stopping_.load(std::memory_order_relaxed);
    });
}

void Cluster::resume_slot(std::size_t i) {
    Slot& slot = *slots_[i];
    {
        const std::lock_guard<std::mutex> lock(slot.mutex);
        slot.draining = false;
    }
    slot.cv.notify_all();
}

void Cluster::wait(const std::atomic<bool>* stop_flag) {
    std::unique_lock<std::mutex> lock(wait_mutex_);
    while (!shutdown_requested_) {
        if (stop_flag != nullptr &&
            stop_flag->load(std::memory_order_relaxed))
            break;
        wait_cv_.wait_for(lock, std::chrono::milliseconds(100));
    }
}

void Cluster::request_shutdown() {
    {
        const std::lock_guard<std::mutex> lock(wait_mutex_);
        shutdown_requested_ = true;
    }
    wait_cv_.notify_all();
}

void Cluster::shutdown() {
    if (stopped_.exchange(true)) return;
    request_shutdown();
    stopping_.store(true, std::memory_order_relaxed);
    for (auto& slot : slots_) slot->cv.notify_all();

    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    if (health_thread_.joinable()) health_thread_.join();

    // Drain-all-then-exit: every request already forwarded gets its
    // response (or a structured error) before the workers go away. Bounded
    // so a wedged worker cannot hold the front hostage.
    for (auto& slotp : slots_) {
        Slot& slot = *slotp;
        std::unique_lock<std::mutex> lock(slot.mutex);
        slot.cv.wait_for(lock, std::chrono::seconds(30),
                         [&] { return slot.in_flight == 0; });
    }

    {
        const std::lock_guard<std::mutex> lock(conn_mutex_);
        for (auto& conn : connections_) {
            ::shutdown(conn->fd, SHUT_RDWR);  // unblocks the reader's recv
            if (conn->reader.joinable()) conn->reader.join();
            // Unblock a writer stuck on a worker that never answered
            // (crash + drain timeout): half-close every link it may be
            // reading, current and superseded.
            {
                const std::lock_guard<std::mutex> tags(conn->mutex);
                for (auto& link : conn->links)
                    if (link.client) link.client->shutdown();
                for (auto& tag : conn->pending)
                    if (tag.link) tag.link->shutdown();
            }
            if (conn->writer.joinable()) conn->writer.join();
            ::close(conn->fd);
            conn->fd = -1;
        }
        connections_.clear();
    }

    // Graceful worker stop: SIGTERM lets each worker drain its scheduler
    // and write its metrics record; SIGKILL only past the grace window.
    for (auto& slotp : slots_) {
        const std::lock_guard<std::mutex> lock(slotp->mutex);
        if (slotp->proc) slotp->proc->terminate(10.0);
    }
}

bool Cluster::write_metrics(const std::string& path) {
    Json per_worker = Json::array();
    std::map<std::string, std::uint64_t> fleet_counters;
    std::map<std::string, double> fleet_metrics;
    std::uint64_t restarts_total = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Json entry = Json::object();
        entry.set("worker", Json::number_u64(i));
        const std::uint64_t restarts = worker_restarts(i);
        entry.set("restarts", Json::number_u64(restarts));
        restarts_total += restarts;
        bool parsed = false;
        std::ifstream is(worker_metrics_path(i));
        if (is) {
            std::stringstream ss;
            ss << is.rdbuf();
            try {
                Json doc = Json::parse(ss.str());
                if (const Json* cs = doc.find("counters");
                    cs != nullptr && cs->is_object())
                    for (const auto& [name, value] : cs->members())
                        if (value.is_number())
                            fleet_counters[name] += value.as_u64();
                if (const Json* ms = doc.find("metrics");
                    ms != nullptr && ms->is_object())
                    for (const auto& [name, value] : ms->members())
                        if (value.is_number()) {
                            const auto it = fleet_metrics.find(name);
                            fleet_metrics[name] =
                                it == fleet_metrics.end()
                                    ? value.as_double()
                                    : std::max(it->second,
                                               value.as_double());
                        }
                entry.set("record", std::move(doc));
                parsed = true;
            } catch (const std::exception&) {
            }
        }
        if (!parsed) entry.set("record", Json::null());
        per_worker.push_back(std::move(entry));
    }

    Json root = Json::object();
    root.set("schema", Json::string("nofis-cluster-metrics-v1"));
    root.set("workers", Json::number_u64(slots_.size()));
    root.set("restarts", Json::number_u64(restarts_total));
    // Fleet view: counters sum across workers; metrics (gauges like queue
    // peaks or per-worker throughput) take the per-worker maximum.
    Json fleet = Json::object();
    Json counters = Json::object();
    for (const auto& [name, value] : fleet_counters)
        counters.set(name, Json::number_u64(value));
    fleet.set("counters", std::move(counters));
    Json metrics = Json::object();
    for (const auto& [name, value] : fleet_metrics)
        metrics.set(name, Json::number(value));
    fleet.set("metrics", std::move(metrics));
    root.set("fleet", std::move(fleet));
    // The front's own routing counters, when telemetry is active.
    Json front = Json::object();
    if (telemetry::RunTrace* trace = telemetry::active()) {
        Json front_counters = Json::object();
        for (const auto& [name, value] : trace->counters())
            front_counters.set(name, Json::number_u64(value));
        front.set("counters", std::move(front_counters));
    }
    root.set("front", std::move(front));
    root.set("per_worker", std::move(per_worker));

    try {
        util::AtomicFile file(path);
        file.stream() << root.encode() << '\n';
        file.commit();
        return true;
    } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "error: cannot write cluster metrics to '%s': %s\n",
                     path.c_str(), e.what());
        return false;
    }
}

}  // namespace nofis::serve::cluster
