#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace nofis::serve::cluster {

/// How to launch one worker: `command` is the argv prefix of a program
/// whose `serve` subcommand speaks the wire protocol — normally the running
/// binary itself ({"/proc/self/exe"}); tests point it at a built nofis_cli.
/// The spawner appends `serve --models ... --port 0 ...` from the fields
/// below, so every worker binds an ephemeral port and reports it back on
/// stdout.
struct WorkerOptions {
    std::vector<std::string> command;
    std::string model_dir = ".";
    std::size_t max_batch_rows = 0;
    std::uint64_t max_wait_us = 200;
    std::size_t max_queue = 1024;
    std::size_t cache_mem_mb = 0;
    std::string cache_dir;        ///< shared across workers (DiskLog locks)
    std::size_t threads = 0;      ///< 0 = worker default
    std::string metrics_out;      ///< per-worker metrics path; "" = none
    double ready_timeout_s = 30.0;
};

/// One spawned worker process. The constructor spawns the child with its
/// stdout on a pipe and blocks until the child prints
/// "nofis-serve: ready port=P" (throwing, and reaping the child, when it
/// exits or stays silent past ready_timeout_s). The pipe stays open for the
/// child's lifetime — closing it would SIGPIPE-kill a worker on its next
/// printf.
class WorkerProcess {
public:
    explicit WorkerProcess(const WorkerOptions& opts);
    ~WorkerProcess();
    WorkerProcess(const WorkerProcess&) = delete;
    WorkerProcess& operator=(const WorkerProcess&) = delete;

    std::uint16_t port() const noexcept { return port_; }
    pid_t pid() const noexcept { return pid_; }

    /// Non-blocking liveness poll (waitpid WNOHANG). A worker observed dead
    /// is reaped here and stays dead.
    bool alive();

    /// Graceful stop: SIGTERM (the worker drains and writes its metrics),
    /// up to `grace_s` seconds to exit, then SIGKILL. Reaps. Idempotent.
    void terminate(double grace_s);

private:
    pid_t pid_ = -1;
    int stdout_fd_ = -1;
    std::uint16_t port_ = 0;
    bool reaped_ = false;
};

}  // namespace nofis::serve::cluster
