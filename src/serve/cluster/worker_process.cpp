#include "serve/cluster/worker_process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

extern char** environ;

namespace nofis::serve::cluster {

namespace {

std::vector<std::string> build_argv(const WorkerOptions& opts) {
    std::vector<std::string> argv = opts.command;
    argv.push_back("serve");
    argv.push_back("--models");
    argv.push_back(opts.model_dir);
    argv.push_back("--port");
    argv.push_back("0");
    argv.push_back("--max-batch-rows");
    argv.push_back(std::to_string(opts.max_batch_rows));
    argv.push_back("--max-wait-us");
    argv.push_back(std::to_string(opts.max_wait_us));
    argv.push_back("--max-queue");
    argv.push_back(std::to_string(opts.max_queue));
    if (opts.cache_mem_mb > 0) {
        argv.push_back("--cache-mem-mb");
        argv.push_back(std::to_string(opts.cache_mem_mb));
    }
    if (!opts.cache_dir.empty()) {
        argv.push_back("--cache-dir");
        argv.push_back(opts.cache_dir);
    }
    if (opts.threads > 0) {
        argv.push_back("--threads");
        argv.push_back(std::to_string(opts.threads));
    }
    if (!opts.metrics_out.empty()) {
        argv.push_back("--metrics-out");
        argv.push_back(opts.metrics_out);
    }
    return argv;
}

}  // namespace

WorkerProcess::WorkerProcess(const WorkerOptions& opts) {
    if (opts.command.empty())
        throw std::runtime_error("cluster: empty worker command");

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        throw std::runtime_error("cluster: pipe() failed");

    const std::vector<std::string> args = build_argv(opts);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    // posix_spawn (not fork): the front is multithreaded by the time a
    // crashed worker is respawned, and spawn avoids every fork-in-threads
    // hazard. The child's stdout is redirected onto the pipe so the parent
    // can read the ready line and learn the ephemeral port.
    posix_spawn_file_actions_t actions;
    posix_spawn_file_actions_init(&actions);
    posix_spawn_file_actions_adddup2(&actions, pipe_fds[1], STDOUT_FILENO);
    posix_spawn_file_actions_addclose(&actions, pipe_fds[0]);
    posix_spawn_file_actions_addclose(&actions, pipe_fds[1]);
    const int rc = ::posix_spawn(&pid_, args[0].c_str(), &actions, nullptr,
                                 argv.data(), environ);
    posix_spawn_file_actions_destroy(&actions);
    ::close(pipe_fds[1]);
    if (rc != 0) {
        ::close(pipe_fds[0]);
        throw std::runtime_error("cluster: cannot spawn worker '" + args[0] +
                                 "': " + std::strerror(rc));
    }
    stdout_fd_ = pipe_fds[0];

    // Wait for "nofis-serve: ready port=P" on the pipe. The child prints
    // it once listening; EOF first means it died during startup.
    std::string buffer;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(
            static_cast<long>(opts.ready_timeout_s * 1000.0));
    static const std::string kReady = "nofis-serve: ready port=";
    for (;;) {
        const std::size_t at = buffer.find(kReady);
        if (at != std::string::npos) {
            const std::size_t eol = buffer.find('\n', at);
            if (eol != std::string::npos) {
                port_ = static_cast<std::uint16_t>(std::strtoul(
                    buffer.c_str() + at + kReady.size(), nullptr, 10));
                if (port_ != 0) return;
                terminate(0.0);
                throw std::runtime_error("cluster: worker reported port 0");
            }
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            terminate(0.0);
            throw std::runtime_error(
                "cluster: worker did not become ready in time");
        }
        pollfd pfd{stdout_fd_, POLLIN, 0};
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - now);
        const int pr = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
        if (pr < 0 && errno == EINTR) continue;
        if (pr <= 0) continue;  // timeout re-checked above
        char chunk[512];
        const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
        if (n <= 0) {
            terminate(0.0);
            throw std::runtime_error(
                "cluster: worker exited before becoming ready");
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

WorkerProcess::~WorkerProcess() {
    terminate(5.0);
    if (stdout_fd_ >= 0) ::close(stdout_fd_);
}

bool WorkerProcess::alive() {
    if (reaped_ || pid_ < 0) return false;
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == 0) return true;
    reaped_ = true;  // r == pid_ (exited) or -1 (not our child anymore)
    return false;
}

void WorkerProcess::terminate(double grace_s) {
    if (reaped_ || pid_ < 0) return;
    ::kill(pid_, SIGTERM);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<long>(grace_s * 1000.0));
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(pid_, &status, WNOHANG);
        if (r != 0) {
            reaped_ = true;
            return;
        }
        if (std::chrono::steady_clock::now() >= deadline) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::kill(pid_, SIGKILL);
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    reaped_ = true;
}

}  // namespace nofis::serve::cluster
