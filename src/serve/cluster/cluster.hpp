#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/cluster/worker_process.hpp"
#include "serve/protocol.hpp"

namespace nofis::serve::cluster {

struct ClusterConfig {
    std::size_t workers = 2;
    std::string host = "127.0.0.1";  ///< loopback only, like Server
    std::uint16_t port = 0;          ///< front port; 0 = ephemeral
    /// Every client funnels through one acceptor, so the front defaults to
    /// a deeper listen backlog than a single Server.
    int backlog = 256;
    WorkerOptions worker;      ///< template; metrics_out is filled per worker
    std::string metrics_out;   ///< aggregate JSON path; "" = no aggregation
};

/// Stable model-to-worker routing: FNV-1a of the model name modulo the
/// worker count. A model's traffic always lands on the same worker, so the
/// per-worker bitwise determinism guarantee (DESIGN.md §10.4) extends to
/// the cluster unchanged — one model's batches never split across replicas.
std::size_t route_worker(std::string_view model,
                         std::size_t workers) noexcept;

/// Front process of the scale-out serving topology (DESIGN.md §15): one
/// acceptor that speaks the same line-delimited JSON protocol as Server,
/// spawns `workers` worker processes (each a full single-model-registry
/// server on an ephemeral loopback port), and routes every model-addressed
/// request to its owning worker. Responses are relayed byte-for-byte, so a
/// cluster serves exactly the bytes a single worker would.
///
/// Lifecycle management:
///   * a health thread respawns crashed workers; requests that hit the
///     respawn window fail fast with a structured `worker_unavailable`
///     error (never a hang),
///   * `drain`/`resume` admin requests (with a "worker" field) stop/restart
///     routing to one worker and wait for its in-flight requests,
///   * `reload` drains the owning worker first, so a model swaps to new
///     weights with zero failed requests,
///   * shutdown (protocol op or SIGTERM via wait()'s stop flag) drains all
///     workers, stops them gracefully, and — when metrics_out is set —
///     aggregates their telemetry records into one fleet JSON.
class Cluster {
public:
    explicit Cluster(ClusterConfig cfg);
    ~Cluster();
    Cluster(const Cluster&) = delete;
    Cluster& operator=(const Cluster&) = delete;

    std::uint16_t port() const noexcept { return port_; }
    std::size_t workers() const noexcept { return slots_.size(); }
    /// Current pid / port of worker `i` (respawns change both); 0 / -1
    /// while the slot is mid-respawn.
    pid_t worker_pid(std::size_t i);
    std::uint16_t worker_port(std::size_t i);
    std::uint64_t worker_restarts(std::size_t i);

    /// Blocks until a protocol `shutdown` arrives, request_shutdown() is
    /// called, or `stop_flag` turns true (polled; signal-handler friendly).
    void wait(const std::atomic<bool>* stop_flag = nullptr);
    void request_shutdown();

    /// Full teardown: stop accepting, drain every worker, join connection
    /// threads, stop the workers gracefully. Idempotent.
    void shutdown();

    /// Aggregates the per-worker metrics files plus the front's own
    /// telemetry counters into one `nofis-cluster-metrics-v1` document at
    /// `path` (atomic write). Call after shutdown(), which is when workers
    /// have written their records. Returns false when the write fails.
    bool write_metrics(const std::string& path);

private:
    struct Slot;
    struct ClientConn;

    void spawn_slot(std::size_t i);
    void accept_loop();
    void serve_client(ClientConn& conn);
    void health_loop();
    void drain_slot(std::size_t i);
    void resume_slot(std::size_t i);
    void route_line(ClientConn& conn, const std::string& line);
    void forward_line(ClientConn& conn, std::size_t w, const Request& req,
                      const std::string& line);
    std::string admin_call(std::size_t w, const Request& req,
                           const std::string& line);
    static void push_local(ClientConn& conn, std::string response);
    std::string worker_metrics_path(std::size_t i) const;

    ClusterConfig cfg_;
    std::vector<std::unique_ptr<Slot>> slots_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;
    std::thread health_thread_;

    std::mutex conn_mutex_;
    std::list<std::unique_ptr<ClientConn>> connections_;

    std::mutex wait_mutex_;
    std::condition_variable wait_cv_;
    bool shutdown_requested_ = false;
    std::atomic<bool> stopping_{false};  ///< gates routing + health loop
    std::atomic<bool> stopped_{false};   ///< shutdown() ran
};

}  // namespace nofis::serve::cluster
