#include "serve/scheduler.hpp"

#include <algorithm>
#include <optional>

#include "core/nofis.hpp"
#include "evalcache/cached_problem.hpp"
#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/normal.hpp"
#include "telemetry/telemetry.hpp"
#include "testcases/registry.hpp"

namespace nofis::serve {

namespace {

/// Histogram bucket counter for one batch's request count.
void count_batch_size(std::size_t requests) {
    if (requests <= 1) telemetry::count("serve.batch_size.le_1");
    else if (requests <= 4) telemetry::count("serve.batch_size.le_4");
    else if (requests <= 16) telemetry::count("serve.batch_size.le_16");
    else if (requests <= 64) telemetry::count("serve.batch_size.le_64");
    else telemetry::count("serve.batch_size.gt_64");
}

Json matrix_rows_json(const linalg::Matrix& m, std::size_t row_begin,
                      std::size_t row_end) {
    Json rows = Json::array();
    for (std::size_t r = row_begin; r < row_end; ++r) {
        Json row = Json::array();
        for (double v : m.row_span(r)) row.push_back(Json::number(v));
        rows.push_back(std::move(row));
    }
    return rows;
}

Json vector_json(const std::vector<double>& v, std::size_t begin,
                 std::size_t end) {
    Json arr = Json::array();
    for (std::size_t i = begin; i < end; ++i)
        arr.push_back(Json::number(v[i]));
    return arr;
}

/// Derived micro-batch row budget. The fused simd kernels have much lower
/// per-row cost, so coalescing twice as many rows per dispatch keeps the
/// pool saturated; responses are unaffected — §10.4 guarantees byte-equal
/// results at any batch size, so this only moves wall-clock.
std::size_t derived_batch_rows(const SchedulerConfig& cfg) {
    if (cfg.max_batch_rows > 0) return cfg.max_batch_rows;
    const std::size_t base = parallel::preferred_batch_rows();
    return linalg::kernels::simd_active() ? 2 * base : base;
}

}  // namespace

BatchScheduler::BatchScheduler(ModelRegistry& registry, SchedulerConfig cfg)
    : registry_(registry), cfg_(std::move(cfg)) {
    if (cfg_.cache_mem_mb > 0 || !cfg_.cache_dir.empty()) {
        evalcache::CacheConfig ccfg;
        if (cfg_.cache_mem_mb > 0) ccfg.mem_bytes = cfg_.cache_mem_mb << 20;
        ccfg.dir = cfg_.cache_dir;
        eval_cache_ = std::make_shared<evalcache::EvalCache>(ccfg);
    }
    worker_ = std::thread([this] { loop(); });
}

BatchScheduler::~BatchScheduler() { stop(); }

std::size_t BatchScheduler::request_rows(const Request& req) noexcept {
    switch (req.op) {
        case Op::kSample: return req.n;
        case Op::kLogProb: return req.x.rows();
        case Op::kEstimate: return req.n;
        default: return 1;
    }
}

std::future<Response> BatchScheduler::submit(Request req) {
    std::promise<Response> promise;
    std::future<Response> future = promise.get_future();
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_) {
            lock.unlock();
            promise.set_value(Response::failure(
                req, ErrorCode::kShuttingDown, "scheduler is stopping"));
            return future;
        }
        if (queue_.size() >= cfg_.max_queue) {
            lock.unlock();
            telemetry::count("serve.rejected.queue_full");
            promise.set_value(Response::failure(
                req, ErrorCode::kQueueFull,
                "request queue at capacity (" +
                    std::to_string(cfg_.max_queue) + ")"));
            return future;
        }
        queue_.push_back(Pending{std::move(req), std::move(promise),
                                 std::chrono::steady_clock::now()});
        queue_peak_ = std::max(queue_peak_, queue_.size());
    }
    cv_.notify_all();
    return future;
}

void BatchScheduler::stop() {
    const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (worker_.joinable()) worker_.join();
}

void BatchScheduler::pause() {
    const std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
}

void BatchScheduler::resume() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    cv_.notify_all();
}

void BatchScheduler::set_shutdown_handler(std::function<void()> handler) {
    const std::lock_guard<std::mutex> lock(handler_mutex_);
    shutdown_handler_ = std::move(handler);
}

std::size_t BatchScheduler::queue_depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::vector<BatchScheduler::Pending> BatchScheduler::assemble_locked(
    std::unique_lock<std::mutex>& lock) {
    (void)lock;  // caller holds mutex_
    const std::size_t target = derived_batch_rows(cfg_);
    std::vector<Pending> batch;
    std::size_t rows = 0;
    while (!queue_.empty()) {
        const std::size_t next = request_rows(queue_.front().req);
        // The first request always dispatches, even if it alone exceeds the
        // row budget; later ones only join while the budget holds.
        if (!batch.empty() && rows + next > target) break;
        rows += next;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        if (rows >= target) break;
    }
    return batch;
}

void BatchScheduler::loop() {
    for (;;) {
        // The scheduler thread owns the span tree while serving (the
        // activating thread is parked in Server::wait by then).
        telemetry::adopt_span_tree();
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return stopping_ || (!queue_.empty() && !paused_);
            });
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            if (!stopping_) {
                // Coalescing window: wait up to max_wait_us for more rows.
                const std::size_t target = derived_batch_rows(cfg_);
                const auto window_end =
                    std::chrono::steady_clock::now() +
                    std::chrono::microseconds(cfg_.max_wait_us);
                auto queued_rows = [&] {
                    std::size_t rows = 0;
                    for (const Pending& p : queue_)
                        rows += request_rows(p.req);
                    return rows;
                };
                while (!stopping_ && !paused_ && queued_rows() < target) {
                    if (cv_.wait_until(lock, window_end) ==
                        std::cv_status::timeout)
                        break;
                }
                if (paused_ && !stopping_) continue;
            }
            batch = assemble_locked(lock);
            telemetry::metric("serve.queue_peak",
                              static_cast<double>(queue_peak_));
        }
        if (!batch.empty()) execute(batch);
    }
}

void BatchScheduler::execute(std::vector<Pending>& batch) {
    const telemetry::ScopedSpan batch_span("serve_batch");
    telemetry::count("serve.batches");
    telemetry::count("serve.requests", batch.size());
    count_batch_size(batch.size());

    // Expire overdue requests first; expired entries never execute.
    const auto now = std::chrono::steady_clock::now();
    std::vector<Pending*> live;
    live.reserve(batch.size());
    std::size_t rows = 0;
    for (Pending& p : batch) {
        if (p.req.timeout_us > 0 &&
            now > p.enqueued + std::chrono::microseconds(p.req.timeout_us)) {
            telemetry::count("serve.rejected.deadline");
            p.promise.set_value(Response::failure(
                p.req, ErrorCode::kDeadlineExceeded,
                "deadline of " + std::to_string(p.req.timeout_us) +
                    "us expired before execution"));
            continue;
        }
        rows += request_rows(p.req);
        live.push_back(&p);
    }
    telemetry::count("serve.batch_rows", rows);

    const telemetry::ScopedSpan exec_span("execute");

    // Group sample / log_prob requests by model (first-appearance order) so
    // each group runs the flow once over the concatenated rows; everything
    // else executes individually in queue order.
    std::vector<std::pair<std::string, std::vector<Pending*>>> sample_groups;
    std::vector<std::pair<std::string, std::vector<Pending*>>> logp_groups;
    auto group_into =
        [](std::vector<std::pair<std::string, std::vector<Pending*>>>& groups,
           Pending* p) {
            for (auto& [name, members] : groups) {
                if (name == p->req.model) {
                    members.push_back(p);
                    return;
                }
            }
            groups.push_back({p->req.model, {p}});
        };

    for (Pending* p : live) {
        if (p->req.op == Op::kSample) group_into(sample_groups, p);
        else if (p->req.op == Op::kLogProb) group_into(logp_groups, p);
    }

    auto resolve_model =
        [&](const std::string& name,
            std::vector<Pending*>& members) -> std::shared_ptr<const Model> {
        try {
            return registry_.get(name);
        } catch (const ServeError& e) {
            for (Pending* p : members)
                p->promise.set_value(Response::failure(p->req, e));
        } catch (const std::exception& e) {
            for (Pending* p : members)
                p->promise.set_value(Response::failure(
                    p->req, ErrorCode::kInternal, e.what()));
        }
        return nullptr;
    };

    for (auto& [name, members] : sample_groups)
        if (auto model = resolve_model(name, members))
            run_sample_group(model, members);
    for (auto& [name, members] : logp_groups)
        if (auto model = resolve_model(name, members))
            run_log_prob_group(model, members);

    std::function<void()> shutdown_after;
    for (Pending* p : live) {
        if (p->req.op == Op::kSample || p->req.op == Op::kLogProb) continue;
        if (p->req.op == Op::kEstimate) {
            std::vector<Pending*> self{p};
            if (auto model = resolve_model(p->req.model, self))
                run_estimate(model, *p);
            continue;
        }
        p->promise.set_value(run_admin(*p));
        if (p->req.op == Op::kShutdown) {
            const std::lock_guard<std::mutex> lock(handler_mutex_);
            shutdown_after = shutdown_handler_;
        }
    }
    // Fire the shutdown signal only after every response of this batch is
    // fulfilled; the handler must not join the scheduler thread (the
    // server's just flags its wait loop).
    if (shutdown_after) shutdown_after();
}

void BatchScheduler::run_sample_group(
    const std::shared_ptr<const Model>& model, std::vector<Pending*>& group) {
    const std::size_t dim = model->info.dim;
    std::size_t total = 0;
    for (Pending* p : group) total += p->req.n;

    // Request-order row layout; each request's base draws come from its own
    // seed, exactly as CouplingStack::sample would draw them stand-alone.
    linalg::Matrix z0(total, dim);
    std::size_t offset = 0;
    for (Pending* p : group) {
        rng::Engine eng(p->req.seed);
        const linalg::Matrix zi =
            rng::standard_normal_matrix(eng, p->req.n, dim);
        std::copy(zi.flat().begin(), zi.flat().end(),
                  z0.row_span(offset).begin());
        offset += p->req.n;
    }

    try {
        const auto samples = model->stack.transport(z0, model->info.num_blocks);
        offset = 0;
        for (Pending* p : group) {
            Json result = Json::object();
            result.set("n", Json::number_u64(p->req.n));
            result.set("z",
                       matrix_rows_json(samples.z, offset, offset + p->req.n));
            result.set("log_q",
                       vector_json(samples.log_q, offset, offset + p->req.n));
            offset += p->req.n;
            p->promise.set_value(Response::success(p->req, std::move(result)));
        }
    } catch (const std::exception& e) {
        for (Pending* p : group)
            p->promise.set_value(
                Response::failure(p->req, ErrorCode::kInternal, e.what()));
    }
}

void BatchScheduler::run_log_prob_group(
    const std::shared_ptr<const Model>& model, std::vector<Pending*>& group) {
    const std::size_t dim = model->info.dim;
    std::vector<Pending*> valid;
    std::size_t total = 0;
    for (Pending* p : group) {
        if (p->req.x.cols() != dim) {
            p->promise.set_value(Response::failure(
                p->req, ErrorCode::kDimMismatch,
                "points have dim " + std::to_string(p->req.x.cols()) +
                    ", model '" + model->name + "' has dim " +
                    std::to_string(dim)));
            continue;
        }
        total += p->req.x.rows();
        valid.push_back(p);
    }
    if (valid.empty()) return;

    linalg::Matrix x(total, dim);
    std::size_t offset = 0;
    for (Pending* p : valid) {
        std::copy(p->req.x.flat().begin(), p->req.x.flat().end(),
                  x.row_span(offset).begin());
        offset += p->req.x.rows();
    }

    try {
        const std::vector<double> lp =
            model->stack.log_prob(x, model->info.num_blocks);
        offset = 0;
        for (Pending* p : valid) {
            Json result = Json::object();
            result.set("log_prob",
                       vector_json(lp, offset, offset + p->req.x.rows()));
            offset += p->req.x.rows();
            p->promise.set_value(Response::success(p->req, std::move(result)));
        }
    } catch (const std::exception& e) {
        for (Pending* p : valid)
            p->promise.set_value(
                Response::failure(p->req, ErrorCode::kInternal, e.what()));
    }
}

const testcases::TestCase& BatchScheduler::case_for(const std::string& name,
                                                    std::size_t model_dim) {
    const testcases::TestCase* tc = nullptr;
    try {
        tc = &case_factory_.get(name);
    } catch (const std::invalid_argument& e) {
        throw ServeError(ErrorCode::kUnknownCase, e.what());
    }
    if (tc->dim() != model_dim)
        throw ServeError(ErrorCode::kDimMismatch,
                         "case '" + name + "' has dim " +
                             std::to_string(tc->dim()) + ", model has dim " +
                             std::to_string(model_dim));
    return *tc;
}

void BatchScheduler::run_estimate(const std::shared_ptr<const Model>& model,
                                  Pending& p) {
    try {
        const testcases::TestCase& tc =
            case_for(p.req.case_name, model->info.dim);
        // Optional shared memoization tier: estimates execute one at a time
        // in queue order on this thread, so the per-request hit count is
        // deterministic for a given request sequence. p_hat is bitwise
        // identical with the cache off, cold, or warm (g is pure).
        std::optional<evalcache::CachedProblem> cached;
        const estimators::RareEventProblem* problem = &tc;
        if (eval_cache_) {
            cached.emplace(tc, eval_cache_, testcases::cache_key(tc));
            problem = &*cached;
        }
        rng::Engine eng(p.req.seed);
        core::IsDiagnostics diag;
        const auto res = core::NofisEstimator::importance_estimate(
            model->stack, *problem, eng, p.req.n, &diag);
        const std::size_t calls_cached =
            cached ? std::min(cached->hits(), res.calls) : std::size_t{0};
        evalcache::report_call_split(res.calls, calls_cached);
        Json result = Json::object();
        result.set("p_hat", Json::number(res.p_hat));
        result.set("calls", Json::number_u64(res.calls));
        result.set("calls_cached", Json::number_u64(calls_cached));
        result.set("calls_fresh", Json::number_u64(res.calls - calls_cached));
        result.set("hits", Json::number_u64(diag.hits));
        result.set("ess", Json::number(diag.effective_sample_size));
        result.set("ess_all", Json::number(diag.ess_all));
        result.set("weight_cv", Json::number(diag.weight_cv));
        result.set("max_weight", Json::number(diag.max_weight));
        p.promise.set_value(Response::success(p.req, std::move(result)));
    } catch (const ServeError& e) {
        p.promise.set_value(Response::failure(p.req, e));
    } catch (const std::exception& e) {
        p.promise.set_value(
            Response::failure(p.req, ErrorCode::kInternal, e.what()));
    }
}

Response BatchScheduler::run_admin(Pending& p) {
    try {
        switch (p.req.op) {
            case Op::kPing: {
                Json result = Json::object();
                result.set("pong", Json::boolean(true));
                // Runtime surface for the kernel flavour: ops tooling can
                // confirm which numeric path a server is on without logs.
                result.set("kernels",
                           Json::string(linalg::kernels::choice_name()));
                result.set("simd_backend",
                           Json::string(linalg::kernels::simd_backend()));
                return Response::success(p.req, std::move(result));
            }
            case Op::kInfo: {
                const auto model = registry_.get(p.req.model);
                const flow::StackInfo& info = model->info;
                Json result = Json::object();
                result.set("name", Json::string(model->name));
                result.set("dim", Json::number_u64(info.dim));
                result.set("blocks", Json::number_u64(info.num_blocks));
                result.set("layers_per_block",
                           Json::number_u64(info.layers_per_block));
                result.set("coupling", Json::string(flow::coupling_kind_name(
                                           info.coupling)));
                // Spline knobs only exist for rqs stacks; keeping them out
                // of affine/additive responses leaves those byte-identical
                // to pre-rqs servers.
                if (info.coupling == flow::CouplingKind::kRqs) {
                    result.set("rqs_bins", Json::number_u64(info.rqs_bins));
                    result.set("rqs_tail", Json::number(info.rqs_tail));
                }
                result.set("actnorm", Json::boolean(info.use_actnorm));
                Json hidden = Json::array();
                for (std::size_t h : info.hidden)
                    hidden.push_back(Json::number_u64(h));
                result.set("hidden", std::move(hidden));
                result.set("scale_cap", Json::number(info.scale_cap));
                result.set("param_tensors",
                           Json::number_u64(info.param_tensors));
                result.set("param_values",
                           Json::number_u64(info.param_values));
                return Response::success(p.req, std::move(result));
            }
            case Op::kListModels: {
                Json result = Json::object();
                result.set("dir", Json::string(registry_.dir()));
                Json avail = Json::array();
                for (const auto& n : registry_.available())
                    avail.push_back(Json::string(n));
                result.set("available", std::move(avail));
                Json res_names = Json::array();
                for (const auto& n : registry_.resident())
                    res_names.push_back(Json::string(n));
                result.set("resident", std::move(res_names));
                return Response::success(p.req, std::move(result));
            }
            case Op::kReload: {
                const auto model = registry_.reload(p.req.model);
                Json result = Json::object();
                result.set("reloaded", Json::string(model->name));
                result.set("param_values",
                           Json::number_u64(model->info.param_values));
                return Response::success(p.req, std::move(result));
            }
            case Op::kEvict: {
                Json result = Json::object();
                result.set("evicted",
                           Json::boolean(registry_.evict(p.req.model)));
                return Response::success(p.req, std::move(result));
            }
            case Op::kDrain: {
                // Admin ops execute after every earlier-submitted request in
                // this worker's queue order, so reaching this point IS the
                // drain: everything ahead of the request has completed. The
                // cluster front layers routing-level drain on top of this.
                Json result = Json::object();
                result.set("drained", Json::boolean(true));
                return Response::success(p.req, std::move(result));
            }
            case Op::kResume: {
                Json result = Json::object();
                result.set("resumed", Json::boolean(true));
                return Response::success(p.req, std::move(result));
            }
            case Op::kShutdown: {
                Json result = Json::object();
                result.set("stopping", Json::boolean(true));
                return Response::success(p.req, std::move(result));
            }
            default:
                return Response::failure(p.req, ErrorCode::kBadRequest,
                                         "unhandled op");
        }
    } catch (const ServeError& e) {
        return Response::failure(p.req, e);
    } catch (const std::exception& e) {
        return Response::failure(p.req, ErrorCode::kInternal, e.what());
    }
}

}  // namespace nofis::serve
