#include "serve/tcp_client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <stdexcept>

namespace nofis::serve {

TcpClient::TcpClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("query: socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("query: bad host '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error("query: cannot connect to " + host + ":" +
                                 std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpClient::~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
}

std::string TcpClient::read_line() {
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            throw std::runtime_error(
                "query: connection closed before a response arrived");
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void TcpClient::send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) throw std::runtime_error("query: send failed");
        sent += static_cast<std::size_t>(n);
    }
}

void TcpClient::shutdown() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::string TcpClient::call_raw(const std::string& line) {
    send_line(line);
    return read_line();
}

std::vector<std::string> TcpClient::pipeline_raw(
    const std::vector<std::string>& lines) {
    std::string framed;
    for (const auto& line : lines) {
        framed += line;
        framed += '\n';
    }
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) throw std::runtime_error("query: send failed");
        sent += static_cast<std::size_t>(n);
    }
    std::vector<std::string> responses;
    responses.reserve(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i)
        responses.push_back(read_line());
    return responses;
}

Response TcpClient::call(const Request& req) {
    return Response::decode(call_raw(req.encode()));
}

}  // namespace nofis::serve
