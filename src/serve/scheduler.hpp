#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "evalcache/eval_cache.hpp"
#include "serve/model_registry.hpp"
#include "serve/protocol.hpp"
#include "testcases/case_factory.hpp"
#include "testcases/testcase.hpp"

namespace nofis::serve {

/// Micro-batching knobs. The defaults size batches to the thread pool so
/// the flow's matmuls run at tile width instead of per-request row counts.
struct SchedulerConfig {
    /// Rows (sample draws / log_prob points) per micro-batch; a batch is
    /// dispatched as soon as it holds this many rows. 0 = derive from the
    /// pool via parallel::preferred_batch_rows().
    std::size_t max_batch_rows = 0;
    /// How long the scheduler waits for more work to coalesce once the
    /// first request of a batch arrived.
    std::uint64_t max_wait_us = 200;
    /// Bounded request queue: submissions beyond this complete immediately
    /// with a kQueueFull error (backpressure, never unbounded memory).
    std::size_t max_queue = 1024;

    /// In-memory budget (MiB) of the g-evaluation cache shared by every
    /// estimate request. 0 together with an empty cache_dir disables the
    /// cache; 0 with a cache_dir set uses the evalcache default budget.
    /// Responses are bitwise identical either way — only the
    /// calls_fresh/calls_cached split in the estimate result changes.
    std::size_t cache_mem_mb = 0;
    /// Optional persistent tier: directory of per-case append-only logs
    /// (see evalcache::DiskLog). Empty = memory-only.
    std::string cache_dir;
};

/// Coalesces concurrent serving requests into micro-batches and executes
/// them on one scheduler thread (the heavy math inside fans out on the
/// global parallel::ThreadPool).
///
/// Determinism contract — the serving extension of DESIGN.md §8.2: every
/// request derives all randomness from its own `seed`, batched rows are
/// computed row-independently (disjoint writes, per-row serial reductions),
/// and per-request rows are laid out in request order. A response is
/// therefore bitwise identical whether its request ran alone or coalesced
/// with any other requests, in any arrival order, at any thread count.
///
/// Telemetry (active trace only): serve.requests / serve.batches /
/// serve.batch_rows counters, a batch-size histogram
/// (serve.batch_size.le_{1,4,16,64} / gt_64), serve.queue_peak metric, and
/// per-phase spans (serve_batch → wait/assemble/execute) recorded on the
/// scheduler thread via telemetry::adopt_span_tree().
class BatchScheduler {
public:
    BatchScheduler(ModelRegistry& registry, SchedulerConfig cfg);
    ~BatchScheduler();
    BatchScheduler(const BatchScheduler&) = delete;
    BatchScheduler& operator=(const BatchScheduler&) = delete;

    /// Enqueues one request. The future always completes: with the op's
    /// response, or with a structured error response (queue_full /
    /// deadline_exceeded / shutting_down / per-request failures). Never
    /// throws.
    std::future<Response> submit(Request req);

    /// Drains every queued request, then stops the scheduler thread.
    /// submit() after stop() completes immediately with kShuttingDown.
    void stop();

    /// Test/operations hook: hold the scheduler loop before it assembles
    /// the next batch (queued requests accumulate; deadlines keep running).
    void pause();
    void resume();

    /// Installed by the server; invoked (once) after a shutdown request was
    /// answered. May be empty.
    void set_shutdown_handler(std::function<void()> handler);

    const SchedulerConfig& config() const noexcept { return cfg_; }
    std::size_t queue_depth() const;

private:
    struct Pending {
        Request req;
        std::promise<Response> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void loop();
    std::vector<Pending> assemble_locked(std::unique_lock<std::mutex>& lock);
    void execute(std::vector<Pending>& batch);
    static std::size_t request_rows(const Request& req) noexcept;

    void run_sample_group(const std::shared_ptr<const Model>& model,
                          std::vector<Pending*>& group);
    void run_log_prob_group(const std::shared_ptr<const Model>& model,
                            std::vector<Pending*>& group);
    void run_estimate(const std::shared_ptr<const Model>& model, Pending& p);
    Response run_admin(Pending& p);
    const testcases::TestCase& case_for(const std::string& name,
                                        std::size_t model_dim);

    ModelRegistry& registry_;
    SchedulerConfig cfg_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Pending> queue_;
    bool stopping_ = false;
    bool paused_ = false;
    std::size_t queue_peak_ = 0;

    /// One canonical TestCase instance per name, shared by every request
    /// (and usable as an evalcache key source). Replaces the scheduler's
    /// former private case map.
    testcases::CaseFactory case_factory_;
    /// Shared across all estimate requests; null when disabled.
    std::shared_ptr<evalcache::EvalCache> eval_cache_;

    std::function<void()> shutdown_handler_;
    std::mutex handler_mutex_;

    std::mutex stop_mutex_;  ///< serialises stop() callers around the join
    std::thread worker_;  ///< last member: joins before the rest tears down
};

/// In-process client: submits straight into a scheduler, no sockets. The
/// unit tests and the throughput bench drive the serving stack through
/// this; call() blocks, async() pipelines.
class Client {
public:
    explicit Client(BatchScheduler& scheduler) : scheduler_(&scheduler) {}

    Response call(Request req) { return async(std::move(req)).get(); }
    std::future<Response> async(Request req) {
        return scheduler_->submit(std::move(req));
    }

private:
    BatchScheduler* scheduler_;
};

}  // namespace nofis::serve
