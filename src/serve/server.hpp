#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/model_registry.hpp"
#include "serve/scheduler.hpp"

namespace nofis::serve {

struct ServerConfig {
    std::string model_dir = ".";
    std::string host = "127.0.0.1";  ///< loopback only by design
    std::uint16_t port = 0;          ///< 0 = ephemeral; read back via port()
    /// listen(2) backlog. The default matches the historical hard-coded
    /// value; the cluster front runs with a deeper backlog because every
    /// client connection funnels through one acceptor.
    int backlog = 64;
    SchedulerConfig scheduler;
};

/// TCP front end of the serving stack: accepts loopback connections
/// speaking the line-delimited JSON protocol (one request per line, one
/// response per line, responses in request order per connection) and feeds
/// them into the shared BatchScheduler. Requests from different
/// connections coalesce into the same micro-batches.
///
/// Lifecycle: the constructor binds + listens + starts the accept loop;
/// wait() parks the calling thread until a `shutdown` request arrives (or
/// shutdown()/request_shutdown() is called); shutdown() then stops the
/// listener, drains the scheduler and joins every connection thread. The
/// destructor performs the same teardown if the caller did not.
class Server {
public:
    explicit Server(ServerConfig cfg);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Actual bound port (differs from cfg.port when that was 0).
    std::uint16_t port() const noexcept { return port_; }

    ModelRegistry& registry() noexcept { return registry_; }
    BatchScheduler& scheduler() noexcept { return scheduler_; }

    /// Blocks until shutdown is requested (protocol `shutdown` op, a
    /// request_shutdown() call, or `stop_flag` turning true — polled so a
    /// signal handler can end the serve loop).
    void wait(const std::atomic<bool>* stop_flag = nullptr);

    /// Signals wait() to return; safe from any thread (the scheduler's
    /// shutdown handler calls this).
    void request_shutdown();

    /// Full teardown: stop accepting, drain + stop the scheduler, join
    /// connection threads. Idempotent.
    void shutdown();

private:
    struct Connection;

    void accept_loop();
    void serve_connection(Connection& conn);
    void close_listener();

    ServerConfig cfg_;
    ModelRegistry registry_;
    BatchScheduler scheduler_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread accept_thread_;

    std::mutex conn_mutex_;
    std::list<std::unique_ptr<Connection>> connections_;

    std::mutex wait_mutex_;
    std::condition_variable wait_cv_;
    bool shutdown_requested_ = false;
    std::atomic<bool> stopped_{false};
};

}  // namespace nofis::serve
