#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flow/coupling_stack.hpp"
#include "flow/stack_info.hpp"
#include "serve/protocol.hpp"

namespace nofis::serve {

/// One resident model: the loaded coupling stack plus its introspection
/// record. Instances are immutable after construction and handed out as
/// shared_ptr<const Model>, so a request batch keeps "its" model alive even
/// if the registry reloads or evicts the name mid-flight — the registry
/// swap is atomic from the reader's point of view.
struct Model {
    Model(std::string model_name, flow::CouplingStack loaded_stack)
        : name(std::move(model_name)),
          stack(std::move(loaded_stack)),
          info(flow::stack_info(stack)) {}

    std::string name;
    flow::CouplingStack stack;
    flow::StackInfo info;
};

/// Loads `.nofisflow` stacks by name from one model directory and shares
/// them across requests.
///
/// Lifetime rules:
///   * `get` loads `<dir>/<name>.nofisflow` on first use and returns the
///     same shared instance afterwards; the stack is held const and never
///     mutated while resident.
///   * `reload` re-reads the file and swaps the registry entry; in-flight
///     holders of the old shared_ptr finish on the old parameters.
///   * `evict` drops the registry entry (again, holders are unaffected).
///
/// Names are path components, not paths: anything containing '/', '\\' or
/// leading '.' is rejected before touching the filesystem.
///
/// Thread safety: all methods are safe to call concurrently; loading
/// happens under the registry mutex so a name is read from disk exactly
/// once even under a thundering herd.
class ModelRegistry {
public:
    explicit ModelRegistry(std::string dir);

    /// Resident model for `name`, loading it if necessary. Throws
    /// ServeError(kUnknownModel) when the file does not exist and
    /// std::runtime_error when it exists but is malformed.
    std::shared_ptr<const Model> get(const std::string& name);

    /// Forces a fresh load from disk and swaps it in.
    std::shared_ptr<const Model> reload(const std::string& name);

    /// Drops the resident entry; returns false when it was not resident.
    bool evict(const std::string& name);

    /// Names with a `.nofisflow` file in the model directory, sorted.
    std::vector<std::string> available() const;

    /// Currently resident names, sorted.
    std::vector<std::string> resident() const;

    const std::string& dir() const noexcept { return dir_; }

    /// `<dir>/<name>.nofisflow` after validating `name`; throws
    /// ServeError(kBadRequest) for names that escape the directory.
    std::string path_for(const std::string& name) const;

private:
    std::shared_ptr<const Model> load_locked(const std::string& name);

    std::string dir_;
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const Model>> models_;
};

}  // namespace nofis::serve
