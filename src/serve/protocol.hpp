#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace nofis::serve {

// ---------------------------------------------------------------------------
// JSON value
// ---------------------------------------------------------------------------

/// Minimal JSON document model for the line-delimited wire protocol. Object
/// members keep insertion order so an encoded response is byte-stable: the
/// serving determinism guarantee ("bitwise-identical responses regardless of
/// batching, queue order or thread count") is checked on the encoded bytes.
///
/// Numbers remember whether their lexeme was an unsigned integer, so 64-bit
/// request seeds round-trip exactly instead of through a double.
class Json {
public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() = default;
    static Json null() { return Json(); }
    static Json boolean(bool b);
    static Json number(double v);
    static Json number_u64(std::uint64_t v);
    static Json string(std::string s);
    static Json array();
    static Json object();

    Type type() const noexcept { return type_; }
    bool is_null() const noexcept { return type_ == Type::kNull; }
    bool is_object() const noexcept { return type_ == Type::kObject; }
    bool is_array() const noexcept { return type_ == Type::kArray; }
    bool is_number() const noexcept { return type_ == Type::kNumber; }
    bool is_string() const noexcept { return type_ == Type::kString; }
    bool is_bool() const noexcept { return type_ == Type::kBool; }

    bool as_bool() const;
    double as_double() const;
    /// Exact when the lexeme was a plain unsigned integer; otherwise the
    /// double value converted (throws on negative / non-integral).
    std::uint64_t as_u64() const;
    const std::string& as_string() const;

    // --- array ------------------------------------------------------------
    std::size_t size() const noexcept { return items_.size(); }
    const Json& at(std::size_t i) const { return items_.at(i); }
    void push_back(Json v) { items_.push_back(std::move(v)); }

    // --- object (insertion-ordered) ---------------------------------------
    /// nullptr when the key is absent.
    const Json* find(std::string_view key) const noexcept;
    /// Appends (or overwrites) a member; returns *this for chaining.
    Json& set(std::string_view key, Json v);
    /// Object members in insertion order (empty for non-objects). The
    /// cluster metrics aggregator iterates worker records through this.
    const std::vector<std::pair<std::string, Json>>& members() const noexcept {
        return members_;
    }

    /// Compact single-line encoding. Doubles use "%.17g" so every distinct
    /// double has one canonical spelling and values survive a round-trip.
    std::string encode() const;
    void encode_to(std::string& out) const;

    /// Parses exactly one JSON document from `text` (leading/trailing
    /// whitespace allowed). Throws std::runtime_error with a position
    /// diagnostic on malformed input.
    static Json parse(std::string_view text);

private:
    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t u64_ = 0;
    bool is_u64_ = false;  ///< lexeme was an unsigned integer
    std::string str_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

// ---------------------------------------------------------------------------
// Requests / responses
// ---------------------------------------------------------------------------

/// Machine-readable failure category carried in every error response.
/// Stable strings on the wire (see error_code_name).
enum class ErrorCode {
    kBadRequest,        ///< malformed JSON / missing or invalid field
    kUnknownModel,      ///< registry has no such model on disk
    kUnknownCase,       ///< estimate against an unregistered test case
    kDimMismatch,       ///< request dimensionality != model/case dim
    kQueueFull,         ///< scheduler backpressure: bounded queue at capacity
    kDeadlineExceeded,  ///< request expired before its batch executed
    kShuttingDown,      ///< server stopping; request not executed
    kWorkerUnavailable, ///< cluster: owning worker crashed / respawning
    kInternal,          ///< unexpected exception during execution
};
std::string_view error_code_name(ErrorCode code) noexcept;

/// Structured serving failure: an ErrorCode plus a human-readable message.
/// Thrown inside the execution layers and converted into an error response
/// at the protocol boundary.
class ServeError : public std::runtime_error {
public:
    ServeError(ErrorCode code, const std::string& message)
        : std::runtime_error(message), code_(code) {}
    ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

/// Operations a request can carry.
enum class Op {
    kSample,      ///< n fresh draws z ~ q_MK with exact log q
    kLogProb,     ///< exact log q_MK at caller-supplied points
    kEstimate,    ///< Eq. (2) importance estimate against a test case
    kInfo,        ///< model metadata (flow::StackInfo)
    kListModels,  ///< models on disk + which are resident
    kReload,      ///< re-read a model from disk (atomic swap)
    kEvict,       ///< drop a resident model
    kDrain,       ///< ack once every earlier request has completed; at the
                  ///< cluster front (with a 'worker' field) additionally
                  ///< stops routing new requests to that worker
    kResume,      ///< cluster front: resume routing to a drained worker
    kPing,        ///< liveness / protocol check
    kShutdown,    ///< ack, then stop the server
};
std::string_view op_name(Op op) noexcept;

/// One decoded request line. `seed` is per-request: every stochastic op
/// derives all randomness from it, which is what makes responses
/// independent of batching and scheduling.
struct Request {
    std::uint64_t id = 0;   ///< caller-chosen correlation id, echoed back
    Op op = Op::kPing;
    std::string model;      ///< registry name (sample/log_prob/estimate/...)
    std::uint64_t seed = 0; ///< RNG seed (sample/estimate)
    std::size_t n = 0;      ///< rows to draw (sample) / N_IS (estimate)
    linalg::Matrix x;       ///< query points, row-major (log_prob)
    std::string case_name;  ///< test-case name (estimate)
    std::uint64_t timeout_us = 0;  ///< 0 = no deadline
    /// Cluster worker index for drain/resume admin verbs; negative = absent
    /// (a worker process acks a drain for its whole queue).
    std::int64_t worker = -1;

    /// Decodes one wire line. Throws ServeError(kBadRequest) on anything
    /// malformed, including unknown ops and wrong field types.
    static Request decode(std::string_view line);
    /// Encodes this request as one wire line (no trailing newline).
    std::string encode() const;
};

/// One response line. Exactly one of `result` (ok) or `error_*` (not ok)
/// is meaningful.
struct Response {
    std::uint64_t id = 0;
    Op op = Op::kPing;
    bool ok = false;
    Json result;                             ///< op-specific payload
    ErrorCode error_code = ErrorCode::kInternal;
    std::string error_message;

    static Response success(const Request& req, Json result);
    static Response failure(const Request& req, ErrorCode code,
                            std::string message);
    static Response failure(const Request& req, const ServeError& err);

    /// Encodes as one wire line (no trailing newline). Key order is fixed,
    /// so equal responses are byte-equal.
    std::string encode() const;
    static Response decode(std::string_view line);
};

}  // namespace nofis::serve
