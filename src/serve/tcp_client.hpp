#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace nofis::serve {

/// Blocking TCP client for the line-delimited JSON protocol. One instance
/// is one connection; requests sent through it are answered in order.
/// `nofis_cli query` is a thin wrapper around this.
class TcpClient {
public:
    /// Connects immediately; throws std::runtime_error on failure.
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();
    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    /// One request, one decoded response.
    Response call(const Request& req);

    /// Raw round-trip: sends `line` (newline appended) and returns the
    /// response line without its newline.
    std::string call_raw(const std::string& line);

    /// Pipelines every line, then reads exactly one response per line, in
    /// order. This is how a single client saturates the scheduler's
    /// micro-batching window.
    std::vector<std::string> pipeline_raw(const std::vector<std::string>& lines);

private:
    std::string read_line();

    int fd_ = -1;
    std::string buffer_;
};

}  // namespace nofis::serve
