#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace nofis::serve {

/// Blocking TCP client for the line-delimited JSON protocol. One instance
/// is one connection; requests sent through it are answered in order.
/// `nofis_cli query` is a thin wrapper around this.
class TcpClient {
public:
    /// Connects immediately; throws std::runtime_error on failure.
    TcpClient(const std::string& host, std::uint16_t port);
    ~TcpClient();
    TcpClient(const TcpClient&) = delete;
    TcpClient& operator=(const TcpClient&) = delete;

    /// One request, one decoded response.
    Response call(const Request& req);

    /// Raw round-trip: sends `line` (newline appended) and returns the
    /// response line without its newline.
    std::string call_raw(const std::string& line);

    /// Pipelines every line, then reads exactly one response per line, in
    /// order. This is how a single client saturates the scheduler's
    /// micro-batching window.
    std::vector<std::string> pipeline_raw(const std::vector<std::string>& lines);

    /// Split halves of call_raw for pipelined use from two threads: one
    /// thread may send_line while another recv_lines — the halves share no
    /// state beyond the socket itself. Neither is safe to call from two
    /// threads at once. The cluster front forwards requests this way.
    void send_line(const std::string& line);
    /// Next response line (newline stripped). Throws when the peer closes
    /// before a full line arrives.
    std::string recv_line() { return read_line(); }

    /// Half-closes both directions, unblocking a recv_line() parked in
    /// another thread. The object stays destructible afterwards.
    void shutdown() noexcept;

private:
    std::string read_line();

    int fd_ = -1;
    std::string buffer_;
};

}  // namespace nofis::serve
