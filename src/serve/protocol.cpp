#include "serve/protocol.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nofis::serve {

// ---------------------------------------------------------------------------
// Json — construction / access
// ---------------------------------------------------------------------------

Json Json::boolean(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
}

Json Json::number(double v) {
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = v;
    return j;
}

Json Json::number_u64(std::uint64_t v) {
    Json j;
    j.type_ = Type::kNumber;
    j.num_ = static_cast<double>(v);
    j.u64_ = v;
    j.is_u64_ = true;
    return j;
}

Json Json::string(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.str_ = std::move(s);
    return j;
}

Json Json::array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json Json::object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
}

namespace {
[[noreturn]] void type_error(const char* want) {
    throw std::runtime_error(std::string("json: value is not ") + want);
}
}  // namespace

bool Json::as_bool() const {
    if (type_ != Type::kBool) type_error("a bool");
    return bool_;
}

double Json::as_double() const {
    if (type_ != Type::kNumber) type_error("a number");
    return num_;
}

std::uint64_t Json::as_u64() const {
    if (type_ != Type::kNumber) type_error("a number");
    if (is_u64_) return u64_;
    if (num_ < 0.0 || num_ != std::floor(num_))
        type_error("an unsigned integer");
    return static_cast<std::uint64_t>(num_);
}

const std::string& Json::as_string() const {
    if (type_ != Type::kString) type_error("a string");
    return str_;
}

const Json* Json::find(std::string_view key) const noexcept {
    for (const auto& [k, v] : members_)
        if (k == key) return &v;
    return nullptr;
}

Json& Json::set(std::string_view key, Json v) {
    for (auto& [k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(std::string(key), std::move(v));
    return *this;
}

// ---------------------------------------------------------------------------
// Json — encoding
// ---------------------------------------------------------------------------

namespace {
void encode_string(std::string& out, std::string_view s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(c) & 0xff);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}
}  // namespace

void Json::encode_to(std::string& out) const {
    switch (type_) {
        case Type::kNull:
            out += "null";
            break;
        case Type::kBool:
            out += bool_ ? "true" : "false";
            break;
        case Type::kNumber: {
            if (is_u64_) {
                char buf[24];
                std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(u64_));
                out += buf;
            } else if (!std::isfinite(num_)) {
                // Mirrors the telemetry writer: the document must parse.
                out += "null";
            } else {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.17g", num_);
                out += buf;
            }
            break;
        }
        case Type::kString:
            encode_string(out, str_);
            break;
        case Type::kArray: {
            out += '[';
            for (std::size_t i = 0; i < items_.size(); ++i) {
                if (i) out += ',';
                items_[i].encode_to(out);
            }
            out += ']';
            break;
        }
        case Type::kObject: {
            out += '{';
            bool first = true;
            for (const auto& [k, v] : members_) {
                if (!first) out += ',';
                first = false;
                encode_string(out, k);
                out += ':';
                v.encode_to(out);
            }
            out += '}';
            break;
        }
    }
}

std::string Json::encode() const {
    std::string out;
    encode_to(out);
    return out;
}

// ---------------------------------------------------------------------------
// Json — parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        skip_ws();
        Json v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const {
        if (pos_ >= text_.size())
            throw std::runtime_error("json parse error: unexpected end");
        return text_[pos_];
    }

    void expect(char c) {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') return Json::string(parse_string());
        if (c == 't') {
            if (!consume_literal("true")) fail("bad literal");
            return Json::boolean(true);
        }
        if (c == 'f') {
            if (!consume_literal("false")) fail("bad literal");
            return Json::boolean(false);
        }
        if (c == 'n') {
            if (!consume_literal("null")) fail("bad literal");
            return Json::null();
        }
        return parse_number();
    }

    Json parse_object() {
        expect('{');
        Json obj = Json::object();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj.set(key, parse_value());
            skip_ws();
            if (pos_ >= text_.size()) fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json parse_array() {
        expect('[');
        Json arr = Json::array();
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            if (pos_ >= text_.size()) fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= h - '0';
                        else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                        else fail("bad \\u escape");
                    }
                    // The protocol only ever emits \u00xx control escapes;
                    // encode the code point as UTF-8 for generality.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default:
                    fail("unknown escape");
            }
        }
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected a value");
        const std::string lexeme(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        if (integral && lexeme[0] != '-') {
            const unsigned long long u = std::strtoull(lexeme.c_str(), &end, 10);
            if (errno == 0 && end == lexeme.c_str() + lexeme.size())
                return Json::number_u64(u);
        }
        errno = 0;
        const double d = std::strtod(lexeme.c_str(), &end);
        if (end != lexeme.c_str() + lexeme.size())
            fail("malformed number '" + lexeme + "'");
        return Json::number(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

// ---------------------------------------------------------------------------
// Requests / responses
// ---------------------------------------------------------------------------

std::string_view error_code_name(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::kBadRequest: return "bad_request";
        case ErrorCode::kUnknownModel: return "unknown_model";
        case ErrorCode::kUnknownCase: return "unknown_case";
        case ErrorCode::kDimMismatch: return "dim_mismatch";
        case ErrorCode::kQueueFull: return "queue_full";
        case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
        case ErrorCode::kShuttingDown: return "shutting_down";
        case ErrorCode::kWorkerUnavailable: return "worker_unavailable";
        case ErrorCode::kInternal: return "internal";
    }
    return "internal";
}

std::string_view op_name(Op op) noexcept {
    switch (op) {
        case Op::kSample: return "sample";
        case Op::kLogProb: return "log_prob";
        case Op::kEstimate: return "estimate";
        case Op::kInfo: return "info";
        case Op::kListModels: return "list_models";
        case Op::kReload: return "reload";
        case Op::kEvict: return "evict";
        case Op::kDrain: return "drain";
        case Op::kResume: return "resume";
        case Op::kPing: return "ping";
        case Op::kShutdown: return "shutdown";
    }
    return "ping";
}

namespace {

[[noreturn]] void bad_request(const std::string& what) {
    throw ServeError(ErrorCode::kBadRequest, what);
}

Op parse_op(const std::string& name) {
    for (Op op : {Op::kSample, Op::kLogProb, Op::kEstimate, Op::kInfo,
                  Op::kListModels, Op::kReload, Op::kEvict, Op::kDrain,
                  Op::kResume, Op::kPing, Op::kShutdown})
        if (op_name(op) == name) return op;
    bad_request("unknown op '" + name + "'");
}

std::uint64_t u64_field(const Json& obj, std::string_view key,
                        std::uint64_t fallback) {
    const Json* v = obj.find(key);
    if (!v) return fallback;
    try {
        return v->as_u64();
    } catch (const std::exception&) {
        bad_request("field '" + std::string(key) +
                    "' must be an unsigned integer");
    }
}

bool needs_model(Op op) {
    switch (op) {
        case Op::kSample:
        case Op::kLogProb:
        case Op::kEstimate:
        case Op::kInfo:
        case Op::kReload:
        case Op::kEvict:
            return true;
        default:
            return false;
    }
}

}  // namespace

Request Request::decode(std::string_view line) {
    Json doc;
    try {
        doc = Json::parse(line);
    } catch (const std::exception& e) {
        bad_request(e.what());
    }
    if (!doc.is_object()) bad_request("request must be a JSON object");

    Request req;
    req.id = u64_field(doc, "id", 0);
    const Json* op = doc.find("op");
    if (!op || !op->is_string()) bad_request("missing string field 'op'");
    req.op = parse_op(op->as_string());

    if (const Json* m = doc.find("model")) {
        if (!m->is_string()) bad_request("field 'model' must be a string");
        req.model = m->as_string();
    }
    if (needs_model(req.op) && req.model.empty())
        bad_request(std::string(op_name(req.op)) +
                    " requires a 'model' field");

    req.seed = u64_field(doc, "seed", 0);
    req.timeout_us = u64_field(doc, "timeout_us", 0);
    if (doc.find("worker") != nullptr)
        req.worker =
            static_cast<std::int64_t>(u64_field(doc, "worker", 0));
    req.n = static_cast<std::size_t>(
        u64_field(doc, "n", req.op == Op::kSample ? 1 : 1000));
    if ((req.op == Op::kSample || req.op == Op::kEstimate) && req.n == 0)
        bad_request("'n' must be positive");

    if (req.op == Op::kEstimate) {
        const Json* c = doc.find("case");
        if (!c || !c->is_string())
            bad_request("estimate requires a string field 'case'");
        req.case_name = c->as_string();
    }

    if (req.op == Op::kLogProb) {
        const Json* x = doc.find("x");
        if (!x || !x->is_array() || x->size() == 0)
            bad_request("log_prob requires a non-empty array field 'x'");
        const Json& first = x->at(0);
        if (!first.is_array() || first.size() == 0)
            bad_request("'x' must be an array of non-empty rows");
        const std::size_t cols = first.size();
        req.x = linalg::Matrix(x->size(), cols);
        for (std::size_t r = 0; r < x->size(); ++r) {
            const Json& row = x->at(r);
            if (!row.is_array() || row.size() != cols)
                bad_request("'x' rows must all have the same length");
            for (std::size_t c = 0; c < cols; ++c) {
                const Json& cell = row.at(c);
                if (!cell.is_number())
                    bad_request("'x' entries must be numbers");
                req.x(r, c) = cell.as_double();
            }
        }
    }
    return req;
}

std::string Request::encode() const {
    Json doc = Json::object();
    doc.set("id", Json::number_u64(id));
    doc.set("op", Json::string(std::string(op_name(op))));
    if (!model.empty()) doc.set("model", Json::string(model));
    switch (op) {
        case Op::kSample:
            doc.set("seed", Json::number_u64(seed));
            doc.set("n", Json::number_u64(n));
            break;
        case Op::kEstimate:
            doc.set("case", Json::string(case_name));
            doc.set("seed", Json::number_u64(seed));
            doc.set("n", Json::number_u64(n));
            break;
        case Op::kLogProb: {
            Json rows = Json::array();
            for (std::size_t r = 0; r < x.rows(); ++r) {
                Json row = Json::array();
                for (double v : x.row_span(r)) row.push_back(Json::number(v));
                rows.push_back(std::move(row));
            }
            doc.set("x", std::move(rows));
            break;
        }
        default:
            break;
    }
    if (timeout_us > 0) doc.set("timeout_us", Json::number_u64(timeout_us));
    if (worker >= 0)
        doc.set("worker", Json::number_u64(static_cast<std::uint64_t>(worker)));
    return doc.encode();
}

Response Response::success(const Request& req, Json result) {
    Response res;
    res.id = req.id;
    res.op = req.op;
    res.ok = true;
    res.result = std::move(result);
    return res;
}

Response Response::failure(const Request& req, ErrorCode code,
                           std::string message) {
    Response res;
    res.id = req.id;
    res.op = req.op;
    res.ok = false;
    res.error_code = code;
    res.error_message = std::move(message);
    return res;
}

Response Response::failure(const Request& req, const ServeError& err) {
    return failure(req, err.code(), err.what());
}

std::string Response::encode() const {
    Json doc = Json::object();
    doc.set("id", Json::number_u64(id));
    doc.set("op", Json::string(std::string(op_name(op))));
    doc.set("ok", Json::boolean(ok));
    if (ok) {
        doc.set("result", result);
    } else {
        Json err = Json::object();
        err.set("code",
                Json::string(std::string(error_code_name(error_code))));
        err.set("message", Json::string(error_message));
        doc.set("error", std::move(err));
    }
    return doc.encode();
}

Response Response::decode(std::string_view line) {
    Json doc = Json::parse(line);
    if (!doc.is_object())
        throw std::runtime_error("response must be a JSON object");
    Response res;
    if (const Json* id = doc.find("id")) res.id = id->as_u64();
    if (const Json* op = doc.find("op")) res.op = parse_op(op->as_string());
    const Json* ok = doc.find("ok");
    if (!ok || !ok->is_bool())
        throw std::runtime_error("response missing bool field 'ok'");
    res.ok = ok->as_bool();
    if (res.ok) {
        if (const Json* r = doc.find("result")) res.result = *r;
    } else {
        const Json* err = doc.find("error");
        if (err && err->is_object()) {
            if (const Json* m = err->find("message"))
                res.error_message = m->as_string();
            if (const Json* c = err->find("code")) {
                for (ErrorCode code :
                     {ErrorCode::kBadRequest, ErrorCode::kUnknownModel,
                      ErrorCode::kUnknownCase, ErrorCode::kDimMismatch,
                      ErrorCode::kQueueFull, ErrorCode::kDeadlineExceeded,
                      ErrorCode::kShuttingDown,
                      ErrorCode::kWorkerUnavailable, ErrorCode::kInternal})
                    if (error_code_name(code) == c->as_string())
                        res.error_code = code;
            }
        }
    }
    return res;
}

}  // namespace nofis::serve
