#include "nn/mlp.hpp"

#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"

namespace nofis::nn {

namespace {

namespace kernels = linalg::kernels;

/// Below this many multiply-adds a fused layer runs inline — same
/// threshold discipline as the tiled matmul (fork-join overhead beats any
/// win for the small conditioner layers).
constexpr std::size_t kParallelFusedMinOps = 1u << 15;

kernels::Act kernel_act(Activation act) {
    switch (act) {
        case Activation::kTanh:
            return kernels::Act::kTanh;
        case Activation::kRelu:
            return kernels::Act::kRelu;
        case Activation::kLeakyRelu:
            return kernels::Act::kLeakyRelu;
        case Activation::kSigmoid:
            return kernels::Act::kSigmoid;
        case Activation::kIdentity:
            return kernels::Act::kNone;
    }
    throw std::logic_error("kernel_act: unknown activation");
}

autodiff::Var apply_activation(const autodiff::Var& x, Activation act) {
    switch (act) {
        case Activation::kTanh:
            return autodiff::tanh_v(x);
        case Activation::kRelu:
            return autodiff::relu_v(x);
        case Activation::kLeakyRelu:
            return autodiff::leaky_relu_v(x);
        case Activation::kSigmoid:
            return autodiff::sigmoid_v(x);
        case Activation::kIdentity:
            return x;
    }
    throw std::logic_error("apply_activation: unknown activation");
}
}  // namespace

MLP::MLP(std::vector<std::size_t> layer_sizes, Activation act,
         rng::Engine& eng, double out_gain)
    : act_(act) {
    if (layer_sizes.size() < 2)
        throw std::invalid_argument("MLP: need at least input and output size");
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
        const bool last = (i + 2 == layer_sizes.size());
        layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], eng,
                             last ? out_gain : 1.0);
    }
}

autodiff::Var MLP::forward(const autodiff::Var& x) const {
    autodiff::Var h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i].forward(h);
        if (i + 1 < layers_.size()) h = apply_activation(h, act_);
    }
    return h;
}

linalg::Matrix MLP::predict(const linalg::Matrix& x) const {
    // Scalar flavour keeps the legacy graph path: it is the reference the
    // fused kernels are bitwise-checked against (and the honest perf
    // baseline for the O2 speedup claims).
    if (!kernels::simd_active()) return forward(autodiff::Var(x)).value();

    // Fused value path: one linear_act_rows kernel per layer, no autodiff
    // tape, no separate bias/activation passes. Rows are independent, so
    // large batches tile over the pool with disjoint writes (§8.2) and the
    // result is bitwise identical at any thread count.
    linalg::Matrix cur = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const linalg::Matrix& w = layers_[i].weight().value();
        const linalg::Matrix& b = layers_[i].bias().value();
        if (cur.cols() != w.rows())
            throw std::invalid_argument("MLP::predict: dim mismatch");
        const kernels::Act act =
            (i + 1 < layers_.size()) ? kernel_act(act_) : kernels::Act::kNone;
        linalg::Matrix next(cur.rows(), w.cols());
        auto row_range = [&](std::size_t r0, std::size_t r1) {
            kernels::linear_act_rows(cur.data(), w.data(), b.data(),
                                     next.data(), r0, r1, w.rows(), w.cols(),
                                     act);
        };
        if (cur.rows() * w.rows() * w.cols() >= kParallelFusedMinOps)
            parallel::parallel_for(cur.rows(), row_range);
        else
            row_range(0, cur.rows());
        cur = std::move(next);
    }
    return cur;
}

std::vector<autodiff::Var> MLP::params() const {
    std::vector<autodiff::Var> out;
    for (const auto& l : layers_)
        for (auto& p : l.params()) out.push_back(p);
    return out;
}

void MLP::set_trainable(bool trainable) {
    for (auto& p : params()) p.set_requires_grad(trainable);
}

}  // namespace nofis::nn
