#include "nn/mlp.hpp"

#include <stdexcept>

namespace nofis::nn {

namespace {
autodiff::Var apply_activation(const autodiff::Var& x, Activation act) {
    switch (act) {
        case Activation::kTanh:
            return autodiff::tanh_v(x);
        case Activation::kRelu:
            return autodiff::relu_v(x);
        case Activation::kLeakyRelu:
            return autodiff::leaky_relu_v(x);
        case Activation::kSigmoid:
            return autodiff::sigmoid_v(x);
        case Activation::kIdentity:
            return x;
    }
    throw std::logic_error("apply_activation: unknown activation");
}
}  // namespace

MLP::MLP(std::vector<std::size_t> layer_sizes, Activation act,
         rng::Engine& eng, double out_gain)
    : act_(act) {
    if (layer_sizes.size() < 2)
        throw std::invalid_argument("MLP: need at least input and output size");
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
        const bool last = (i + 2 == layer_sizes.size());
        layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], eng,
                             last ? out_gain : 1.0);
    }
}

autodiff::Var MLP::forward(const autodiff::Var& x) const {
    autodiff::Var h = x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i].forward(h);
        if (i + 1 < layers_.size()) h = apply_activation(h, act_);
    }
    return h;
}

linalg::Matrix MLP::predict(const linalg::Matrix& x) const {
    return forward(autodiff::Var(x)).value();
}

std::vector<autodiff::Var> MLP::params() const {
    std::vector<autodiff::Var> out;
    for (const auto& l : layers_)
        for (auto& p : l.params()) out.push_back(p);
    return out;
}

void MLP::set_trainable(bool trainable) {
    for (auto& p : params()) p.set_requires_grad(trainable);
}

}  // namespace nofis::nn
