#pragma once

#include <vector>

#include "nn/linear.hpp"

namespace nofis::nn {

enum class Activation { kTanh, kRelu, kLeakyRelu, kSigmoid, kIdentity };

/// Multi-layer perceptron: Linear -> act -> ... -> Linear (no activation on
/// the output layer). The conditioner network of every RealNVP coupling
/// layer, and the surrogate model of the SIR / SUC baselines.
class MLP {
public:
    /// `layer_sizes` = {in, h1, ..., out}; needs >= 2 entries.
    /// `out_gain` scales the final layer's init (0 => zero-initialised output,
    /// used so coupling layers start as the identity).
    MLP(std::vector<std::size_t> layer_sizes, Activation act,
        rng::Engine& eng, double out_gain = 1.0);

    autodiff::Var forward(const autodiff::Var& x) const;

    /// Convenience: forward on raw data without gradient tracking.
    linalg::Matrix predict(const linalg::Matrix& x) const;

    std::vector<autodiff::Var> params() const;

    /// Marks all parameters (non-)trainable; frozen parameters are skipped
    /// by optimizers and pruned from gradient flow.
    void set_trainable(bool trainable);

    std::size_t in_features() const { return layers_.front().in_features(); }
    std::size_t out_features() const { return layers_.back().out_features(); }

private:
    std::vector<Linear> layers_;
    Activation act_;
};

}  // namespace nofis::nn
