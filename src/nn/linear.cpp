#include "nn/linear.hpp"

#include <cmath>

namespace nofis::nn {

Linear::Linear(std::size_t in, std::size_t out, rng::Engine& eng, double gain)
    : in_(in), out_(out) {
    linalg::Matrix w(in, out);
    const double bound =
        gain * std::sqrt(6.0 / static_cast<double>(in + out));
    for (double& v : w.flat()) v = eng.uniform(-bound, bound);
    weight_ = autodiff::Var(std::move(w), /*requires_grad=*/true);
    bias_ = autodiff::Var(linalg::Matrix(1, out), /*requires_grad=*/true);
}

autodiff::Var Linear::forward(const autodiff::Var& x) const {
    return autodiff::add_bias(autodiff::matmul(x, weight_), bias_);
}

}  // namespace nofis::nn
