#pragma once

#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rng/engine.hpp"

namespace nofis::nn {

struct TrainConfig {
    std::size_t epochs = 200;
    std::size_t batch_size = 64;
    double learning_rate = 1e-3;
    double grad_clip = 10.0;
    /// kPerValue reproduces earlier per-component clamping benches.
    GradClipMode grad_clip_mode = GradClipMode::kGlobalNorm;
};

/// Per-epoch training losses (for diagnostics / convergence tests).
struct TrainHistory {
    std::vector<double> epoch_loss;
    double final_loss() const { return epoch_loss.empty() ? 0.0 : epoch_loss.back(); }
};

/// Fits `model` to minimise MSE on (x, y) with Adam and shuffled
/// mini-batches. Backbone of the SIR (surrogate regression) baseline.
TrainHistory fit_regression(MLP& model, const linalg::Matrix& x,
                            const linalg::Matrix& y, const TrainConfig& cfg,
                            rng::Engine& eng);

/// Fits a binary classifier (logit output) with BCE loss. Labels are a
/// column of 0/1. Backbone of the SUC (subset classification) baseline.
TrainHistory fit_classifier(MLP& model, const linalg::Matrix& x,
                            const linalg::Matrix& labels,
                            const TrainConfig& cfg, rng::Engine& eng);

}  // namespace nofis::nn
