#include "nn/trainer.hpp"

#include <numeric>

#include "nn/loss.hpp"

namespace nofis::nn {

namespace {

using autodiff::Var;

/// Shared mini-batch loop; `make_loss` maps (batch_x, batch_y) -> scalar Var.
template <typename LossFn>
TrainHistory fit_impl(MLP& model, const linalg::Matrix& x,
                      const linalg::Matrix& y, const TrainConfig& cfg,
                      rng::Engine& eng, LossFn&& make_loss) {
    const std::size_t n = x.rows();
    Adam opt(model.params(), cfg.learning_rate);
    TrainHistory hist;
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        // Fisher–Yates shuffle.
        for (std::size_t i = n; i-- > 1;)
            std::swap(order[i], order[eng.uniform_index(i + 1)]);

        double epoch_loss = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start < n; start += cfg.batch_size) {
            const std::size_t end = std::min(n, start + cfg.batch_size);
            linalg::Matrix bx(end - start, x.cols());
            linalg::Matrix by(end - start, y.cols());
            for (std::size_t i = start; i < end; ++i) {
                const std::size_t src = order[i];
                for (std::size_t c = 0; c < x.cols(); ++c)
                    bx(i - start, c) = x(src, c);
                for (std::size_t c = 0; c < y.cols(); ++c)
                    by(i - start, c) = y(src, c);
            }
            opt.zero_grad();
            Var loss = make_loss(model, bx, by);
            loss.backward();
            opt.clip_gradients(cfg.grad_clip_mode, cfg.grad_clip);
            opt.step();
            epoch_loss += loss.value()(0, 0);
            ++batches;
        }
        hist.epoch_loss.push_back(epoch_loss /
                                  std::max<std::size_t>(batches, 1));
    }
    return hist;
}

}  // namespace

TrainHistory fit_regression(MLP& model, const linalg::Matrix& x,
                            const linalg::Matrix& y, const TrainConfig& cfg,
                            rng::Engine& eng) {
    return fit_impl(model, x, y, cfg, eng,
                    [](MLP& m, const linalg::Matrix& bx,
                       const linalg::Matrix& by) {
                        return mse_loss(m.forward(Var(bx)), by);
                    });
}

TrainHistory fit_classifier(MLP& model, const linalg::Matrix& x,
                            const linalg::Matrix& labels,
                            const TrainConfig& cfg, rng::Engine& eng) {
    return fit_impl(model, x, labels, cfg, eng,
                    [](MLP& m, const linalg::Matrix& bx,
                       const linalg::Matrix& by) {
                        return bce_with_logits_loss(m.forward(Var(bx)), by);
                    });
}

}  // namespace nofis::nn
