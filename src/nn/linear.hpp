#pragma once

#include <vector>

#include "autodiff/ops.hpp"
#include "autodiff/var.hpp"
#include "rng/engine.hpp"

namespace nofis::nn {

/// Fully-connected layer y = x·W + b with trainable W (in x out) and
/// b (1 x out).
class Linear {
public:
    /// Xavier-uniform initialised weights; zero bias. `gain` scales the init
    /// range (coupling-net output layers use gain = 0 so a freshly-built
    /// flow is exactly the identity map).
    Linear(std::size_t in, std::size_t out, rng::Engine& eng,
           double gain = 1.0);

    autodiff::Var forward(const autodiff::Var& x) const;

    std::size_t in_features() const noexcept { return in_; }
    std::size_t out_features() const noexcept { return out_; }

    /// Trainable parameters (weight, bias) — shared handles, not copies.
    std::vector<autodiff::Var> params() const { return {weight_, bias_}; }

    autodiff::Var& weight() { return weight_; }
    autodiff::Var& bias() { return bias_; }
    const autodiff::Var& weight() const noexcept { return weight_; }
    const autodiff::Var& bias() const noexcept { return bias_; }

private:
    std::size_t in_;
    std::size_t out_;
    autodiff::Var weight_;
    autodiff::Var bias_;
};

}  // namespace nofis::nn
