#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

namespace nofis::nn {

void Optimizer::zero_grad() {
    for (auto& p : params_) p.zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
    double sq = 0.0;
    for (const auto& p : params_) {
        if (!p.requires_grad()) continue;
        const auto& g = p.grad();
        if (g.empty()) continue;
        for (double v : g.flat()) sq += v * v;
    }
    const double norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0.0) {
        const double s = max_norm / norm;
        for (auto& p : params_) {
            if (!p.requires_grad()) continue;
            auto node = p.node();
            if (!node->grad.empty()) node->grad *= s;
        }
    }
    return norm;
}

double Optimizer::clip_grad_value(double limit) {
    double sq = 0.0;
    for (auto& p : params_) {
        if (!p.requires_grad()) continue;
        auto node = p.node();
        if (node->grad.empty()) continue;
        for (double& v : node->grad.flat()) {
            sq += v * v;
            if (v > limit)
                v = limit;
            else if (v < -limit)
                v = -limit;
        }
    }
    return std::sqrt(sq);
}

double Optimizer::clip_gradients(GradClipMode mode, double limit) {
    return mode == GradClipMode::kGlobalNorm ? clip_grad_norm(limit)
                                             : clip_grad_value(limit);
}

double grad_explode_limit(GradClipMode mode, double limit,
                          double explode_factor,
                          std::size_t param_count) noexcept {
    // kGlobalNorm multiplies by exactly 1.0, keeping the threshold bitwise
    // identical to the historical `explode_factor * limit`.
    const double scale =
        mode == GradClipMode::kPerValue
            ? std::sqrt(static_cast<double>(std::max<std::size_t>(
                  param_count, 1)))
            : 1.0;
    return explode_factor * limit * scale;
}

Sgd::Sgd(std::vector<autodiff::Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_)
        velocity_.emplace_back(p.value().rows(), p.value().cols());
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (!p.requires_grad() || p.grad().empty()) continue;
        if (momentum_ != 0.0) {
            velocity_[i] *= momentum_;
            velocity_[i] += p.grad();
            p.mutable_value() -= velocity_[i] * lr_;
        } else {
            p.mutable_value() -= p.grad() * lr_;
        }
    }
}

Adam::Adam(std::vector<autodiff::Var> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p.value().rows(), p.value().cols());
        v_.emplace_back(p.value().rows(), p.value().cols());
    }
}

void Adam::step() {
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (!p.requires_grad() || p.grad().empty()) continue;
        auto& value = p.mutable_value();
        const auto& g = p.grad();
        for (std::size_t k = 0; k < value.size(); ++k) {
            const double gk = g.flat()[k];
            double& mk = m_[i].flat()[k];
            double& vk = v_[i].flat()[k];
            mk = beta1_ * mk + (1.0 - beta1_) * gk;
            vk = beta2_ * vk + (1.0 - beta2_) * gk * gk;
            const double mhat = mk / bias1;
            const double vhat = vk / bias2;
            value.flat()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

}  // namespace nofis::nn
