#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nofis::nn {

namespace {

/// Copies exported slot matrices back into live storage, verifying shapes.
void restore_slots(const char* who, const std::vector<linalg::Matrix>& src,
                   std::vector<linalg::Matrix>* const* dests,
                   std::size_t dest_count) {
    std::size_t expected = 0;
    for (std::size_t j = 0; j < dest_count; ++j) expected += dests[j]->size();
    if (src.size() != expected)
        throw std::runtime_error(std::string(who) +
                                 ": optimizer state slot count mismatch");
    std::size_t i = 0;
    for (std::size_t j = 0; j < dest_count; ++j) {
        for (auto& dst : *dests[j]) {
            const auto& s = src[i++];
            if (s.rows() != dst.rows() || s.cols() != dst.cols())
                throw std::runtime_error(
                    std::string(who) + ": optimizer state shape mismatch");
            dst = s;
        }
    }
}

}  // namespace

void Optimizer::import_state(const OptimizerState& state) {
    if (state.step_count != 0 || !state.slots.empty())
        throw std::runtime_error(
            "Optimizer::import_state: stateless optimizer given a non-empty "
            "state");
}

void Optimizer::zero_grad() {
    for (auto& p : params_) p.zero_grad();
}

double Optimizer::clip_grad_norm(double max_norm) {
    double sq = 0.0;
    for (const auto& p : params_) {
        if (!p.requires_grad()) continue;
        const auto& g = p.grad();
        if (g.empty()) continue;
        for (double v : g.flat()) sq += v * v;
    }
    const double norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0.0) {
        const double s = max_norm / norm;
        for (auto& p : params_) {
            if (!p.requires_grad()) continue;
            auto node = p.node();
            if (!node->grad.empty()) node->grad *= s;
        }
    }
    return norm;
}

double Optimizer::clip_grad_value(double limit) {
    double sq = 0.0;
    for (auto& p : params_) {
        if (!p.requires_grad()) continue;
        auto node = p.node();
        if (node->grad.empty()) continue;
        for (double& v : node->grad.flat()) {
            sq += v * v;
            if (v > limit)
                v = limit;
            else if (v < -limit)
                v = -limit;
        }
    }
    return std::sqrt(sq);
}

double Optimizer::clip_gradients(GradClipMode mode, double limit) {
    return mode == GradClipMode::kGlobalNorm ? clip_grad_norm(limit)
                                             : clip_grad_value(limit);
}

double grad_explode_limit(GradClipMode mode, double limit,
                          double explode_factor,
                          std::size_t param_count) noexcept {
    // kGlobalNorm multiplies by exactly 1.0, keeping the threshold bitwise
    // identical to the historical `explode_factor * limit`.
    const double scale =
        mode == GradClipMode::kPerValue
            ? std::sqrt(static_cast<double>(std::max<std::size_t>(
                  param_count, 1)))
            : 1.0;
    return explode_factor * limit * scale;
}

Sgd::Sgd(std::vector<autodiff::Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_)
        velocity_.emplace_back(p.value().rows(), p.value().cols());
}

OptimizerState Sgd::export_state() const {
    OptimizerState s;
    s.step_count = 0;
    s.slots = velocity_;
    return s;
}

void Sgd::import_state(const OptimizerState& state) {
    std::vector<linalg::Matrix>* dests[] = {&velocity_};
    restore_slots("Sgd", state.slots, dests, 1);
}

void Sgd::step() {
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (!p.requires_grad() || p.grad().empty()) continue;
        if (momentum_ != 0.0) {
            velocity_[i] *= momentum_;
            velocity_[i] += p.grad();
            p.mutable_value() -= velocity_[i] * lr_;
        } else {
            p.mutable_value() -= p.grad() * lr_;
        }
    }
}

Adam::Adam(std::vector<autodiff::Var> params, double lr, double beta1,
           double beta2, double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p.value().rows(), p.value().cols());
        v_.emplace_back(p.value().rows(), p.value().cols());
    }
}

OptimizerState Adam::export_state() const {
    OptimizerState s;
    s.step_count = t_;
    s.slots.reserve(m_.size() + v_.size());
    for (const auto& m : m_) s.slots.push_back(m);
    for (const auto& v : v_) s.slots.push_back(v);
    return s;
}

void Adam::import_state(const OptimizerState& state) {
    std::vector<linalg::Matrix>* dests[] = {&m_, &v_};
    restore_slots("Adam", state.slots, dests, 2);
    t_ = state.step_count;
}

void Adam::step() {
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto& p = params_[i];
        if (!p.requires_grad() || p.grad().empty()) continue;
        auto& value = p.mutable_value();
        const auto& g = p.grad();
        for (std::size_t k = 0; k < value.size(); ++k) {
            const double gk = g.flat()[k];
            double& mk = m_[i].flat()[k];
            double& vk = v_[i].flat()[k];
            mk = beta1_ * mk + (1.0 - beta1_) * gk;
            vk = beta2_ * vk + (1.0 - beta2_) * gk * gk;
            const double mhat = mk / bias1;
            const double vhat = vk / bias2;
            value.flat()[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

}  // namespace nofis::nn
