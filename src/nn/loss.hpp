#pragma once

#include "autodiff/ops.hpp"
#include "autodiff/var.hpp"

namespace nofis::nn {

/// Mean squared error between prediction graph `pred` and constant targets.
autodiff::Var mse_loss(const autodiff::Var& pred,
                       const linalg::Matrix& target);

/// Numerically-stable binary cross-entropy on raw logits against 0/1 labels:
/// mean( max(z,0) - z*y + log(1+e^{-|z|}) ).
autodiff::Var bce_with_logits_loss(const autodiff::Var& logits,
                                   const linalg::Matrix& labels);

}  // namespace nofis::nn
