#pragma once

#include <unordered_map>
#include <vector>

#include "autodiff/var.hpp"

namespace nofis::nn {

/// How gradients are bounded before an optimizer step.
///
/// kGlobalNorm rescales the whole gradient vector when its L2 norm across
/// all parameters exceeds the limit — direction-preserving, the default.
/// kPerValue clamps every component into [-limit, limit] independently;
/// this distorts the gradient direction and is kept only so earlier seed
/// benches that trained with per-value clamping stay reproducible.
enum class GradClipMode {
    kGlobalNorm,
    kPerValue,
};

/// Portable snapshot of an optimizer's internal state (step counter plus
/// per-parameter moment/velocity slots in a documented order). Exporting
/// and re-importing it into a freshly constructed optimizer over the same
/// parameter list makes the next step() bitwise identical to never having
/// torn the optimizer down — the checkpoint/resume subsystem persists this
/// for mid-stage snapshots.
struct OptimizerState {
    long step_count = 0;
    /// Adam: first moments m then second moments v (2P matrices for P
    /// params); SGD: momentum velocities (P matrices); base: empty.
    std::vector<linalg::Matrix> slots;
};

/// Base optimizer: owns handles to the trainable parameters and updates
/// their values in place from accumulated gradients.
///
/// Frozen parameters (`requires_grad() == false`) are skipped by `step` —
/// this is how the NOFIS stage-m training leaves blocks 1..(m-1) untouched
/// while still letting them participate in the forward pass.
class Optimizer {
public:
    explicit Optimizer(std::vector<autodiff::Var> params)
        : params_(std::move(params)) {}
    virtual ~Optimizer() = default;

    void zero_grad();
    virtual void step() = 0;

    /// Clips the global L2 norm of all (unfrozen) gradients to `max_norm`.
    /// Returns the pre-clip norm. Call between backward() and step().
    double clip_grad_norm(double max_norm);

    /// Legacy clipping: clamps each gradient component into
    /// [-limit, limit]. Returns the pre-clip global L2 norm so callers can
    /// use the same divergence telemetry in either mode.
    double clip_grad_value(double limit);

    /// Mode-dispatching clip (see GradClipMode); returns the pre-clip norm.
    double clip_gradients(GradClipMode mode, double limit);

    /// State capture for checkpoint/resume; see OptimizerState. The base
    /// optimizer is stateless, so the default round-trips an empty state.
    virtual OptimizerState export_state() const { return {}; }
    /// Restores a state exported from an optimizer over the same parameter
    /// list; throws std::runtime_error on a layout mismatch.
    virtual void import_state(const OptimizerState& state);

    std::span<const autodiff::Var> params() const noexcept { return params_; }

protected:
    std::vector<autodiff::Var> params_;
};

/// Pre-clip gradient-norm threshold above which a training loop should
/// treat the step as divergent, given how the gradient will be clipped.
///
/// Under kGlobalNorm the clip limit and the norm live on the same scale, so
/// the threshold is simply `explode_factor * limit`. Under kPerValue the
/// limit bounds each component, so a perfectly legitimate gradient can
/// reach a norm of `limit * sqrt(param_count)`; comparing the raw norm
/// against `explode_factor * limit` would flag healthy high-dimensional
/// steps as explosions. The threshold is therefore scaled by
/// sqrt(param_count).
double grad_explode_limit(GradClipMode mode, double limit,
                          double explode_factor,
                          std::size_t param_count) noexcept;

/// Plain SGD with optional momentum.
class Sgd final : public Optimizer {
public:
    Sgd(std::vector<autodiff::Var> params, double lr, double momentum = 0.0);
    void step() override;

    OptimizerState export_state() const override;
    void import_state(const OptimizerState& state) override;

private:
    double lr_;
    double momentum_;
    std::vector<linalg::Matrix> velocity_;
};

/// Adam (Kingma & Ba) — the optimizer used for all flow and surrogate
/// training in this repo, mirroring the paper's PyTorch setup.
class Adam final : public Optimizer {
public:
    Adam(std::vector<autodiff::Var> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);
    void step() override;

    double learning_rate() const noexcept { return lr_; }
    void set_learning_rate(double lr) noexcept { lr_ = lr; }

    OptimizerState export_state() const override;
    void import_state(const OptimizerState& state) override;

private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    long t_ = 0;
    std::vector<linalg::Matrix> m_;
    std::vector<linalg::Matrix> v_;
};

}  // namespace nofis::nn
