#include "nn/loss.hpp"

#include <stdexcept>

namespace nofis::nn {

using autodiff::Var;

Var mse_loss(const Var& pred, const linalg::Matrix& target) {
    if (pred.rows() != target.rows() || pred.cols() != target.cols())
        throw std::invalid_argument("mse_loss: shape mismatch");
    Var diff = autodiff::sub(pred, Var(target));
    return autodiff::mean(autodiff::square_v(diff));
}

Var bce_with_logits_loss(const Var& logits, const linalg::Matrix& labels) {
    if (logits.rows() != labels.rows() || logits.cols() != labels.cols())
        throw std::invalid_argument("bce_with_logits_loss: shape mismatch");
    // max(z,0) - z*y + softplus(-|z|)
    Var relu_z = autodiff::relu_v(logits);
    Var zy = autodiff::hadamard_const(logits, labels);
    // softplus(-|z|) = log(1 + e^{-|z|}): compute via softplus on -|z|.
    // -|z| = min(z, -z) = -relu(z) - relu(-z).
    Var abs_z = autodiff::add(relu_z, autodiff::relu_v(autodiff::neg(logits)));
    Var stable = autodiff::softplus_v(autodiff::neg(abs_z));
    Var per_elem = autodiff::add(autodiff::sub(relu_z, zy), stable);
    return autodiff::mean(per_elem);
}

}  // namespace nofis::nn
