#include "core/diagnostics.hpp"

#include <sstream>

namespace nofis::core {

std::string loss_curve_csv(const std::vector<StageDiagnostics>& stages) {
    std::ostringstream os;
    os << "stage,level,epoch,loss\n";
    for (const auto& s : stages)
        for (std::size_t e = 0; e < s.epoch_loss.size(); ++e)
            os << s.stage << ',' << s.level << ',' << e << ','
               << s.epoch_loss[e] << '\n';
    return os.str();
}

}  // namespace nofis::core
