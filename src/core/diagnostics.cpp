#include "core/diagnostics.hpp"

#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/ios_guard.hpp"

namespace nofis::core {

double StageDiagnostics::first_finite_loss() const noexcept {
    for (double v : epoch_loss)
        if (std::isfinite(v)) return v;
    return std::numeric_limits<double>::quiet_NaN();
}

double StageDiagnostics::last_finite_loss() const noexcept {
    for (auto it = epoch_loss.rbegin(); it != epoch_loss.rend(); ++it)
        if (std::isfinite(*it)) return *it;
    return std::numeric_limits<double>::quiet_NaN();
}

std::string RunHealth::summary() const {
    std::ostringstream os;
    os << "run health: " << (degraded() ? "DEGRADED" : "clean") << '\n';
    os << "  g-faults: " << faults.summary() << '\n';
    os << "  stage rollbacks: " << stage_retries << " retr"
       << (stage_retries == 1 ? "y" : "ies") << " across "
       << stages_rolled_back << " stage(s), " << skipped_epochs
       << " epoch(s) skipped\n";
    {
        // Scope the 4-digit precision to the proposal line: summary() may
        // one day write into a caller's stream, and the guard keeps the
        // setprecision from leaking past this block either way.
        const util::IosStateGuard guard(os);
        os << std::setprecision(4) << "  proposal: ESS(hits) = " << final_ess
           << ", ESS(all) = " << ess_all << ", max weight = " << max_weight
           << ", weight CV = " << weight_cv;
    }
    return os.str();
}

std::string loss_curve_csv(const std::vector<StageDiagnostics>& stages) {
    std::ostringstream os;
    os << "stage,level,epoch,loss\n";
    for (const auto& s : stages)
        for (std::size_t e = 0; e < s.epoch_loss.size(); ++e) {
            // Skipped epochs carry a NaN sentinel — no loss was computed,
            // so they are omitted rather than plotted as a fake value.
            if (!std::isfinite(s.epoch_loss[e])) continue;
            os << s.stage << ',' << s.level << ',' << e << ','
               << s.epoch_loss[e] << '\n';
        }
    return os.str();
}

}  // namespace nofis::core
