#include "core/diagnostics.hpp"

#include <iomanip>
#include <sstream>

namespace nofis::core {

std::string RunHealth::summary() const {
    std::ostringstream os;
    os << "run health: " << (degraded() ? "DEGRADED" : "clean") << '\n';
    os << "  g-faults: " << faults.summary() << '\n';
    os << "  stage rollbacks: " << stage_retries << " retr"
       << (stage_retries == 1 ? "y" : "ies") << " across "
       << stages_rolled_back << " stage(s), " << skipped_epochs
       << " epoch(s) skipped\n";
    os << std::setprecision(4) << "  proposal: ESS(hits) = " << final_ess
       << ", ESS(all) = " << ess_all << ", max weight = " << max_weight
       << ", weight CV = " << weight_cv;
    return os.str();
}

std::string loss_curve_csv(const std::vector<StageDiagnostics>& stages) {
    std::ostringstream os;
    os << "stage,level,epoch,loss\n";
    for (const auto& s : stages)
        for (std::size_t e = 0; e < s.epoch_loss.size(); ++e)
            os << s.stage << ',' << s.level << ',' << e << ','
               << s.epoch_loss[e] << '\n';
    return os.str();
}

}  // namespace nofis::core
