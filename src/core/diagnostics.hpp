#pragma once

#include <string>
#include <vector>

#include "estimators/guarded_problem.hpp"

namespace nofis::core {

/// Per-stage training record (Figure 3(e) of the paper plots exactly this:
/// the KL loss of every stage against the epoch index).
struct StageDiagnostics {
    std::size_t stage = 0;          ///< m (1-based)
    double level = 0.0;             ///< a_m
    /// True KL-loss value per epoch. Epochs whose update was skipped (flow
    /// blow-up / non-finite loss in legacy skip mode) hold a quiet NaN
    /// sentinel — no loss was computed, and fabricating one would fake
    /// convergence. Consumers must skip non-finite entries; see
    /// first_finite_loss / last_finite_loss.
    std::vector<double> epoch_loss;
    /// Fraction of the stage's final-epoch samples inside Ω_{a_m} — a cheap
    /// health indicator (should climb toward ~1 as the proposal locks on).
    double inside_fraction = 0.0;

    /// First / last finite entry of epoch_loss (skipped-epoch NaN sentinels
    /// excluded); NaN when the stage never computed a loss.
    double first_finite_loss() const noexcept;
    double last_finite_loss() const noexcept;

    // --- rollback-retry telemetry -------------------------------------------
    /// Times this stage was rolled back to its checkpoint and retrained
    /// (each retry restores parameters, shrinks the LR, and tightens the
    /// grad-clip / scale-cap).
    std::size_t retries = 0;
    /// Human-readable trigger per retry ("non-finite KL loss", ...).
    std::vector<std::string> retry_reasons;
    /// Epochs whose update was skipped because divergence persisted after
    /// the retry budget was exhausted (legacy skip-and-continue behaviour).
    std::size_t skipped_epochs = 0;
};

/// Diagnostics for the final importance-sampling estimate.
struct IsDiagnostics {
    double max_weight = 0.0;        ///< largest p/q ratio observed
    double effective_sample_size = 0.0;  ///< (Σw)² / Σw² over hit samples
    std::size_t hits = 0;           ///< samples that landed inside Ω
    std::size_t draws = 0;          ///< total proposal draws (N_IS)

    // Proposal-quality early warnings, computed over the *raw* importance
    // weights p/q of ALL draws (no failure indicator). A collapsing
    // proposal shows up here as ess_all ≪ draws and weight_cv ≫ 1 long
    // before the hit-restricted ESS reacts.
    double ess_all = 0.0;    ///< (Σw)² / Σw² over every proposal draw
    double weight_cv = 0.0;  ///< std(w) / mean(w) over every proposal draw
};

/// End-to-end health of one NofisEstimator::run: g-evaluation faults, stage
/// rollbacks, and the final proposal-quality numbers in one place. Printed
/// by the CLI after training and carried in RunResult for callers that
/// alert on degraded runs.
struct RunHealth {
    estimators::FaultReport faults;  ///< guarded g/g_grad fault ledger
    std::size_t g_retry_calls = 0;   ///< extra g calls spent on fault retries
    std::size_t stage_retries = 0;   ///< rollback-retries across all stages
    std::size_t stages_rolled_back = 0;  ///< stages that needed ≥ 1 rollback
    std::size_t skipped_epochs = 0;  ///< epochs dropped after retry budget
    double final_ess = 0.0;          ///< hit-restricted ESS of the estimate
    double ess_all = 0.0;            ///< all-draw ESS (proposal quality)
    double max_weight = 0.0;
    double weight_cv = 0.0;

    bool degraded() const noexcept {
        return faults.total_faults() > 0 || stage_retries > 0 ||
               skipped_epochs > 0;
    }
    /// Multi-line human-readable digest for CLI output / logs.
    std::string summary() const;
};

/// Serialises a loss curve as "epoch,loss" CSV lines (bench figure output).
std::string loss_curve_csv(const std::vector<StageDiagnostics>& stages);

}  // namespace nofis::core
