#pragma once

#include <string>
#include <vector>

namespace nofis::core {

/// Per-stage training record (Figure 3(e) of the paper plots exactly this:
/// the KL loss of every stage against the epoch index).
struct StageDiagnostics {
    std::size_t stage = 0;          ///< m (1-based)
    double level = 0.0;             ///< a_m
    std::vector<double> epoch_loss; ///< true KL-loss value per epoch
    /// Fraction of the stage's final-epoch samples inside Ω_{a_m} — a cheap
    /// health indicator (should climb toward ~1 as the proposal locks on).
    double inside_fraction = 0.0;
};

/// Diagnostics for the final importance-sampling estimate.
struct IsDiagnostics {
    double max_weight = 0.0;        ///< largest p/q ratio observed
    double effective_sample_size = 0.0;  ///< (Σw)² / Σw² over hit samples
    std::size_t hits = 0;           ///< samples that landed inside Ω
};

/// Serialises a loss curve as "epoch,loss" CSV lines (bench figure output).
std::string loss_curve_csv(const std::vector<StageDiagnostics>& stages);

}  // namespace nofis::core
