#pragma once

#include <vector>

#include "estimators/problem.hpp"
#include "rng/engine.hpp"

namespace nofis::core {

/// The nested-subset level sequence {a_m} of the paper: strictly decreasing
/// with a_M = 0, inducing Ω_{a_1} ⊇ … ⊇ Ω_{a_M} = Ω.
class LevelSchedule {
public:
    /// Validates: non-empty, strictly decreasing, last element == 0.
    static LevelSchedule manual(std::vector<double> levels);

    std::size_t num_levels() const noexcept { return a_.size(); }
    double level(std::size_t m) const { return a_.at(m); }
    std::span<const double> levels() const noexcept { return a_; }

private:
    explicit LevelSchedule(std::vector<double> a) : a_(std::move(a)) {}
    std::vector<double> a_;
};

/// Automatic level selection — the paper lists this as future work ("the
/// prevailing approach entails human intervention"); we implement the
/// natural pilot-quantile heuristic as an extension:
///
///   1. Spend `pilot_samples` g-calls on draws from p.
///   2. a_1 := the `head_quantile` quantile of the pilot g-values, so
///      P[Ω_{a_1}] ≈ head_quantile (the paper wants ≈ 0.1).
///   3. Interpolate a_2..a_{M-1} between a_1 and 0 (geometric when a_1 > 0,
///      matching the rule of thumb that each level scales P by ~0.1).
///
/// The pilot calls are charged to the caller's CountedProblem, so Table-1
/// style accounting stays honest.
struct AutoLevelConfig {
    std::size_t num_levels = 5;        ///< M
    std::size_t pilot_samples = 500;
    double head_quantile = 0.1;
    /// Blend in [0,1]: 0 = linear interpolation, 1 = fully geometric decay.
    double geometric_bias = 0.7;
};

LevelSchedule auto_levels(estimators::CountedProblem& problem,
                          rng::Engine& eng, const AutoLevelConfig& cfg);

}  // namespace nofis::core
