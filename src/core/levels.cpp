#include "core/levels.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "linalg/solver_error.hpp"
#include "rng/normal.hpp"

namespace nofis::core {

LevelSchedule LevelSchedule::manual(std::vector<double> levels) {
    if (levels.empty())
        throw std::invalid_argument("LevelSchedule: empty level sequence");
    for (std::size_t i = 1; i < levels.size(); ++i)
        if (!(levels[i] < levels[i - 1]))
            throw std::invalid_argument(
                "LevelSchedule: levels must be strictly decreasing");
    if (levels.back() != 0.0)
        throw std::invalid_argument("LevelSchedule: a_M must equal 0");
    return LevelSchedule(std::move(levels));
}

LevelSchedule auto_levels(estimators::CountedProblem& problem,
                          rng::Engine& eng, const AutoLevelConfig& cfg) {
    if (cfg.num_levels == 0)
        throw std::invalid_argument("auto_levels: num_levels must be > 0");
    if (!(cfg.head_quantile > 0.0 && cfg.head_quantile < 1.0))
        throw std::invalid_argument("auto_levels: head_quantile in (0,1)");

    const linalg::Matrix pilot =
        rng::standard_normal_matrix(eng, cfg.pilot_samples, problem.dim());
    std::vector<double> gv = problem.g_rows(pilot);
    // A guarded pilot can hand back NaN/inf g-values (propagate policy, or
    // clamp_value = inf). NaNs in particular wreck std::sort's ordering and
    // would silently shift the quantile, so strip non-finite entries first
    // and fail loudly if too few survive to estimate a quantile from.
    const std::size_t pilot_total = gv.size();
    gv.erase(std::remove_if(gv.begin(), gv.end(),
                            [](double v) { return !std::isfinite(v); }),
             gv.end());
    const std::size_t dropped = pilot_total - gv.size();
    const std::size_t min_finite =
        std::max<std::size_t>(2, cfg.pilot_samples / 10);
    if (gv.size() < min_finite) {
        std::ostringstream os;
        os << "auto_levels: only " << gv.size() << " of " << pilot_total
           << " pilot g-values are finite (" << dropped
           << " dropped); need at least " << min_finite
           << " to place a quantile level";
        throw BadInputError(os.str());
    }
    std::sort(gv.begin(), gv.end());
    // Nearest-rank index: round, don't floor. Truncation picks a
    // systematically optimistic (lower) first level on small pilots —
    // e.g. n = 11, q = 0.95 lands on rank 9 instead of 10.
    const auto qi = static_cast<std::size_t>(std::llround(
        cfg.head_quantile * static_cast<double>(gv.size() - 1)));
    double a1 = gv[qi];
    if (a1 <= 0.0) {
        // The event is not rare at the pilot quantile; a single level
        // (the event itself) suffices.
        return LevelSchedule::manual({0.0});
    }

    const std::size_t m_count = cfg.num_levels;
    std::vector<double> a(m_count);
    a[0] = a1;
    a[m_count - 1] = 0.0;
    // Geometric interpolation needs a positive tail; shift by a small floor
    // so a_{M-1} lands near but above 0, then blend with linear spacing.
    const double bias = std::clamp(cfg.geometric_bias, 0.0, 1.0);
    for (std::size_t m = 1; m + 1 < m_count; ++m) {
        const double t =
            static_cast<double>(m) / static_cast<double>(m_count - 1);
        const double linear = a1 * (1.0 - t);
        const double geometric = a1 * std::pow(0.25, static_cast<double>(m));
        a[m] = bias * geometric + (1.0 - bias) * linear;
    }
    // Enforce strict decrease in case blending produced a tie.
    for (std::size_t m = 1; m < m_count; ++m)
        if (a[m] >= a[m - 1]) a[m] = a[m - 1] * 0.5;
    a[m_count - 1] = 0.0;
    return LevelSchedule::manual(std::move(a));
}

}  // namespace nofis::core
