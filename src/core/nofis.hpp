#pragma once

#include <memory>

#include "checkpoint/checkpoint.hpp"
#include "core/diagnostics.hpp"
#include "core/levels.hpp"
#include "estimators/guarded_problem.hpp"
#include "estimators/problem.hpp"
#include "evalcache/eval_cache.hpp"
#include "flow/coupling_stack.hpp"
#include "latent/latent_explore.hpp"
#include "nn/optimizer.hpp"

namespace nofis::core {

/// Hyper-parameters of Algorithm 1. Defaults follow the paper's reported
/// ranges (E in 15~20, N in 100~400, M in 4~6, τ in 10~30, K = 8).
struct NofisConfig {
    // Flow architecture.
    std::size_t layers_per_block = 8;           ///< K
    std::vector<std::size_t> hidden = {32, 32}; ///< conditioner MLP layout
    double scale_cap = 2.0;                     ///< log-scale bound per layer
    flow::CouplingKind coupling = flow::CouplingKind::kAffine;
    bool use_actnorm = false;                   ///< Glow-style ActNorm layers
    std::size_t rqs_bins = 8;  ///< spline bins per dim (coupling == kRqs)
    /// Spline half-width B (coupling == kRqs). Wider than the NSF image
    /// convention (3) because the spline is the identity outside [-B, B]
    /// and rare failure regions live at 4-6σ — a box that excludes them
    /// leaves the flow unable to move mass onto the failure set at all.
    double rqs_tail = 5.0;

    // Per-stage training (the inner loop of Algorithm 1).
    std::size_t epochs = 20;              ///< E — updates per stage
    std::size_t samples_per_epoch = 400;  ///< N — fresh base draws per epoch
    double learning_rate = 5e-3;
    /// Multiplicative per-epoch LR decay within each stage (1 = constant).
    double lr_decay = 1.0;
    double grad_clip = 50.0;

    // NOFIS specifics.
    double tau = 20.0;          ///< temperature of the tempered targets
    std::size_t n_is = 1000;    ///< N_IS — final importance-sampling draws
    /// Freeze blocks 1..m-1 while training block m (the paper's nominal
    /// setup; false reproduces the "NoFreeze" ablation of Figure 5).
    bool freeze_previous = true;

    /// Extension (defensive importance sampling, Hesterberg 1995): mix the
    /// learned proposal with a scaled prior N(0, s²I) for the final IS
    /// stage, q = (1-w)·q_MK + w·N(0, s²I). Bounds the weight blow-up when
    /// the flow drops failure modes in heavily multimodal problems (e.g.
    /// Powell). 0 disables (the paper's plain Eq. 2 estimator).
    double defensive_weight = 0.0;
    double defensive_sigma = 1.5;

    /// Extension (latent-space exploration, DESIGN.md §16): when enabled,
    /// the final IS budget is split — K·(S+1) g-calls run annealed
    /// Metropolis chains in the trained flow's base space to find
    /// under-covered failure lobes, and the remaining draws use the latent
    /// defensive mixture α·N(0,I) + (1−α)·refined as the proposal. Total
    /// g-budget is identical to plain final IS with n_is draws. Mutually
    /// composable with everything above; disabled keeps runs bit-identical.
    latent::LatentConfig latent;

    // --- fault-tolerant runtime (DESIGN.md, "Failure handling & recovery").
    /// Policy for faulty g / g_grad evaluations. Every call the estimator
    /// makes is routed through an estimators::GuardedProblem built from
    /// this; fault-free runs are bit-identical to the unguarded path.
    estimators::GuardConfig guard;
    /// R — rollback-retries per stage. Before each stage the flow
    /// parameters are checkpointed; when the stage diverges (non-finite KL
    /// loss / flow output, exploding gradient norm, or inside-fraction
    /// collapse) the checkpoint is restored and the stage retrained with
    /// the factors below applied per retry. After R failed retries the
    /// stage runs once more in the legacy skip-bad-epochs mode so the run
    /// always completes. 0 disables rollback entirely.
    std::size_t stage_max_retries = 2;
    double retry_lr_factor = 0.5;         ///< learning-rate shrink per retry
    double retry_grad_clip_factor = 0.5;  ///< grad-clip tighten per retry
    double retry_scale_cap_factor = 0.7;  ///< coupling scale-cap tighten
    /// Stage-end divergence test: final inside_fraction below this triggers
    /// a rollback (0 disables — the paper's level schedules keep the
    /// nominal fraction well above any sensible threshold).
    double min_inside_fraction = 0.0;
    /// Pre-clip gradient norm above nn::grad_explode_limit(grad_clip_mode,
    /// grad_clip, grad_explode_factor, P) counts as divergence. The limit
    /// is mode-aware: under kPerValue it scales with sqrt(P) because the
    /// clip bounds components, not the norm (see nn::grad_explode_limit).
    double grad_explode_factor = 100.0;
    /// Direction-preserving global-norm clipping by default; kPerValue
    /// reproduces earlier per-component clamping benches.
    nn::GradClipMode grad_clip_mode = nn::GradClipMode::kGlobalNorm;

    // --- evaluation cache (DESIGN.md, "Evaluation cache").
    /// Optional shared two-tier g-evaluation cache. When set, every value
    /// evaluation the estimator makes consults the cache first — the
    /// composition is Guarded(Cached(problem)), so fault-retry probes also
    /// hit the cache and only raw simulator outputs are ever stored.
    /// Results are bitwise identical with the cache off, cold, or warm
    /// (g is pure); only the fresh-call count changes. `calls` still
    /// reports total arrivals; EstimateResult::cached_calls says how many
    /// of them the cache served.
    std::shared_ptr<evalcache::EvalCache> cache;
    /// Cache namespace for this problem (use testcases::cache_key for
    /// registry cases). Empty derives "anon#d<dim>" at run time.
    std::string cache_key;

    // --- crash safety (DESIGN.md, "Checkpoint/resume & crash safety").
    /// Durable stage/epoch snapshots and resume-from-latest. Disabled by
    /// default (empty dir). Checkpointing never touches the RNG or the
    /// math: a checkpointed run, an uncheckpointed run, and a
    /// killed-and-resumed run all produce bitwise-identical estimates.
    checkpoint::CheckpointConfig checkpoint;

    // --- parallel runtime (DESIGN.md, "Parallel runtime & determinism").
    /// Worker lanes for batched g / g_grad evaluation and the tiled matmul.
    /// 0 = leave the global pool as configured (NOFIS_THREADS env or
    /// hardware concurrency); >0 pins the pool before the run starts.
    /// Results are bitwise identical for any value.
    std::size_t threads = 0;
};

/// Normalizing-flow assisted importance sampling (the paper's contribution).
///
/// Stage m minimises the KL divergence D[q_{mK} || p_m^τ] of Eq. (8) by
/// sampling z0 ~ p, transporting through the first m blocks, and descending
///     loss = −(1/N) Σ_n Σ_j log|det J_j^n| − (1/N) Σ_n log p_m^τ(z_mK^n)
/// with Adam. Gradients of the black-box term log p_m^τ flow through an
/// externally-computed ∂/∂z (analytic, adjoint, or finite-difference — see
/// RareEventProblem::g_grad) injected into the graph via dot_constant.
/// After the last stage, P_r is estimated with Eq. (2) using q_MK as the
/// proposal.
///
/// Total g-call budget: M·E·N + N_IS (+ pilot calls if auto levels are used
/// by the caller), matching the paper's accounting. Degraded runs charge
/// every extra evaluation honestly: fault-retry g calls and the fresh
/// batches of rolled-back stages are added on top, so reported `calls`
/// never undercounts simulator work.
class NofisEstimator final : public estimators::Estimator {
public:
    NofisEstimator(NofisConfig cfg, LevelSchedule levels);

    std::string name() const override { return "NOFIS"; }

    estimators::EstimateResult estimate(
        const estimators::RareEventProblem& problem,
        rng::Engine& eng) const override;

    /// Full run with training diagnostics and (optionally) the trained flow
    /// itself — the figure benches visualise q_{mK} from it.
    struct RunResult {
        estimators::EstimateResult estimate;
        std::vector<StageDiagnostics> stages;
        IsDiagnostics is_diag;
        RunHealth health;  ///< faults, rollbacks, proposal-quality signals
        std::unique_ptr<flow::CouplingStack> flow;  ///< trained model
        /// Exploration ledger when cfg.latent.enabled (zeros otherwise).
        latent::LatentReport latent_report;
        /// True when the run stopped early at a stage boundary because
        /// checkpoint::stop_requested() (SIGINT/SIGTERM) was set. The final
        /// snapshot was written; `estimate` is marked failed and no final
        /// IS was spent. Resume with CheckpointConfig::resume to continue.
        bool interrupted = false;
    };
    RunResult run(const estimators::RareEventProblem& problem,
                  rng::Engine& eng) const;

    /// Re-estimates P_r from an already-trained flow with a fresh batch of
    /// `n_is` proposal draws (Figure 4's N_IS sweep). Counts n_is calls.
    /// When `defensive_weight` > 0 the proposal is the defensive mixture
    /// described in NofisConfig.
    static estimators::EstimateResult importance_estimate(
        const flow::CouplingStack& trained_flow,
        const estimators::RareEventProblem& problem, rng::Engine& eng,
        std::size_t n_is, IsDiagnostics* diag = nullptr,
        double defensive_weight = 0.0, double defensive_sigma = 1.5);

    const NofisConfig& config() const noexcept { return cfg_; }
    const LevelSchedule& levels() const noexcept { return levels_; }

private:
    NofisConfig cfg_;
    LevelSchedule levels_;
};

}  // namespace nofis::core
