#include "core/nofis.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <optional>

#include "autodiff/ops.hpp"
#include "dist/diag_gaussian.hpp"
#include "evalcache/cached_problem.hpp"
#include "flow/serialize.hpp"
#include "nn/optimizer.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/normal.hpp"
#include "telemetry/telemetry.hpp"

namespace nofis::core {

namespace {

using autodiff::Var;
using estimators::CountedProblem;
using estimators::EstimateResult;
using linalg::Matrix;

/// min(τ(a - g), 0): the tempered log-weight of Eq. (6)/(9).
double tempered_log_weight(double tau, double a, double g) {
    return std::min(tau * (a - g), 0.0);
}

checkpoint::StageRecord to_record(const StageDiagnostics& d) {
    checkpoint::StageRecord r;
    r.stage = d.stage;
    r.level = d.level;
    r.epoch_loss = d.epoch_loss;
    r.inside_fraction = d.inside_fraction;
    r.retries = d.retries;
    r.retry_reasons = d.retry_reasons;
    r.skipped_epochs = d.skipped_epochs;
    return r;
}

StageDiagnostics to_diagnostics(const checkpoint::StageRecord& r) {
    StageDiagnostics d;
    d.stage = r.stage;
    d.level = r.level;
    d.epoch_loss = r.epoch_loss;
    d.inside_fraction = r.inside_fraction;
    d.retries = r.retries;
    d.retry_reasons = r.retry_reasons;
    d.skipped_epochs = r.skipped_epochs;
    return d;
}

/// Identity of a run for checkpoint purposes: every config field that
/// shapes the training trajectory, plus the level schedule and problem
/// dimension. Deliberately excludes `threads` and the cache wiring — both
/// are bitwise-orthogonal to results — so a snapshot taken at --threads 8
/// resumes fine at --threads 1 and vice versa.
std::uint64_t run_fingerprint(const NofisConfig& cfg,
                              const core::LevelSchedule& levels,
                              std::size_t dim) {
    checkpoint::FingerprintBuilder fp;
    fp.add(std::uint64_t{1})  // fingerprint schema version
        .add(static_cast<std::uint64_t>(dim))
        .add(static_cast<std::uint64_t>(levels.num_levels()));
    for (std::size_t i = 0; i < levels.num_levels(); ++i)
        fp.add(levels.level(i));
    fp.add(static_cast<std::uint64_t>(cfg.layers_per_block));
    fp.add(static_cast<std::uint64_t>(cfg.hidden.size()));
    for (std::size_t h : cfg.hidden) fp.add(static_cast<std::uint64_t>(h));
    fp.add(cfg.scale_cap)
        .add(static_cast<std::uint64_t>(cfg.coupling))
        .add(static_cast<std::uint64_t>(cfg.use_actnorm));
    // Spline knobs fold in only for rqs runs so every pre-rqs fingerprint
    // (and thus every existing checkpoint) stays valid.
    if (cfg.coupling == flow::CouplingKind::kRqs)
        fp.add(static_cast<std::uint64_t>(cfg.rqs_bins)).add(cfg.rqs_tail);
    // Latent-exploration knobs likewise fold in only when the feature is
    // on, so pre-latent fingerprints (and checkpoints) stay valid.
    if (cfg.latent.enabled)
        fp.add(std::uint64_t{0x1a7e47ULL})  // "latent" feature tag
            .add(static_cast<std::uint64_t>(cfg.latent.chains))
            .add(static_cast<std::uint64_t>(cfg.latent.steps))
            .add(cfg.latent.alpha)
            .add(static_cast<std::uint64_t>(cfg.latent.anneal))
            .add(cfg.latent.rw_sigma)
            .add(cfg.latent.sigma_floor)
            .add(static_cast<std::uint64_t>(cfg.latent.em_iters));
    fp.add(static_cast<std::uint64_t>(cfg.epochs))
        .add(static_cast<std::uint64_t>(cfg.samples_per_epoch))
        .add(cfg.learning_rate)
        .add(cfg.lr_decay)
        .add(cfg.grad_clip)
        .add(cfg.tau)
        .add(static_cast<std::uint64_t>(cfg.n_is))
        .add(static_cast<std::uint64_t>(cfg.freeze_previous))
        .add(cfg.defensive_weight)
        .add(cfg.defensive_sigma)
        .add(static_cast<std::uint64_t>(cfg.guard.policy))
        .add(static_cast<std::uint64_t>(cfg.guard.max_retries))
        .add(cfg.guard.perturb_sigma)
        .add(cfg.guard.clamp_value)
        .add(cfg.guard.seed)
        .add(static_cast<std::uint64_t>(cfg.stage_max_retries))
        .add(cfg.retry_lr_factor)
        .add(cfg.retry_grad_clip_factor)
        .add(cfg.retry_scale_cap_factor)
        .add(cfg.min_inside_fraction)
        .add(cfg.grad_explode_factor)
        .add(static_cast<std::uint64_t>(cfg.grad_clip_mode))
        .add(cfg.checkpoint.salt);
    return fp.value();
}

}  // namespace

NofisEstimator::NofisEstimator(NofisConfig cfg, LevelSchedule levels)
    : cfg_(std::move(cfg)), levels_(std::move(levels)) {}

EstimateResult NofisEstimator::estimate(
    const estimators::RareEventProblem& problem, rng::Engine& eng) const {
    return run(problem, eng).estimate;
}

NofisEstimator::RunResult NofisEstimator::run(
    const estimators::RareEventProblem& problem, rng::Engine& eng) const {
    // End-to-end span; "train"/"stage_m"/phases and "final_is" nest inside.
    const telemetry::ScopedSpan run_span("nofis_run");
    const std::size_t d = problem.dim();
    const std::size_t num_stages = levels_.num_levels();
    if (cfg_.threads > 0) parallel::set_num_threads(cfg_.threads);
    // Optional memoization tier: the cache sits closest to the expensive g,
    // so the guard's retry probes consult it too and only raw simulator
    // outputs are ever stored (Guarded(Cached(problem)) composition).
    std::optional<evalcache::CachedProblem> cached;
    if (cfg_.cache) {
        const std::string key = cfg_.cache_key.empty()
                                    ? "anon#d" + std::to_string(d)
                                    : cfg_.cache_key;
        cached.emplace(problem, cfg_.cache, key);
    }
    const estimators::RareEventProblem& eval_problem =
        cached ? static_cast<const estimators::RareEventProblem&>(*cached)
               : problem;
    // Every g / g_grad evaluation goes through the fault guard; faults are
    // resolved per cfg_.guard and tallied for RunHealth. A fault-free run
    // is bit-identical to the unguarded path.
    estimators::GuardedProblem guarded(eval_problem, cfg_.guard);

    flow::StackConfig scfg;
    scfg.dim = d;
    scfg.num_blocks = num_stages;
    scfg.layers_per_block = cfg_.layers_per_block;
    scfg.hidden = cfg_.hidden;
    scfg.scale_cap = cfg_.scale_cap;
    scfg.coupling = cfg_.coupling;
    scfg.use_actnorm = cfg_.use_actnorm;
    scfg.rqs_bins = cfg_.rqs_bins;
    scfg.rqs_tail = cfg_.rqs_tail;
    rng::Engine init_eng = eng.split();
    auto stack = std::make_unique<flow::CouplingStack>(scfg, init_eng);

    RunResult result;
    result.stages.reserve(num_stages);

    const std::size_t n = cfg_.samples_per_epoch;
    // Training-phase g budget, tallied per batch (the guard's own counter
    // also covers retry probes, which are charged separately below).
    std::size_t train_g_calls = 0;
    std::size_t g_grad_calls = 0;

    // --- checkpoint/resume (DESIGN.md §12) -------------------------------
    const checkpoint::CheckpointConfig& ck = cfg_.checkpoint;
    std::optional<checkpoint::CheckpointDir> ckdir;
    std::optional<checkpoint::TrainSnapshot> resumed;
    // Evalcache hits accumulated by *earlier* incarnations of this run;
    // this process's decorator counts from zero, so the cumulative hit
    // tally is baseline + cached->hits().
    std::size_t cached_hits_baseline = 0;
    std::size_t start_stage = 1;
    if (ck.enabled()) {
        ckdir.emplace(ck.dir, ck.keep);
        if (ck.resume) {
            const std::uint64_t fp = run_fingerprint(cfg_, levels_, d);
            resumed = ckdir->load_latest(fp);
        }
        if (resumed) {
            // Restore every piece of run state the snapshot captured; from
            // here on the process is indistinguishable from one that never
            // stopped. The two telemetry counts re-seed this process's
            // fresh RunTrace with the pre-snapshot tallies so end-of-run
            // counters match an uninterrupted run.
            flow::restore_params(*stack, resumed->params);
            stack->set_scale_caps(resumed->scale_caps);
            eng.set_state(resumed->rng_state);
            guarded.import_state(
                {resumed->guard_call_index, resumed->guard_report});
            train_g_calls = resumed->train_g_calls;
            g_grad_calls = resumed->g_grad_calls;
            cached_hits_baseline = resumed->cached_hits;
            if (train_g_calls > 0)
                telemetry::count("g_calls.train", train_g_calls);
            if (g_grad_calls > 0)
                telemetry::count("g_grad_calls", g_grad_calls);
            for (const auto& rec : resumed->stages)
                result.stages.push_back(to_diagnostics(rec));
            start_stage = resumed->next_stage;
        }
    }

    // Snapshot of everything needed to continue from "about to run stage
    // `next_stage`" (or, with the partial extras filled in by the epoch
    // hook, from inside it).
    auto snapshot_base = [&](std::uint64_t next_stage) {
        checkpoint::TrainSnapshot s;
        s.fingerprint = run_fingerprint(cfg_, levels_, d);
        s.next_stage = next_stage;
        s.params = flow::snapshot_params(*stack);
        s.scale_caps = stack->scale_caps();
        s.rng_state = eng.state();
        const auto gs = guarded.export_state();
        s.guard_call_index = gs.call_index;
        s.guard_report = gs.report;
        s.train_g_calls = train_g_calls;
        s.g_grad_calls = g_grad_calls;
        s.cached_hits =
            cached ? cached_hits_baseline + cached->hits() : std::size_t{0};
        s.stages.reserve(result.stages.size());
        for (const auto& sd : result.stages) s.stages.push_back(to_record(sd));
        return s;
    };
    auto persist = [&](const checkpoint::TrainSnapshot& s) {
        ckdir->write(s);
        if (ck.crash_after_snapshots > 0 &&
            ckdir->writes() >= ck.crash_after_snapshots)
            throw checkpoint::SimulatedCrash(
                "simulated crash after snapshot " +
                std::to_string(ckdir->writes()));
    };

    // One training pass over stage m at (lr0, clip). In abort mode the pass
    // stops at the first divergence signal so the caller can roll back; in
    // legacy mode (retry budget exhausted) divergent epochs are skipped and
    // the pass always completes.
    struct StageOutcome {
        bool diverged = false;
        const char* reason = "";
    };
    // Mid-stage resume context for one train_stage call: enter the epoch
    // loop at `start_epoch` with the snapshot's decayed LR and optimizer
    // moments instead of fresh ones. `anchor` is the stage's rollback
    // checkpoint, persisted by epoch snapshots so a resumed attempt can
    // still roll back to the true stage start.
    struct StageResume {
        std::size_t start_epoch = 0;
        double stage_lr = 0.0;
        const nn::OptimizerState* opt = nullptr;
    };
    auto train_stage = [&](std::size_t m, double lr0, double clip,
                           bool abort_on_divergence, StageDiagnostics& diag,
                           std::size_t attempt,
                           const flow::ParamSnapshot& anchor,
                           const StageResume& resume) -> StageOutcome {
        const double a_m = levels_.level(m - 1);
        const std::size_t block = m - 1;

        std::vector<autodiff::Var> train_params;
        if (cfg_.freeze_previous) {
            stack->freeze_blocks_before(block);
            train_params = stack->block_params(block);
        } else {
            stack->unfreeze_all();
            for (std::size_t b = 0; b < m; ++b)
                for (auto& p : stack->block_params(b))
                    train_params.push_back(p);
        }
        nn::Adam opt(train_params, lr0);
        double stage_lr = lr0;
        if (resume.opt != nullptr) {
            opt.import_state(*resume.opt);
            stage_lr = resume.stage_lr;
        }

        std::size_t param_count = 0;
        for (const auto& p : train_params) param_count += p.value().size();
        const double explode_limit = nn::grad_explode_limit(
            cfg_.grad_clip_mode, clip, cfg_.grad_explode_factor, param_count);

        if (resume.start_epoch == 0) {
            diag.epoch_loss.clear();
            diag.inside_fraction = 0.0;
        }

        for (std::size_t epoch = resume.start_epoch; epoch < cfg_.epochs;
             ++epoch) {
            // Optional epoch snapshot, taken at the top of the loop before
            // any RNG draw so a resumed process replays the epoch
            // bit-for-bit. `epoch > start_epoch` skips both epoch 0 (the
            // stage-boundary snapshot already covers it) and an immediate
            // rewrite of the snapshot just resumed from.
            if (ckdir && ck.every_epochs > 0 && epoch > resume.start_epoch &&
                epoch % ck.every_epochs == 0) {
                checkpoint::TrainSnapshot s = snapshot_base(m);
                s.has_partial = true;
                s.next_epoch = epoch;
                s.attempt = attempt;
                s.attempt_lr = lr0;
                s.attempt_clip = clip;
                s.stage_lr = stage_lr;
                s.opt_state = opt.export_state();
                s.stage_start_params = anchor;
                s.partial = to_record(diag);
                persist(s);
            }
            // Per-phase wall-clock spans. The spans accumulate across the
            // stage's epochs (count = epochs timed); none of them touches
            // the RNG or the math, so estimates are bitwise identical with
            // telemetry on or off.
            std::optional<telemetry::ScopedSpan> phase;
            phase.emplace("sample_forward");
            const Matrix z0 = rng::standard_normal_matrix(eng, n, d);

            // Frozen prefix on the cheap value path; graph only for the
            // trainable tail. With NoFreeze everything is in the graph.
            Matrix z_in = z0;
            std::vector<double> frozen_log_det(n, 0.0);
            std::size_t graph_begin = 0;
            if (cfg_.freeze_previous && block > 0) {
                z_in = stack->transport_range(z0, 0, block, frozen_log_det);
                graph_begin = block;
            }
            auto fwd = stack->forward_range(Var(z_in), graph_begin, m);
            const Matrix& z = fwd.z.value();
            phase.reset();

            if (!z.all_finite()) {
                if (abort_on_divergence)
                    return {true, "non-finite flow output"};
                // Flow blew up this epoch; skip the update rather than
                // poisoning Adam's moments with NaNs. The sentinel keeps
                // the curve honest: no loss was computed this epoch.
                ++diag.skipped_epochs;
                diag.epoch_loss.push_back(
                    std::numeric_limits<double>::quiet_NaN());
                continue;
            }

            // Black-box target term: value for the loss report, gradient
            // injected via dot_constant. ∂T/∂z_n = (1/N)(−τ·∇g·1[g>a] − z_n).
            //
            // Pass 1 — batched g over all rows (parallel, per-row call
            // indices in row order). The reductions below run serially in
            // row order, so the loss is bitwise identical at any thread
            // count.
            phase.emplace("g_eval");
            train_g_calls += n;
            telemetry::count("g_calls.train", n);
            const std::vector<double> g_vals = guarded.g_rows(z);
            phase.reset();

            Matrix target_grad(n, d);
            double target_value = 0.0;
            double inside = 0.0;
            std::vector<std::size_t> grad_rows;
            for (std::size_t r = 0; r < n; ++r) {
                const auto zr = z.row_span(r);
                const double gv = g_vals[r];
                if (!std::isfinite(gv)) {
                    // A non-finite g slipped through the guard (propagate
                    // policy): the tempered target is undefined, so poison
                    // the loss instead of silently zeroing the weight.
                    target_value = std::numeric_limits<double>::quiet_NaN();
                }
                if (gv <= a_m) inside += 1.0;
                target_value += tempered_log_weight(cfg_.tau, a_m, gv) +
                                rng::standard_normal_log_pdf(zr);
                if (gv > a_m) grad_rows.push_back(r);
            }

            // Pass 2 — batched ∇g for the rows that need it. Backward
            // through the same simulation point is free under the paper's
            // autograd accounting (see RareEventProblem::g_grad). Each row
            // writes only its own target_grad slice, so this fans out on
            // the pool with one reserved call index per row.
            {
                phase.emplace("g_grad");
                g_grad_calls += grad_rows.size();
                telemetry::count("g_grad_calls", grad_rows.size());
                const std::size_t gbase = guarded.reserve_calls(
                    grad_rows.size());
                std::vector<std::exception_ptr> errors(grad_rows.size());
                parallel::parallel_for(
                    grad_rows.size(), [&](std::size_t i0, std::size_t i1) {
                        std::vector<double> grad_buf(d);
                        for (std::size_t i = i0; i < i1; ++i) {
                            const std::size_t r = grad_rows[i];
                            try {
                                guarded.g_grad_indexed(
                                    gbase + i, z.row_span(r), grad_buf);
                                for (std::size_t c = 0; c < d; ++c)
                                    target_grad(r, c) =
                                        -cfg_.tau * grad_buf[c];
                            } catch (...) {
                                errors[i] = std::current_exception();
                            }
                        }
                    });
                parallel::rethrow_first(errors);
                phase.reset();
            }
            for (std::size_t r = 0; r < n; ++r) {
                const auto zr = z.row_span(r);
                for (std::size_t c = 0; c < d; ++c) target_grad(r, c) -= zr[c];
            }
            const double inv_n = 1.0 / static_cast<double>(n);
            target_value *= inv_n;
            target_grad *= inv_n;
            inside *= inv_n;

            // loss = −mean(log-det) − T. The dot_constant surrogate carries
            // exactly ∂T/∂z into the graph.
            Var graph_loss =
                autodiff::add(autodiff::neg(autodiff::mean(fwd.log_det)),
                              autodiff::neg(autodiff::dot_constant(
                                  fwd.z, target_grad)));

            double mean_log_det = fwd.log_det.value().mean();
            for (double v : frozen_log_det) mean_log_det += v * inv_n;
            const double true_loss = -mean_log_det - target_value;

            if (!std::isfinite(true_loss) || !target_grad.all_finite()) {
                if (abort_on_divergence) return {true, "non-finite KL loss"};
                ++diag.skipped_epochs;
                diag.epoch_loss.push_back(
                    std::numeric_limits<double>::quiet_NaN());
                continue;
            }

            phase.emplace("backward");
            opt.zero_grad();
            graph_loss.backward();
            const double grad_norm =
                opt.clip_gradients(cfg_.grad_clip_mode, clip);
            phase.reset();
            if (abort_on_divergence &&
                (!std::isfinite(grad_norm) || grad_norm > explode_limit))
                return {true, "exploding gradient norm"};
            phase.emplace("optimizer");
            opt.set_learning_rate(stage_lr);
            opt.step();
            stage_lr *= cfg_.lr_decay;
            phase.reset();

            diag.epoch_loss.push_back(true_loss);
            diag.inside_fraction = inside;
        }

        if (abort_on_divergence &&
            diag.inside_fraction < cfg_.min_inside_fraction)
            return {true, "inside-fraction collapse"};
        return {};
    };

    {
        const telemetry::ScopedSpan train_span("train");
        for (std::size_t m = start_stage; m <= num_stages; ++m) {
            // Retries re-enter the same stage span, so its wall-clock covers
            // every attempt and its phase counts expose the extra epochs.
            const telemetry::ScopedSpan stage_span("stage_" +
                                                   std::to_string(m));
            StageDiagnostics diag;
            diag.stage = m;
            diag.level = levels_.level(m - 1);

            // Rollback anchor taken before the stage touches any parameter;
            // rolled-back retries restart training from exactly this state.
            flow::ParamSnapshot anchor;
            double lr = cfg_.learning_rate;
            double clip = cfg_.grad_clip;
            std::size_t first_attempt = 0;
            StageResume stage_resume;
            if (resumed && resumed->has_partial && m == start_stage) {
                // Mid-stage snapshot: re-enter the in-flight attempt at the
                // recorded epoch, with its shrunk LR/clip and the anchor it
                // would roll back to.
                anchor = resumed->stage_start_params;
                first_attempt = resumed->attempt;
                lr = resumed->attempt_lr;
                clip = resumed->attempt_clip;
                stage_resume.start_epoch = resumed->next_epoch;
                stage_resume.stage_lr = resumed->stage_lr;
                stage_resume.opt = &resumed->opt_state;
                diag = to_diagnostics(resumed->partial);
            } else {
                anchor = flow::snapshot_params(*stack);
            }

            for (std::size_t attempt = first_attempt;; ++attempt) {
                const bool last_attempt = attempt >= cfg_.stage_max_retries;
                const StageOutcome out =
                    train_stage(m, lr, clip, !last_attempt, diag, attempt,
                                anchor, stage_resume);
                stage_resume = StageResume{};  // only the first pass resumes
                if (!out.diverged || last_attempt) break;

                flow::restore_params(*stack, anchor);
                stack->tighten_scale_cap(m - 1, cfg_.retry_scale_cap_factor);
                lr *= cfg_.retry_lr_factor;
                clip *= cfg_.retry_grad_clip_factor;
                ++diag.retries;
                diag.retry_reasons.emplace_back(out.reason);
            }
            result.stages.push_back(std::move(diag));

            // Stage boundary: durably snapshot "about to run stage m+1"
            // (m+1 = num_stages+1 means training is done and only the
            // final IS remains). Honour a pending SIGINT/SIGTERM here —
            // the in-flight stage finished, the snapshot is on disk, so
            // stopping now loses no work.
            if (ckdir) persist(snapshot_base(m + 1));
            if (checkpoint::stop_requested()) {
                result.interrupted = true;
                break;
            }
        }
    }

    // Final importance-sampling estimate with q_MK (Eq. 2), still guarded.
    IsDiagnostics is_diag;
    EstimateResult est;
    if (result.interrupted) {
        // No final IS was spent; report the g-budget consumed so far and
        // mark the estimate unusable. A --resume run picks up from the
        // snapshot written above and spends the final IS exactly once.
        est.failed = true;
        est.detail = "interrupted by stop request; resume to continue";
    } else if (cfg_.latent.enabled) {
        // Latent-space exploration (DESIGN.md §16): the chain budget is
        // carved out of n_is, so the total g-spend matches plain final IS.
        est = latent::explore_and_estimate(*stack, guarded, eng, cfg_.n_is,
                                           cfg_.tau, levels_.level(0),
                                           cfg_.latent, &is_diag,
                                           &result.latent_report);
    } else {
        est = importance_estimate(*stack, guarded, eng, cfg_.n_is, &is_diag,
                                  cfg_.defensive_weight,
                                  cfg_.defensive_sigma);
    }
    // Honest budget: training calls + fault-retry evaluations on top of the
    // N_IS already counted by importance_estimate. (g_grad rides on the
    // value evaluation under the paper's autograd accounting, so only the
    // value batches count.)
    est.calls += train_g_calls + guarded.report().retry_attempts;
    // Every value arrival at the cache is one of the calls counted above,
    // so the cumulative hit tally (pre-snapshot baseline + this process's
    // decorator instance) IS the cached share of `calls` (min guards the
    // invariant against future drift). Restored counters keep the
    // accounting honest across restarts: fresh calls spent before a crash
    // are never re-counted as fresh, and fresh + cached == total holds.
    est.cached_calls =
        cached ? std::min(cached_hits_baseline + cached->hits(), est.calls)
               : std::size_t{0};

    RunHealth health;
    health.faults = guarded.report();
    health.g_retry_calls = guarded.report().retry_attempts;
    for (const auto& s : result.stages) {
        health.stage_retries += s.retries;
        if (s.retries > 0) ++health.stages_rolled_back;
        health.skipped_epochs += s.skipped_epochs;
    }
    health.final_ess = is_diag.effective_sample_size;
    health.ess_all = is_diag.ess_all;
    health.max_weight = is_diag.max_weight;
    health.weight_cv = is_diag.weight_cv;
    if (health.degraded() && est.detail.empty())
        est.detail = health.faults.summary();

    // Fold the run's health ledger and proposal-quality numbers into the
    // active telemetry record (counters accumulate across repeated runs;
    // metrics hold the last run's values).
    evalcache::report_call_split(est.calls, est.cached_calls);
    if (telemetry::RunTrace* tr = telemetry::active()) {
        tr->add_counter("calls", est.calls);
        tr->add_counter("g_retry_calls", health.g_retry_calls);
        tr->add_counter("stage_retries", health.stage_retries);
        tr->add_counter("stages_rolled_back", health.stages_rolled_back);
        tr->add_counter("skipped_epochs", health.skipped_epochs);
        tr->add_counter("faults.total", health.faults.total_faults());
        using estimators::FaultKind;
        for (std::size_t k = 0;
             k < static_cast<std::size_t>(FaultKind::kCount); ++k) {
            const auto kind = static_cast<FaultKind>(k);
            if (health.faults.count(kind) > 0)
                tr->add_counter(std::string("faults.") +
                                    estimators::fault_kind_name(kind),
                                health.faults.count(kind));
        }
        tr->set_metric("p_hat", est.p_hat);
        tr->set_metric("ess_hits", health.final_ess);
        tr->set_metric("ess_all", health.ess_all);
        tr->set_metric("max_weight", health.max_weight);
        tr->set_metric("weight_cv", health.weight_cv);
        tr->set_metric("is_hits", static_cast<double>(is_diag.hits));
        tr->set_metric("is_draws", static_cast<double>(is_diag.draws));
    }

    result.estimate = est;
    result.is_diag = is_diag;
    result.health = std::move(health);
    result.flow = std::move(stack);
    return result;
}

EstimateResult NofisEstimator::importance_estimate(
    const flow::CouplingStack& trained_flow,
    const estimators::RareEventProblem& problem, rng::Engine& eng,
    std::size_t n_is, IsDiagnostics* diag, double defensive_weight,
    double defensive_sigma) {
    // The final Eq. (2) estimate — one span whether reached from run() (it
    // nests under the run's trace) or standalone via the CLI reuse path.
    const telemetry::ScopedSpan is_span("final_is");
    telemetry::count("g_calls.final_is", n_is);
    CountedProblem counted(problem);
    const std::size_t d_dim = trained_flow.dim();
    const std::size_t blocks = trained_flow.num_blocks();

    // Draw from the (possibly defensive-mixture) proposal and record exact
    // mixture log-densities.
    linalg::Matrix z(n_is, d_dim);
    std::vector<double> log_q(n_is);
    if (defensive_weight <= 0.0) {
        auto samples = trained_flow.sample(eng, n_is, blocks);
        z = std::move(samples.z);
        log_q = std::move(samples.log_q);
    } else {
        const double lw_wide = std::log(defensive_weight);
        const double lw_flow = std::log1p(-defensive_weight);
        const dist::DiagGaussian wide =
            dist::DiagGaussian::isotropic(d_dim, defensive_sigma);
        // Component choice per sample; batch the flow draws.
        std::vector<bool> from_wide(n_is);
        std::size_t n_wide = 0;
        for (std::size_t r = 0; r < n_is; ++r) {
            from_wide[r] = eng.uniform() < defensive_weight;
            if (from_wide[r]) ++n_wide;
        }
        const linalg::Matrix zw = wide.sample(eng, n_wide);
        auto zf = trained_flow.sample(eng, n_is - n_wide, blocks);
        // Cross densities: flow density at wide points needs the inverse
        // path; wide density anywhere is closed-form.
        const std::vector<double> flow_at_wide =
            n_wide > 0 ? trained_flow.log_prob(zw, blocks)
                       : std::vector<double>{};
        std::size_t iw = 0;
        std::size_t jf = 0;
        for (std::size_t r = 0; r < n_is; ++r) {
            double lq_flow;
            double lq_wide;
            if (from_wide[r]) {
                const auto row = zw.row_span(iw);
                std::copy(row.begin(), row.end(), z.row_span(r).begin());
                lq_flow = flow_at_wide[iw];
                lq_wide = wide.log_pdf(row);
                ++iw;
            } else {
                const auto row = zf.z.row_span(jf);
                std::copy(row.begin(), row.end(), z.row_span(r).begin());
                lq_flow = zf.log_q[jf];
                lq_wide = wide.log_pdf(row);
                ++jf;
            }
            const double a = lw_flow + lq_flow;
            const double b = lw_wide + lq_wide;
            const double m = std::max(a, b);
            log_q[r] = m + std::log(std::exp(a - m) + std::exp(b - m));
        }
    }

    // Batched g over all proposal draws (parallel, row-order call indices);
    // every reduction below stays serial in row order, so the estimate is
    // bitwise identical at any thread count.
    const std::vector<double> g_vals = counted.g_rows(z);

    double total = 0.0;
    IsDiagnostics d;
    d.draws = n_is;
    double sum_w = 0.0;
    double sum_w2 = 0.0;
    // Raw-weight moments over ALL draws (no failure indicator): the
    // standard early warnings for proposal collapse — a low all-draw ESS or
    // a large weight CV flags a mismatched q long before the hit-restricted
    // ESS reacts.
    double all_sum_w = 0.0;
    double all_sum_w2 = 0.0;
    for (std::size_t r = 0; r < n_is; ++r) {
        const auto zr = z.row_span(r);
        const double raw_w =
            std::exp(rng::standard_normal_log_pdf(zr) - log_q[r]);
        all_sum_w += raw_w;
        all_sum_w2 += raw_w * raw_w;
        const double gv = g_vals[r];
        if (gv > 0.0) continue;
        total += raw_w;
        sum_w += raw_w;
        sum_w2 += raw_w * raw_w;
        d.max_weight = std::max(d.max_weight, raw_w);
        ++d.hits;
    }
    EstimateResult res;
    res.p_hat = total / static_cast<double>(n_is);
    res.calls = counted.calls();
    res.failed = !std::isfinite(res.p_hat);
    d.effective_sample_size =
        sum_w2 > 0.0 ? (sum_w * sum_w) / sum_w2 : 0.0;
    d.ess_all =
        all_sum_w2 > 0.0 ? (all_sum_w * all_sum_w) / all_sum_w2 : 0.0;
    if (n_is > 0 && all_sum_w > 0.0) {
        const double mean_w = all_sum_w / static_cast<double>(n_is);
        const double var_w =
            std::max(all_sum_w2 / static_cast<double>(n_is) - mean_w * mean_w,
                     0.0);
        d.weight_cv = std::sqrt(var_w) / mean_w;
    }
    if (diag != nullptr) *diag = d;
    return res;
}

}  // namespace nofis::core
