#pragma once

#include "core/nofis.hpp"

namespace nofis::estimators {

/// Estimator strategy for the latent-space exploration extension
/// (DESIGN.md §16): a full NOFIS training run whose final-IS budget is
/// split between annealed Metropolis exploration in the learned flow's
/// base space and a defensive-mixture final estimate. Total g-budget is
/// identical to plain NOFIS with the same config — the benches compare the
/// two at matched cost.
///
/// Defined in src/estimators for discoverability next to the other
/// strategies, but compiled into nofis_core (it drives NofisEstimator,
/// which the nofis_estimators library must not link back to).
class LatentExploreIs final : public Estimator {
public:
    /// Forces `cfg.latent.enabled = true`; all other latent knobs are
    /// honoured as given.
    LatentExploreIs(core::NofisConfig cfg, core::LevelSchedule levels);

    std::string name() const override { return "NOFIS-LE"; }

    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

    const core::NofisEstimator& inner() const noexcept { return inner_; }

private:
    static core::NofisConfig enable_latent(core::NofisConfig cfg) {
        cfg.latent.enabled = true;
        return cfg;
    }
    core::NofisEstimator inner_;
};

}  // namespace nofis::estimators
