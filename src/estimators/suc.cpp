#include "estimators/suc.hpp"

#include <algorithm>
#include <cmath>

#include "nn/trainer.hpp"
#include "rng/normal.hpp"

namespace nofis::estimators {

namespace {

/// Trains a fresh level-membership classifier on (x, 1[g <= level]).
nn::MLP train_level_classifier(
    const linalg::Matrix& x, const std::vector<double>& gv, double level,
    const SubsetClassificationEstimator::Config& cfg, rng::Engine& eng) {
    linalg::Matrix labels(x.rows(), 1);
    for (std::size_t r = 0; r < x.rows(); ++r)
        labels(r, 0) = gv[r] <= level ? 1.0 : 0.0;
    std::vector<std::size_t> layout;
    layout.push_back(x.cols());
    for (auto h : cfg.hidden) layout.push_back(h);
    layout.push_back(1);
    rng::Engine net_eng = eng.split();
    nn::MLP net(layout, nn::Activation::kLeakyRelu, net_eng);
    nn::TrainConfig tc;
    // Same step-budget cap as SIR: per-level classifier quality saturates
    // well before huge populations finish a full epoch schedule.
    const std::size_t step_budget = 8000;
    tc.epochs = std::clamp<std::size_t>(
        step_budget * 128 / std::max<std::size_t>(x.rows(), 1), 8,
        cfg.classifier_epochs);
    tc.batch_size = 128;
    tc.learning_rate = cfg.learning_rate;
    nn::fit_classifier(net, x, labels, tc, eng);
    return net;
}

}  // namespace

EstimateResult SubsetClassificationEstimator::estimate(
    const RareEventProblem& raw, rng::Engine& eng) const {
    CountedProblem problem(raw);
    const std::size_t n = cfg_.samples_per_level;
    const std::size_t d = problem.dim();
    const auto quota = static_cast<std::size_t>(
        std::max(1.0, cfg_.p0 * static_cast<double>(n)));

    // Level 0: plain Monte Carlo, fully labelled.
    linalg::Matrix x = rng::standard_normal_matrix(eng, n, d);
    std::vector<double> gv = problem.g_rows(x);

    double log_p = 0.0;
    for (std::size_t level_idx = 0; level_idx < cfg_.max_levels; ++level_idx) {
        std::size_t hits = 0;
        for (double v : gv)
            if (v <= 0.0) ++hits;
        if (hits >= quota) {
            EstimateResult res;
            res.p_hat = std::exp(log_p) * static_cast<double>(hits) /
                        static_cast<double>(n);
            res.calls = problem.calls();
            return res;
        }

        // Intermediate threshold at the p0-quantile.
        std::vector<double> sorted(gv);
        std::nth_element(
            sorted.begin(),
            sorted.begin() + static_cast<std::ptrdiff_t>(quota - 1),
            sorted.end());
        const double level = std::max(sorted[quota - 1], 0.0);
        log_p += std::log(cfg_.p0);

        // Classifier for the current level set, trained on everything we
        // just labelled.
        nn::MLP clf = train_level_classifier(x, gv, level, cfg_, eng);

        // Survivor pool seeds the random-walk candidate generator.
        std::vector<std::size_t> seeds;
        for (std::size_t r = 0; r < n; ++r)
            if (gv[r] <= level) seeds.push_back(r);
        if (seeds.empty()) {
            EstimateResult res;
            res.failed = true;
            res.detail = "no survivors at intermediate level";
            res.calls = problem.calls();
            return res;
        }

        // Classifier-filtered proposals (no g-calls in this loop).
        linalg::Matrix cand(n, d);
        std::size_t produced = 0;
        std::size_t cursor = 0;
        linalg::Matrix probe(1, d);
        while (produced < n) {
            const std::size_t s = seeds[cursor % seeds.size()];
            ++cursor;
            bool placed = false;
            for (std::size_t attempt = 0;
                 attempt < cfg_.max_filter_tries && !placed; ++attempt) {
                for (std::size_t c = 0; c < d; ++c)
                    probe(0, c) = x(s, c) + cfg_.proposal_spread *
                                                rng::standard_normal(eng);
                // Metropolis accept on the Gaussian prior so candidates do
                // not drift into zero-density territory.
                double log_ratio = 0.0;
                for (std::size_t c = 0; c < d; ++c)
                    log_ratio += 0.5 * (x(s, c) * x(s, c) -
                                        probe(0, c) * probe(0, c));
                if (std::log(std::max(eng.uniform(), 1e-300)) > log_ratio)
                    continue;
                if (clf.predict(probe)(0, 0) <= 0.0) continue;  // logit <= 0
                placed = true;
            }
            if (!placed)
                // Fall back to re-using the seed itself; keeps the level
                // population full even with a poor classifier.
                for (std::size_t c = 0; c < d; ++c) probe(0, c) = x(s, c);
            for (std::size_t c = 0; c < d; ++c) cand(produced, c) = probe(0, c);
            ++produced;
        }

        // Label the filtered candidates (the level's g budget) and keep only
        // the ones truly inside the level set for the conditional estimate.
        const std::vector<double> cand_g = problem.g_rows(cand);
        std::vector<std::size_t> inside;
        for (std::size_t r = 0; r < n; ++r)
            if (cand_g[r] <= level) inside.push_back(r);
        if (inside.size() < 2 * quota) {
            // The classifier filter lost the level set; collapse like the
            // paper's "—" entries rather than returning garbage.
            EstimateResult res;
            res.failed = true;
            res.detail = "classifier filter precision collapsed";
            res.calls = problem.calls();
            res.p_hat = 0.0;
            return res;
        }

        // Next-level population: the truly-inside candidates (resampled up
        // to n rows so the loop invariant holds).
        linalg::Matrix next_x(n, d);
        std::vector<double> next_g(n);
        for (std::size_t r = 0; r < n; ++r) {
            const std::size_t src = inside[r % inside.size()];
            for (std::size_t c = 0; c < d; ++c) next_x(r, c) = cand(src, c);
            next_g[r] = cand_g[src];
        }
        x = std::move(next_x);
        gv = std::move(next_g);
    }

    EstimateResult res;
    res.failed = true;
    res.detail = "max_levels reached";
    res.calls = problem.calls();
    res.p_hat = 0.0;
    return res;
}

}  // namespace nofis::estimators
