#include "estimators/sir.hpp"

#include <algorithm>
#include <cmath>

#include "nn/trainer.hpp"
#include "rng/normal.hpp"

namespace nofis::estimators {

EstimateResult SirEstimator::estimate(const RareEventProblem& raw,
                                      rng::Engine& eng) const {
    CountedProblem problem(raw);
    const std::size_t d = problem.dim();

    // Labelled training set — this is the entire g-call budget.
    const linalg::Matrix x =
        rng::standard_normal_matrix(eng, cfg_.train_samples, d);
    const std::vector<double> gv = problem.g_rows(x);

    // Standardise targets so MSE training is well-scaled for g-ranges from
    // O(1) (circuits) to O(1e4) (Rosenbrock).
    double mean = 0.0;
    for (double v : gv) mean += v;
    mean /= static_cast<double>(gv.size());
    double var = 0.0;
    for (double v : gv) var += (v - mean) * (v - mean);
    var /= static_cast<double>(gv.size());
    const double sd = std::sqrt(std::max(var, 1e-12));
    linalg::Matrix y(gv.size(), 1);
    for (std::size_t r = 0; r < gv.size(); ++r) y(r, 0) = (gv[r] - mean) / sd;

    std::vector<std::size_t> layout;
    layout.push_back(d);
    for (auto h : cfg_.hidden) layout.push_back(h);
    layout.push_back(1);
    rng::Engine net_eng = eng.split();
    nn::MLP net(layout, nn::Activation::kLeakyRelu, net_eng);
    nn::TrainConfig tc;
    // Cap the optimiser-step budget so giant training sets (the Cube row
    // trains on 500K samples) do not dominate wall-clock; SIR's accuracy is
    // surrogate-bias-limited long before it is optimisation-limited.
    const std::size_t step_budget = 25000;
    tc.epochs = std::clamp<std::size_t>(
        step_budget * cfg_.batch / std::max<std::size_t>(x.rows(), 1),
        8, cfg_.epochs);
    tc.batch_size = cfg_.batch;
    tc.learning_rate = cfg_.learning_rate;
    nn::fit_regression(net, x, y, tc, eng);

    // Surrogate-only sweep; ĝ(x) <= 0 <=> standardized prediction <=
    // -mean/sd.
    const double threshold = (0.0 - mean) / sd;
    std::size_t hits = 0;
    std::size_t remaining = cfg_.surrogate_evals;
    const std::size_t chunk = 8192;
    while (remaining > 0) {
        const std::size_t n = std::min(remaining, chunk);
        const linalg::Matrix probe = rng::standard_normal_matrix(eng, n, d);
        const linalg::Matrix pred = net.predict(probe);
        for (std::size_t r = 0; r < n; ++r)
            if (pred(r, 0) <= threshold) ++hits;
        remaining -= n;
    }

    EstimateResult res;
    res.p_hat = static_cast<double>(hits) /
                static_cast<double>(cfg_.surrogate_evals);
    res.calls = problem.calls();
    return res;
}

}  // namespace nofis::estimators
