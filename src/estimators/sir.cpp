#include "estimators/sir.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/solver_error.hpp"
#include "nn/trainer.hpp"
#include "rng/normal.hpp"
#include "telemetry/telemetry.hpp"

namespace nofis::estimators {

EstimateResult SirEstimator::estimate(const RareEventProblem& raw,
                                      rng::Engine& eng) const {
    // Validate the budget up front: train_samples == 0 leaves nothing to
    // fit, and surrogate_evals == 0 would divide hits by zero below and
    // surface as a silent NaN estimate.
    if (cfg_.train_samples == 0)
        throw BadInputError("SirEstimator: train_samples must be > 0");
    if (cfg_.surrogate_evals == 0)
        throw BadInputError(
            "SirEstimator: surrogate_evals must be > 0");

    CountedProblem problem(raw);
    const std::size_t d = problem.dim();

    // Labelled training set — this is the entire g-call budget.
    const linalg::Matrix x_all =
        rng::standard_normal_matrix(eng, cfg_.train_samples, d);
    const std::vector<double> gv_all = problem.g_rows(x_all);

    // A guarded problem can hand back NaN/inf g-values (propagate policy,
    // or clamp_value = inf). A single NaN poisons the mean/sd
    // standardisation below — every target and the hit threshold go NaN and
    // the estimate silently collapses — so drop non-finite rows exactly
    // like auto_levels does with its pilot, and fail loudly when too few
    // survive to fit a surrogate.
    std::vector<std::size_t> keep;
    keep.reserve(gv_all.size());
    for (std::size_t r = 0; r < gv_all.size(); ++r)
        if (std::isfinite(gv_all[r])) keep.push_back(r);
    const std::size_t dropped = gv_all.size() - keep.size();
    if (dropped > 0) telemetry::count("sir.train_rows_nonfinite", dropped);
    const std::size_t min_finite =
        std::max<std::size_t>(2, cfg_.train_samples / 10);
    if (keep.size() < min_finite) {
        std::ostringstream os;
        os << "SirEstimator: only " << keep.size() << " of " << gv_all.size()
           << " training g-values are finite (" << dropped
           << " dropped); need at least " << min_finite
           << " to fit a surrogate";
        throw BadInputError(os.str());
    }
    linalg::Matrix x(keep.size(), d);
    std::vector<double> gv(keep.size());
    for (std::size_t r = 0; r < keep.size(); ++r) {
        for (std::size_t c = 0; c < d; ++c) x(r, c) = x_all(keep[r], c);
        gv[r] = gv_all[keep[r]];
    }

    // Standardise targets so MSE training is well-scaled for g-ranges from
    // O(1) (circuits) to O(1e4) (Rosenbrock).
    double mean = 0.0;
    for (double v : gv) mean += v;
    mean /= static_cast<double>(gv.size());
    double var = 0.0;
    for (double v : gv) var += (v - mean) * (v - mean);
    var /= static_cast<double>(gv.size());
    const double sd = std::sqrt(std::max(var, 1e-12));
    linalg::Matrix y(gv.size(), 1);
    for (std::size_t r = 0; r < gv.size(); ++r) y(r, 0) = (gv[r] - mean) / sd;

    std::vector<std::size_t> layout;
    layout.push_back(d);
    for (auto h : cfg_.hidden) layout.push_back(h);
    layout.push_back(1);
    rng::Engine net_eng = eng.split();
    nn::MLP net(layout, nn::Activation::kLeakyRelu, net_eng);
    nn::TrainConfig tc;
    // Cap the optimiser-step budget so giant training sets (the Cube row
    // trains on 500K samples) do not dominate wall-clock; SIR's accuracy is
    // surrogate-bias-limited long before it is optimisation-limited.
    const std::size_t step_budget = 25000;
    tc.epochs = std::clamp<std::size_t>(
        step_budget * cfg_.batch / std::max<std::size_t>(x.rows(), 1),
        8, cfg_.epochs);
    tc.batch_size = cfg_.batch;
    tc.learning_rate = cfg_.learning_rate;
    nn::fit_regression(net, x, y, tc, eng);

    // Surrogate-only sweep; ĝ(x) <= 0 <=> standardized prediction <=
    // -mean/sd.
    const double threshold = (0.0 - mean) / sd;
    std::size_t hits = 0;
    std::size_t remaining = cfg_.surrogate_evals;
    const std::size_t chunk = 8192;
    while (remaining > 0) {
        const std::size_t n = std::min(remaining, chunk);
        const linalg::Matrix probe = rng::standard_normal_matrix(eng, n, d);
        const linalg::Matrix pred = net.predict(probe);
        for (std::size_t r = 0; r < n; ++r)
            if (pred(r, 0) <= threshold) ++hits;
        remaining -= n;
    }

    EstimateResult res;
    res.p_hat = static_cast<double>(hits) /
                static_cast<double>(cfg_.surrogate_evals);
    res.calls = problem.calls();
    return res;
}

}  // namespace nofis::estimators
