#include "estimators/sss.hpp"

#include <cmath>

#include "linalg/least_squares.hpp"
#include "rng/normal.hpp"

namespace nofis::estimators {

EstimateResult ScaledSigmaEstimator::estimate(const RareEventProblem& raw,
                                              rng::Engine& eng) const {
    CountedProblem problem(raw);
    const std::size_t d = problem.dim();
    const std::size_t per_sigma =
        std::max<std::size_t>(1, cfg_.total_samples / cfg_.sigmas.size());

    // Measure P(s) at each inflated sigma.
    std::vector<double> usable_log_s;
    std::vector<double> usable_inv_s2;
    std::vector<double> usable_log_p;
    std::vector<double> usable_weight;
    for (double s : cfg_.sigmas) {
        std::size_t hits = 0;
        linalg::Matrix x = rng::standard_normal_matrix(eng, per_sigma, d);
        x *= s;
        for (double gv : problem.g_rows(x))
            if (gv <= 0.0) ++hits;
        if (hits == 0) continue;  // no information at this sigma
        const double p = static_cast<double>(hits) /
                         static_cast<double>(per_sigma);
        usable_log_s.push_back(std::log(s));
        usable_inv_s2.push_back(1.0 / (s * s));
        usable_log_p.push_back(std::log(p));
        // Delta-method weight: Var[log p̂] ≈ (1-p)/(n·p); weight = 1/Var.
        usable_weight.push_back(static_cast<double>(per_sigma) * p /
                                std::max(1.0 - p, 1e-6));
    }

    EstimateResult res;
    res.calls = problem.calls();
    if (usable_log_p.size() < 3) {
        res.failed = true;
        res.detail = "fewer than 3 sigmas produced failures";
        return res;
    }

    // Design matrix [1, log s, -1/s²] -> coefficients (α, β, γ).
    linalg::Matrix design(usable_log_p.size(), 3);
    for (std::size_t i = 0; i < usable_log_p.size(); ++i) {
        design(i, 0) = 1.0;
        design(i, 1) = usable_log_s[i];
        design(i, 2) = -usable_inv_s2[i];
    }
    const auto coef = linalg::weighted_least_squares(
        design, usable_log_p, usable_weight, 1e-9);
    const double log_p1 = coef[0] - coef[2];  // s = 1
    res.p_hat = std::exp(log_p1);
    if (!std::isfinite(res.p_hat)) {
        res.failed = true;
        res.p_hat = 0.0;
        res.detail = "extrapolation diverged";
    }
    return res;
}

}  // namespace nofis::estimators
