#pragma once

#include "estimators/problem.hpp"

namespace nofis::estimators {

/// SUC — subset classification: the paper's baseline (iv), "the MCMC
/// sampling in SUS is replaced with modern deep neural networks".
///
/// Our interpretation (the paper gives a one-line description): the level
/// structure of subset simulation is kept, but candidate generation at each
/// level is a cheap classifier-filtered random walk instead of an exact
/// Metropolis chain. g-calls are spent only on (a) level-0 sampling and
/// (b) labelling the filtered candidates that form the next level's
/// population and training set. The level probability combines the filter
/// acceptance rate (measured on raw proposals, classifier-only) with the
/// labelled precision of the filter, so the estimate remains grounded in
/// true g evaluations — but inherits the classifier's bias, which is what
/// makes SUC land between MC and SUS in Table 1.
class SubsetClassificationEstimator final : public Estimator {
public:
    struct Config {
        std::size_t samples_per_level = 2000;
        double p0 = 0.1;
        std::size_t max_levels = 12;
        double proposal_spread = 0.7;
        std::vector<std::size_t> hidden = {32, 32};
        std::size_t classifier_epochs = 40;
        double learning_rate = 3e-3;
        /// Cap on classifier-filtered raw proposals per accepted candidate.
        std::size_t max_filter_tries = 64;
    };

    explicit SubsetClassificationEstimator(Config cfg) : cfg_(std::move(cfg)) {}

    std::string name() const override { return "SUC"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
