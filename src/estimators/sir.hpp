#pragma once

#include "estimators/problem.hpp"

namespace nofis::estimators {

/// SIR — "simple regression" baseline of the paper: spend the whole g-call
/// budget on i.i.d. training pairs (x, g(x)), fit an MLP surrogate ĝ, then
/// estimate P_r as the fraction of a huge surrogate-only Monte Carlo sweep
/// with ĝ(x) <= 0. All bias comes from the surrogate; no variance reduction.
class SirEstimator final : public Estimator {
public:
    struct Config {
        std::size_t train_samples = 50000;
        /// Surrogate-only evaluations (free of g-calls). The paper quotes
        /// 1e9; we default to 2e6 — the surrogate bias dominates long before
        /// sweep noise does (see EXPERIMENTS.md).
        std::size_t surrogate_evals = 2000000;
        std::vector<std::size_t> hidden = {64, 64};
        std::size_t epochs = 60;
        std::size_t batch = 128;
        double learning_rate = 2e-3;
    };

    explicit SirEstimator(Config cfg) : cfg_(std::move(cfg)) {}

    std::string name() const override { return "SIR"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
