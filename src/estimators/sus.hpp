#pragma once

#include "estimators/problem.hpp"

namespace nofis::estimators {

/// Subset simulation (Au & Beck 2001; applied to circuits by Sun & Li 2014).
///
/// Writes P[Ω] = Π_m P[Ω_m | Ω_{m-1}] over adaptively-chosen intermediate
/// thresholds (the p0-quantile of each level's g-values) and samples each
/// conditional with component-wise modified-Metropolis MCMC seeded by the
/// previous level's survivors.
class SubsetSimulationEstimator final : public Estimator {
public:
    struct Config {
        std::size_t samples_per_level = 2000;
        double p0 = 0.1;               ///< conditional level probability
        std::size_t max_levels = 12;   ///< hard stop (failure -> "—")
        /// Modified-Metropolis proposal: component-wise N(x_i, spread²).
        double proposal_spread = 1.0;
    };

    explicit SubsetSimulationEstimator(Config cfg) : cfg_(cfg) {}

    std::string name() const override { return "SUS"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
