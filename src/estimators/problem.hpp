#pragma once

#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "rng/engine.hpp"

namespace nofis::estimators {

/// A rare-event problem F = (p, Ω) per Section 2 of the paper, with
/// p = N(0, I_D) fixed (the standard process-variation model) and
/// Ω = { x : g(x) <= 0 } described by the characteristic function g.
///
/// `g` stands in for an expensive circuit simulation; implementations in
/// src/testcases back it with an MNA solve, a transfer-matrix propagation, a
/// neural network, or a closed-form synthetic function.
class RareEventProblem {
public:
    virtual ~RareEventProblem() = default;

    virtual std::size_t dim() const noexcept = 0;

    /// Characteristic function; g(x) <= 0 means failure (x ∈ Ω).
    virtual double g(std::span<const double> x) const = 0;

    /// ∂g/∂x. The default uses central finite differences on the underlying
    /// model; overriders provide analytic or adjoint gradients. Returns
    /// g(x).
    ///
    /// Call accounting: one (value, gradient) evaluation is counted as ONE
    /// call, mirroring the paper's PyTorch setup where backward through the
    /// simulation costs no additional simulator run.
    virtual double g_grad(std::span<const double> x,
                          std::span<double> grad_out) const;

    /// Indexed evaluation for batched / parallel callers: `index` is a
    /// deterministic caller-assigned call number. Stateful decorators
    /// (fault injection, guards) override these to key their per-call
    /// behaviour on the index instead of arrival order, so a batch replays
    /// identically under any thread count. The defaults ignore the index.
    virtual double g_indexed(std::size_t index,
                             std::span<const double> x) const {
        (void)index;
        return g(x);
    }
    virtual double g_grad_indexed(std::size_t index,
                                  std::span<const double> x,
                                  std::span<double> grad_out) const {
        (void)index;
        return g_grad(x, grad_out);
    }

    /// Batched g over the rows of `x`, results in row order. The default
    /// evaluates rows in parallel on the global pool and requires `g` to be
    /// safe for concurrent const calls (true for every stateless model in
    /// src/testcases). Stateful decorators override it to assign
    /// deterministic per-row call indices. Every row is evaluated even if
    /// some throw; the exception of the lowest-index failing row is
    /// rethrown once the batch completes, so the surfaced error does not
    /// depend on the thread count.
    virtual std::vector<double> g_rows(const linalg::Matrix& x) const;

    /// Step used by the finite-difference fallback; override for models
    /// with noisy or stiff responses.
    virtual double fd_step() const noexcept { return 1e-5; }
};

/// Counting facade: every estimator routes evaluations through one of these
/// so the "number of function calls" column of Table 1 is measured, not
/// assumed. The counter is atomic, so the wrapped problem may be evaluated
/// from several pool lanes at once.
class CountedProblem {
public:
    explicit CountedProblem(const RareEventProblem& p) : p_(&p) {}

    std::size_t dim() const noexcept { return p_->dim(); }

    double g(std::span<const double> x) {
        calls_.fetch_add(1, std::memory_order_relaxed);
        return p_->g(x);
    }

    double g_grad(std::span<const double> x, std::span<double> grad_out) {
        calls_.fetch_add(1, std::memory_order_relaxed);
        return p_->g_grad(x, grad_out);
    }

    /// Evaluates g on every row of `x`, in parallel on the global pool
    /// (delegates to the problem's g_rows, which stateful decorators
    /// override with deterministic per-row call indices).
    std::vector<double> g_rows(const linalg::Matrix& x);

    /// Evaluates g and its gradient on every row; gradients land in the
    /// rows of `grad_out` (same shape as x). Serial — not a hot path.
    std::vector<double> g_grad_rows(const linalg::Matrix& x,
                                    linalg::Matrix& grad_out);

    std::size_t calls() const noexcept {
        return calls_.load(std::memory_order_relaxed);
    }
    void reset_calls() noexcept {
        calls_.store(0, std::memory_order_relaxed);
    }

    const RareEventProblem& problem() const noexcept { return *p_; }

private:
    const RareEventProblem* p_;
    std::atomic<std::size_t> calls_{0};
};

/// Result of one estimator run.
struct EstimateResult {
    double p_hat = 0.0;       ///< estimated failure probability
    std::size_t calls = 0;    ///< g-evaluations arriving at the problem
    /// Of `calls`, how many were served from an evaluation cache instead of
    /// running the simulator (0 when no cache is wired in). Fresh simulator
    /// work is therefore `calls - cached_calls`; totals stay comparable
    /// with and without a cache.
    std::size_t cached_calls = 0;
    bool failed = false;      ///< algorithm collapse ("—" entries in Table 1)
    std::string detail;       ///< optional human-readable diagnostics
};

/// Common interface for the NOFIS estimator and the six baselines.
class Estimator {
public:
    virtual ~Estimator() = default;
    virtual std::string name() const = 0;
    virtual EstimateResult estimate(const RareEventProblem& problem,
                                    rng::Engine& eng) const = 0;
};

/// Table-1 error metric: |ln(max(p_hat, floor)) - ln(golden)|. The floor
/// keeps zero estimates (common for MC at these budgets) finite; see
/// EXPERIMENTS.md for calibration of the floor against the paper's MC rows.
double log_error(double p_hat, double golden, double floor = 1e-10);

}  // namespace nofis::estimators
