#include "estimators/guarded_problem.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "linalg/solver_error.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/normal.hpp"

namespace nofis::estimators {

namespace {

FaultKind classify(const SolverError& e) noexcept {
    switch (e.kind()) {
        case SolverError::Kind::kSingularMatrix:
            return FaultKind::kSingularMatrix;
        case SolverError::Kind::kNonConvergence:
            return FaultKind::kNonConvergence;
        case SolverError::Kind::kBadInput:
            return FaultKind::kBadInput;
    }
    return FaultKind::kOtherException;
}

bool all_finite(std::span<const double> v) noexcept {
    for (double x : v)
        if (!std::isfinite(x)) return false;
    return true;
}

/// splitmix64-style finaliser used to derive the per-call jitter seed from
/// (stream seed, call index). A pure function of its inputs, so retry
/// perturbations do not depend on how calls interleave across threads.
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Synthetic inner-problem index for retry attempt `k` of top-level call
/// `index`: tagged with the top bit so retry probes can never collide with
/// (or shift) the top-level call-index space a deterministic fault injector
/// keys its decisions on.
std::size_t retry_probe_index(std::size_t index, std::size_t k) noexcept {
    return (std::size_t{1} << 63) | (index << 8) | (k & 0xFF);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::kSingularMatrix: return "singular-matrix";
        case FaultKind::kNonConvergence: return "non-convergence";
        case FaultKind::kBadInput: return "bad-input";
        case FaultKind::kNonFiniteValue: return "non-finite-value";
        case FaultKind::kNonFiniteGrad: return "non-finite-grad";
        case FaultKind::kOtherException: return "other-exception";
        case FaultKind::kCount: break;
    }
    return "unknown";
}

std::size_t FaultReport::total_faults() const noexcept {
    std::size_t total = 0;
    for (std::size_t c : counts) total += c;
    return total;
}

void FaultReport::merge(const FaultReport& other) {
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    retry_attempts += other.retry_attempts;
    recovered += other.recovered;
    clamped += other.clamped;
    propagated += other.propagated;
    if (!has_first && other.has_first) {
        has_first = true;
        first_kind = other.first_kind;
        first_message = other.first_message;
        first_x = other.first_x;
        first_call_index = other.first_call_index;
    }
}

std::string FaultReport::summary() const {
    std::ostringstream os;
    os << total_faults() << " fault(s)";
    if (total_faults() > 0) {
        os << " (";
        bool first = true;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] == 0) continue;
            if (!first) os << ", ";
            os << fault_kind_name(static_cast<FaultKind>(i)) << ":"
               << counts[i];
            first = false;
        }
        os << ")";
    }
    os << ", " << retry_attempts << " retry call(s), " << recovered
       << " recovered, " << clamped << " clamped, " << propagated
       << " propagated";
    if (has_first)
        os << "; first: " << fault_kind_name(first_kind) << " at call #"
           << first_call_index << " (" << first_message << ")";
    return os.str();
}

GuardedProblem::GuardedProblem(const RareEventProblem& inner, GuardConfig cfg)
    : inner_(&inner), cfg_(cfg) {}

void GuardedProblem::record(std::size_t record_index, FaultKind kind,
                            const std::string& message,
                            std::span<const double> x) const {
    std::lock_guard<std::mutex> lock(ledger_mutex_);
    ++report_.counts[static_cast<std::size_t>(kind)];
    // "First" fault = lowest call index, not earliest arrival. Retries of a
    // call record under the same index and never displace the initial fault
    // (strict <), so the ledger is identical under any thread count.
    if (!report_.has_first || record_index < report_.first_call_index) {
        report_.has_first = true;
        report_.first_kind = kind;
        report_.first_message = message;
        report_.first_x.assign(x.begin(), x.end());
        report_.first_call_index = record_index;
    }
}

bool GuardedProblem::attempt(std::size_t inner_index,
                             std::size_t record_index,
                             std::span<const double> x,
                             std::span<double> grad_out, double& value,
                             FaultKind& kind, std::string& message,
                             std::exception_ptr& eptr) const {
    try {
        value = grad_out.empty()
                    ? inner_->g_indexed(inner_index, x)
                    : inner_->g_grad_indexed(inner_index, x, grad_out);
    } catch (const SolverError& e) {
        kind = classify(e);
        message = e.what();
        eptr = std::current_exception();
        record(record_index, kind, message, x);
        return false;
    } catch (const std::invalid_argument& e) {
        kind = FaultKind::kBadInput;
        message = e.what();
        eptr = std::current_exception();
        record(record_index, kind, message, x);
        return false;
    } catch (const std::domain_error& e) {
        kind = FaultKind::kBadInput;
        message = e.what();
        eptr = std::current_exception();
        record(record_index, kind, message, x);
        return false;
    } catch (const std::exception& e) {
        kind = FaultKind::kOtherException;
        message = e.what();
        eptr = std::current_exception();
        record(record_index, kind, message, x);
        return false;
    }
    eptr = nullptr;
    if (!std::isfinite(value)) {
        kind = FaultKind::kNonFiniteValue;
        message = "g returned a non-finite value";
        record(record_index, kind, message, x);
        return false;
    }
    if (!grad_out.empty() && !all_finite(grad_out)) {
        kind = FaultKind::kNonFiniteGrad;
        message = "g_grad produced a non-finite component";
        record(record_index, kind, message, x);
        return false;
    }
    return true;
}

double GuardedProblem::resolve(std::size_t index, std::span<const double> x,
                               std::span<double> grad_out, FaultKind kind,
                               std::exception_ptr eptr) const {
    using Policy = GuardConfig::Policy;
    if (cfg_.policy == Policy::kPropagate) {
        {
            std::lock_guard<std::mutex> lock(ledger_mutex_);
            ++report_.propagated;
        }
        // Thrown faults pass through untouched; non-finite results are not
        // exceptions, so hand a quiet NaN back to the caller.
        if (eptr) std::rethrow_exception(eptr);
        return std::numeric_limits<double>::quiet_NaN();
    }

    if (cfg_.policy == Policy::kRetryPerturb) {
        // The jitter for call `index` is its own engine seeded from
        // (seed, index): no shared stream, so the probes a faulty call sees
        // do not depend on which other calls faulted before it.
        rng::Engine jitter(mix64(cfg_.seed, index));
        std::vector<double> probe(x.begin(), x.end());
        for (std::size_t attempt_i = 0; attempt_i < cfg_.max_retries;
             ++attempt_i) {
            for (std::size_t i = 0; i < probe.size(); ++i)
                probe[i] =
                    x[i] + cfg_.perturb_sigma * rng::standard_normal(jitter);
            {
                std::lock_guard<std::mutex> lock(ledger_mutex_);
                ++report_.retry_attempts;
            }
            double value = 0.0;
            FaultKind k2 = kind;
            std::string m2;
            std::exception_ptr e2;
            if (attempt(retry_probe_index(index, attempt_i), index, probe,
                        grad_out, value, k2, m2, e2)) {
                std::lock_guard<std::mutex> lock(ledger_mutex_);
                ++report_.recovered;
                return value;
            }
        }
    }

    // Clamp-to-fail: the sample is pushed far outside Ω (g >> 0), so it is
    // classified as "no failure" and carries zero importance weight. Also
    // the fallback once retries are exhausted.
    {
        std::lock_guard<std::mutex> lock(ledger_mutex_);
        ++report_.clamped;
    }
    for (double& gi : grad_out) gi = 0.0;
    return cfg_.clamp_value;
}

double GuardedProblem::g_indexed(std::size_t index,
                                 std::span<const double> x) const {
    double value = 0.0;
    FaultKind kind = FaultKind::kOtherException;
    std::string message;
    std::exception_ptr eptr;
    if (attempt(index, index, x, {}, value, kind, message, eptr)) return value;
    return resolve(index, x, {}, kind, eptr);
}

double GuardedProblem::g_grad_indexed(std::size_t index,
                                      std::span<const double> x,
                                      std::span<double> grad_out) const {
    double value = 0.0;
    FaultKind kind = FaultKind::kOtherException;
    std::string message;
    std::exception_ptr eptr;
    if (attempt(index, index, x, grad_out, value, kind, message, eptr))
        return value;
    return resolve(index, x, grad_out, kind, eptr);
}

double GuardedProblem::g(std::span<const double> x) const {
    return g_indexed(reserve_calls(1), x);
}

double GuardedProblem::g_grad(std::span<const double> x,
                              std::span<double> grad_out) const {
    return g_grad_indexed(reserve_calls(1), x, grad_out);
}

std::vector<double> GuardedProblem::g_rows(const linalg::Matrix& x) const {
    if (x.cols() != dim())
        throw std::invalid_argument("g_rows: dimension mismatch");
    const std::size_t base = reserve_calls(x.rows());
    std::vector<double> out(x.rows());
    std::vector<std::exception_ptr> errors(x.rows());
    parallel::parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            try {
                out[r] = g_indexed(base + r, x.row_span(r));
            } catch (...) {
                errors[r] = std::current_exception();
            }
        }
    });
    parallel::rethrow_first(errors);
    return out;
}

}  // namespace nofis::estimators
