#include "estimators/sus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/normal.hpp"

namespace nofis::estimators {

namespace {

/// One modified-Metropolis transition targeting p(x)·1[g(x) <= level].
/// Each coordinate is perturbed and accepted against the N(0,1) marginal;
/// the composite candidate is then accepted only if it stays in the level
/// set (one g call). Returns true when the chain moved.
bool mm_step(CountedProblem& problem, rng::Engine& eng, double level,
             double spread, std::vector<double>& x, double& gx) {
    std::vector<double> cand(x);
    bool any_moved = false;
    for (std::size_t i = 0; i < cand.size(); ++i) {
        const double prop = cand[i] + spread * rng::standard_normal(eng);
        // Accept ratio of the standard-normal marginal.
        const double log_ratio = 0.5 * (cand[i] * cand[i] - prop * prop);
        if (std::log(std::max(eng.uniform(), 1e-300)) < log_ratio) {
            cand[i] = prop;
            any_moved = true;
        }
    }
    if (!any_moved) return false;
    const double gc = problem.g(cand);
    if (gc <= level) {
        x = std::move(cand);
        gx = gc;
        return true;
    }
    return false;
}

}  // namespace

EstimateResult SubsetSimulationEstimator::estimate(
    const RareEventProblem& raw, rng::Engine& eng) const {
    CountedProblem problem(raw);
    const std::size_t n = cfg_.samples_per_level;
    const std::size_t d = problem.dim();

    // Level 0: i.i.d. Monte Carlo.
    linalg::Matrix x0 = rng::standard_normal_matrix(eng, n, d);
    std::vector<std::vector<double>> chain(n, std::vector<double>(d));
    std::vector<double> gvals(n);
    for (std::size_t r = 0; r < n; ++r) {
        const auto row = x0.row_span(r);
        std::copy(row.begin(), row.end(), chain[r].begin());
        gvals[r] = problem.g(chain[r]);
    }

    double log_p = 0.0;
    const auto seeds_per_level =
        static_cast<std::size_t>(std::max(1.0, cfg_.p0 * static_cast<double>(n)));

    for (std::size_t level_idx = 0;; ++level_idx) {
        // Direct hit count at the final threshold 0.
        std::size_t hits = 0;
        for (double gv : gvals)
            if (gv <= 0.0) ++hits;
        if (hits >= seeds_per_level || level_idx + 1 >= cfg_.max_levels) {
            EstimateResult res;
            if (hits == 0 && level_idx + 1 >= cfg_.max_levels) {
                res.failed = true;
                res.p_hat = 0.0;
                res.detail = "max_levels reached without failures";
            } else {
                res.p_hat = std::exp(log_p) * static_cast<double>(hits) /
                            static_cast<double>(n);
            }
            res.calls = problem.calls();
            return res;
        }

        // Intermediate threshold: p0-quantile of the current g population.
        std::vector<double> sorted(gvals);
        std::nth_element(sorted.begin(),
                         sorted.begin() + static_cast<std::ptrdiff_t>(
                                              seeds_per_level - 1),
                         sorted.end());
        double level = sorted[seeds_per_level - 1];
        if (level <= 0.0) level = 0.0;
        log_p += std::log(cfg_.p0);

        // Seeds: survivors below the threshold.
        std::vector<std::size_t> seed_idx;
        for (std::size_t r = 0; r < n; ++r)
            if (gvals[r] <= level) seed_idx.push_back(r);
        if (seed_idx.empty()) {
            EstimateResult res;
            res.failed = true;
            res.p_hat = 0.0;
            res.calls = problem.calls();
            res.detail = "no survivors at intermediate level";
            return res;
        }

        // Grow chains from the seeds until the level population is refilled.
        std::vector<std::vector<double>> next_chain;
        std::vector<double> next_g;
        next_chain.reserve(n);
        next_g.reserve(n);
        std::size_t cursor = 0;
        while (next_chain.size() < n) {
            const std::size_t s = seed_idx[cursor % seed_idx.size()];
            ++cursor;
            std::vector<double> x = chain[s];
            double gx = gvals[s];
            mm_step(problem, eng, level, cfg_.proposal_spread, x, gx);
            next_chain.push_back(x);
            next_g.push_back(gx);
            // Each seed's chain contributes several correlated states.
            const std::size_t burst =
                std::min<std::size_t>(n - next_chain.size(),
                                      static_cast<std::size_t>(1.0 / cfg_.p0) -
                                          1);
            for (std::size_t b = 0; b < burst; ++b) {
                mm_step(problem, eng, level, cfg_.proposal_spread, x, gx);
                next_chain.push_back(x);
                next_g.push_back(gx);
            }
        }
        chain = std::move(next_chain);
        gvals = std::move(next_g);

        if (level == 0.0) {
            // The quantile already reached the failure threshold: the
            // current population is conditioned on Ω directly.
            std::size_t final_hits = 0;
            for (double gv : gvals)
                if (gv <= 0.0) ++final_hits;
            EstimateResult res;
            res.p_hat = std::exp(log_p) * static_cast<double>(final_hits) /
                        static_cast<double>(n);
            res.calls = problem.calls();
            return res;
        }
    }
}

}  // namespace nofis::estimators
