#include "estimators/latent_explore_is.hpp"

namespace nofis::estimators {

LatentExploreIs::LatentExploreIs(core::NofisConfig cfg,
                                 core::LevelSchedule levels)
    : inner_(enable_latent(std::move(cfg)), std::move(levels)) {}

EstimateResult LatentExploreIs::estimate(const RareEventProblem& problem,
                                         rng::Engine& eng) const {
    return inner_.estimate(problem, eng);
}

}  // namespace nofis::estimators
