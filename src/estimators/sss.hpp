#pragma once

#include <vector>

#include "estimators/problem.hpp"

namespace nofis::estimators {

/// Scaled-sigma sampling (Sun et al., TCAD 2015).
///
/// Samples x ~ N(0, s²I) at several inflated sigmas s > 1 where failures are
/// observable, fits the asymptotic model
///     log P(s) = α + β·log s − γ / s²
/// by weighted least squares, and extrapolates to the nominal sigma s = 1:
/// P_r ≈ exp(α − γ). The γ/s² term captures the exp(−‖x*‖²/(2s²)) tail
/// factor of the dominant failure point; β·log s the polynomial prefactor.
class ScaledSigmaEstimator final : public Estimator {
public:
    struct Config {
        std::vector<double> sigmas = {1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
        std::size_t total_samples = 40000;  ///< split evenly across sigmas
    };

    explicit ScaledSigmaEstimator(Config cfg) : cfg_(std::move(cfg)) {}

    std::string name() const override { return "SSS"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
