#pragma once

#include "dist/gaussian_mixture.hpp"
#include "estimators/problem.hpp"

namespace nofis::estimators {

/// Adaptive importance sampling with a Gaussian-mixture proposal
/// (cross-entropy method with level adaptation; Bucklew 2004, Shi et al.
/// DAC 2018).
///
/// Iteratively: draw from the current mixture, pick the elite level (the
/// rho-quantile of g, floored at 0), re-fit the mixture to the
/// importance-weighted elite samples, and tighten until the level reaches 0.
/// The final iteration's proposal feeds a standard IS estimate.
class AdaptiveIsEstimator final : public Estimator {
public:
    struct Config {
        std::size_t num_components = 3;
        std::size_t iterations = 6;
        std::size_t samples_per_iteration = 5000;
        std::size_t final_samples = 5000;
        double elite_quantile = 0.1;
        double sigma_floor = 0.05;
        /// Initial proposal inflation (wider than p to explore the tail).
        double initial_sigma = 2.0;
    };

    explicit AdaptiveIsEstimator(Config cfg) : cfg_(cfg) {}

    std::string name() const override { return "Adapt-IS"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
