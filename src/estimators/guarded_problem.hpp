#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <vector>

#include "estimators/problem.hpp"
#include "rng/engine.hpp"

namespace nofis::estimators {

/// Classification of a failed g-evaluation. The first three kinds mirror
/// nofis::SolverError::Kind (structured throws from src/linalg and
/// src/circuit); the rest cover everything else a black-box simulator can
/// do to a caller.
enum class FaultKind : std::size_t {
    kSingularMatrix = 0,  ///< factorisation breakdown inside the solver
    kNonConvergence,      ///< Newton / iterative solve gave up
    kBadInput,            ///< solver rejected its input (often NaN samples)
    kNonFiniteValue,      ///< g returned NaN or ±inf
    kNonFiniteGrad,       ///< g_grad produced a NaN/±inf component
    kOtherException,      ///< any other std::exception
    kCount,
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// Per-run fault ledger accumulated by GuardedProblem. Counts every faulty
/// evaluation attempt by kind (a retry that faults again counts again, so
/// the totals match a seeded fault injector exactly), plus how each
/// top-level fault was ultimately resolved.
struct FaultReport {
    std::array<std::size_t, static_cast<std::size_t>(FaultKind::kCount)>
        counts{};

    std::size_t retry_attempts = 0;  ///< extra inner evaluations spent on retries
    std::size_t recovered = 0;       ///< faults fixed by a perturbed retry
    std::size_t clamped = 0;         ///< faults resolved by clamp-to-fail
    std::size_t propagated = 0;      ///< faults rethrown to the caller

    /// Context of the lowest-call-index fault observed (debugging aid for
    /// long runs). Selecting by call index rather than arrival time keeps
    /// the report identical under any thread count.
    bool has_first = false;
    FaultKind first_kind = FaultKind::kOtherException;
    std::string first_message;
    std::vector<double> first_x;
    std::size_t first_call_index = 0;  ///< 0-based top-level call number

    std::size_t count(FaultKind kind) const noexcept {
        return counts[static_cast<std::size_t>(kind)];
    }
    std::size_t total_faults() const noexcept;

    void merge(const FaultReport& other);

    /// One-line human-readable digest ("12 faults (nan:8 newton:4), ...").
    std::string summary() const;
};

/// What GuardedProblem does when an evaluation faults.
struct GuardConfig {
    enum class Policy {
        kPropagate,     ///< record the fault, then rethrow / pass it through
        kRetryPerturb,  ///< re-evaluate at x + ε·N(0,I); clamp if retries fail
        kClampToFail,   ///< replace g with `clamp_value` (sample leaves Ω)
    };
    Policy policy = Policy::kRetryPerturb;
    std::size_t max_retries = 3;   ///< perturbed re-evaluations per fault
    double perturb_sigma = 1e-6;   ///< stddev of the retry jitter
    /// Replacement g value for clamp-to-fail: large and positive, so the
    /// faulty sample is classified "no failure" and carries zero IS weight —
    /// the conservative direction for a rare-event probability.
    double clamp_value = 1e9;
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< jitter stream seed
};

/// Fault-tolerant decorator around any RareEventProblem: catches solver
/// exceptions (classified via nofis::SolverError) and non-finite g / g_grad
/// outputs, applies the configured GuardConfig::Policy, and accumulates a
/// FaultReport. Fault-free evaluations are bit-identical passthroughs.
///
/// Thread-safety and determinism: every evaluation carries a call index
/// (self-assigned in arrival order on the serial g/g_grad path, reserved in
/// row order by batched callers). Retry jitter is a pure function of
/// (seed, call index) — not a shared stream — and the fault ledger is
/// mutex-protected with the "first fault" selected by lowest call index,
/// so a batch of guarded evaluations produces bitwise-identical values and
/// an identical FaultReport under any thread count.
///
/// Call accounting: the guard itself is transparent (one caller call = one
/// inner call), but retries spend extra inner evaluations; those are
/// tallied in FaultReport::retry_attempts so runs can charge them to the
/// paper's g-call budget (see DESIGN.md, "Failure handling & recovery").
class GuardedProblem final : public RareEventProblem {
public:
    explicit GuardedProblem(const RareEventProblem& inner,
                            GuardConfig cfg = {});

    std::size_t dim() const noexcept override { return inner_->dim(); }
    double fd_step() const noexcept override { return inner_->fd_step(); }

    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;

    /// Indexed entry points for batched callers: `index` must come from
    /// reserve_calls so the serial and batched paths share one index space.
    /// The index is forwarded to the inner problem's indexed hooks, letting
    /// a deterministic fault injector replay the same faults regardless of
    /// evaluation order.
    double g_indexed(std::size_t index,
                     std::span<const double> x) const override;
    double g_grad_indexed(std::size_t index, std::span<const double> x,
                          std::span<double> grad_out) const override;

    /// Parallel batch over the rows of `x`: reserves one call index per row
    /// (row r -> base + r) and evaluates on the global pool. Exceptions
    /// (propagate policy) are rethrown for the lowest faulting row after
    /// the whole batch completed.
    std::vector<double> g_rows(const linalg::Matrix& x) const override;

    /// Reserves `n` consecutive call indices for a batched caller and
    /// returns the first.
    std::size_t reserve_calls(std::size_t n) const noexcept {
        return call_index_.fetch_add(n, std::memory_order_relaxed);
    }

    /// Not for use while a batch is in flight.
    const FaultReport& report() const noexcept { return report_; }
    void reset_report() { report_ = FaultReport{}; }

    /// Complete run state of the guard: the next top-level call index plus
    /// the fault ledger. Checkpoint snapshots persist this so a resumed run
    /// re-enters the exact same call-index space — a deterministic fault
    /// injector keyed on those indices replays the exact same faults, and
    /// the cumulative FaultReport matches an uninterrupted run
    /// count-for-count. Not for use while a batch is in flight.
    struct GuardState {
        std::size_t call_index = 0;
        FaultReport report;
    };
    GuardState export_state() const {
        return {call_index_.load(std::memory_order_relaxed), report_};
    }
    void import_state(const GuardState& state) {
        call_index_.store(state.call_index, std::memory_order_relaxed);
        report_ = state.report;
    }
    const RareEventProblem& inner() const noexcept { return *inner_; }

private:
    /// One evaluation attempt; returns true on a finite result, records the
    /// fault under `record_index` (and sets `kind`/`message`/`eptr`)
    /// otherwise. `inner_index` is what the inner problem sees — retries
    /// probe under synthetic indices while reporting against the top-level
    /// call. `grad_out` empty = value only.
    bool attempt(std::size_t inner_index, std::size_t record_index,
                 std::span<const double> x, std::span<double> grad_out,
                 double& value, FaultKind& kind, std::string& message,
                 std::exception_ptr& eptr) const;
    double resolve(std::size_t index, std::span<const double> x,
                   std::span<double> grad_out, FaultKind kind,
                   std::exception_ptr eptr) const;
    void record(std::size_t record_index, FaultKind kind,
                const std::string& message, std::span<const double> x) const;

    const RareEventProblem* inner_;
    GuardConfig cfg_;
    mutable FaultReport report_;
    mutable std::mutex ledger_mutex_;
    mutable std::atomic<std::size_t> call_index_{0};
};

}  // namespace nofis::estimators
