#include "estimators/monte_carlo.hpp"

#include <algorithm>

#include "rng/normal.hpp"

namespace nofis::estimators {

EstimateResult MonteCarloEstimator::estimate(const RareEventProblem& problem,
                                             rng::Engine& eng) const {
    CountedProblem counted(problem);
    std::size_t hits = 0;
    std::size_t remaining = cfg_.num_samples;
    while (remaining > 0) {
        const std::size_t n = std::min(remaining, cfg_.batch);
        const linalg::Matrix x =
            rng::standard_normal_matrix(eng, n, counted.dim());
        for (double gv : counted.g_rows(x))
            if (gv <= 0.0) ++hits;
        remaining -= n;
    }
    EstimateResult res;
    res.p_hat = static_cast<double>(hits) /
                static_cast<double>(cfg_.num_samples);
    res.calls = counted.calls();
    return res;
}

}  // namespace nofis::estimators
