#include "estimators/adaptive_is.hpp"

#include <algorithm>
#include <cmath>

#include "rng/normal.hpp"

namespace nofis::estimators {

EstimateResult AdaptiveIsEstimator::estimate(const RareEventProblem& raw,
                                             rng::Engine& eng) const {
    CountedProblem problem(raw);
    const std::size_t d = problem.dim();

    // Initial exploratory mixture: components at the origin, inflated sigma,
    // with slight mean jitter so components can specialise to different
    // failure regions.
    std::vector<dist::GaussianMixture::Component> comps;
    for (std::size_t k = 0; k < cfg_.num_components; ++k) {
        dist::GaussianMixture::Component c;
        c.weight = 1.0 / static_cast<double>(cfg_.num_components);
        c.mean.assign(d, 0.0);
        for (double& m : c.mean) m = 0.25 * rng::standard_normal(eng);
        c.sigma.assign(d, cfg_.initial_sigma);
        comps.push_back(std::move(c));
    }
    dist::GaussianMixture proposal(std::move(comps));

    for (std::size_t it = 0; it < cfg_.iterations; ++it) {
        const linalg::Matrix x =
            proposal.sample(eng, cfg_.samples_per_iteration);
        const std::vector<double> gv = problem.g_rows(x);

        // Elite level: rho-quantile of g, floored at the failure threshold.
        std::vector<double> sorted(gv);
        const auto q_idx = static_cast<std::size_t>(
            cfg_.elite_quantile * static_cast<double>(sorted.size() - 1));
        std::nth_element(sorted.begin(),
                         sorted.begin() + static_cast<std::ptrdiff_t>(q_idx),
                         sorted.end());
        const double level = std::max(sorted[q_idx], 0.0);

        // Importance weights of elite samples w.r.t. the zero-variance
        // target p(x)·1[g <= level].
        std::vector<double> w(gv.size(), 0.0);
        bool any = false;
        for (std::size_t r = 0; r < gv.size(); ++r) {
            if (gv[r] > level) continue;
            const auto xr = x.row_span(r);
            const double lw =
                rng::standard_normal_log_pdf(xr) - proposal.log_pdf(xr);
            w[r] = std::exp(std::min(lw, 50.0));
            any = true;
        }
        if (any) proposal.ce_update(x, w, cfg_.sigma_floor);
    }

    // Final IS estimate with the adapted proposal.
    const linalg::Matrix x = proposal.sample(eng, cfg_.final_samples);
    const std::vector<double> gv = problem.g_rows(x);
    double total = 0.0;
    std::size_t hits = 0;
    for (std::size_t r = 0; r < gv.size(); ++r) {
        if (gv[r] > 0.0) continue;
        const auto xr = x.row_span(r);
        total += std::exp(rng::standard_normal_log_pdf(xr) -
                          proposal.log_pdf(xr));
        ++hits;
    }

    EstimateResult res;
    res.p_hat = total / static_cast<double>(cfg_.final_samples);
    res.calls = problem.calls();
    if (hits == 0) {
        // The adapted proposal never reached the failure region: the classic
        // Adapt-IS collapse mode that Table 1 marks with huge errors.
        res.detail = "no failure hits with adapted proposal";
    }
    res.failed = !std::isfinite(res.p_hat);
    return res;
}

}  // namespace nofis::estimators
