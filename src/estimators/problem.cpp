#include "estimators/problem.hpp"

#include <cmath>
#include <exception>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace nofis::estimators {

double RareEventProblem::g_grad(std::span<const double> x,
                                std::span<double> grad_out) const {
    if (x.size() != dim() || grad_out.size() != dim())
        throw std::invalid_argument("g_grad: dimension mismatch");
    const double h = fd_step();
    std::vector<double> probe(x.begin(), x.end());
    for (std::size_t i = 0; i < dim(); ++i) {
        const double orig = probe[i];
        probe[i] = orig + h;
        const double fp = g(probe);
        probe[i] = orig - h;
        const double fm = g(probe);
        probe[i] = orig;
        grad_out[i] = (fp - fm) / (2.0 * h);
    }
    return g(x);
}

std::vector<double> RareEventProblem::g_rows(const linalg::Matrix& x) const {
    if (x.cols() != dim())
        throw std::invalid_argument("g_rows: dimension mismatch");
    std::vector<double> out(x.rows());
    std::vector<std::exception_ptr> errors(x.rows());
    parallel::parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            try {
                out[r] = g(x.row_span(r));
            } catch (...) {
                errors[r] = std::current_exception();
            }
        }
    });
    parallel::rethrow_first(errors);
    return out;
}

std::vector<double> CountedProblem::g_rows(const linalg::Matrix& x) {
    if (x.cols() != dim())
        throw std::invalid_argument("g_rows: dimension mismatch");
    calls_.fetch_add(x.rows(), std::memory_order_relaxed);
    return p_->g_rows(x);
}

std::vector<double> CountedProblem::g_grad_rows(const linalg::Matrix& x,
                                                linalg::Matrix& grad_out) {
    if (x.cols() != dim())
        throw std::invalid_argument("g_grad_rows: dimension mismatch");
    grad_out = linalg::Matrix(x.rows(), x.cols());
    std::vector<double> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r)
        out[r] = g_grad(x.row_span(r), grad_out.row_span(r));
    return out;
}

double log_error(double p_hat, double golden, double floor) {
    if (!(golden > 0.0))
        throw std::invalid_argument("log_error: golden must be positive");
    const double clipped = std::max(p_hat, floor);
    return std::abs(std::log(clipped) - std::log(golden));
}

}  // namespace nofis::estimators
