#pragma once

#include <vector>

#include "estimators/problem.hpp"

namespace nofis::estimators {

/// Line sampling (Koutsourelakis et al. 2004; the active-learning variant is
/// the paper's oscillator reference [18]).
///
/// Picks an "important direction" α pointing into the failure region, then
/// for each of `num_lines` random lines { x_⊥ + c·α : c ∈ ℝ } (x_⊥ drawn
/// from p restricted to α's orthogonal complement) root-solves
/// g(x_⊥ + c·α) = 0 along the line and accumulates the exact 1-D Gaussian
/// tail 1 − Φ(c*). The estimator is exact for affine limit states and very
/// efficient whenever the failure region is a (possibly curved) half-space;
/// it degrades on strongly multimodal regions — a useful contrast to NOFIS.
class LineSamplingEstimator final : public Estimator {
public:
    struct Config {
        std::size_t num_lines = 100;
        /// Pilot draws used to locate the important direction (the mean of
        /// the failing pilot samples; falls back to -∇g(0) if none fail at
        /// inflated sigma).
        std::size_t pilot_samples = 300;
        double pilot_sigma = 3.0;
        /// Max g-calls per line during root bracketing/refinement.
        std::size_t max_line_evals = 12;
        /// Search range along the line (in sigma units).
        double c_max = 10.0;
    };

    explicit LineSamplingEstimator(Config cfg) : cfg_(cfg) {}

    std::string name() const override { return "LineSampling"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
