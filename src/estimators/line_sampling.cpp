#include "estimators/line_sampling.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "rng/normal.hpp"

namespace nofis::estimators {

namespace {

void normalise(std::vector<double>& v) {
    const double n = linalg::norm2(v);
    if (n > 0.0)
        for (double& x : v) x /= n;
}

}  // namespace

EstimateResult LineSamplingEstimator::estimate(const RareEventProblem& raw,
                                               rng::Engine& eng) const {
    CountedProblem problem(raw);
    const std::size_t d = problem.dim();

    // --- Step 1: important direction ≈ the minimum-norm failure point
    // (the "design point" of FORM); approximated by the smallest-norm
    // failing samples of an inflated-sigma pilot.
    std::vector<double> alpha(d, 0.0);
    {
        std::vector<double> x(d);
        std::vector<std::pair<double, std::vector<double>>> fails_by_norm;
        for (std::size_t i = 0; i < cfg_.pilot_samples; ++i) {
            rng::fill_standard_normal(eng, x);
            for (double& v : x) v *= cfg_.pilot_sigma;
            if (problem.g(x) <= 0.0)
                fails_by_norm.emplace_back(linalg::norm2(x), x);
        }
        std::sort(fails_by_norm.begin(), fails_by_norm.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        const std::size_t keep =
            std::min<std::size_t>(3, fails_by_norm.size());
        for (std::size_t k = 0; k < keep; ++k) {
            // Unit-direction average so a far outlier cannot dominate.
            const auto& pt = fails_by_norm[k].second;
            const double n = fails_by_norm[k].first;
            for (std::size_t c = 0; c < d; ++c) alpha[c] += pt[c] / n;
        }
        if (keep == 0) {
            // Fall back to the descent direction of g at the origin (one
            // counted gradient call).
            std::vector<double> grad(d);
            problem.g_grad(std::vector<double>(d, 0.0), grad);
            for (std::size_t c = 0; c < d; ++c) alpha[c] = -grad[c];
        }
        normalise(alpha);
        if (linalg::norm2(alpha) == 0.0) {
            EstimateResult res;
            res.failed = true;
            res.detail = "no important direction found";
            res.calls = problem.calls();
            return res;
        }
    }

    // --- Step 2: per-line 1-D tail probabilities.
    double total = 0.0;
    std::size_t solved = 0;
    std::vector<double> x_perp(d);
    std::vector<double> probe(d);
    for (std::size_t line = 0; line < cfg_.num_lines; ++line) {
        // x_perp ~ p projected onto the complement of alpha.
        rng::fill_standard_normal(eng, x_perp);
        const double along = linalg::dot(x_perp, alpha);
        for (std::size_t c = 0; c < d; ++c) x_perp[c] -= along * alpha[c];

        const auto g_at = [&](double c) {
            for (std::size_t k = 0; k < d; ++k)
                probe[k] = x_perp[k] + c * alpha[k];
            return problem.g(probe);
        };

        // Bracket the root: march outward until g flips sign.
        std::size_t evals = 0;
        double c_lo = 0.0;
        double g_lo = g_at(0.0);
        ++evals;
        if (g_lo <= 0.0) {
            // The line starts inside Ω: the tail covers c >= 0 entirely
            // (treat the whole positive half-line as failing; exact for
            // star-shaped regions around alpha).
            total += 1.0 - rng::normal_cdf(0.0);
            ++solved;
            continue;
        }
        double c_hi = 1.0;
        double g_hi = g_at(c_hi);
        ++evals;
        while (g_hi > 0.0 && c_hi < cfg_.c_max &&
               evals < cfg_.max_line_evals) {
            c_lo = c_hi;
            g_lo = g_hi;
            c_hi *= 1.7;
            g_hi = g_at(c_hi);
            ++evals;
        }
        if (g_hi > 0.0) continue;  // no failure on this line within range

        // Regula falsi refinement.
        double root = c_hi;
        while (evals < cfg_.max_line_evals) {
            root = c_lo + (c_hi - c_lo) * g_lo / (g_lo - g_hi);
            const double g_mid = g_at(root);
            ++evals;
            if (std::abs(g_mid) < 1e-12) break;
            if (g_mid > 0.0) {
                c_lo = root;
                g_lo = g_mid;
            } else {
                c_hi = root;
                g_hi = g_mid;
            }
        }
        total += 1.0 - rng::normal_cdf(root);
        ++solved;
    }

    EstimateResult res;
    res.p_hat = total / static_cast<double>(cfg_.num_lines);
    res.calls = problem.calls();
    res.failed = solved == 0;
    if (res.failed) res.detail = "no line reached the failure region";
    return res;
}

}  // namespace nofis::estimators
