#pragma once

#include "estimators/problem.hpp"

namespace nofis::estimators {

/// Plain Monte Carlo: p_hat = (1/N) Σ 1[g(x_n) <= 0], x_n ~ p.
///
/// The reference baseline of Table 1; at rare-event budgets it usually
/// returns 0 — exactly the failure mode the paper's introduction motivates.
class MonteCarloEstimator final : public Estimator {
public:
    struct Config {
        std::size_t num_samples = 10000;
        /// Evaluate in chunks of this many rows (memory bound only).
        std::size_t batch = 4096;
    };

    explicit MonteCarloEstimator(Config cfg) : cfg_(cfg) {}

    std::string name() const override { return "MC"; }
    EstimateResult estimate(const RareEventProblem& problem,
                            rng::Engine& eng) const override;

private:
    Config cfg_;
};

}  // namespace nofis::estimators
