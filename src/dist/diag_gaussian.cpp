#include "dist/diag_gaussian.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::dist {

namespace {
constexpr double kLog2Pi = 1.8378770664093454835606594728112;
}

DiagGaussian::DiagGaussian(std::vector<double> mean, std::vector<double> sigma)
    : mean_(std::move(mean)), sigma_(std::move(sigma)) {
    if (mean_.empty() || mean_.size() != sigma_.size())
        throw std::invalid_argument("DiagGaussian: mean/sigma size mismatch");
    log_norm_ = -0.5 * static_cast<double>(dim()) * kLog2Pi;
    for (double s : sigma_) {
        if (!(s > 0.0))
            throw std::invalid_argument("DiagGaussian: sigma must be positive");
        log_norm_ -= std::log(s);
    }
}

DiagGaussian DiagGaussian::isotropic(std::size_t dim, double s) {
    return {std::vector<double>(dim, 0.0), std::vector<double>(dim, s)};
}

linalg::Matrix DiagGaussian::sample(rng::Engine& eng, std::size_t n) const {
    linalg::Matrix m = rng::standard_normal_matrix(eng, n, dim());
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < dim(); ++c)
            m(r, c) = mean_[c] + sigma_[c] * m(r, c);
    return m;
}

double DiagGaussian::log_pdf(std::span<const double> x) const {
    if (x.size() != dim())
        throw std::invalid_argument("DiagGaussian::log_pdf: dim mismatch");
    double quad = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) {
        const double z = (x[i] - mean_[i]) / sigma_[i];
        quad += z * z;
    }
    return log_norm_ - 0.5 * quad;
}

}  // namespace nofis::dist
