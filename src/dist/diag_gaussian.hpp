#pragma once

#include <vector>

#include "dist/distribution.hpp"

namespace nofis::dist {

/// Gaussian with diagonal covariance, N(mu, diag(sigma^2)).
///
/// Used as the per-component building block of the Adapt-IS mixture and as
/// the scaled-sigma proposal in SSS (mu = 0, sigma = s·1).
class DiagGaussian final : public Distribution {
public:
    DiagGaussian(std::vector<double> mean, std::vector<double> sigma);

    /// Isotropic convenience: N(0, s² I) in `dim` dimensions.
    static DiagGaussian isotropic(std::size_t dim, double s);

    std::size_t dim() const noexcept override { return mean_.size(); }
    linalg::Matrix sample(rng::Engine& eng, std::size_t n) const override;
    double log_pdf(std::span<const double> x) const override;

    std::span<const double> mean() const noexcept { return mean_; }
    std::span<const double> sigma() const noexcept { return sigma_; }

private:
    std::vector<double> mean_;
    std::vector<double> sigma_;
    double log_norm_ = 0.0;  // cached -(D/2)log(2π) - Σ log σ_i
};

}  // namespace nofis::dist
