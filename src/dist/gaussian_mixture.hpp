#pragma once

#include <vector>

#include "dist/diag_gaussian.hpp"
#include "dist/distribution.hpp"

namespace nofis::dist {

/// Finite mixture of diagonal Gaussians with exact sampling / log-pdf.
///
/// This is the classic parametric proposal family for adaptive importance
/// sampling [Kanj et al. 2006; Shi et al. 2018]; the cross-entropy update
/// (`ce_update`) re-fits weights, means, and sigmas to weighted elite
/// samples — one iteration of the Adapt-IS baseline.
class GaussianMixture final : public Distribution {
public:
    struct Component {
        double weight;
        std::vector<double> mean;
        std::vector<double> sigma;
    };

    explicit GaussianMixture(std::vector<Component> components);

    /// `k` components at the origin with unit sigma, equal weights.
    static GaussianMixture standard(std::size_t dim, std::size_t k);

    std::size_t dim() const noexcept override { return dim_; }
    std::size_t num_components() const noexcept { return comps_.size(); }
    const Component& component(std::size_t i) const { return comps_.at(i); }

    linalg::Matrix sample(rng::Engine& eng, std::size_t n) const override;
    double log_pdf(std::span<const double> x) const override;

    /// Cross-entropy re-fit: given samples (rows of x) with non-negative
    /// importance weights w, performs one weighted EM-style update of all
    /// component parameters. Sigmas are floored at `sigma_floor` to keep the
    /// proposal's support covering p (unbiasedness requirement of Eq. 2).
    void ce_update(const linalg::Matrix& x, std::span<const double> w,
                   double sigma_floor = 0.05);

private:
    void renormalise();

    std::size_t dim_ = 0;
    std::vector<Component> comps_;
};

}  // namespace nofis::dist
