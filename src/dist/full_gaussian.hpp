#pragma once

#include <vector>

#include "dist/distribution.hpp"
#include "linalg/cholesky.hpp"

namespace nofis::dist {

/// Gaussian with full covariance, N(mu, Σ), parameterised via the Cholesky
/// factor of Σ. Sampling is x = mu + L z; log-pdf uses the cached factor.
///
/// Used by Adapt-IS when the failure region is a tilted slab and a diagonal
/// proposal would be badly conditioned.
class FullGaussian final : public Distribution {
public:
    /// Throws when `cov` is not symmetric positive definite.
    FullGaussian(std::vector<double> mean, const linalg::Matrix& cov);

    std::size_t dim() const noexcept override { return mean_.size(); }
    linalg::Matrix sample(rng::Engine& eng, std::size_t n) const override;
    double log_pdf(std::span<const double> x) const override;

    std::span<const double> mean() const noexcept { return mean_; }

private:
    std::vector<double> mean_;
    linalg::Cholesky chol_;
    double log_norm_ = 0.0;
};

}  // namespace nofis::dist
