#pragma once

#include <memory>
#include <span>

#include "linalg/matrix.hpp"
#include "rng/engine.hpp"

namespace nofis::dist {

/// Abstract D-dimensional continuous distribution with exact sampling and
/// exact log-density evaluation — the contract every importance-sampling
/// proposal in this library must satisfy (Eq. 2 of the paper needs both).
class Distribution {
public:
    virtual ~Distribution() = default;

    /// Dimensionality D.
    virtual std::size_t dim() const noexcept = 0;

    /// Draws `n` i.i.d. samples, one per row -> (n x D).
    virtual linalg::Matrix sample(rng::Engine& eng, std::size_t n) const = 0;

    /// log density at a single point x (x.size() == D).
    virtual double log_pdf(std::span<const double> x) const = 0;

    /// log density of every row of `x` -> length x.rows().
    std::vector<double> log_pdf_rows(const linalg::Matrix& x) const;
};

}  // namespace nofis::dist
