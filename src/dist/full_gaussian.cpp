#include "dist/full_gaussian.hpp"

#include <cmath>
#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::dist {

namespace {
constexpr double kLog2Pi = 1.8378770664093454835606594728112;
}

FullGaussian::FullGaussian(std::vector<double> mean, const linalg::Matrix& cov)
    : mean_(std::move(mean)), chol_(cov) {
    if (mean_.size() != cov.rows())
        throw std::invalid_argument("FullGaussian: mean/cov size mismatch");
    log_norm_ = -0.5 * (static_cast<double>(dim()) * kLog2Pi +
                        chol_.log_determinant());
}

linalg::Matrix FullGaussian::sample(rng::Engine& eng, std::size_t n) const {
    linalg::Matrix z = rng::standard_normal_matrix(eng, n, dim());
    linalg::Matrix out(n, dim());
    std::vector<double> zi(dim());
    for (std::size_t r = 0; r < n; ++r) {
        const auto row = z.row_span(r);
        std::copy(row.begin(), row.end(), zi.begin());
        const auto x = chol_.multiply_lower(zi);
        for (std::size_t c = 0; c < dim(); ++c) out(r, c) = mean_[c] + x[c];
    }
    return out;
}

double FullGaussian::log_pdf(std::span<const double> x) const {
    if (x.size() != dim())
        throw std::invalid_argument("FullGaussian::log_pdf: dim mismatch");
    std::vector<double> centred(dim());
    for (std::size_t i = 0; i < dim(); ++i) centred[i] = x[i] - mean_[i];
    // Quadratic form (x-mu)ᵀ Σ⁻¹ (x-mu) = ||L⁻¹(x-mu)||².
    const auto y = chol_.solve_lower(centred);
    double quad = 0.0;
    for (double v : y) quad += v * v;
    return log_norm_ - 0.5 * quad;
}

}  // namespace nofis::dist
