#include "dist/standard_normal.hpp"

#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::dist {

std::vector<double> Distribution::log_pdf_rows(const linalg::Matrix& x) const {
    if (x.cols() != dim())
        throw std::invalid_argument("log_pdf_rows: dimension mismatch");
    std::vector<double> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = log_pdf(x.row_span(r));
    return out;
}

StandardNormal::StandardNormal(std::size_t dim) : dim_(dim) {
    if (dim == 0) throw std::invalid_argument("StandardNormal: dim must be > 0");
}

linalg::Matrix StandardNormal::sample(rng::Engine& eng, std::size_t n) const {
    return rng::standard_normal_matrix(eng, n, dim_);
}

double StandardNormal::log_pdf(std::span<const double> x) const {
    if (x.size() != dim_)
        throw std::invalid_argument("StandardNormal::log_pdf: dim mismatch");
    return rng::standard_normal_log_pdf(x);
}

}  // namespace nofis::dist
