#pragma once

#include "dist/distribution.hpp"

namespace nofis::dist {

/// D-dimensional standard normal N(0, I) — the paper's data-generating
/// distribution p for all test cases and the base distribution q0 of the
/// normalizing flow.
class StandardNormal final : public Distribution {
public:
    explicit StandardNormal(std::size_t dim);

    std::size_t dim() const noexcept override { return dim_; }
    linalg::Matrix sample(rng::Engine& eng, std::size_t n) const override;
    double log_pdf(std::span<const double> x) const override;

private:
    std::size_t dim_;
};

}  // namespace nofis::dist
