#include "dist/gaussian_mixture.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::dist {

namespace {
constexpr double kLog2Pi = 1.8378770664093454835606594728112;

double component_log_pdf(const GaussianMixture::Component& c,
                         std::span<const double> x) {
    double quad = 0.0;
    double log_norm = -0.5 * static_cast<double>(x.size()) * kLog2Pi;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double z = (x[i] - c.mean[i]) / c.sigma[i];
        quad += z * z;
        log_norm -= std::log(c.sigma[i]);
    }
    return log_norm - 0.5 * quad;
}
}  // namespace

GaussianMixture::GaussianMixture(std::vector<Component> components)
    : comps_(std::move(components)) {
    if (comps_.empty())
        throw std::invalid_argument("GaussianMixture: needs >= 1 component");
    dim_ = comps_.front().mean.size();
    for (const auto& c : comps_) {
        if (c.mean.size() != dim_ || c.sigma.size() != dim_)
            throw std::invalid_argument("GaussianMixture: ragged components");
        if (c.weight < 0.0)
            throw std::invalid_argument("GaussianMixture: negative weight");
        for (double s : c.sigma)
            if (!(s > 0.0))
                throw std::invalid_argument("GaussianMixture: sigma <= 0");
    }
    renormalise();
}

GaussianMixture GaussianMixture::standard(std::size_t dim, std::size_t k) {
    std::vector<Component> comps(
        k, Component{1.0 / static_cast<double>(k), std::vector<double>(dim, 0.0),
                     std::vector<double>(dim, 1.0)});
    return GaussianMixture(std::move(comps));
}

void GaussianMixture::renormalise() {
    double total = 0.0;
    for (const auto& c : comps_) total += c.weight;
    if (total <= 0.0)
        throw std::invalid_argument("GaussianMixture: weights sum to zero");
    for (auto& c : comps_) c.weight /= total;
}

linalg::Matrix GaussianMixture::sample(rng::Engine& eng, std::size_t n) const {
    linalg::Matrix out(n, dim_);
    for (std::size_t r = 0; r < n; ++r) {
        // Categorical draw over component weights.
        double u = eng.uniform();
        std::size_t k = comps_.size() - 1;
        for (std::size_t i = 0; i < comps_.size(); ++i) {
            if (u < comps_[i].weight) {
                k = i;
                break;
            }
            u -= comps_[i].weight;
        }
        const auto& c = comps_[k];
        for (std::size_t d = 0; d < dim_; ++d)
            out(r, d) = c.mean[d] + c.sigma[d] * rng::standard_normal(eng);
    }
    return out;
}

double GaussianMixture::log_pdf(std::span<const double> x) const {
    if (x.size() != dim_)
        throw std::invalid_argument("GaussianMixture::log_pdf: dim mismatch");
    for (double v : x)
        if (!std::isfinite(v))
            throw std::invalid_argument(
                "GaussianMixture::log_pdf: non-finite input");
    // log-sum-exp over components for numerical stability.
    double max_term = -std::numeric_limits<double>::infinity();
    std::vector<double> terms(comps_.size());
    for (std::size_t i = 0; i < comps_.size(); ++i) {
        terms[i] = std::log(comps_[i].weight) + component_log_pdf(comps_[i], x);
        max_term = std::max(max_term, terms[i]);
    }
    if (!std::isfinite(max_term)) return max_term;
    double s = 0.0;
    for (double t : terms) s += std::exp(t - max_term);
    return max_term + std::log(s);
}

void GaussianMixture::ce_update(const linalg::Matrix& x,
                                std::span<const double> w,
                                double sigma_floor) {
    if (x.cols() != dim_ || x.rows() != w.size())
        throw std::invalid_argument("GaussianMixture::ce_update: shape mismatch");
    const std::size_t n = x.rows();
    const std::size_t k = comps_.size();

    // E-step: responsibilities r_ik ∝ w_i * π_k N(x_i; μ_k, σ_k).
    linalg::Matrix resp(n, k);
    for (std::size_t i = 0; i < n; ++i) {
        const auto xi = x.row_span(i);
        double max_term = -std::numeric_limits<double>::infinity();
        std::vector<double> lp(k);
        for (std::size_t j = 0; j < k; ++j) {
            lp[j] = std::log(comps_[j].weight) + component_log_pdf(comps_[j], xi);
            max_term = std::max(max_term, lp[j]);
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < k; ++j) denom += std::exp(lp[j] - max_term);
        for (std::size_t j = 0; j < k; ++j)
            resp(i, j) = w[i] * std::exp(lp[j] - max_term) / denom;
    }

    // M-step: weighted means / sigmas / weights.
    double total_w = 0.0;
    for (std::size_t i = 0; i < n; ++i) total_w += w[i];
    if (total_w <= 0.0) return;  // nothing informative; keep current proposal

    for (std::size_t j = 0; j < k; ++j) {
        double nj = 0.0;
        for (std::size_t i = 0; i < n; ++i) nj += resp(i, j);
        if (nj <= 1e-300) {
            // A starved component keeps its parameters but loses weight.
            comps_[j].weight = 1e-6;
            continue;
        }
        auto& c = comps_[j];
        c.weight = nj / total_w;
        for (std::size_t d = 0; d < dim_; ++d) {
            double m = 0.0;
            for (std::size_t i = 0; i < n; ++i) m += resp(i, j) * x(i, d);
            m /= nj;
            double v = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double dx = x(i, d) - m;
                v += resp(i, j) * dx * dx;
            }
            v /= nj;
            c.mean[d] = m;
            c.sigma[d] = std::max(std::sqrt(v), sigma_floor);
        }
    }
    renormalise();
}

}  // namespace nofis::dist
