#pragma once

#include <memory>
#include <string>
#include <vector>

#include "testcases/testcase.hpp"

namespace nofis::testcases {

/// Table-1 order of the ten test cases.
std::vector<std::string> all_case_names();

/// Extension cases beyond the paper's Table 1 (currently: Sram6T, the 6T
/// SRAM read-SNM case built on the nonlinear Newton solver).
std::vector<std::string> extension_case_names();

/// Constructs a test case by name; throws std::invalid_argument for unknown
/// names. Note: DeepNet62 trains its base network on construction (~1 s);
/// callers running repeated estimates should construct once and reuse.
std::unique_ptr<TestCase> make_case(const std::string& name);

/// Constructs every Table-1 case, in order.
std::vector<std::unique_ptr<TestCase>> make_all_cases();

}  // namespace nofis::testcases
