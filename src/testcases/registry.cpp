#include "testcases/registry.hpp"

#include <stdexcept>

#include "testcases/circuit_cases.hpp"
#include "testcases/deepnet62.hpp"
#include "testcases/oscillator.hpp"
#include "testcases/sram_case.hpp"
#include "testcases/synthetic.hpp"

namespace nofis::testcases {

std::vector<std::string> all_case_names() {
    return {"Leaf",  "Cube",       "Rosen",   "Levy",    "Powell",
            "Opamp", "Oscillator", "ChargePump", "YBranch", "DeepNet62"};
}

std::vector<std::string> extension_case_names() { return {"Sram6T"}; }

std::unique_ptr<TestCase> make_case(const std::string& name) {
    if (name == "Sram6T") return std::make_unique<SramCase>();
    if (name == "Leaf") return std::make_unique<LeafCase>();
    if (name == "Cube") return std::make_unique<CubeCase>();
    if (name == "Rosen") return std::make_unique<RosenCase>();
    if (name == "Levy") return std::make_unique<LevyCase>();
    if (name == "Powell") return std::make_unique<PowellCase>();
    if (name == "Opamp") return std::make_unique<OpampCase>();
    if (name == "Oscillator") return std::make_unique<OscillatorCase>();
    if (name == "ChargePump") return std::make_unique<ChargePumpCase>();
    if (name == "YBranch") return std::make_unique<YBranchCase>();
    if (name == "DeepNet62") return std::make_unique<DeepNet62Case>();
    throw std::invalid_argument("make_case: unknown test case '" + name + "'");
}

std::vector<std::unique_ptr<TestCase>> make_all_cases() {
    std::vector<std::unique_ptr<TestCase>> out;
    for (const auto& name : all_case_names()) out.push_back(make_case(name));
    return out;
}

}  // namespace nofis::testcases
