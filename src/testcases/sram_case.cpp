#include "testcases/sram_case.hpp"

namespace nofis::testcases {

// Calibrated with tools/calibrate (deep SUS; recipe in EXPERIMENTS.md).
double SramCase::golden_pr() const noexcept { return 5.4e-6; }

double SramCase::g(std::span<const double> x) const {
    return model_.static_noise_margin(x) - kSnmMin;
}

NofisBudget SramCase::nofis_budget() const {
    NofisBudget b;
    // Margins above the 40 mV spec, decade-ish spaced from calibration.
    b.levels = {0.110, 0.0755, 0.0455, 0.0197, 0.0086, 0.0};
    b.epochs = 67;
    b.samples_per_epoch = 50;
    b.n_is = 1900;  // 6*67*50 + 1,900 = 22,000 calls
    b.tau = 300.0;  // g is in volts (≈0.1 scale)
    return b;
}

BaselineBudget SramCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 50000;
    b.sir_train_samples = 22000;
    b.sus_samples_per_level = 3700;
    b.sus_max_levels = 9;
    b.suc_samples_per_level = 4000;
    b.suc_max_levels = 9;
    b.sss_total_samples = 22000;
    b.ais_iterations = 4;
    b.ais_samples_per_iteration = 4000;
    b.ais_final_samples = 6000;
    return b;
}

}  // namespace nofis::testcases
