#include "testcases/deepnet62.hpp"

#include <cmath>
#include <stdexcept>

#include "autodiff/ops.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"
#include "rng/normal.hpp"

namespace nofis::testcases {

namespace {

constexpr std::size_t kInput = 8;
constexpr std::size_t kHidden = 24;
constexpr std::size_t kEvalPoints = 256;
constexpr double kSoftness = 3.0;   ///< margin sharpness of the soft accuracy
constexpr double kSigma = 0.045;    ///< per-group perturbation strength
// Threshold / golden calibrated offline (tools/calibrate; EXPERIMENTS.md).
constexpr double kThreshold = 0.89;
constexpr double kGolden = 5.6e-5;
constexpr std::uint64_t kBuildSeed = 20240623;  // DAC'24 opening day

/// The deterministic synthetic task: a smooth nonlinear decision rule.
double task_label_sign(std::span<const double> f) {
    const double v = f[0] + f[1] * f[1] - f[2] + 0.8 * std::sin(2.0 * f[3]) +
                     f[4] * f[5] - 0.4 * f[6] * f[7] - 0.5;
    return v > 0.0 ? 1.0 : -1.0;
}

double leaky(double v) { return v > 0.0 ? v : 0.01 * v; }

}  // namespace

DeepNet62Case::DeepNet62Case() {
    rng::Engine eng(kBuildSeed);

    // Frozen evaluation set.
    eval_x_ = rng::standard_normal_matrix(eng, kEvalPoints, kInput);
    eval_sign_ = linalg::Matrix(kEvalPoints, 1);
    for (std::size_t r = 0; r < kEvalPoints; ++r)
        eval_sign_(r, 0) = task_label_sign(eval_x_.row_span(r));

    // Train the base network once on a larger deterministic training set.
    const std::size_t n_train = 2048;
    linalg::Matrix train_x = rng::standard_normal_matrix(eng, n_train, kInput);
    linalg::Matrix train_y(n_train, 1);
    for (std::size_t r = 0; r < n_train; ++r)
        train_y(r, 0) = task_label_sign(train_x.row_span(r)) > 0.0 ? 1.0 : 0.0;

    nn::MLP net({kInput, kHidden, kHidden, kHidden, 1},
                nn::Activation::kLeakyRelu, eng);
    nn::TrainConfig tc;
    tc.epochs = 120;
    tc.batch_size = 128;
    tc.learning_rate = 3e-3;
    nn::fit_classifier(net, train_x, train_y, tc, eng);

    // Freeze the trained parameters as plain matrices.
    const auto params = net.params();  // [W1, b1, W2, b2, W3, b3, W4, b4]
    for (std::size_t i = 0; i < params.size(); i += 2) {
        weights_.push_back(params[i].value());
        biases_.push_back(params[i + 1].value());
    }

    // 62 perturbation groups: W1 rows (8) + W2 rows (24) + W3 rows (24) +
    // W4 (24x1) in 6 slices of 4.
    for (std::size_t r = 0; r < kInput; ++r)
        groups_.push_back({0, r * kHidden, (r + 1) * kHidden});
    for (std::size_t r = 0; r < kHidden; ++r)
        groups_.push_back({1, r * kHidden, (r + 1) * kHidden});
    for (std::size_t r = 0; r < kHidden; ++r)
        groups_.push_back({2, r * kHidden, (r + 1) * kHidden});
    for (std::size_t s = 0; s < 6; ++s)
        groups_.push_back({3, s * 4, (s + 1) * 4});
    if (groups_.size() != kNumGroups)
        throw std::logic_error("DeepNet62Case: group bookkeeping broke");

    threshold_ = kThreshold;
    sigma_ = kSigma;
}

std::vector<linalg::Matrix> DeepNet62Case::perturbed_weights(
    std::span<const double> x) const {
    std::vector<linalg::Matrix> w = weights_;
    for (std::size_t k = 0; k < groups_.size(); ++k) {
        const auto& grp = groups_[k];
        const double scale = 1.0 + sigma_ * x[k];
        auto flat = w[grp.layer].flat();
        for (std::size_t i = grp.begin; i < grp.end; ++i) flat[i] *= scale;
    }
    return w;
}

double DeepNet62Case::metric_from_weights(
    const std::vector<linalg::Matrix>& w) const {
    // Value-only forward pass: h = leaky(h W + b), final layer linear.
    linalg::Matrix h = eval_x_;
    for (std::size_t l = 0; l < w.size(); ++l) {
        h = h.matmul(w[l]).add_row_broadcast(biases_[l]);
        if (l + 1 < w.size()) h = h.map(leaky);
    }
    // Soft accuracy: mean sigmoid(κ · sign · logit).
    double acc = 0.0;
    for (std::size_t r = 0; r < kEvalPoints; ++r)
        acc += 1.0 /
               (1.0 + std::exp(-kSoftness * eval_sign_(r, 0) * h(r, 0)));
    return acc / static_cast<double>(kEvalPoints);
}

double DeepNet62Case::nominal_metric() const {
    return metric_from_weights(weights_);
}

double DeepNet62Case::golden_pr() const noexcept { return kGolden; }

double DeepNet62Case::g(std::span<const double> x) const {
    if (x.size() != kNumGroups)
        throw std::invalid_argument("DeepNet62Case: dimension mismatch");
    return metric_from_weights(perturbed_weights(x)) - threshold_;
}

double DeepNet62Case::g_grad(std::span<const double> x,
                             std::span<double> grad_out) const {
    if (x.size() != kNumGroups || grad_out.size() != kNumGroups)
        throw std::invalid_argument("DeepNet62Case: dimension mismatch");
    using autodiff::Var;

    // Graph forward with the perturbed weights as differentiable leaves.
    const auto w_values = perturbed_weights(x);
    std::vector<Var> w_vars;
    w_vars.reserve(w_values.size());
    for (const auto& w : w_values) w_vars.emplace_back(w, true);

    Var h(eval_x_);
    for (std::size_t l = 0; l < w_vars.size(); ++l) {
        h = autodiff::add_bias(autodiff::matmul(h, w_vars[l]),
                               Var(biases_[l]));
        if (l + 1 < w_vars.size()) h = autodiff::leaky_relu_v(h);
    }
    // metric = mean sigmoid(κ · sign ⊙ logits)
    Var margin = autodiff::hadamard_const(h, eval_sign_ * kSoftness);
    Var metric = autodiff::mean(autodiff::sigmoid_v(margin));
    metric.backward();

    // Chain rule onto x: W(x) = W0 ⊙ (1 + σ x_group) element-block-wise, so
    // ∂metric/∂x_k = σ Σ_{i∈group k} W0_i · (∂metric/∂W_i).
    for (std::size_t k = 0; k < groups_.size(); ++k) {
        const auto& grp = groups_[k];
        const auto base = weights_[grp.layer].flat();
        const auto grad = w_vars[grp.layer].grad().flat();
        double s = 0.0;
        for (std::size_t i = grp.begin; i < grp.end; ++i)
            s += base[i] * grad[i];
        grad_out[k] = sigma_ * s;
    }
    return metric.value()(0, 0) - threshold_;
}

NofisBudget DeepNet62Case::nofis_budget() const {
    NofisBudget b;
    // Paper: 18K total calls.
    b.levels = {0.037, 0.022, 0.012, 0.0045, 0.0};  // soft-accuracy margins
    b.epochs = 32;
    b.samples_per_epoch = 100;
    b.n_is = 2000;  // 5*32*100 + 2000 = 18,000
    b.tau = 300.0;
    return b;
}

BaselineBudget DeepNet62Case::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 20000;
    b.sir_train_samples = 20000;
    b.sus_samples_per_level = 3300;  // ~20K over ~5 levels
    b.sus_max_levels = 8;
    b.suc_samples_per_level = 3800;  // ~23K
    b.suc_max_levels = 8;
    b.sss_total_samples = 20000;
    b.ais_iterations = 4;
    b.ais_samples_per_iteration = 3500;
    b.ais_final_samples = 6000;      // ~20K
    return b;
}

}  // namespace nofis::testcases
