#include "testcases/fault_injector.hpp"

#include <chrono>
#include <limits>

#include "linalg/solver_error.hpp"

namespace nofis::testcases {

namespace {

/// splitmix64 finaliser — the same mixer rng::Engine seeds from, reused here
/// to turn (seed, call index) into an i.i.d.-quality uniform without any
/// mutable generator state.
std::uint64_t mix64(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double hash_uniform(std::uint64_t seed, std::uint64_t index) noexcept {
    const std::uint64_t bits = mix64(mix64(seed) ^ index);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const estimators::RareEventProblem& inner,
                             FaultInjectorConfig cfg)
    : inner_(&inner), cfg_(cfg) {}

void FaultInjector::reset_counters() noexcept {
    calls_ = nan_ = thrown_singular_ = thrown_nonconv_ = inf_ = latency_ = 0;
}

FaultInjector::Inject FaultInjector::decide(std::size_t index) const noexcept {
    if (index >= cfg_.nan_burst_begin && index < cfg_.nan_burst_end)
        return Inject::kNan;
    const double u = hash_uniform(cfg_.seed, index);
    double edge = cfg_.nan_rate;
    if (u < edge) return Inject::kNan;
    edge += cfg_.throw_rate;
    if (u < edge) return Inject::kThrow;
    edge += cfg_.inf_rate;
    if (u < edge) return Inject::kInf;
    edge += cfg_.latency_rate;
    if (u < edge) return Inject::kLatency;
    return Inject::kNone;
}

void FaultInjector::throw_fault(std::size_t index) const {
    // Alternate the structured kinds so classification paths both get
    // exercised; odd/even split keeps the ledger deterministic.
    if (index % 2 == 0) {
        ++thrown_singular_;
        throw SingularMatrixError("FaultInjector: injected singular matrix");
    }
    ++thrown_nonconv_;
    throw NonConvergenceError("FaultInjector: injected non-convergence");
}

double FaultInjector::g(std::span<const double> x) const {
    const std::size_t index = calls_++;
    switch (decide(index)) {
        case Inject::kNan:
            ++nan_;
            return std::numeric_limits<double>::quiet_NaN();
        case Inject::kThrow:
            throw_fault(index);
        case Inject::kInf:
            ++inf_;
            return std::numeric_limits<double>::infinity();
        case Inject::kLatency: {
            ++latency_;
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<long long>(cfg_.latency_us));
            while (std::chrono::steady_clock::now() < until) {
            }
            break;
        }
        case Inject::kNone:
            break;
    }
    return inner_->g(x);
}

double FaultInjector::g_grad(std::span<const double> x,
                             std::span<double> grad_out) const {
    if (!cfg_.affect_grad) return inner_->g_grad(x, grad_out);
    const std::size_t index = calls_++;
    switch (decide(index)) {
        case Inject::kNan: {
            ++nan_;
            const double v = inner_->g_grad(x, grad_out);
            if (!grad_out.empty())
                grad_out[0] = std::numeric_limits<double>::quiet_NaN();
            return v;
        }
        case Inject::kThrow:
            throw_fault(index);
        case Inject::kInf:
            ++inf_;
            inner_->g_grad(x, grad_out);
            return std::numeric_limits<double>::infinity();
        case Inject::kLatency:
            ++latency_;
            break;
        case Inject::kNone:
            break;
    }
    return inner_->g_grad(x, grad_out);
}

}  // namespace nofis::testcases
