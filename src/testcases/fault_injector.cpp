#include "testcases/fault_injector.hpp"

#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>

#include "linalg/solver_error.hpp"
#include "parallel/thread_pool.hpp"

namespace nofis::testcases {

namespace {

/// splitmix64 finaliser — the same mixer rng::Engine seeds from, reused here
/// to turn (seed, call index) into an i.i.d.-quality uniform without any
/// mutable generator state.
std::uint64_t mix64(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double hash_uniform(std::uint64_t seed, std::uint64_t index) noexcept {
    const std::uint64_t bits = mix64(mix64(seed) ^ index);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector(const estimators::RareEventProblem& inner,
                             FaultInjectorConfig cfg)
    : inner_(&inner), cfg_(cfg) {
    if (cfg_.io_enospc_rate > 0.0 || cfg_.io_torn_write_rate > 0.0 ||
        cfg_.io_corrupt_rate > 0.0 || cfg_.io_short_read_rate > 0.0) {
        util::IoFaultConfig io_cfg;
        io_cfg.enospc_rate = cfg_.io_enospc_rate;
        io_cfg.torn_write_rate = cfg_.io_torn_write_rate;
        io_cfg.corrupt_rate = cfg_.io_corrupt_rate;
        io_cfg.short_read_rate = cfg_.io_short_read_rate;
        io_cfg.seed = cfg_.seed;
        io_ = std::make_unique<util::IoFaultInjector>(io_cfg);
        io_install_ = std::make_unique<util::ScopedIoFaultInjector>(io_.get());
    }
}

void FaultInjector::reset_counters() noexcept {
    calls_.store(0, std::memory_order_relaxed);
    nan_.store(0, std::memory_order_relaxed);
    thrown_singular_.store(0, std::memory_order_relaxed);
    thrown_nonconv_.store(0, std::memory_order_relaxed);
    inf_.store(0, std::memory_order_relaxed);
    latency_.store(0, std::memory_order_relaxed);
}

FaultInjector::Inject FaultInjector::decide(std::size_t index) const noexcept {
    if (index >= cfg_.nan_burst_begin && index < cfg_.nan_burst_end)
        return Inject::kNan;
    const double u = hash_uniform(cfg_.seed, index);
    double edge = cfg_.nan_rate;
    if (u < edge) return Inject::kNan;
    edge += cfg_.throw_rate;
    if (u < edge) return Inject::kThrow;
    edge += cfg_.inf_rate;
    if (u < edge) return Inject::kInf;
    edge += cfg_.latency_rate;
    if (u < edge) return Inject::kLatency;
    return Inject::kNone;
}

void FaultInjector::throw_fault(std::size_t index) const {
    // Alternate the structured kinds so classification paths both get
    // exercised; odd/even split keeps the ledger deterministic.
    if (index % 2 == 0) {
        thrown_singular_.fetch_add(1, std::memory_order_relaxed);
        throw SingularMatrixError("FaultInjector: injected singular matrix");
    }
    thrown_nonconv_.fetch_add(1, std::memory_order_relaxed);
    throw NonConvergenceError("FaultInjector: injected non-convergence");
}

double FaultInjector::value_at(std::size_t index,
                               std::span<const double> x) const {
    switch (decide(index)) {
        case Inject::kNan:
            nan_.fetch_add(1, std::memory_order_relaxed);
            return std::numeric_limits<double>::quiet_NaN();
        case Inject::kThrow:
            throw_fault(index);
        case Inject::kInf:
            inf_.fetch_add(1, std::memory_order_relaxed);
            return std::numeric_limits<double>::infinity();
        case Inject::kLatency: {
            latency_.fetch_add(1, std::memory_order_relaxed);
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<long long>(cfg_.latency_us));
            while (std::chrono::steady_clock::now() < until) {
            }
            break;
        }
        case Inject::kNone:
            break;
    }
    return inner_->g(x);
}

double FaultInjector::grad_at(std::size_t index, std::span<const double> x,
                              std::span<double> grad_out) const {
    switch (decide(index)) {
        case Inject::kNan: {
            nan_.fetch_add(1, std::memory_order_relaxed);
            const double v = inner_->g_grad(x, grad_out);
            if (!grad_out.empty())
                grad_out[0] = std::numeric_limits<double>::quiet_NaN();
            return v;
        }
        case Inject::kThrow:
            throw_fault(index);
        case Inject::kInf:
            inf_.fetch_add(1, std::memory_order_relaxed);
            inner_->g_grad(x, grad_out);
            return std::numeric_limits<double>::infinity();
        case Inject::kLatency:
            latency_.fetch_add(1, std::memory_order_relaxed);
            break;
        case Inject::kNone:
            break;
    }
    return inner_->g_grad(x, grad_out);
}

double FaultInjector::g(std::span<const double> x) const {
    const std::size_t index = calls_.fetch_add(1, std::memory_order_relaxed);
    return value_at(index, x);
}

double FaultInjector::g_indexed(std::size_t index,
                                std::span<const double> x) const {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return value_at(index, x);
}

double FaultInjector::g_grad(std::span<const double> x,
                             std::span<double> grad_out) const {
    if (!cfg_.affect_grad) return inner_->g_grad(x, grad_out);
    const std::size_t index = calls_.fetch_add(1, std::memory_order_relaxed);
    return grad_at(index, x, grad_out);
}

double FaultInjector::g_grad_indexed(std::size_t index,
                                     std::span<const double> x,
                                     std::span<double> grad_out) const {
    if (!cfg_.affect_grad) return inner_->g_grad_indexed(index, x, grad_out);
    calls_.fetch_add(1, std::memory_order_relaxed);
    return grad_at(index, x, grad_out);
}

std::vector<double> FaultInjector::g_rows(const linalg::Matrix& x) const {
    if (x.cols() != dim())
        throw std::invalid_argument("g_rows: dimension mismatch");
    const std::size_t base = calls_.fetch_add(x.rows(),
                                              std::memory_order_relaxed);
    std::vector<double> out(x.rows());
    std::vector<std::exception_ptr> errors(x.rows());
    parallel::parallel_for(x.rows(), [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) {
            try {
                out[r] = value_at(base + r, x.row_span(r));
            } catch (...) {
                errors[r] = std::current_exception();
            }
        }
    });
    parallel::rethrow_first(errors);
    return out;
}

}  // namespace nofis::testcases
