#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "testcases/testcase.hpp"

namespace nofis::testcases {

/// (#10) DeepNet62, D = 62 — our substitute for the paper's "ResNet18 under
/// parameter variation" (we cannot ship ResNet18 weights or ImageNet; see
/// DESIGN.md §2). A fixed 4-layer MLP classifier is trained once, at
/// construction, on a deterministic synthetic binary task; 62 standard-normal
/// variables multiplicatively perturb 62 weight groups (input rows, hidden
/// rows, and output-slices). The performance metric is the soft accuracy
/// on a frozen evaluation set, and the failure event is the metric dropping
/// below a calibrated threshold: g = SoftAcc(x) − threshold.
///
/// The gradient ∂g/∂x is exact: one backward pass through our autodiff
/// engine chained onto the group structure (mirroring how the paper
/// backprops through the PyTorch network).
class DeepNet62Case final : public TestCase {
public:
    DeepNet62Case();

    std::string name() const override { return "DeepNet62"; }
    std::size_t dim() const noexcept override { return 62; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    /// Soft accuracy of the unperturbed network (diagnostics / tests).
    double nominal_metric() const;

    static constexpr std::size_t kNumGroups = 62;

private:
    /// Applies the group perturbation x to the base weights.
    std::vector<linalg::Matrix> perturbed_weights(
        std::span<const double> x) const;
    double metric_from_weights(const std::vector<linalg::Matrix>& w) const;

    // Frozen evaluation task.
    linalg::Matrix eval_x_;       ///< (n x 8) inputs
    linalg::Matrix eval_sign_;    ///< (n x 1) labels mapped to ±1
    // Base parameters (4 weight matrices + 4 biases), trained at
    // construction with a fixed seed.
    std::vector<linalg::Matrix> weights_;
    std::vector<linalg::Matrix> biases_;
    // Group bookkeeping: for each group, the weight-matrix index and the
    // flat element range it scales.
    struct Group {
        std::size_t layer;
        std::size_t begin;
        std::size_t end;
    };
    std::vector<Group> groups_;
    double threshold_ = 0.0;
    double sigma_ = 0.0;
};

}  // namespace nofis::testcases
