#pragma once

#include "circuit/charge_pump.hpp"
#include "circuit/opamp.hpp"
#include "photonic/ybranch.hpp"
#include "testcases/testcase.hpp"

namespace nofis::testcases {

/// (#6) Opamp, D = 5 — failure when the three-stage amplifier's AC gain
/// drops below 72 dB under width variation: g = Gain_dB(x) − 72.
/// Every g call runs a full MNA AC solve of the perturbed macromodel.
class OpampCase final : public TestCase {
public:
    OpampCase() = default;

    std::string name() const override { return "Opamp"; }
    std::size_t dim() const noexcept override { return 5; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    const circuit::OpampModel& model() const noexcept { return model_; }

private:
    circuit::OpampModel model_;
};

/// (#8) Charge Pump, D = 16 — failure when the UP/DN output current
/// mismatch exceeds 370 µA: g = 370 µA − mismatch(x). Every g call performs
/// the bisection DC solve of the behavioural 16-transistor stage.
class ChargePumpCase final : public TestCase {
public:
    ChargePumpCase() = default;

    std::string name() const override { return "ChargePump"; }
    std::size_t dim() const noexcept override { return 16; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    const circuit::ChargePumpModel& model() const noexcept { return model_; }

    static constexpr double kMismatchLimit = 370e-6;

private:
    circuit::ChargePumpModel model_;
};

/// (#9) Y-branch, D = 26 — failure when the power transmission of the
/// deformed photonic splitter arm drops below 32%: g = T(x) − 0.32.
class YBranchCase final : public TestCase {
public:
    YBranchCase() = default;

    std::string name() const override { return "YBranch"; }
    std::size_t dim() const noexcept override { return 26; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    const photonic::YBranchModel& model() const noexcept { return model_; }

    static constexpr double kTransmissionLimit = 0.32;

private:
    photonic::YBranchModel model_;
};

}  // namespace nofis::testcases
