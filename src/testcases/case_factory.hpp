#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "testcases/registry.hpp"

namespace nofis::testcases {

/// Thread-safe memoizing test-case factory: constructs each named case at
/// most once and hands out stable references. Construction matters for two
/// reasons — some cases are expensive to build (DeepNet62 trains its base
/// network, ~1 s), and callers that key caches on a case (the serve
/// scheduler, the evaluation cache) want one canonical instance per name.
///
/// get() serialises construction per factory; the returned reference stays
/// valid for the factory's lifetime.
class CaseFactory {
public:
    CaseFactory() = default;
    CaseFactory(const CaseFactory&) = delete;
    CaseFactory& operator=(const CaseFactory&) = delete;

    /// The case named `name`, constructed on first use. Throws
    /// std::invalid_argument for unknown names (same contract as
    /// make_case).
    const TestCase& get(const std::string& name);

    /// Process-wide shared factory for CLI / bench flows.
    static CaseFactory& global();

private:
    std::mutex mutex_;
    std::map<std::string, std::unique_ptr<TestCase>> cases_;
};

/// Canonical evaluation-cache namespace key for a problem: "<name>#d<dim>".
/// The dim is folded in so a renamed or re-parameterised case can never
/// alias stale cached evaluations.
std::string cache_key(const std::string& name, std::size_t dim);
std::string cache_key(const TestCase& tc);

}  // namespace nofis::testcases
