#include "testcases/oscillator.hpp"

#include <cmath>
#include <stdexcept>

namespace nofis::testcases {

namespace {
// Benchmark parameter distributions (means, sigmas) per Song et al.
constexpr double kMeanM = 1.0, kSigM = 0.05;
constexpr double kMeanC1 = 1.0, kSigC1 = 0.10;
constexpr double kMeanC2 = 0.1, kSigC2 = 0.01;
constexpr double kMeanR = 0.5, kSigR = 0.05;
constexpr double kMeanF1 = 0.6, kSigF1 = 0.10;
constexpr double kMeanT1 = 1.0, kSigT1 = 0.20;

// Safety factor calibrated offline (tools/calibrate) for P_r ≈ 1.8e-6.
constexpr double kSafety = 3.28;
constexpr double kGolden = 1.35e-6;
}  // namespace

double OscillatorCase::peak_displacement(double m, double c1, double c2,
                                         double f1, double t1) {
    const double omega0 = std::sqrt((c1 + c2) / m);
    return std::abs(2.0 * f1 / (m * omega0 * omega0) *
                    std::sin(omega0 * t1 / 2.0));
}

double OscillatorCase::golden_pr() const noexcept { return kGolden; }

double OscillatorCase::g(std::span<const double> x) const {
    if (x.size() != 6)
        throw std::invalid_argument("OscillatorCase: dimension mismatch");
    const double m = kMeanM + kSigM * x[0];
    const double c1 = kMeanC1 + kSigC1 * x[1];
    const double c2 = kMeanC2 + kSigC2 * x[2];
    const double r = kMeanR + kSigR * x[3];
    const double f1 = kMeanF1 + kSigF1 * x[4];
    const double t1 = kMeanT1 + kSigT1 * x[5];
    // Guard the (astronomically unlikely) unphysical corner m, c <= 0.
    if (m <= 1e-3 || c1 + c2 <= 1e-3) return -1.0;
    return kSafety * r - peak_displacement(m, c1, c2, f1, t1);
}

NofisBudget OscillatorCase::nofis_budget() const {
    NofisBudget b;
    // Paper: 31K total calls.
    b.levels = {0.9, 0.6, 0.38, 0.2, 0.08, 0.0};
    b.epochs = 96;
    b.samples_per_epoch = 50;
    b.n_is = 2200;  // 6*96*50 + 2200 = 31,000
    b.tau = 40.0;
    return b;
}

BaselineBudget OscillatorCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 100000;
    b.sir_train_samples = 50000;
    b.sus_samples_per_level = 6400;  // ~45K over ~6 levels
    b.sus_max_levels = 9;
    b.suc_samples_per_level = 5700;  // ~40K
    b.suc_max_levels = 9;
    b.sss_total_samples = 40000;
    b.ais_iterations = 6;
    b.ais_samples_per_iteration = 5500;
    b.ais_final_samples = 10000;     // ~43K
    return b;
}

}  // namespace nofis::testcases
