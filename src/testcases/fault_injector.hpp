#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "estimators/problem.hpp"
#include "util/io_fault.hpp"

namespace nofis::testcases {

/// Deterministic fault-injection settings. Rates are per-call probabilities
/// evaluated in the order NaN → throw → inf → latency (at most one fault per
/// call); injection decisions are a pure hash of (seed, call index), so a
/// given call number always faults the same way no matter how callers
/// interleave g and g_grad retries.
struct FaultInjectorConfig {
    double nan_rate = 0.0;      ///< return quiet NaN
    double throw_rate = 0.0;    ///< throw a SolverError (kind alternates)
    double inf_rate = 0.0;      ///< return +inf
    double latency_rate = 0.0;  ///< busy-wait `latency_us` before returning
    double latency_us = 100.0;
    std::uint64_t seed = 0x5eedULL;

    /// Deterministic NaN burst: calls with index in [nan_burst_begin,
    /// nan_burst_end) return NaN regardless of the rates. This is how the
    /// rollback tests force a whole epoch's losses to go non-finite.
    std::size_t nan_burst_begin = 0;
    std::size_t nan_burst_end = 0;

    bool affect_grad = true;  ///< also inject into g_grad calls

    /// Deterministic I/O faults (DESIGN.md §12): while the FaultInjector is
    /// alive and any rate is nonzero, a util::IoFaultInjector with these
    /// rates is installed process-globally, so every durable write path
    /// (checkpoint snapshots, evalcache disk appends, atomic metrics/model
    /// writes) and disk-tier read sees injected ENOSPC / torn-write /
    /// bit-flip / short-read faults keyed purely on (seed, I/O op index).
    double io_enospc_rate = 0.0;
    double io_torn_write_rate = 0.0;
    double io_corrupt_rate = 0.0;
    double io_short_read_rate = 0.0;
};

/// Test double for the fault-tolerant runtime: wraps any RareEventProblem
/// and injects NaNs, structured solver throws, infinities, and latency at
/// seeded per-call rates, while keeping an exact ledger of what it injected
/// so GuardedProblem's FaultReport can be checked count-for-count.
///
/// Thread-safe: injection decisions are pure functions of (seed, index) and
/// every ledger counter is atomic, so batched callers may evaluate rows in
/// parallel and still replay the exact same faults per call index.
class FaultInjector final : public estimators::RareEventProblem {
public:
    FaultInjector(const estimators::RareEventProblem& inner,
                  FaultInjectorConfig cfg);

    std::size_t dim() const noexcept override { return inner_->dim(); }
    double fd_step() const noexcept override { return inner_->fd_step(); }

    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;

    /// Indexed entry points: the injection decision is keyed on the
    /// caller-assigned `index`, so batched / guarded callers replay faults
    /// identically under any thread count.
    double g_indexed(std::size_t index,
                     std::span<const double> x) const override;
    double g_grad_indexed(std::size_t index, std::span<const double> x,
                          std::span<double> grad_out) const override;
    std::vector<double> g_rows(const linalg::Matrix& x) const override;

    // --- exact injection ledger ----------------------------------------------
    std::size_t calls() const noexcept {
        return calls_.load(std::memory_order_relaxed);
    }
    std::size_t injected_nan() const noexcept {
        return nan_.load(std::memory_order_relaxed);
    }
    std::size_t injected_throws() const noexcept {
        return injected_singular() + injected_nonconvergence();
    }
    std::size_t injected_singular() const noexcept {
        return thrown_singular_.load(std::memory_order_relaxed);
    }
    std::size_t injected_nonconvergence() const noexcept {
        return thrown_nonconv_.load(std::memory_order_relaxed);
    }
    std::size_t injected_inf() const noexcept {
        return inf_.load(std::memory_order_relaxed);
    }
    std::size_t injected_latency() const noexcept {
        return latency_.load(std::memory_order_relaxed);
    }
    /// Faults visible to a guard (latency is a slowdown, not a fault).
    std::size_t injected_total() const noexcept {
        return injected_nan() + injected_inf() + injected_throws();
    }
    void reset_counters() noexcept;

    /// The process-global I/O fault injector owned by this FaultInjector
    /// (null when every io_* rate is zero). Tests read its ledger to check
    /// the durable-write paths saw exactly the faults they recovered from.
    util::IoFaultInjector* io_injector() const noexcept { return io_.get(); }

private:
    /// Outcome decided purely from (seed, index).
    enum class Inject { kNone, kNan, kThrow, kInf, kLatency };
    Inject decide(std::size_t index) const noexcept;
    [[noreturn]] void throw_fault(std::size_t index) const;
    /// Injection + evaluation for one decided index; does NOT touch calls_.
    double value_at(std::size_t index, std::span<const double> x) const;
    double grad_at(std::size_t index, std::span<const double> x,
                   std::span<double> grad_out) const;

    const estimators::RareEventProblem* inner_;
    FaultInjectorConfig cfg_;
    std::unique_ptr<util::IoFaultInjector> io_;
    std::unique_ptr<util::ScopedIoFaultInjector> io_install_;
    mutable std::atomic<std::size_t> calls_{0};
    mutable std::atomic<std::size_t> nan_{0};
    mutable std::atomic<std::size_t> thrown_singular_{0};
    mutable std::atomic<std::size_t> thrown_nonconv_{0};
    mutable std::atomic<std::size_t> inf_{0};
    mutable std::atomic<std::size_t> latency_{0};
};

}  // namespace nofis::testcases
