#pragma once

#include <cstdint>
#include <string>

#include "estimators/problem.hpp"

namespace nofis::testcases {

/// Deterministic fault-injection settings. Rates are per-call probabilities
/// evaluated in the order NaN → throw → inf → latency (at most one fault per
/// call); injection decisions are a pure hash of (seed, call index), so a
/// given call number always faults the same way no matter how callers
/// interleave g and g_grad retries.
struct FaultInjectorConfig {
    double nan_rate = 0.0;      ///< return quiet NaN
    double throw_rate = 0.0;    ///< throw a SolverError (kind alternates)
    double inf_rate = 0.0;      ///< return +inf
    double latency_rate = 0.0;  ///< busy-wait `latency_us` before returning
    double latency_us = 100.0;
    std::uint64_t seed = 0x5eedULL;

    /// Deterministic NaN burst: calls with index in [nan_burst_begin,
    /// nan_burst_end) return NaN regardless of the rates. This is how the
    /// rollback tests force a whole epoch's losses to go non-finite.
    std::size_t nan_burst_begin = 0;
    std::size_t nan_burst_end = 0;

    bool affect_grad = true;  ///< also inject into g_grad calls
};

/// Test double for the fault-tolerant runtime: wraps any RareEventProblem
/// and injects NaNs, structured solver throws, infinities, and latency at
/// seeded per-call rates, while keeping an exact ledger of what it injected
/// so GuardedProblem's FaultReport can be checked count-for-count.
class FaultInjector final : public estimators::RareEventProblem {
public:
    FaultInjector(const estimators::RareEventProblem& inner,
                  FaultInjectorConfig cfg);

    std::size_t dim() const noexcept override { return inner_->dim(); }
    double fd_step() const noexcept override { return inner_->fd_step(); }

    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;

    // --- exact injection ledger ----------------------------------------------
    std::size_t calls() const noexcept { return calls_; }
    std::size_t injected_nan() const noexcept { return nan_; }
    std::size_t injected_throws() const noexcept {
        return thrown_singular_ + thrown_nonconv_;
    }
    std::size_t injected_singular() const noexcept { return thrown_singular_; }
    std::size_t injected_nonconvergence() const noexcept {
        return thrown_nonconv_;
    }
    std::size_t injected_inf() const noexcept { return inf_; }
    std::size_t injected_latency() const noexcept { return latency_; }
    /// Faults visible to a guard (latency is a slowdown, not a fault).
    std::size_t injected_total() const noexcept {
        return nan_ + inf_ + injected_throws();
    }
    void reset_counters() noexcept;

private:
    /// Outcome decided purely from (seed, index).
    enum class Inject { kNone, kNan, kThrow, kInf, kLatency };
    Inject decide(std::size_t index) const noexcept;
    [[noreturn]] void throw_fault(std::size_t index) const;

    const estimators::RareEventProblem* inner_;
    FaultInjectorConfig cfg_;
    mutable std::size_t calls_ = 0;
    mutable std::size_t nan_ = 0;
    mutable std::size_t thrown_singular_ = 0;
    mutable std::size_t thrown_nonconv_ = 0;
    mutable std::size_t inf_ = 0;
    mutable std::size_t latency_ = 0;
};

}  // namespace nofis::testcases
