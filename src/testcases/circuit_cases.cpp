#include "testcases/circuit_cases.hpp"

namespace nofis::testcases {

// Golden values calibrated offline with large-sample runs against OUR
// models (tools/calibrate; recipe in EXPERIMENTS.md). Paper golden values
// for comparison: Opamp 1.30e-5, Charge Pump 5.75e-6, Y-branch 4.27e-5.

// ---------------------------------------------------------------------------
// Opamp
// ---------------------------------------------------------------------------

double OpampCase::golden_pr() const noexcept { return 1.5e-5; }

double OpampCase::g(std::span<const double> x) const {
    return model_.gain_db(x) - 72.0;
}

NofisBudget OpampCase::nofis_budget() const {
    NofisBudget b;
    // Paper: 45K total calls.
    b.levels = {6.0, 4.0, 2.5, 1.2, 0.0};  // dB margins above the 72 dB spec
    b.epochs = 86;
    b.samples_per_epoch = 100;
    b.n_is = 2000;  // 5*86*100 + 2000 = 45,000
    b.tau = 15.0;
    return b;
}

BaselineBudget OpampCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 100000;
    b.sir_train_samples = 50000;
    b.sus_samples_per_level = 7500;  // ~45K over ~5 levels
    b.sus_max_levels = 8;
    b.suc_samples_per_level = 8000;  // ~49K
    b.suc_max_levels = 8;
    b.sss_total_samples = 60000;
    b.ais_iterations = 6;
    b.ais_samples_per_iteration = 6000;
    b.ais_final_samples = 12000;     // ~48K
    return b;
}

// ---------------------------------------------------------------------------
// Charge pump
// ---------------------------------------------------------------------------

double ChargePumpCase::golden_pr() const noexcept { return 1.0e-5; }

double ChargePumpCase::g(std::span<const double> x) const {
    return kMismatchLimit - model_.mismatch_amps(x);
}

NofisBudget ChargePumpCase::nofis_budget() const {
    NofisBudget b;
    // Paper: 35K total calls. Levels in amps of mismatch margin.
    b.levels = {253e-6, 175e-6, 115e-6, 64e-6, 12e-6, 0.0};
    b.epochs = 110;
    b.samples_per_epoch = 50;
    b.n_is = 2000;  // 6*110*50 + 2000 = 35,000
    b.tau = 8e4;    // τ scaled to the µA-range units of g
    return b;
}

BaselineBudget ChargePumpCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 100000;
    b.sir_train_samples = 100000;
    b.sus_samples_per_level = 7500;  // ~45K over ~6 levels
    b.sus_max_levels = 9;
    b.suc_samples_per_level = 8400;  // ~50K
    b.suc_max_levels = 9;
    b.sss_total_samples = 40000;
    b.ais_iterations = 6;
    b.ais_samples_per_iteration = 5500;
    b.ais_final_samples = 10000;     // ~43K
    return b;
}

// ---------------------------------------------------------------------------
// Y-branch
// ---------------------------------------------------------------------------

double YBranchCase::golden_pr() const noexcept { return 4.0e-5; }

double YBranchCase::g(std::span<const double> x) const {
    return model_.transmission(x) - kTransmissionLimit;
}

NofisBudget YBranchCase::nofis_budget() const {
    NofisBudget b;
    // Paper: 32.5K total calls. Levels in transmission margin above 32%.
    b.levels = {0.061, 0.042, 0.023, 0.0053, 0.0};
    b.epochs = 122;
    b.samples_per_epoch = 50;
    b.n_is = 2000;  // 5*122*50 + 2000 = 32,500
    b.tau = 150.0;
    return b;
}

BaselineBudget YBranchCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 50000;
    b.sir_train_samples = 50000;
    b.sus_samples_per_level = 5800;  // ~35K over ~5 levels
    b.sus_max_levels = 8;
    b.suc_samples_per_level = 4000;  // ~24K
    b.suc_max_levels = 8;
    b.sss_total_samples = 40000;
    b.ais_iterations = 6;
    b.ais_samples_per_iteration = 5500;
    b.ais_final_samples = 10000;     // ~43K
    return b;
}

}  // namespace nofis::testcases
