#pragma once

#include "testcases/testcase.hpp"

namespace nofis::testcases {

/// (#7) Oscillator, D = 6 — the classic nonlinear single-degree-of-freedom
/// oscillator reliability benchmark (Song et al. 2021, the paper's [18]):
/// a mass on two springs driven by a rectangular pulse. Failure when the
/// peak displacement exceeds k·r:
///     g = k·r − |2 F1 / (m ω0²) · sin(ω0 t1 / 2)|,  ω0 = √((c1+c2)/m).
/// The six physical parameters (m, c1, c2, r, F1, t1) are Gaussian with the
/// benchmark's means/sigmas, mapped from the standard-normal x. The safety
/// factor k is calibrated so P_r ≈ 1.8e-6 (the paper's golden value).
class OscillatorCase final : public TestCase {
public:
    std::string name() const override { return "Oscillator"; }
    std::size_t dim() const noexcept override { return 6; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    /// Peak-displacement response for given physical parameters (tests).
    static double peak_displacement(double m, double c1, double c2, double f1,
                                    double t1);
};

}  // namespace nofis::testcases
