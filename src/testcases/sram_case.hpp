#pragma once

#include "circuit/sram.hpp"
#include "testcases/testcase.hpp"

namespace nofis::testcases {

/// Extension test case (beyond Table 1): 6T SRAM read-stability failure,
/// the application the paper's introduction motivates. Every g call traces
/// two half-cell butterfly curves with Newton nonlinear DC solves and
/// extracts the Seevinck static noise margin; the cell fails when the SNM
/// under threshold-voltage mismatch drops below the spec:
///     g(x) = SNM(x) − snm_min.
class SramCase final : public TestCase {
public:
    SramCase() = default;

    std::string name() const override { return "Sram6T"; }
    std::size_t dim() const noexcept override { return 6; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    /// SNM varies on the 100 mV scale; the FD step must stay well below it.
    double fd_step() const noexcept override { return 1e-4; }
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    const circuit::SramCellModel& model() const noexcept { return model_; }

    static constexpr double kSnmMin = 0.040;  ///< 40 mV read-SNM spec

private:
    circuit::SramCellModel model_;
};

}  // namespace nofis::testcases
