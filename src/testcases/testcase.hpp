#pragma once

#include <memory>
#include <string>
#include <vector>

#include "estimators/problem.hpp"

namespace nofis::testcases {

/// Per-case NOFIS hyper-parameters (Table 1 uses case-specific M, E, N,
/// N_IS, τ and level sequences; these mirror the paper's reported budgets).
struct NofisBudget {
    std::vector<double> levels;           ///< {a_m}, strictly decreasing, ends at 0
    std::size_t epochs = 20;              ///< E
    std::size_t samples_per_epoch = 400;  ///< N
    std::size_t n_is = 1000;              ///< N_IS
    double tau = 20.0;
    std::size_t layers_per_block = 8;     ///< K
    std::vector<std::size_t> hidden = {32, 32};
    double learning_rate = 7e-3;
    double lr_decay = 0.99;
    /// Defensive-mixture extension (see NofisConfig); 0 = plain Eq. 2.
    double defensive_weight = 0.0;
    double defensive_sigma = 1.3;

    std::size_t total_calls() const noexcept {
        return levels.size() * epochs * samples_per_epoch + n_is;
    }
};

/// Per-case budgets for the six baselines, sized to the call counts the
/// paper reports for each Table-1 row.
struct BaselineBudget {
    std::size_t mc_samples = 50000;
    std::size_t sir_train_samples = 50000;
    std::size_t sir_surrogate_evals = 2000000;
    std::size_t sus_samples_per_level = 5000;
    std::size_t sus_max_levels = 10;
    std::size_t suc_samples_per_level = 5000;
    std::size_t suc_max_levels = 10;
    std::size_t sss_total_samples = 40000;
    std::size_t ais_iterations = 6;
    std::size_t ais_samples_per_iteration = 5000;
    std::size_t ais_final_samples = 5000;
};

/// A Table-1 problem: a RareEventProblem plus its metadata (golden
/// probability, dimensionality is inherited, and the per-method budgets).
class TestCase : public estimators::RareEventProblem {
public:
    virtual std::string name() const = 0;
    /// Reference failure probability (analytic where possible, otherwise
    /// calibrated offline — see EXPERIMENTS.md for the recipe per case).
    virtual double golden_pr() const noexcept = 0;
    virtual NofisBudget nofis_budget() const = 0;
    virtual BaselineBudget baseline_budget() const = 0;
};

}  // namespace nofis::testcases
