#pragma once

#include "testcases/testcase.hpp"

namespace nofis::testcases {

/// (#1) Leaf, D = 2 — the paper's running example (Figures 2(b), 3, 4):
/// Ω is the union of two discs of radius 1 centred at ±(3.8, 3.8), deep in
/// the tail of p. g = min(‖x − c₊‖², ‖x − c₋‖²) − 1.
class LeafCase final : public TestCase {
public:
    std::string name() const override { return "Leaf"; }
    std::size_t dim() const noexcept override { return 2; }
    double golden_pr() const noexcept override { return 4.74e-6; }
    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;
};

/// (#2) Cube, D = 6 — the analytic corner event {x_i >= 1.8 ∀i}:
/// g = max_i (1.8 − x_i), with exact P_r = (1 − Φ(1.8))⁶ ≈ 2.15e-9.
class CubeCase final : public TestCase {
public:
    static constexpr double kThreshold = 1.8;

    std::string name() const override { return "Cube"; }
    std::size_t dim() const noexcept override { return 6; }
    double golden_pr() const noexcept override { return 2.154e-9; }
    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;

    /// Analytic P[g <= a] — used by tests to validate estimators.
    static double analytic_prob(double a);
};

/// (#3) Rosen, D = 10 — failure when the Rosenbrock function exceeds a
/// calibrated threshold: g = thr − rosen(x).
class RosenCase final : public TestCase {
public:
    std::string name() const override { return "Rosen"; }
    std::size_t dim() const noexcept override { return 10; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    double g_grad(std::span<const double> x,
                  std::span<double> grad_out) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;
};

/// (#4) Levy, D = 20 — failure when the Levy function exceeds a calibrated
/// threshold: g = thr − levy(x). Gradient via finite differences (the
/// function is cheap).
class LevyCase final : public TestCase {
public:
    std::string name() const override { return "Levy"; }
    std::size_t dim() const noexcept override { return 20; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;
};

/// (#5) Powell, D = 40 — failure when the Powell function exceeds a
/// calibrated threshold: g = thr − powell(x).
class PowellCase final : public TestCase {
public:
    std::string name() const override { return "Powell"; }
    std::size_t dim() const noexcept override { return 40; }
    double golden_pr() const noexcept override;
    double g(std::span<const double> x) const override;
    NofisBudget nofis_budget() const override;
    BaselineBudget baseline_budget() const override;
};

/// Raw benchmark functions (exposed for tests and calibration tooling).
double rosenbrock(std::span<const double> x);
double levy(std::span<const double> x);
double powell(std::span<const double> x);

}  // namespace nofis::testcases
