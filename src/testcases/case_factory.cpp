#include "testcases/case_factory.hpp"

namespace nofis::testcases {

const TestCase& CaseFactory::get(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = cases_.find(name);
    if (it == cases_.end())
        it = cases_.emplace(name, make_case(name)).first;
    return *it->second;
}

CaseFactory& CaseFactory::global() {
    static CaseFactory factory;
    return factory;
}

std::string cache_key(const std::string& name, std::size_t dim) {
    return name + "#d" + std::to_string(dim);
}

std::string cache_key(const TestCase& tc) {
    return cache_key(tc.name(), tc.dim());
}

}  // namespace nofis::testcases
