#include "testcases/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::testcases {

namespace {
void check_dim(std::span<const double> x, std::size_t d, const char* who) {
    if (x.size() != d)
        throw std::invalid_argument(std::string(who) + ": dimension mismatch");
}
}  // namespace

// ---------------------------------------------------------------------------
// (#1) Leaf
// ---------------------------------------------------------------------------

double LeafCase::g(std::span<const double> x) const {
    check_dim(x, 2, "LeafCase");
    const double dp = (x[0] + 3.8) * (x[0] + 3.8) + (x[1] + 3.8) * (x[1] + 3.8);
    const double dm = (x[0] - 3.8) * (x[0] - 3.8) + (x[1] - 3.8) * (x[1] - 3.8);
    return std::min(dp, dm) - 1.0;
}

double LeafCase::g_grad(std::span<const double> x,
                        std::span<double> grad_out) const {
    check_dim(x, 2, "LeafCase");
    const double dp = (x[0] + 3.8) * (x[0] + 3.8) + (x[1] + 3.8) * (x[1] + 3.8);
    const double dm = (x[0] - 3.8) * (x[0] - 3.8) + (x[1] - 3.8) * (x[1] - 3.8);
    const double c = dp < dm ? -3.8 : 3.8;
    grad_out[0] = 2.0 * (x[0] - c);
    grad_out[1] = 2.0 * (x[1] - c);
    return std::min(dp, dm) - 1.0;
}

NofisBudget LeafCase::nofis_budget() const {
    NofisBudget b;
    // Paper: 32.0K total calls. We keep that budget but rebalance it:
    // M = 6, E = 100, N = 50 -> MEN = 30,000 training calls + N_IS = 2,000.
    // The first level (a1 = 40) makes Ω_{a1} CONNECTED (the two discs of
    // radius √41 overlap), which protects the flow from dropping a mode at
    // the topological split near a ≈ 28 — see EXPERIMENTS.md §Leaf.
    b.levels = {40.0, 28.0, 18.0, 10.0, 4.0, 0.0};
    b.epochs = 100;
    b.samples_per_epoch = 50;
    b.n_is = 2000;
    b.tau = 30.0;
    return b;
}

BaselineBudget LeafCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 50000;              // 50.0K
    b.sir_train_samples = 50000;       // 50.0K
    b.sus_samples_per_level = 7000;    // ~42K over ~6 levels
    b.sus_max_levels = 8;
    b.suc_samples_per_level = 6800;    // ~47.5K
    b.suc_max_levels = 8;
    b.sss_total_samples = 40000;       // 40.0K
    b.ais_iterations = 6;              // ~35K
    b.ais_samples_per_iteration = 5000;
    b.ais_final_samples = 5000;
    return b;
}

// ---------------------------------------------------------------------------
// (#2) Cube
// ---------------------------------------------------------------------------

double CubeCase::g(std::span<const double> x) const {
    check_dim(x, 6, "CubeCase");
    double worst = -std::numeric_limits<double>::infinity();
    for (double v : x) worst = std::max(worst, kThreshold - v);
    return worst;
}

double CubeCase::g_grad(std::span<const double> x,
                        std::span<double> grad_out) const {
    check_dim(x, 6, "CubeCase");
    double worst = -std::numeric_limits<double>::infinity();
    std::size_t arg = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double v = kThreshold - x[i];
        if (v > worst) {
            worst = v;
            arg = i;
        }
    }
    std::fill(grad_out.begin(), grad_out.end(), 0.0);
    grad_out[arg] = -1.0;  // subgradient of the active max component
    return worst;
}

double CubeCase::analytic_prob(double a) {
    // g <= a  <=>  x_i >= kThreshold - a for all i.
    const double tail = 1.0 - rng::normal_cdf(kThreshold - a);
    return std::pow(tail, 6.0);
}

NofisBudget CubeCase::nofis_budget() const {
    NofisBudget b;
    // The paper notes E, M, N must be larger here (P_r ~ 2e-9; 197.5K total).
    // Levels chosen so P[Ω_{a_m}] ≈ 10^{-m} analytically (see
    // CubeCase::analytic_prob).
    b.levels = {2.2714, 1.7101, 1.3216, 1.0125, 0.7496,
                0.5184, 0.3099, 0.1203, 0.0};
    b.epochs = 100;
    b.samples_per_epoch = 200;
    b.n_is = 17500;  // 9*100*200 + 17,500 = 197.5K
    b.tau = 20.0;
    return b;
}

BaselineBudget CubeCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 500000;
    b.sir_train_samples = 500000;
    b.sus_samples_per_level = 22000;   // ~206K over ~9 levels
    b.sus_max_levels = 12;
    b.suc_samples_per_level = 28000;   // ~280K
    b.suc_max_levels = 12;
    b.sss_total_samples = 400000;
    b.ais_iterations = 9;
    b.ais_samples_per_iteration = 22000;
    b.ais_final_samples = 29000;       // ~227K
    return b;
}

// ---------------------------------------------------------------------------
// Raw benchmark functions
// ---------------------------------------------------------------------------

double rosenbrock(std::span<const double> x) {
    double s = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
        const double a = x[i + 1] - x[i] * x[i];
        const double b = 1.0 - x[i];
        s += 100.0 * a * a + b * b;
    }
    return s;
}

double levy(std::span<const double> x) {
    const auto w = [&](std::size_t i) { return 1.0 + (x[i] - 1.0) / 4.0; };
    const double pi = std::numbers::pi;
    const double w0 = w(0);
    double s = std::sin(pi * w0) * std::sin(pi * w0);
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
        const double wi = w(i);
        const double sw = std::sin(pi * wi + 1.0);
        s += (wi - 1.0) * (wi - 1.0) * (1.0 + 10.0 * sw * sw);
    }
    const double wd = w(x.size() - 1);
    const double sd = std::sin(2.0 * pi * wd);
    s += (wd - 1.0) * (wd - 1.0) * (1.0 + sd * sd);
    return s;
}

double powell(std::span<const double> x) {
    double s = 0.0;
    for (std::size_t k = 0; k + 3 < x.size(); k += 4) {
        const double t1 = x[k] + 10.0 * x[k + 1];
        const double t2 = x[k + 2] - x[k + 3];
        const double t3 = x[k + 1] - 2.0 * x[k + 2];
        const double t4 = x[k] - x[k + 3];
        s += t1 * t1 + 5.0 * t2 * t2 + t3 * t3 * t3 * t3 +
             10.0 * t4 * t4 * t4 * t4;
    }
    return s;
}

// ---------------------------------------------------------------------------
// (#3) Rosen
// ---------------------------------------------------------------------------

namespace {
// Thresholds calibrated offline (tools/calibrate) so the golden P_r of each
// synthetic case lands near the paper's Table-1 value; the golden numbers
// below are our own reference estimates for OUR g (see EXPERIMENTS.md).
constexpr double kRosenThreshold = 34400.0;
constexpr double kRosenGolden = 4.36e-4;    // 4M-sample MC calibration
constexpr double kLevyThreshold = 53.6;
constexpr double kLevyGolden = 3.0e-6;      // deep-SUS calibration
constexpr double kPowellThreshold = 22900.0;
constexpr double kPowellGolden = 2.9e-5;    // 4M-sample MC calibration
}  // namespace

double RosenCase::golden_pr() const noexcept { return kRosenGolden; }

double RosenCase::g(std::span<const double> x) const {
    check_dim(x, 10, "RosenCase");
    return kRosenThreshold - rosenbrock(x);
}

double RosenCase::g_grad(std::span<const double> x,
                         std::span<double> grad_out) const {
    check_dim(x, 10, "RosenCase");
    std::fill(grad_out.begin(), grad_out.end(), 0.0);
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
        const double a = x[i + 1] - x[i] * x[i];
        // d rosen: w.r.t. x_i: -400 a x_i - 2(1-x_i); w.r.t. x_{i+1}: 200 a.
        grad_out[i] -= -400.0 * a * x[i] - 2.0 * (1.0 - x[i]);
        grad_out[i + 1] -= 200.0 * a;
    }
    return kRosenThreshold - rosenbrock(x);
}

NofisBudget RosenCase::nofis_budget() const {
    NofisBudget b;
    // 7.0K calls: M = 4, E = 64, N = 25 -> 6400, N_IS = 600.
    b.levels = {26800.0, 17500.0, 5400.0, 0.0};
    b.epochs = 64;
    b.samples_per_epoch = 25;
    b.n_is = 600;
    b.tau = 0.002;  // rosen values are O(1e4); τ scales with 1/|g| range
    b.defensive_weight = 0.3;
    b.defensive_sigma = 1.3;
    return b;
}

BaselineBudget RosenCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 7000;
    b.sir_train_samples = 7000;
    b.sus_samples_per_level = 1750;  // ~7K over ~4 levels
    b.sus_max_levels = 6;
    b.suc_samples_per_level = 2000;
    b.suc_max_levels = 6;
    b.sss_total_samples = 8000;
    b.ais_iterations = 4;
    b.ais_samples_per_iteration = 1600;
    b.ais_final_samples = 2000;
    return b;
}

// ---------------------------------------------------------------------------
// (#4) Levy
// ---------------------------------------------------------------------------

double LevyCase::golden_pr() const noexcept { return kLevyGolden; }

double LevyCase::g(std::span<const double> x) const {
    check_dim(x, 20, "LevyCase");
    return kLevyThreshold - levy(x);
}

NofisBudget LevyCase::nofis_budget() const {
    NofisBudget b;
    // 48.2K calls: M = 5, E = 120, N = 75 -> 45,000, N_IS = 3,200.
    b.levels = {32.0, 22.0, 15.0, 8.5, 0.0};
    b.epochs = 120;
    b.samples_per_epoch = 75;
    b.n_is = 3200;
    b.tau = 1.0;
    b.defensive_weight = 0.3;
    b.defensive_sigma = 1.3;
    return b;
}

BaselineBudget LevyCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 50000;
    b.sir_train_samples = 50000;
    b.sus_samples_per_level = 8000;  // ~49K over ~6 levels
    b.sus_max_levels = 8;
    b.suc_samples_per_level = 8000;
    b.suc_max_levels = 8;
    b.sss_total_samples = 40000;
    b.ais_iterations = 7;
    b.ais_samples_per_iteration = 7000;
    b.ais_final_samples = 7000;
    return b;
}

// ---------------------------------------------------------------------------
// (#5) Powell
// ---------------------------------------------------------------------------

double PowellCase::golden_pr() const noexcept { return kPowellGolden; }

double PowellCase::g(std::span<const double> x) const {
    check_dim(x, 40, "PowellCase");
    return kPowellThreshold - powell(x);
}

NofisBudget PowellCase::nofis_budget() const {
    NofisBudget b;
    // 7.0K calls: M = 5, E = 44, N = 25 -> 5,500, N_IS = 1,500.
    // Decade-spaced levels from the calibration quantiles; the Powell
    // failure set is heavily multimodal (any of 10 blocks, both signs), so
    // the defensive mixture guards the final IS stage (EXPERIMENTS.md).
    b.levels = {17900.0, 14300.0, 9650.0, 3475.0, 0.0};
    b.epochs = 44;
    b.samples_per_epoch = 25;
    b.n_is = 1500;
    b.tau = 0.0015;
    b.defensive_weight = 0.4;
    b.defensive_sigma = 1.35;
    return b;
}

BaselineBudget PowellCase::baseline_budget() const {
    BaselineBudget b;
    b.mc_samples = 10000;
    b.sir_train_samples = 10000;
    b.sus_samples_per_level = 1800;  // ~9K over ~5 levels
    b.sus_max_levels = 7;
    b.suc_samples_per_level = 1900;
    b.suc_max_levels = 7;
    b.sss_total_samples = 8000;
    b.ais_iterations = 4;
    b.ais_samples_per_iteration = 1600;
    b.ais_final_samples = 1500;
    return b;
}

}  // namespace nofis::testcases
