#include "flow/coupling_stack.hpp"

#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::flow {

CouplingStack::CouplingStack(const StackConfig& cfg, rng::Engine& eng)
    : cfg_(cfg),
      layers_per_physical_block_(cfg.layers_per_block *
                                 (cfg.use_actnorm ? 2 : 1)),
      base_(cfg.dim) {
    if (cfg.num_blocks == 0 || cfg.layers_per_block == 0)
        throw std::invalid_argument("CouplingStack: M and K must be positive");
    const std::size_t couplings = cfg.num_blocks * cfg.layers_per_block;
    layers_.reserve(couplings * (cfg.use_actnorm ? 2 : 1));
    for (std::size_t i = 0; i < couplings; ++i) {
        if (cfg.use_actnorm)
            layers_.push_back(std::make_unique<ActNorm>(cfg.dim));
        const bool first_half = (i % 2 == 0);
        if (cfg.coupling == CouplingKind::kAffine)
            layers_.push_back(std::make_unique<AffineCoupling>(
                cfg.dim, first_half, cfg.hidden, eng, cfg.scale_cap));
        else if (cfg.coupling == CouplingKind::kRqs)
            layers_.push_back(std::make_unique<RqsCoupling>(
                cfg.dim, first_half, cfg.hidden, eng, cfg.rqs_bins,
                cfg.rqs_tail));
        else
            layers_.push_back(std::make_unique<AdditiveCoupling>(
                cfg.dim, first_half, cfg.hidden, eng));
    }
}

CouplingStack::ForwardVar CouplingStack::forward(const autodiff::Var& z0,
                                                 std::size_t upto_block) const {
    return forward_range(z0, 0, upto_block);
}

CouplingStack::ForwardVar CouplingStack::forward_range(
    const autodiff::Var& z0, std::size_t block_begin,
    std::size_t block_end) const {
    if (block_begin >= block_end || block_end > cfg_.num_blocks)
        throw std::invalid_argument("CouplingStack::forward_range: bad range");
    using namespace autodiff;
    Var z = z0;
    Var log_det;  // lazily initialised on first layer
    for (std::size_t i = block_begin_layer(block_begin);
         i < block_begin_layer(block_end); ++i) {
        auto [y, ld] = layers_[i]->forward(z);
        z = y;
        log_det = log_det.valid() ? add(log_det, ld) : ld;
    }
    return {z, log_det};
}

CouplingStack::Samples CouplingStack::sample(rng::Engine& eng, std::size_t n,
                                             std::size_t upto_block) const {
    return transport(rng::standard_normal_matrix(eng, n, cfg_.dim),
                     upto_block);
}

CouplingStack::Samples CouplingStack::transport(const linalg::Matrix& z0,
                                                std::size_t upto_block) const {
    if (upto_block > cfg_.num_blocks)
        throw std::invalid_argument("CouplingStack::transport: bad blocks");
    Samples out;
    out.log_q.assign(z0.rows(), 0.0);
    // log q(z_mK) = log q0(z0) - Σ log|det J| (Eq. 5).
    std::vector<double> base_lp = base_.log_pdf_rows(z0);
    std::vector<double> log_det(z0.rows(), 0.0);
    linalg::Matrix z = transport_range(z0, 0, upto_block, log_det);
    for (std::size_t r = 0; r < z0.rows(); ++r)
        out.log_q[r] = base_lp[r] - log_det[r];
    out.z = std::move(z);
    return out;
}

linalg::Matrix CouplingStack::transport_range(
    const linalg::Matrix& z0, std::size_t block_begin, std::size_t block_end,
    std::vector<double>& log_det) const {
    if (block_begin > block_end || block_end > cfg_.num_blocks)
        throw std::invalid_argument("CouplingStack::transport_range: range");
    linalg::Matrix z = z0;
    for (std::size_t i = block_begin_layer(block_begin);
         i < block_begin_layer(block_end); ++i)
        z = layers_[i]->forward_values(z, log_det);
    return z;
}

std::vector<double> CouplingStack::log_prob(const linalg::Matrix& x,
                                            std::size_t upto_block) const {
    const linalg::Matrix z0 = inverse(x, upto_block);
    // Recompute the forward log-det along the reconstructed path.
    std::vector<double> log_det(x.rows(), 0.0);
    linalg::Matrix z = z0;
    const std::size_t n_layers = block_begin_layer(upto_block);
    for (std::size_t i = 0; i < n_layers; ++i)
        z = layers_[i]->forward_values(z, log_det);
    std::vector<double> out = base_.log_pdf_rows(z0);
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] -= log_det[r];
    return out;
}

linalg::Matrix CouplingStack::inverse(const linalg::Matrix& x,
                                      std::size_t upto_block) const {
    if (upto_block > cfg_.num_blocks)
        throw std::invalid_argument("CouplingStack::inverse: bad blocks");
    std::vector<double> scratch(x.rows(), 0.0);
    linalg::Matrix z = x;
    for (std::size_t i = block_begin_layer(upto_block); i-- > 0;)
        z = layers_[i]->inverse_values(z, scratch);
    return z;
}

std::vector<autodiff::Var> CouplingStack::block_params(
    std::size_t block) const {
    if (block >= cfg_.num_blocks)
        throw std::out_of_range("CouplingStack::block_params");
    std::vector<autodiff::Var> out;
    for (std::size_t i = block_begin_layer(block);
         i < block_begin_layer(block + 1); ++i)
        for (auto& p : layers_[i]->params()) out.push_back(p);
    return out;
}

std::vector<autodiff::Var> CouplingStack::params() const {
    std::vector<autodiff::Var> out;
    for (const auto& l : layers_)
        for (auto& p : l->params()) out.push_back(p);
    return out;
}

void CouplingStack::freeze_blocks_before(std::size_t upto_block) {
    for (std::size_t b = 0; b < cfg_.num_blocks; ++b) {
        const bool frozen = b < upto_block;
        for (std::size_t i = block_begin_layer(b);
             i < block_begin_layer(b + 1); ++i)
            layers_[i]->set_trainable(!frozen);
    }
}

void CouplingStack::unfreeze_all() { freeze_blocks_before(0); }

std::vector<double> CouplingStack::scale_caps() const {
    std::vector<double> caps;
    caps.reserve(layers_.size());
    for (const auto& layer : layers_) caps.push_back(layer->scale_cap());
    return caps;
}

void CouplingStack::set_scale_caps(const std::vector<double>& caps) {
    if (caps.size() != layers_.size())
        throw std::runtime_error(
            "CouplingStack::set_scale_caps: layer count mismatch");
    for (std::size_t i = 0; i < layers_.size(); ++i)
        layers_[i]->set_scale_cap(caps[i]);
}

void CouplingStack::tighten_scale_cap(std::size_t block, double factor) {
    if (block >= cfg_.num_blocks)
        throw std::out_of_range("CouplingStack::tighten_scale_cap");
    for (std::size_t i = block_begin_layer(block);
         i < block_begin_layer(block + 1); ++i)
        layers_[i]->scale_cap_multiply(factor);
}

}  // namespace nofis::flow
