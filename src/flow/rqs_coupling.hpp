#pragma once

#include <vector>

#include "flow/layer.hpp"
#include "nn/mlp.hpp"

namespace nofis::flow {

/// Masked rational-quadratic spline coupling (Durkan et al., "Neural Spline
/// Flows", 2019) — the expressive third coupling family next to RealNVP
/// affine and NICE additive (DESIGN.md §14).
///
/// The mask splits coordinates exactly like AffineCoupling; the conditioner
/// MLP emits 3·num_bins+1 raw params per transformed dim, mapped to a
/// monotone spline on [-tail_bound, tail_bound]: softmax bin widths/heights
/// with a min-bin floor, softplus knot derivatives with a min-derivative
/// floor, and identity (linear) tails outside the interval. The transform
/// has an analytic inverse (stable quadratic root) and an exact log-det in
/// both directions. The conditioner's output layer is zero-initialised and
/// the parameter mapping is offset so zero raw params give uniform bins and
/// unit knot slopes — a fresh layer is the identity map, matching the other
/// couplings' init contract.
///
/// Unlike the affine coupling there is no log-scale bound: the spline's
/// range is hard-capped by construction, so the scale-cap virtuals keep
/// their no-op defaults and checkpoint snapshots record a 0 cap.
class RqsCoupling final : public FlowLayer {
public:
    RqsCoupling(std::size_t dim, bool pass_first_half,
                std::vector<std::size_t> hidden, rng::Engine& eng,
                std::size_t num_bins = 8, double tail_bound = 3.0);

    std::size_t dim() const noexcept override { return dim_; }
    std::size_t num_bins() const noexcept { return num_bins_; }
    double tail_bound() const noexcept { return tail_bound_; }

    ForwardVar forward(const autodiff::Var& x) const override;

    linalg::Matrix forward_values(const linalg::Matrix& x,
                                  std::vector<double>& log_det) const override;

    /// Exact inverse; `log_det` accumulates the *forward* log|det J| at the
    /// reconstructed input.
    linalg::Matrix inverse_values(const linalg::Matrix& y,
                                  std::vector<double>& log_det) const override;

    std::vector<autodiff::Var> params() const override {
        return net_.params();
    }
    void set_trainable(bool trainable) override {
        net_.set_trainable(trainable);
    }

    std::span<const std::size_t> pass_indices() const noexcept {
        return idx_a_;
    }
    std::span<const std::size_t> transform_indices() const noexcept {
        return idx_b_;
    }

private:
    std::size_t dim_;
    std::size_t num_bins_;
    double tail_bound_;
    std::vector<std::size_t> idx_a_;  // pass-through coordinates
    std::vector<std::size_t> idx_b_;  // transformed coordinates
    nn::MLP net_;
};

}  // namespace nofis::flow
