#pragma once

#include <vector>

#include "flow/layer.hpp"
#include "nn/mlp.hpp"

namespace nofis::flow {

/// RealNVP affine coupling layer (Dinh et al., 2017).
///
/// Splits the D coordinates into an identity ("pass") set A and a
/// transformed set B via a binary mask. The forward map is
///     y_A = x_A
///     y_B = x_B ⊙ exp(s(x_A)) + t(x_A)
/// where [s | t] is produced by one conditioner MLP, and the log-scale is
/// bounded as s = s_cap · tanh(ŝ) for training stability. The Jacobian is
/// triangular, so log|det J| = Σ_B s — exactly the cheap term Eq. (7) of the
/// paper requires.
class AffineCoupling final : public FlowLayer {
public:
    /// `pass_first_half`: if true the first ⌈D/2⌉ coordinates pass through.
    /// Hidden layout of the conditioner is `hidden` (e.g. {32, 32}).
    /// The conditioner's output layer is zero-initialised so a fresh layer
    /// is the identity map.
    AffineCoupling(std::size_t dim, bool pass_first_half,
                   std::vector<std::size_t> hidden, rng::Engine& eng,
                   double scale_cap = 2.0);

    std::size_t dim() const noexcept override { return dim_; }

    /// Differentiable forward: returns y and the per-sample log|det J|
    /// (n x 1) as graph nodes.
    ForwardVar forward(const autodiff::Var& x) const override;

    /// Value-only forward (no graph construction — used for sampling and
    /// the IS estimate). `log_det` accumulates per-row log|det J|.
    linalg::Matrix forward_values(const linalg::Matrix& x,
                                  std::vector<double>& log_det) const override;

    /// Exact inverse; `log_det` accumulates the *forward* log|det J| at the
    /// reconstructed input (so callers can form log q(x) directly).
    linalg::Matrix inverse_values(const linalg::Matrix& y,
                                  std::vector<double>& log_det) const override;

    std::vector<autodiff::Var> params() const override {
        return net_.params();
    }
    void set_trainable(bool trainable) override {
        net_.set_trainable(trainable);
    }
    void scale_cap_multiply(double factor) override { scale_cap_ *= factor; }
    double scale_cap() const noexcept override { return scale_cap_; }
    void set_scale_cap(double cap) override { scale_cap_ = cap; }

    std::span<const std::size_t> pass_indices() const noexcept { return idx_a_; }
    std::span<const std::size_t> transform_indices() const noexcept {
        return idx_b_;
    }

private:
    /// Computes bounded log-scale s and shift t (value-only) from x_A.
    void conditioner_values(const linalg::Matrix& xa, linalg::Matrix& s,
                            linalg::Matrix& t) const;

    std::size_t dim_;
    std::vector<std::size_t> idx_a_;  // pass-through coordinates
    std::vector<std::size_t> idx_b_;  // transformed coordinates
    double scale_cap_;
    nn::MLP net_;
};

}  // namespace nofis::flow
