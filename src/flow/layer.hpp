#pragma once

#include <memory>
#include <vector>

#include "autodiff/var.hpp"

namespace nofis::flow {

/// Interface of one invertible flow transformation f_i (Eq. 4 of the
/// paper): a differentiable forward for training, cheap value-only forward
/// for sampling, and an exact inverse for density evaluation. Implemented
/// by AffineCoupling (RealNVP), AdditiveCoupling (NICE), and ActNorm.
class FlowLayer {
public:
    virtual ~FlowLayer() = default;

    virtual std::size_t dim() const noexcept = 0;

    struct ForwardVar {
        autodiff::Var y;
        autodiff::Var log_det;  ///< per-sample log|det J| (n x 1)
    };
    /// Graph forward (training path).
    virtual ForwardVar forward(const autodiff::Var& x) const = 0;

    /// Value-only forward; adds per-row log|det J| into `log_det`.
    virtual linalg::Matrix forward_values(
        const linalg::Matrix& x, std::vector<double>& log_det) const = 0;

    /// Exact inverse; adds the *forward* log|det J| at the reconstructed
    /// input into `log_det`.
    virtual linalg::Matrix inverse_values(
        const linalg::Matrix& y, std::vector<double>& log_det) const = 0;

    virtual std::vector<autodiff::Var> params() const = 0;
    virtual void set_trainable(bool trainable) = 0;

    /// Multiplies the layer's log-scale bound by `factor` (in (0, 1] to
    /// tighten). Layers without a scale bound ignore it; the stage
    /// rollback-retry path uses this to rein in exploding couplings.
    virtual void scale_cap_multiply(double /*factor*/) {}

    /// Current log-scale bound; 0 for layers without one. Retry-tightened
    /// caps are run state, so checkpoint snapshots persist them alongside
    /// the parameters (a resumed run must clamp exactly as the original
    /// would have).
    virtual double scale_cap() const noexcept { return 0.0; }
    /// Restores a captured bound; no-op for layers without one.
    virtual void set_scale_cap(double /*cap*/) {}
};

}  // namespace nofis::flow
