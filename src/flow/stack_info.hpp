#pragma once

#include <string>

#include "flow/coupling_stack.hpp"

namespace nofis::flow {

/// Introspection record of a coupling stack: the architecture header plus
/// the parameter tally, without touching any parameter value. The serving
/// registry validates loaded models against this, and `nofis_cli info`
/// prints it for an on-disk `.nofisflow` file.
struct StackInfo {
    std::size_t dim = 0;
    std::size_t num_blocks = 0;        ///< M
    std::size_t layers_per_block = 0;  ///< K
    CouplingKind coupling = CouplingKind::kAffine;
    bool use_actnorm = false;
    std::vector<std::size_t> hidden;
    double scale_cap = 0.0;
    std::size_t rqs_bins = 0;   ///< spline bins (0 unless coupling == kRqs)
    double rqs_tail = 0.0;      ///< spline half-width (0 unless kRqs)
    std::size_t param_tensors = 0;  ///< parameter matrices in the stack
    std::size_t param_values = 0;   ///< total scalar parameters
};

/// "affine" / "additive" / "rqs" — the same tokens the .nofisflow header
/// uses.
std::string coupling_kind_name(CouplingKind kind);

/// Introspects an in-memory stack.
StackInfo stack_info(const CouplingStack& stack);

/// Loads `path` (validating it exactly as load_stack does) and introspects
/// it. Throws std::runtime_error on a missing or malformed file.
StackInfo stack_info(const std::string& path);

}  // namespace nofis::flow
