#include "flow/actnorm.hpp"

#include <stdexcept>
#include <vector>

#include "autodiff/ops.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/scalar_math.hpp"

namespace nofis::flow {

ActNorm::ActNorm(std::size_t dim)
    : dim_(dim),
      log_scale_(linalg::Matrix(1, dim), /*requires_grad=*/true),
      shift_(linalg::Matrix(1, dim), /*requires_grad=*/true) {
    if (dim == 0) throw std::invalid_argument("ActNorm: dim must be > 0");
}

FlowLayer::ForwardVar ActNorm::forward(const autodiff::Var& x) const {
    using namespace autodiff;
    if (x.cols() != dim_)
        throw std::invalid_argument("ActNorm::forward: dim mismatch");
    const std::size_t n = x.rows();
    // Broadcast the 1 x d parameters over the batch by materialising the
    // row-replicated scale: y = x ⊙ exp(S) + B with S, B broadcast.
    // exp(s) broadcast: build via add_bias on a zero matrix (cheap trick
    // that keeps the graph simple and exact).
    Var zero(linalg::Matrix(n, dim_));
    Var s_rows = add_bias(zero, log_scale_);  // n x d, each row = log_scale
    Var y = add_bias(mul(x, exp_v(s_rows)), shift_);
    // log|det J| per sample = Σ_d log_scale_d (same for all rows).
    Var log_det = row_sums(s_rows);
    return {y, log_det};
}

linalg::Matrix ActNorm::forward_values(const linalg::Matrix& x,
                                       std::vector<double>& log_det) const {
    if (x.cols() != dim_ || log_det.size() != x.rows())
        throw std::invalid_argument("ActNorm::forward_values");
    const auto& s = log_scale_.value();
    const auto& b = shift_.value();
    double ld = 0.0;
    for (std::size_t c = 0; c < dim_; ++c) ld += s(0, c);
    if (linalg::kernels::simd_active()) {
        // Hoist the per-column exp out of the batch loop — exp of the same
        // input is the same double, so this is bitwise-identical to the
        // reference loop while doing dim exps instead of rows·dim.
        std::vector<double> scale(dim_);
        for (std::size_t c = 0; c < dim_; ++c)
            scale[c] = linalg::kernels::k_exp(s(0, c));
        linalg::Matrix y(x.rows(), dim_);
        linalg::kernels::scale_shift_rows(x.data(), scale.data(), b.data(),
                                          y.data(), dim_, 0, x.rows());
        for (std::size_t r = 0; r < x.rows(); ++r) log_det[r] += ld;
        return y;
    }
    linalg::Matrix y = x;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < dim_; ++c)
            y(r, c) = x(r, c) * linalg::kernels::k_exp(s(0, c)) + b(0, c);
        log_det[r] += ld;
    }
    return y;
}

linalg::Matrix ActNorm::inverse_values(const linalg::Matrix& y,
                                       std::vector<double>& log_det) const {
    if (y.cols() != dim_ || log_det.size() != y.rows())
        throw std::invalid_argument("ActNorm::inverse_values");
    const auto& s = log_scale_.value();
    const auto& b = shift_.value();
    double ld = 0.0;
    for (std::size_t c = 0; c < dim_; ++c) ld += s(0, c);
    linalg::Matrix x = y;
    for (std::size_t r = 0; r < y.rows(); ++r) {
        for (std::size_t c = 0; c < dim_; ++c)
            x(r, c) = (y(r, c) - b(0, c)) * linalg::kernels::k_exp(-s(0, c));
        log_det[r] += ld;
    }
    return x;
}

}  // namespace nofis::flow
