#pragma once

#include "flow/layer.hpp"

namespace nofis::flow {

/// Activation normalisation (Kingma & Dhariwal, Glow 2018): a trainable
/// per-dimension affine map y = x ⊙ exp(s) + b with
/// log|det J| = Σ_d s_d (identical for every sample). Initialised to the
/// identity; one ActNorm in front of each coupling lets the stack rescale
/// globally without spending coupling capacity on it.
class ActNorm final : public FlowLayer {
public:
    explicit ActNorm(std::size_t dim);

    std::size_t dim() const noexcept override { return dim_; }

    ForwardVar forward(const autodiff::Var& x) const override;
    linalg::Matrix forward_values(const linalg::Matrix& x,
                                  std::vector<double>& log_det) const override;
    linalg::Matrix inverse_values(const linalg::Matrix& y,
                                  std::vector<double>& log_det) const override;

    std::vector<autodiff::Var> params() const override {
        return {log_scale_, shift_};
    }
    void set_trainable(bool trainable) override {
        log_scale_.set_requires_grad(trainable);
        shift_.set_requires_grad(trainable);
    }

private:
    std::size_t dim_;
    autodiff::Var log_scale_;  ///< 1 x dim
    autodiff::Var shift_;      ///< 1 x dim
};

}  // namespace nofis::flow
