#include "flow/additive_coupling.hpp"

#include <stdexcept>

#include "autodiff/ops.hpp"

namespace nofis::flow {

AdditiveCoupling::AdditiveCoupling(std::size_t dim, bool pass_first_half,
                                   std::vector<std::size_t> hidden,
                                   rng::Engine& eng)
    : dim_(dim),
      net_([&] {
          if (dim < 2)
              throw std::invalid_argument(
                  "AdditiveCoupling: dim must be >= 2");
          const std::size_t half = (dim + 1) / 2;
          const std::size_t na = pass_first_half ? half : dim - half;
          std::vector<std::size_t> layout;
          layout.push_back(na);
          for (auto h : hidden) layout.push_back(h);
          layout.push_back(dim - na);
          return nn::MLP(layout, nn::Activation::kTanh, eng,
                         /*out_gain=*/0.0);
      }()) {
    const std::size_t half = (dim + 1) / 2;
    if (pass_first_half) {
        for (std::size_t i = 0; i < half; ++i) idx_a_.push_back(i);
        for (std::size_t i = half; i < dim; ++i) idx_b_.push_back(i);
    } else {
        for (std::size_t i = half; i < dim; ++i) idx_a_.push_back(i);
        for (std::size_t i = 0; i < half; ++i) idx_b_.push_back(i);
    }
}

FlowLayer::ForwardVar AdditiveCoupling::forward(const autodiff::Var& x) const {
    using namespace autodiff;
    if (x.cols() != dim_)
        throw std::invalid_argument("AdditiveCoupling::forward: dim mismatch");
    Var xa = select_cols(x, idx_a_);
    Var xb = select_cols(x, idx_b_);
    Var t = net_.forward(xa);
    Var yb = add(xb, t);
    Var y = combine_cols(xa, idx_a_, yb, idx_b_, dim_);
    // Volume preserving: log|det J| = 0 for every sample.
    Var log_det(linalg::Matrix(x.rows(), 1));
    return {y, log_det};
}

linalg::Matrix AdditiveCoupling::forward_values(
    const linalg::Matrix& x, std::vector<double>& log_det) const {
    if (x.cols() != dim_ || log_det.size() != x.rows())
        throw std::invalid_argument("AdditiveCoupling::forward_values");
    const linalg::Matrix t = net_.predict(x.select_cols(idx_a_));
    linalg::Matrix y = x;
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t j = 0; j < idx_b_.size(); ++j)
            y(r, idx_b_[j]) += t(r, j);
    return y;
}

linalg::Matrix AdditiveCoupling::inverse_values(
    const linalg::Matrix& y, std::vector<double>& log_det) const {
    if (y.cols() != dim_ || log_det.size() != y.rows())
        throw std::invalid_argument("AdditiveCoupling::inverse_values");
    const linalg::Matrix t = net_.predict(y.select_cols(idx_a_));
    linalg::Matrix x = y;
    for (std::size_t r = 0; r < y.rows(); ++r)
        for (std::size_t j = 0; j < idx_b_.size(); ++j)
            x(r, idx_b_[j]) -= t(r, j);
    return x;
}

}  // namespace nofis::flow
