#pragma once

#include "flow/layer.hpp"
#include "nn/mlp.hpp"

namespace nofis::flow {

/// NICE additive coupling layer (Dinh et al., 2014):
///     y_A = x_A,    y_B = x_B + t(x_A),
/// volume-preserving (log|det J| = 0). Cheaper and more stable than the
/// affine coupling, but it cannot reshape density magnitudes — only move
/// them — which is why RealNVP is the paper's backbone; the difference is
/// measured by bench/ablation_coupling.
class AdditiveCoupling final : public FlowLayer {
public:
    AdditiveCoupling(std::size_t dim, bool pass_first_half,
                     std::vector<std::size_t> hidden, rng::Engine& eng);

    std::size_t dim() const noexcept override { return dim_; }

    ForwardVar forward(const autodiff::Var& x) const override;
    linalg::Matrix forward_values(const linalg::Matrix& x,
                                  std::vector<double>& log_det) const override;
    linalg::Matrix inverse_values(const linalg::Matrix& y,
                                  std::vector<double>& log_det) const override;

    std::vector<autodiff::Var> params() const override {
        return net_.params();
    }
    void set_trainable(bool trainable) override {
        net_.set_trainable(trainable);
    }

private:
    std::size_t dim_;
    std::vector<std::size_t> idx_a_;
    std::vector<std::size_t> idx_b_;
    nn::MLP net_;
};

}  // namespace nofis::flow
