#pragma once

#include <memory>
#include <vector>

#include "dist/standard_normal.hpp"
#include "flow/actnorm.hpp"
#include "flow/additive_coupling.hpp"
#include "flow/coupling.hpp"
#include "flow/rqs_coupling.hpp"

namespace nofis::flow {

/// Which coupling family builds the stack.
enum class CouplingKind {
    kAffine,    ///< RealNVP (the paper's backbone)
    kAdditive,  ///< NICE — volume-preserving ablation
    kRqs,       ///< monotone rational-quadratic splines (DESIGN.md §14)
};

/// Configuration for a block-structured coupling stack.
struct StackConfig {
    std::size_t dim = 2;
    std::size_t num_blocks = 4;        ///< M in the paper
    std::size_t layers_per_block = 8;  ///< K in the paper
    std::vector<std::size_t> hidden = {32, 32};
    double scale_cap = 2.0;
    CouplingKind coupling = CouplingKind::kAffine;
    /// Insert a trainable ActNorm in front of every coupling (Glow-style);
    /// the extra layers belong to the same block for freezing purposes.
    bool use_actnorm = false;
    /// Spline bins per transformed dim (kRqs only).
    std::size_t rqs_bins = 8;
    /// Spline interval half-width B — identity tails outside [-B, B]
    /// (kRqs only).
    double rqs_tail = 3.0;
};

/// A stack of M·K affine couplings with the paper's anchor semantics:
/// block m (layers (m-1)K+1 .. mK) transports anchor distribution
/// q_{(m-1)K} to q_{mK}. Masks alternate per layer so every coordinate is
/// transformed at least ⌊K/2⌋ times per block.
///
/// The base distribution is fixed to N(0, I_D) = the data-generating p, per
/// Section 2.1 of the paper (q_0 = p).
class CouplingStack {
public:
    CouplingStack(const StackConfig& cfg, rng::Engine& eng);

    std::size_t dim() const noexcept { return cfg_.dim; }
    std::size_t num_blocks() const noexcept { return cfg_.num_blocks; }
    std::size_t layers_per_block() const noexcept {
        return cfg_.layers_per_block;
    }

    // --- differentiable path (training) -------------------------------------
    struct ForwardVar {
        autodiff::Var z;        ///< anchor output z_{mK} (n x D)
        autodiff::Var log_det;  ///< Σ_j log|det J_j| per sample (n x 1)
    };
    /// Pushes graph input z0 through blocks [0, upto_block). The log-det sum
    /// covers all mK layers (Eq. 8 sums j = 1..mK; frozen layers contribute
    /// constants that the graph prunes automatically).
    ForwardVar forward(const autodiff::Var& z0, std::size_t upto_block) const;

    /// Graph forward through blocks [block_begin, block_end) only — lets the
    /// stage-m training run frozen blocks on the cheap value path and build
    /// a graph just for the trainable tail.
    ForwardVar forward_range(const autodiff::Var& z, std::size_t block_begin,
                             std::size_t block_end) const;

    // --- value paths (sampling / density) ------------------------------------
    struct Samples {
        linalg::Matrix z;                ///< (n x D) samples of q_{mK}
        std::vector<double> log_q;       ///< exact log q_{mK}(z) per sample
    };
    /// Exact sampling from anchor distribution q_{mK}: draws z0 ~ N(0,I) and
    /// transports it, tracking log q via the change of variables.
    Samples sample(rng::Engine& eng, std::size_t n,
                   std::size_t upto_block) const;

    /// Transports given base points (rows of z0) instead of fresh draws.
    Samples transport(const linalg::Matrix& z0, std::size_t upto_block) const;

    /// Value-only transport through blocks [block_begin, block_end);
    /// accumulates per-row forward log|det J| into `log_det`.
    linalg::Matrix transport_range(const linalg::Matrix& z,
                                   std::size_t block_begin,
                                   std::size_t block_end,
                                   std::vector<double>& log_det) const;

    /// Exact density: inverts the first `upto_block` blocks at arbitrary
    /// points x and returns log q_{mK}(x) per row.
    std::vector<double> log_prob(const linalg::Matrix& x,
                                 std::size_t upto_block) const;

    /// Inverse transport: maps anchor-space points back to base space.
    linalg::Matrix inverse(const linalg::Matrix& x,
                           std::size_t upto_block) const;

    // --- parameter management -------------------------------------------------
    /// Parameters of one block (for stage-wise optimizers).
    std::vector<autodiff::Var> block_params(std::size_t block) const;
    /// All parameters.
    std::vector<autodiff::Var> params() const;
    /// Freezes blocks [0, upto_block) and unfreezes the rest — the paper's
    /// "gray-filled arrows" semantics at training stage upto_block+1.
    void freeze_blocks_before(std::size_t upto_block);
    /// Makes every block trainable (the paper's NoFreeze ablation).
    void unfreeze_all();

    /// Tightens the log-scale bound of every layer in `block` by `factor`
    /// (in (0, 1]); the stage rollback-retry path uses this to stop affine
    /// couplings from re-exploding on the retried stage.
    void tighten_scale_cap(std::size_t block, double factor);

    /// Per-physical-layer log-scale bounds (0 for layers without one), in
    /// layer order. Retry-tightened caps are run state the checkpoint
    /// subsystem persists next to the parameters.
    std::vector<double> scale_caps() const;
    /// Restores caps captured by scale_caps() on the same architecture;
    /// throws std::runtime_error on a layer-count mismatch.
    void set_scale_caps(const std::vector<double>& caps);

    const dist::StandardNormal& base() const noexcept { return base_; }
    const StackConfig& config() const noexcept { return cfg_; }

private:
    /// Physical layer index range of one logical block (ActNorm layers
    /// belong to the block of the coupling they precede).
    std::size_t block_begin_layer(std::size_t block) const {
        return block * layers_per_physical_block_;
    }

    StackConfig cfg_;
    std::size_t layers_per_physical_block_;
    dist::StandardNormal base_;
    std::vector<std::unique_ptr<FlowLayer>> layers_;
};

}  // namespace nofis::flow
