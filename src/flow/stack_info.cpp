#include "flow/stack_info.hpp"

#include "flow/serialize.hpp"

namespace nofis::flow {

std::string coupling_kind_name(CouplingKind kind) {
    switch (kind) {
        case CouplingKind::kAffine:
            return "affine";
        case CouplingKind::kAdditive:
            return "additive";
        case CouplingKind::kRqs:
            return "rqs";
    }
    return "affine";
}

StackInfo stack_info(const CouplingStack& stack) {
    const StackConfig& cfg = stack.config();
    StackInfo info;
    info.dim = cfg.dim;
    info.num_blocks = cfg.num_blocks;
    info.layers_per_block = cfg.layers_per_block;
    info.coupling = cfg.coupling;
    info.use_actnorm = cfg.use_actnorm;
    info.hidden = cfg.hidden;
    info.scale_cap = cfg.scale_cap;
    if (cfg.coupling == CouplingKind::kRqs) {
        info.rqs_bins = cfg.rqs_bins;
        info.rqs_tail = cfg.rqs_tail;
    }
    for (const auto& p : stack.params()) {
        ++info.param_tensors;
        info.param_values += p.value().rows() * p.value().cols();
    }
    return info;
}

StackInfo stack_info(const std::string& path) {
    return stack_info(load_stack(path));
}

}  // namespace nofis::flow
