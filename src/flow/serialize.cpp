#include "flow/serialize.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "util/atomic_file.hpp"
#include "util/ios_guard.hpp"

namespace nofis::flow {

namespace {
constexpr const char* kMagic = "nofisflow-v1";

// Sanity bounds on the header of a loaded file. A truncated or corrupt
// stream can otherwise hand the architecture constructor absurd sizes and
// trigger huge allocations before any read fails; every real flow in this
// repo is orders of magnitude below these caps.
constexpr std::size_t kMaxDim = 1u << 20;
constexpr std::size_t kMaxBlocks = 4096;
constexpr std::size_t kMaxLayersPerBlock = 4096;
constexpr std::size_t kMaxHiddenLayers = 256;
constexpr std::size_t kMaxHiddenWidth = 1u << 20;

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("flow serialisation: " + what);
}

void check_bound(const char* what, std::size_t value, std::size_t lo,
                 std::size_t hi) {
    if (value < lo || value > hi)
        fail(std::string("implausible ") + what + " " +
             std::to_string(value) + " in header (corrupt file?)");
}
}  // namespace

void save_stack(const CouplingStack& stack, std::ostream& os) {
    const StackConfig& cfg = stack.config();
    os << kMagic << '\n';
    os << cfg.dim << ' ' << cfg.num_blocks << ' ' << cfg.layers_per_block
       << ' ' << cfg.scale_cap << ' ';
    switch (cfg.coupling) {
        case CouplingKind::kAffine:
            os << "affine";
            break;
        case CouplingKind::kAdditive:
            os << "additive";
            break;
        case CouplingKind::kRqs:
            os << "rqs";
            break;
    }
    os << ' ' << (cfg.use_actnorm ? 1 : 0);
    // The spline header fields ride only on the "rqs" tag, so affine and
    // additive files stay byte-identical to the pre-rqs format (and old
    // readers reject rqs files at the kind token with a clear message).
    if (cfg.coupling == CouplingKind::kRqs) {
        const util::IosStateGuard guard(os);
        os << ' ' << cfg.rqs_bins << ' ' << std::setprecision(17)
           << cfg.rqs_tail;
    }
    os << '\n';
    os << cfg.hidden.size();
    for (auto h : cfg.hidden) os << ' ' << h;
    os << '\n';

    const auto params = stack.params();
    os << params.size() << '\n';
    {
        // Full-precision doubles for the round-trip; the guard keeps the
        // caller's precision/flags from being clobbered past this call.
        const util::IosStateGuard guard(os);
        os << std::setprecision(17);
        for (const auto& p : params) {
            const auto& m = p.value();
            os << m.rows() << ' ' << m.cols();
            for (double v : m.flat()) os << ' ' << v;
            os << '\n';
        }
    }
    if (!os) fail("write error");
}

void save_stack(const CouplingStack& stack, const std::string& path) {
    // Atomic replace (temp + fsync + rename): an interrupted or faulted
    // save can never leave a half-written file where a good proposal was.
    util::AtomicFile file(path);
    save_stack(stack, file.stream());
    file.commit();
}

CouplingStack load_stack(std::istream& is) {
    std::string magic;
    is >> magic;
    if (magic != kMagic) fail("bad magic (expected " + std::string(kMagic) + ")");

    StackConfig cfg;
    std::string kind;
    int actnorm = 0;
    is >> cfg.dim >> cfg.num_blocks >> cfg.layers_per_block >>
        cfg.scale_cap >> kind >> actnorm;
    if (!is) fail("truncated header");
    if (kind != "affine" && kind != "additive" && kind != "rqs")
        fail("unknown coupling kind '" + kind + "'");
    cfg.coupling = kind == "affine"     ? CouplingKind::kAffine
                   : kind == "additive" ? CouplingKind::kAdditive
                                        : CouplingKind::kRqs;
    cfg.use_actnorm = actnorm != 0;
    if (cfg.coupling == CouplingKind::kRqs) {
        is >> cfg.rqs_bins >> cfg.rqs_tail;
        if (!is) fail("truncated rqs header");
        check_bound("rqs bin count", cfg.rqs_bins, 1,
                    linalg::kernels::kMaxRqsBins);
        if (!std::isfinite(cfg.rqs_tail) || cfg.rqs_tail <= 0.0)
            fail("implausible rqs tail bound in header (corrupt file?)");
    }
    check_bound("dim", cfg.dim, 1, kMaxDim);
    check_bound("block count", cfg.num_blocks, 1, kMaxBlocks);
    check_bound("layers per block", cfg.layers_per_block, 1,
                kMaxLayersPerBlock);
    if (!std::isfinite(cfg.scale_cap) || cfg.scale_cap <= 0.0)
        fail("implausible scale cap in header (corrupt file?)");
    std::size_t hidden_count = 0;
    is >> hidden_count;
    if (!is) fail("truncated header");
    check_bound("hidden layer count", hidden_count, 0, kMaxHiddenLayers);
    cfg.hidden.resize(hidden_count);
    for (auto& h : cfg.hidden) {
        is >> h;
        if (is) check_bound("hidden width", h, 1, kMaxHiddenWidth);
    }
    if (!is) fail("truncated header");

    // Architecture is reconstructed, then every parameter is overwritten,
    // so the init engine's seed is irrelevant.
    rng::Engine dummy(0);
    CouplingStack stack(cfg, dummy);

    std::size_t param_count = 0;
    is >> param_count;
    auto params = stack.params();
    if (param_count != params.size())
        fail("parameter count mismatch (file " + std::to_string(param_count) +
             ", architecture " + std::to_string(params.size()) + ")");
    for (auto& p : params) {
        std::size_t rows = 0;
        std::size_t cols = 0;
        is >> rows >> cols;
        if (rows != p.value().rows() || cols != p.value().cols())
            fail("parameter shape mismatch");
        for (double& v : p.mutable_value().flat()) is >> v;
    }
    if (!is) fail("truncated parameters");
    return stack;
}

CouplingStack load_stack(const std::string& path) {
    std::ifstream is(path);
    if (!is) fail("cannot open '" + path + "' for reading");
    return load_stack(is);
}

ParamSnapshot snapshot_params(const CouplingStack& stack) {
    ParamSnapshot snap;
    const auto params = stack.params();
    snap.reserve(params.size());
    for (const auto& p : params) snap.push_back(p.value());
    return snap;
}

void restore_params(CouplingStack& stack, const ParamSnapshot& snapshot) {
    auto params = stack.params();
    if (params.size() != snapshot.size())
        fail("snapshot parameter count mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
        const auto& src = snapshot[i];
        auto& dst = params[i].mutable_value();
        if (src.rows() != dst.rows() || src.cols() != dst.cols())
            fail("snapshot parameter shape mismatch");
        dst = src;
    }
}

}  // namespace nofis::flow
