#include "flow/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace nofis::flow {

namespace {
constexpr const char* kMagic = "nofisflow-v1";

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("flow serialisation: " + what);
}
}  // namespace

void save_stack(const CouplingStack& stack, std::ostream& os) {
    const StackConfig& cfg = stack.config();
    os << kMagic << '\n';
    os << cfg.dim << ' ' << cfg.num_blocks << ' ' << cfg.layers_per_block
       << ' ' << cfg.scale_cap << ' '
       << (cfg.coupling == CouplingKind::kAffine ? "affine" : "additive")
       << ' ' << (cfg.use_actnorm ? 1 : 0) << '\n';
    os << cfg.hidden.size();
    for (auto h : cfg.hidden) os << ' ' << h;
    os << '\n';

    const auto params = stack.params();
    os << params.size() << '\n';
    os << std::setprecision(17);
    for (const auto& p : params) {
        const auto& m = p.value();
        os << m.rows() << ' ' << m.cols();
        for (double v : m.flat()) os << ' ' << v;
        os << '\n';
    }
    if (!os) fail("write error");
}

void save_stack(const CouplingStack& stack, const std::string& path) {
    std::ofstream os(path);
    if (!os) fail("cannot open '" + path + "' for writing");
    save_stack(stack, os);
}

CouplingStack load_stack(std::istream& is) {
    std::string magic;
    is >> magic;
    if (magic != kMagic) fail("bad magic (expected " + std::string(kMagic) + ")");

    StackConfig cfg;
    std::string kind;
    int actnorm = 0;
    is >> cfg.dim >> cfg.num_blocks >> cfg.layers_per_block >>
        cfg.scale_cap >> kind >> actnorm;
    cfg.coupling =
        kind == "affine" ? CouplingKind::kAffine : CouplingKind::kAdditive;
    cfg.use_actnorm = actnorm != 0;
    std::size_t hidden_count = 0;
    is >> hidden_count;
    cfg.hidden.resize(hidden_count);
    for (auto& h : cfg.hidden) is >> h;
    if (!is) fail("truncated header");

    // Architecture is reconstructed, then every parameter is overwritten,
    // so the init engine's seed is irrelevant.
    rng::Engine dummy(0);
    CouplingStack stack(cfg, dummy);

    std::size_t param_count = 0;
    is >> param_count;
    auto params = stack.params();
    if (param_count != params.size())
        fail("parameter count mismatch (file " + std::to_string(param_count) +
             ", architecture " + std::to_string(params.size()) + ")");
    for (auto& p : params) {
        std::size_t rows = 0;
        std::size_t cols = 0;
        is >> rows >> cols;
        if (rows != p.value().rows() || cols != p.value().cols())
            fail("parameter shape mismatch");
        for (double& v : p.mutable_value().flat()) is >> v;
    }
    if (!is) fail("truncated parameters");
    return stack;
}

CouplingStack load_stack(const std::string& path) {
    std::ifstream is(path);
    if (!is) fail("cannot open '" + path + "' for reading");
    return load_stack(is);
}

ParamSnapshot snapshot_params(const CouplingStack& stack) {
    ParamSnapshot snap;
    const auto params = stack.params();
    snap.reserve(params.size());
    for (const auto& p : params) snap.push_back(p.value());
    return snap;
}

void restore_params(CouplingStack& stack, const ParamSnapshot& snapshot) {
    auto params = stack.params();
    if (params.size() != snapshot.size())
        fail("snapshot parameter count mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
        const auto& src = snapshot[i];
        auto& dst = params[i].mutable_value();
        if (src.rows() != dst.rows() || src.cols() != dst.cols())
            fail("snapshot parameter shape mismatch");
        dst = src;
    }
}

}  // namespace nofis::flow
