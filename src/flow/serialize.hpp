#pragma once

#include <iosfwd>
#include <string>

#include "flow/coupling_stack.hpp"

namespace nofis::flow {

/// Text serialisation of a trained coupling stack ("*.nofisflow"): the
/// StackConfig header followed by every parameter matrix in layer order,
/// at full double precision. A saved proposal can be reloaded in a later
/// process and used for additional importance-sampling draws without
/// retraining (see NofisEstimator::importance_estimate and the CLI's
/// train/reuse commands).
void save_stack(const CouplingStack& stack, std::ostream& os);
void save_stack(const CouplingStack& stack, const std::string& path);

/// Loads a stack saved by save_stack. Throws std::runtime_error on a
/// malformed or version-mismatched file.
CouplingStack load_stack(std::istream& is);
CouplingStack load_stack(const std::string& path);

/// In-memory checkpoint of every parameter value, in the same layer order
/// save_stack writes them. The stage rollback-retry machinery snapshots
/// before training a stage and restores on divergence — same parameter
/// walk as the on-disk format, minus the stream round-trip.
using ParamSnapshot = std::vector<linalg::Matrix>;
ParamSnapshot snapshot_params(const CouplingStack& stack);
/// Restores a snapshot taken from the *same* architecture; throws
/// std::runtime_error on a layout mismatch.
void restore_params(CouplingStack& stack, const ParamSnapshot& snapshot);

}  // namespace nofis::flow
