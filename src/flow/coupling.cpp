#include "flow/coupling.hpp"

#include <numeric>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/scalar_math.hpp"
#include "parallel/thread_pool.hpp"

namespace nofis::flow {

namespace {

namespace kernels = linalg::kernels;

/// Transformed elements below this count run inline; each element costs a
/// tanh + exp, so the bar is much lower than the matmul threshold.
constexpr std::size_t kParallelAffineMinElems = 1u << 12;

std::vector<std::size_t> make_hidden_layout(std::size_t in,
                                            std::vector<std::size_t> hidden,
                                            std::size_t out) {
    std::vector<std::size_t> sizes;
    sizes.push_back(in);
    for (auto h : hidden) sizes.push_back(h);
    sizes.push_back(out);
    return sizes;
}
}  // namespace

AffineCoupling::AffineCoupling(std::size_t dim, bool pass_first_half,
                               std::vector<std::size_t> hidden,
                               rng::Engine& eng, double scale_cap)
    : dim_(dim),
      scale_cap_(scale_cap),
      net_([&] {
          if (dim < 2)
              throw std::invalid_argument("AffineCoupling: dim must be >= 2");
          const std::size_t half = (dim + 1) / 2;
          const std::size_t na = pass_first_half ? half : dim - half;
          const std::size_t nb = dim - na;
          return nn::MLP(make_hidden_layout(na, std::move(hidden), 2 * nb),
                         nn::Activation::kTanh, eng, /*out_gain=*/0.0);
      }()) {
    const std::size_t half = (dim + 1) / 2;
    if (pass_first_half) {
        for (std::size_t i = 0; i < half; ++i) idx_a_.push_back(i);
        for (std::size_t i = half; i < dim; ++i) idx_b_.push_back(i);
    } else {
        for (std::size_t i = half; i < dim; ++i) idx_a_.push_back(i);
        for (std::size_t i = 0; i < half; ++i) idx_b_.push_back(i);
    }
}

FlowLayer::ForwardVar AffineCoupling::forward(const autodiff::Var& x) const {
    using namespace autodiff;
    if (x.cols() != dim_)
        throw std::invalid_argument("AffineCoupling::forward: dim mismatch");
    const std::size_t nb = idx_b_.size();

    Var xa = select_cols(x, idx_a_);
    Var xb = select_cols(x, idx_b_);
    Var h = net_.forward(xa);

    std::vector<std::size_t> s_idx(nb);
    std::vector<std::size_t> t_idx(nb);
    std::iota(s_idx.begin(), s_idx.end(), std::size_t{0});
    std::iota(t_idx.begin(), t_idx.end(), nb);

    Var s = scale(tanh_v(select_cols(h, s_idx)), scale_cap_);
    Var t = select_cols(h, t_idx);

    Var yb = add(mul(xb, exp_v(s)), t);
    Var y = combine_cols(xa, idx_a_, yb, idx_b_, dim_);
    Var log_det = row_sums(s);
    return {y, log_det};
}

void AffineCoupling::conditioner_values(const linalg::Matrix& xa,
                                        linalg::Matrix& s,
                                        linalg::Matrix& t) const {
    const std::size_t nb = idx_b_.size();
    const linalg::Matrix h = net_.predict(xa);
    s = linalg::Matrix(h.rows(), nb);
    t = linalg::Matrix(h.rows(), nb);
    for (std::size_t r = 0; r < h.rows(); ++r)
        for (std::size_t c = 0; c < nb; ++c) {
            s(r, c) = scale_cap_ * kernels::k_tanh(h(r, c));
            t(r, c) = h(r, c + nb);
        }
}

linalg::Matrix AffineCoupling::forward_values(
    const linalg::Matrix& x, std::vector<double>& log_det) const {
    if (x.cols() != dim_)
        throw std::invalid_argument("AffineCoupling::forward_values: dim");
    if (log_det.size() != x.rows())
        throw std::invalid_argument("AffineCoupling::forward_values: log_det");

    const std::size_t nb = idx_b_.size();
    if (kernels::simd_active()) {
        // Fused path: the raw conditioner output h feeds affine_fwd_rows
        // directly — no s/t temporaries, tanh/exp applied in the same order
        // as the reference loop so results stay bitwise identical.
        const linalg::Matrix h = net_.predict(x.select_cols(idx_a_));
        linalg::Matrix y = x;
        auto row_range = [&](std::size_t r0, std::size_t r1) {
            kernels::affine_fwd_rows(x.data(), h.data(), idx_b_.data(), nb,
                                     scale_cap_, dim_, y.data(),
                                     log_det.data(), r0, r1);
        };
        if (x.rows() * nb >= kParallelAffineMinElems)
            parallel::parallel_for(x.rows(), row_range);
        else
            row_range(0, x.rows());
        return y;
    }

    linalg::Matrix s;
    linalg::Matrix t;
    conditioner_values(x.select_cols(idx_a_), s, t);

    linalg::Matrix y = x;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        double ld = 0.0;
        for (std::size_t j = 0; j < idx_b_.size(); ++j) {
            const std::size_t c = idx_b_[j];
            y(r, c) = x(r, c) * kernels::k_exp(s(r, j)) + t(r, j);
            ld += s(r, j);
        }
        log_det[r] += ld;
    }
    return y;
}

linalg::Matrix AffineCoupling::inverse_values(
    const linalg::Matrix& y, std::vector<double>& log_det) const {
    if (y.cols() != dim_)
        throw std::invalid_argument("AffineCoupling::inverse_values: dim");
    if (log_det.size() != y.rows())
        throw std::invalid_argument("AffineCoupling::inverse_values: log_det");

    // y_A == x_A, so the conditioner sees the same input as in forward.
    const std::size_t nb = idx_b_.size();
    if (kernels::simd_active()) {
        const linalg::Matrix h = net_.predict(y.select_cols(idx_a_));
        linalg::Matrix x = y;
        auto row_range = [&](std::size_t r0, std::size_t r1) {
            kernels::affine_inv_rows(y.data(), h.data(), idx_b_.data(), nb,
                                     scale_cap_, dim_, x.data(),
                                     log_det.data(), r0, r1);
        };
        if (y.rows() * nb >= kParallelAffineMinElems)
            parallel::parallel_for(y.rows(), row_range);
        else
            row_range(0, y.rows());
        return x;
    }

    linalg::Matrix s;
    linalg::Matrix t;
    conditioner_values(y.select_cols(idx_a_), s, t);

    linalg::Matrix x = y;
    for (std::size_t r = 0; r < y.rows(); ++r) {
        double ld = 0.0;
        for (std::size_t j = 0; j < idx_b_.size(); ++j) {
            const std::size_t c = idx_b_[j];
            x(r, c) = (y(r, c) - t(r, j)) * kernels::k_exp(-s(r, j));
            ld += s(r, j);
        }
        log_det[r] += ld;
    }
    return x;
}

}  // namespace nofis::flow
