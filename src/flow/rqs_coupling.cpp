#include "flow/rqs_coupling.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"

namespace nofis::flow {

namespace {

namespace kernels = linalg::kernels;

/// Transformed elements below this count run inline. Each element costs an
/// O(num_bins) knot build plus two logs — heavier than the affine
/// tanh+exp — so the bar sits below kParallelAffineMinElems.
constexpr std::size_t kParallelRqsMinElems = 1u << 10;

std::vector<std::size_t> make_hidden_layout(std::size_t in,
                                            std::vector<std::size_t> hidden,
                                            std::size_t out) {
    std::vector<std::size_t> sizes;
    sizes.push_back(in);
    for (auto h : hidden) sizes.push_back(h);
    sizes.push_back(out);
    return sizes;
}

}  // namespace

RqsCoupling::RqsCoupling(std::size_t dim, bool pass_first_half,
                         std::vector<std::size_t> hidden, rng::Engine& eng,
                         std::size_t num_bins, double tail_bound)
    : dim_(dim),
      num_bins_(num_bins),
      tail_bound_(tail_bound),
      net_([&] {
          if (dim < 2)
              throw std::invalid_argument("RqsCoupling: dim must be >= 2");
          if (num_bins == 0 || num_bins > kernels::kMaxRqsBins)
              throw std::invalid_argument(
                  "RqsCoupling: num_bins must be in [1, " +
                  std::to_string(kernels::kMaxRqsBins) + "]");
          if (!std::isfinite(tail_bound) || tail_bound <= 0.0)
              throw std::invalid_argument(
                  "RqsCoupling: tail_bound must be finite and positive");
          const std::size_t half = (dim + 1) / 2;
          const std::size_t na = pass_first_half ? half : dim - half;
          const std::size_t nb = dim - na;
          return nn::MLP(
              make_hidden_layout(na, std::move(hidden),
                                 nb * (3 * num_bins + 1)),
              nn::Activation::kTanh, eng, /*out_gain=*/0.0);
      }()) {
    const std::size_t half = (dim + 1) / 2;
    if (pass_first_half) {
        for (std::size_t i = 0; i < half; ++i) idx_a_.push_back(i);
        for (std::size_t i = half; i < dim; ++i) idx_b_.push_back(i);
    } else {
        for (std::size_t i = half; i < dim; ++i) idx_a_.push_back(i);
        for (std::size_t i = 0; i < half; ++i) idx_b_.push_back(i);
    }
}

FlowLayer::ForwardVar RqsCoupling::forward(const autodiff::Var& x) const {
    using namespace autodiff;
    if (x.cols() != dim_)
        throw std::invalid_argument("RqsCoupling::forward: dim mismatch");
    Var xa = select_cols(x, idx_a_);
    Var xb = select_cols(x, idx_b_);
    Var h = net_.forward(xa);
    auto [yb, log_det] = rqs_forward(xb, h, num_bins_, tail_bound_);
    Var y = combine_cols(xa, idx_a_, yb, idx_b_, dim_);
    return {y, log_det};
}

linalg::Matrix RqsCoupling::forward_values(
    const linalg::Matrix& x, std::vector<double>& log_det) const {
    if (x.cols() != dim_)
        throw std::invalid_argument("RqsCoupling::forward_values: dim");
    if (log_det.size() != x.rows())
        throw std::invalid_argument("RqsCoupling::forward_values: log_det");

    // Both kernel flavours resolve to the same spline implementation, so
    // there is no scalar/simd branch here (unlike AffineCoupling, whose
    // scalar flavour keeps the legacy pre-kernel loop).
    const std::size_t nb = idx_b_.size();
    const linalg::Matrix h = net_.predict(x.select_cols(idx_a_));
    linalg::Matrix y = x;
    auto row_range = [&](std::size_t r0, std::size_t r1) {
        kernels::rqs_fwd_rows(x.data(), h.data(), idx_b_.data(), nb,
                              num_bins_, tail_bound_, dim_, y.data(),
                              log_det.data(), r0, r1);
    };
    if (x.rows() * nb >= kParallelRqsMinElems)
        parallel::parallel_for(x.rows(), row_range);
    else
        row_range(0, x.rows());
    return y;
}

linalg::Matrix RqsCoupling::inverse_values(
    const linalg::Matrix& y, std::vector<double>& log_det) const {
    if (y.cols() != dim_)
        throw std::invalid_argument("RqsCoupling::inverse_values: dim");
    if (log_det.size() != y.rows())
        throw std::invalid_argument("RqsCoupling::inverse_values: log_det");

    // y_A == x_A, so the conditioner sees the same input as in forward.
    const std::size_t nb = idx_b_.size();
    const linalg::Matrix h = net_.predict(y.select_cols(idx_a_));
    linalg::Matrix x = y;
    auto row_range = [&](std::size_t r0, std::size_t r1) {
        kernels::rqs_inv_rows(y.data(), h.data(), idx_b_.data(), nb,
                              num_bins_, tail_bound_, dim_, x.data(),
                              log_det.data(), r0, r1);
    };
    if (y.rows() * nb >= kParallelRqsMinElems)
        parallel::parallel_for(y.rows(), row_range);
    else
        row_range(0, y.rows());
    return x;
}

}  // namespace nofis::flow
