#pragma once

#include <stdexcept>
#include <string>

namespace nofis {

/// Structured solver failure: every numerical kernel in src/linalg and
/// src/circuit throws one of these instead of a bare std::runtime_error so
/// that the fault-tolerant runtime (estimators::GuardedProblem) can classify
/// faults by kind without string matching. Derives from std::runtime_error,
/// so existing catch sites keep working unchanged.
class SolverError : public std::runtime_error {
public:
    enum class Kind {
        kSingularMatrix,   ///< pivot / leading-minor breakdown in a factorisation
        kNonConvergence,   ///< iterative solve exhausted its iteration budget
        kBadInput,         ///< non-finite or structurally invalid solver input
    };

    SolverError(Kind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}

    Kind kind() const noexcept { return kind_; }

private:
    Kind kind_;
};

class SingularMatrixError final : public SolverError {
public:
    explicit SingularMatrixError(const std::string& what)
        : SolverError(Kind::kSingularMatrix, what) {}
};

class NonConvergenceError final : public SolverError {
public:
    explicit NonConvergenceError(const std::string& what)
        : SolverError(Kind::kNonConvergence, what) {}
};

class BadInputError final : public SolverError {
public:
    explicit BadInputError(const std::string& what)
        : SolverError(Kind::kBadInput, what) {}
};

}  // namespace nofis
