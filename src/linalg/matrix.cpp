#include "linalg/matrix.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace nofis::linalg {

namespace {
[[noreturn]] void shape_error(const char* what) {
    throw std::invalid_argument(std::string("Matrix shape error: ") + what);
}

/// Products below this many multiply-adds run on the serial kernel — the
/// fork-join overhead beats any speedup for the small conditioner layers.
constexpr std::size_t kParallelMatmulMinOps = 1u << 15;
}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) shape_error("ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
    return {rows, cols, 1.0};
}

Matrix Matrix::diag(std::span<const double> d) {
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
    return m;
}

Matrix Matrix::row(std::span<const double> v) {
    Matrix m(1, v.size());
    std::copy(v.begin(), v.end(), m.data());
    return m;
}

Matrix Matrix::col(std::span<const double> v) {
    Matrix m(v.size(), 1);
    std::copy(v.begin(), v.end(), m.data());
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return (*this)(r, c);
}

Matrix Matrix::transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    return out;
}

Matrix Matrix::rows_slice(std::size_t r0, std::size_t r1) const {
    if (r0 > r1 || r1 > rows_) shape_error("rows_slice range");
    Matrix out(r1 - r0, cols_);
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(r0 * cols_),
              data_.begin() + static_cast<std::ptrdiff_t>(r1 * cols_),
              out.data());
    return out;
}

Matrix Matrix::cols_slice(std::size_t c0, std::size_t c1) const {
    if (c0 > c1 || c1 > cols_) shape_error("cols_slice range");
    Matrix out(rows_, c1 - c0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = c0; c < c1; ++c) out(r, c - c0) = (*this)(r, c);
    return out;
}

Matrix Matrix::select_cols(std::span<const std::size_t> idx) const {
    Matrix out(rows_, idx.size());
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t j = 0; j < idx.size(); ++j) {
            if (idx[j] >= cols_) shape_error("select_cols index");
            out(r, j) = (*this)(r, idx[j]);
        }
    return out;
}

void Matrix::scatter_cols(std::span<const std::size_t> idx, const Matrix& src) {
    if (src.rows() != rows_ || src.cols() != idx.size())
        shape_error("scatter_cols source shape");
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t j = 0; j < idx.size(); ++j) {
            if (idx[j] >= cols_) shape_error("scatter_cols index");
            (*this)(r, idx[j]) = src(r, j);
        }
}

Matrix Matrix::hcat(const Matrix& other) const {
    if (other.rows() != rows_) shape_error("hcat row mismatch");
    Matrix out(rows_, cols_ + other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        std::copy(row_span(r).begin(), row_span(r).end(), out.row_span(r).begin());
        std::copy(other.row_span(r).begin(), other.row_span(r).end(),
                  out.row_span(r).begin() + static_cast<std::ptrdiff_t>(cols_));
    }
    return out;
}

Matrix Matrix::vcat(const Matrix& other) const {
    if (other.cols() != cols_) shape_error("vcat column mismatch");
    Matrix out(rows_ + other.rows_, cols_);
    std::copy(data_.begin(), data_.end(), out.data());
    std::copy(other.data_.begin(), other.data_.end(),
              out.data() + data_.size());
    return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
    if (rhs.rows() != rows_ || rhs.cols() != cols_) shape_error("operator+=");
    kernels::ew_add(data(), rhs.data(), data(), data_.size());
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    if (rhs.rows() != rows_ || rhs.cols() != cols_) shape_error("operator-=");
    kernels::ew_sub(data(), rhs.data(), data(), data_.size());
    return *this;
}

Matrix& Matrix::operator*=(double s) {
    kernels::ew_scale(data(), s, data(), data_.size());
    return *this;
}

Matrix& Matrix::operator/=(double s) {
    for (double& v : data_) v /= s;
    return *this;
}

Matrix Matrix::operator-() const { return map([](double v) { return -v; }); }

Matrix Matrix::hadamard(const Matrix& rhs) const {
    if (rhs.rows() != rows_ || rhs.cols() != cols_) shape_error("hadamard");
    Matrix out(rows_, cols_);
    kernels::ew_mul(data(), rhs.data(), out.data(), data_.size());
    return out;
}

Matrix Matrix::matmul(const Matrix& rhs) const {
    if (cols_ != rhs.rows()) shape_error("matmul inner dimension");
    Matrix out(rows_, rhs.cols_);
    // i-k-j loop order: streams through rhs rows, cache-friendly for
    // row-major storage without requiring an explicit transpose. The inner
    // kernel is dispatched (scalar reference or register-blocked SIMD —
    // bitwise-identical results either way) and never skips zero
    // multipliers: 0·NaN must stay NaN so non-finite values in the rhs
    // propagate to downstream all_finite() divergence checks.
    auto row_range = [&](std::size_t r0, std::size_t r1) {
        kernels::matmul_rows(data(), rhs.data(), out.data(), r0, r1, cols_,
                             rhs.cols_);
    };
    // Row-tiled parallel kernel: every output row is produced by exactly one
    // lane with the same inner loop and accumulation order as the serial
    // path, so the product is bitwise identical at any thread count.
    const std::size_t madds = rows_ * cols_ * rhs.cols_;
    if (madds >= kParallelMatmulMinOps) {
        // Only the tiled path reports telemetry: the small conditioner
        // products are far too frequent for a shared counter, and the
        // tiled products are what the perf PRs optimise. Counting and
        // timing touch nothing the kernel computes, so results are
        // unchanged with telemetry on or off.
        if (telemetry::RunTrace* tr = telemetry::active()) {
            const auto t0 = std::chrono::steady_clock::now();
            parallel::parallel_for(rows_, row_range);
            const auto dt = std::chrono::steady_clock::now() - t0;
            tr->add_counter("matmul.tiled_calls", 1);
            tr->add_counter("matmul.tiled_madds", madds);
            tr->add_counter(
                "matmul.tiled_busy_us",
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(dt)
                        .count()));
        } else {
            parallel::parallel_for(rows_, row_range);
        }
    } else {
        row_range(0, rows_);
    }
    return out;
}

Matrix Matrix::add_row_broadcast(const Matrix& bias) const {
    if (bias.rows() != 1 || bias.cols() != cols_) shape_error("add_row_broadcast");
    Matrix out(*this);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out(r, c) += bias(0, c);
    return out;
}

double Matrix::sum() const noexcept {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
}

double Matrix::mean() const noexcept {
    return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

double Matrix::min() const {
    if (data_.empty())
        throw std::logic_error("Matrix::min: empty matrix has no minimum");
    double m = std::numeric_limits<double>::infinity();
    for (double v : data_) m = std::min(m, v);
    return m;
}

double Matrix::max() const {
    if (data_.empty())
        throw std::logic_error("Matrix::max: empty matrix has no maximum");
    double m = -std::numeric_limits<double>::infinity();
    for (double v : data_) m = std::max(m, v);
    return m;
}

double Matrix::norm() const noexcept {
    double s = 0.0;
    for (double v : data_) s += v * v;
    return std::sqrt(s);
}

double Matrix::max_abs() const noexcept {
    double m = 0.0;
    for (double v : data_) m = std::max(m, std::abs(v));
    return m;
}

Matrix Matrix::row_sums() const {
    Matrix out(rows_, 1);
    for (std::size_t r = 0; r < rows_; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c);
        out(r, 0) = s;
    }
    return out;
}

Matrix Matrix::col_sums() const {
    Matrix out(1, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) out(0, c) += (*this)(r, c);
    return out;
}

Matrix Matrix::col_means() const {
    Matrix out = col_sums();
    if (rows_ > 0) out /= static_cast<double>(rows_);
    return out;
}

bool Matrix::all_finite() const noexcept {
    return std::all_of(data_.begin(), data_.end(),
                       [](double v) { return std::isfinite(v); });
}

std::string Matrix::to_string(int precision) const {
    if (rows_ == 0) return "[]";
    std::ostringstream os;
    os.precision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << (r == 0 ? "[" : " ");
        for (std::size_t c = 0; c < cols_; ++c)
            os << (*this)(r, c) << (c + 1 == cols_ ? "" : ", ");
        os << (r + 1 == rows_ ? "]" : "\n");
    }
    return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size()) throw std::invalid_argument("dot size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm2(std::span<const double> a) {
    double s = 0.0;
    for (double v : a) s += v * v;
    return std::sqrt(s);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument("max_abs_diff shape mismatch");
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a.flat()[i] - b.flat()[i]));
    return m;
}

}  // namespace nofis::linalg
