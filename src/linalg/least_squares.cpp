#include "linalg/least_squares.hpp"

#include <stdexcept>

#include "linalg/cholesky.hpp"

namespace nofis::linalg {

std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge) {
    std::vector<double> unit(b.size(), 1.0);
    return weighted_least_squares(a, b, unit, ridge);
}

std::vector<double> weighted_least_squares(const Matrix& a,
                                           std::span<const double> b,
                                           std::span<const double> w,
                                           double ridge) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (b.size() != m || w.size() != m)
        throw std::invalid_argument("weighted_least_squares: size mismatch");
    if (m < n)
        throw std::invalid_argument(
            "weighted_least_squares: underdetermined system");

    Matrix ata(n, n);
    std::vector<double> atb(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        const auto row = a.row_span(i);
        for (std::size_t p = 0; p < n; ++p) {
            const double wp = w[i] * row[p];
            atb[p] += wp * b[i];
            for (std::size_t q = p; q < n; ++q) ata(p, q) += wp * row[q];
        }
    }
    for (std::size_t p = 0; p < n; ++p) {
        ata(p, p) += ridge;
        for (std::size_t q = p + 1; q < n; ++q) ata(q, p) = ata(p, q);
    }
    return Cholesky(ata).solve(atb);
}

}  // namespace nofis::linalg
