#include "linalg/lu.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/solver_error.hpp"

namespace nofis::linalg {

LuDecomposition::LuDecomposition(const Matrix& a)
    : n_(a.rows()), lu_(a), piv_(a.rows()) {
    if (a.rows() != a.cols())
        throw std::invalid_argument("LuDecomposition: matrix must be square");
    std::iota(piv_.begin(), piv_.end(), std::size_t{0});

    for (std::size_t k = 0; k < n_; ++k) {
        // Partial pivot: largest |value| in column k at or below the diagonal.
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n_; ++i) {
            const double v = std::abs(lu_(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best < std::numeric_limits<double>::min() * 16)
            throw SingularMatrixError("LuDecomposition: singular matrix");
        if (p != k) {
            for (std::size_t c = 0; c < n_; ++c)
                std::swap(lu_(k, c), lu_(p, c));
            std::swap(piv_[k], piv_[p]);
            pivot_sign_ = -pivot_sign_;
        }
        const double inv_pivot = 1.0 / lu_(k, k);
        for (std::size_t i = k + 1; i < n_; ++i) {
            const double m = lu_(i, k) * inv_pivot;
            lu_(i, k) = m;
            if (m == 0.0) continue;
            for (std::size_t c = k + 1; c < n_; ++c) lu_(i, c) -= m * lu_(k, c);
        }
    }
}

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
    if (b.size() != n_)
        throw std::invalid_argument("LuDecomposition::solve: bad rhs size");
    std::vector<double> x(n_);
    // Apply permutation, then forward substitution (L has unit diagonal).
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
    for (std::size_t i = 1; i < n_; ++i) {
        double s = x[i];
        for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
        x[i] = s;
    }
    // Back substitution with U.
    for (std::size_t ii = n_; ii-- > 0;) {
        double s = x[ii];
        for (std::size_t j = ii + 1; j < n_; ++j) s -= lu_(ii, j) * x[j];
        x[ii] = s / lu_(ii, ii);
    }
    return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
    if (b.rows() != n_)
        throw std::invalid_argument("LuDecomposition::solve: bad rhs rows");
    Matrix x(n_, b.cols());
    std::vector<double> col(n_);
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t r = 0; r < n_; ++r) col[r] = b(r, c);
        const auto xc = solve(col);
        for (std::size_t r = 0; r < n_; ++r) x(r, c) = xc[r];
    }
    return x;
}

double LuDecomposition::determinant() const noexcept {
    double d = static_cast<double>(pivot_sign_);
    for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
    return d;
}

double LuDecomposition::log_abs_determinant() const noexcept {
    double s = 0.0;
    for (std::size_t i = 0; i < n_; ++i) s += std::log(std::abs(lu_(i, i)));
    return s;
}

ComplexLu::ComplexLu(std::vector<Complex> a, std::size_t n)
    : n_(n), lu_(std::move(a)), piv_(n) {
    if (lu_.size() != n * n)
        throw std::invalid_argument("ComplexLu: data size != n*n");
    std::iota(piv_.begin(), piv_.end(), std::size_t{0});
    auto at = [this](std::size_t r, std::size_t c) -> Complex& {
        return lu_[r * n_ + c];
    };
    for (std::size_t k = 0; k < n_; ++k) {
        std::size_t p = k;
        double best = std::abs(at(k, k));
        for (std::size_t i = k + 1; i < n_; ++i) {
            const double v = std::abs(at(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best < std::numeric_limits<double>::min() * 16)
            throw SingularMatrixError("ComplexLu: singular matrix");
        if (p != k) {
            for (std::size_t c = 0; c < n_; ++c) std::swap(at(k, c), at(p, c));
            std::swap(piv_[k], piv_[p]);
        }
        const Complex inv_pivot = 1.0 / at(k, k);
        for (std::size_t i = k + 1; i < n_; ++i) {
            const Complex m = at(i, k) * inv_pivot;
            at(i, k) = m;
            for (std::size_t c = k + 1; c < n_; ++c) at(i, c) -= m * at(k, c);
        }
    }
}

std::vector<ComplexLu::Complex> ComplexLu::solve(
    std::span<const Complex> b) const {
    if (b.size() != n_)
        throw std::invalid_argument("ComplexLu::solve: bad rhs size");
    std::vector<Complex> x(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[piv_[i]];
    for (std::size_t i = 1; i < n_; ++i) {
        Complex s = x[i];
        for (std::size_t j = 0; j < i; ++j) s -= lu_[i * n_ + j] * x[j];
        x[i] = s;
    }
    for (std::size_t ii = n_; ii-- > 0;) {
        Complex s = x[ii];
        for (std::size_t j = ii + 1; j < n_; ++j) s -= lu_[ii * n_ + j] * x[j];
        x[ii] = s / lu_[ii * n_ + ii];
    }
    return x;
}

std::vector<double> solve(const Matrix& a, std::span<const double> b) {
    return LuDecomposition(a).solve(b);
}

Matrix inverse(const Matrix& a) {
    return LuDecomposition(a).solve(Matrix::identity(a.rows()));
}

}  // namespace nofis::linalg
