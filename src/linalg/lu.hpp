#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace nofis::linalg {

/// LU decomposition with partial pivoting of a square real matrix.
///
/// Factors P·A = L·U once; `solve` then back-substitutes in O(n^2) per
/// right-hand side. Used by the MNA DC solver, the flow log-det tests, and
/// the SSS least-squares fit.
class LuDecomposition {
public:
    /// Throws std::invalid_argument for non-square input and
    /// std::runtime_error when the matrix is numerically singular.
    explicit LuDecomposition(const Matrix& a);

    std::size_t dim() const noexcept { return n_; }

    /// Solves A x = b for a single right-hand side (b.size() == n).
    std::vector<double> solve(std::span<const double> b) const;

    /// Solves A X = B column-wise.
    Matrix solve(const Matrix& b) const;

    /// Determinant of A (sign-corrected for row swaps).
    double determinant() const noexcept;

    /// log|det A|; -inf when singular-to-working-precision.
    double log_abs_determinant() const noexcept;

private:
    std::size_t n_ = 0;
    Matrix lu_;                  // packed L (unit diagonal) and U
    std::vector<std::size_t> piv_;
    int pivot_sign_ = 1;
};

/// Dense complex LU with partial pivoting, used by the AC (frequency-domain)
/// circuit analysis where the MNA matrix is G + jωC.
class ComplexLu {
public:
    using Complex = std::complex<double>;

    /// `a` is a flattened row-major n x n complex matrix.
    ComplexLu(std::vector<Complex> a, std::size_t n);

    std::size_t dim() const noexcept { return n_; }

    std::vector<Complex> solve(std::span<const Complex> b) const;

private:
    std::size_t n_ = 0;
    std::vector<Complex> lu_;
    std::vector<std::size_t> piv_;
};

/// Convenience one-shot solve of A x = b.
std::vector<double> solve(const Matrix& a, std::span<const double> b);

/// Inverse via LU; prefer `solve` in hot paths.
Matrix inverse(const Matrix& a);

}  // namespace nofis::linalg
