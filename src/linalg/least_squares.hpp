#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace nofis::linalg {

/// Solves min_x ||A x - b||_2 via the normal equations (AᵀA + ridge·I) x = Aᵀb.
///
/// `ridge` defaults to a tiny Tikhonov term that keeps nearly-collinear
/// design matrices (as arise in the SSS log-probability fit) well posed.
std::vector<double> least_squares(const Matrix& a, std::span<const double> b,
                                  double ridge = 1e-12);

/// Weighted variant: minimises Σ w_i (A_i·x - b_i)^2.
std::vector<double> weighted_least_squares(const Matrix& a,
                                           std::span<const double> b,
                                           std::span<const double> w,
                                           double ridge = 1e-12);

}  // namespace nofis::linalg
