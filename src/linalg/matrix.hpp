#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace nofis::linalg {

/// Dense row-major matrix of doubles.
///
/// This is the single numeric substrate used by every subsystem (autodiff,
/// flows, MNA circuit solves, least squares). It is a concrete regular value
/// type: copyable, movable, equality-comparable, with checked element access
/// in debug and explicit `at()` checked access everywhere.
class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialised.
    Matrix(std::size_t rows, std::size_t cols);

    /// rows x cols matrix filled with `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill);

    /// Construct from nested initializer lists; all rows must have equal
    /// length. Intended for small literals in tests and netlists.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);
    static Matrix zeros(std::size_t rows, std::size_t cols);
    static Matrix ones(std::size_t rows, std::size_t cols);
    /// Diagonal matrix from a vector of diagonal entries.
    static Matrix diag(std::span<const double> d);
    /// 1 x n row vector wrapping a copy of `v`.
    static Matrix row(std::span<const double> v);
    /// n x 1 column vector wrapping a copy of `v`.
    static Matrix col(std::span<const double> v);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    std::size_t size() const noexcept { return data_.size(); }
    bool empty() const noexcept { return data_.empty(); }

    double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// Bounds-checked access; throws std::out_of_range.
    double& at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    double* data() noexcept { return data_.data(); }
    const double* data() const noexcept { return data_.data(); }

    std::span<double> row_span(std::size_t r) noexcept {
        return {data_.data() + r * cols_, cols_};
    }
    std::span<const double> row_span(std::size_t r) const noexcept {
        return {data_.data() + r * cols_, cols_};
    }
    std::span<double> flat() noexcept { return {data_.data(), data_.size()}; }
    std::span<const double> flat() const noexcept {
        return {data_.data(), data_.size()};
    }

    // --- shape manipulation -------------------------------------------------
    Matrix transposed() const;
    /// Returns a copy of rows [r0, r1).
    Matrix rows_slice(std::size_t r0, std::size_t r1) const;
    /// Returns a copy of columns [c0, c1).
    Matrix cols_slice(std::size_t c0, std::size_t c1) const;
    /// Copies columns selected by `idx` in order.
    Matrix select_cols(std::span<const std::size_t> idx) const;
    /// Writes `src` into columns selected by `idx` (src.cols()==idx.size()).
    void scatter_cols(std::span<const std::size_t> idx, const Matrix& src);
    /// Horizontal concatenation [*this | other].
    Matrix hcat(const Matrix& other) const;
    /// Vertical concatenation.
    Matrix vcat(const Matrix& other) const;

    // --- arithmetic (element-wise unless stated) ----------------------------
    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double s);
    Matrix& operator/=(double s);

    friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
    friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
    friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
    friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
    friend Matrix operator/(Matrix lhs, double s) { return lhs /= s; }
    Matrix operator-() const;

    bool operator==(const Matrix& rhs) const = default;

    /// Element-wise product (Hadamard).
    Matrix hadamard(const Matrix& rhs) const;
    /// Matrix product: (m x k) * (k x n) -> (m x n).
    Matrix matmul(const Matrix& rhs) const;
    /// Adds `bias` (1 x cols) to every row.
    Matrix add_row_broadcast(const Matrix& bias) const;
    /// Applies `f` to every element, returning a new matrix.
    template <typename F>
    Matrix map(F&& f) const {
        Matrix out(rows_, cols_);
        for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
        return out;
    }

    // --- reductions ----------------------------------------------------------
    // Empty-matrix semantics: sum() is 0 (the additive identity) and mean()
    // returns the documented sentinel 0.0 — both are tested contracts. min()
    // and max() have no safe identity (a ±infinity sentinel would mask
    // non-finite divergence downstream), so they throw std::logic_error on a
    // 0-element matrix.
    double sum() const noexcept;
    double mean() const noexcept;
    double min() const;
    double max() const;
    /// Frobenius norm.
    double norm() const noexcept;
    /// Largest absolute element.
    double max_abs() const noexcept;
    /// Row-wise sum -> (rows x 1).
    Matrix row_sums() const;
    /// Column-wise sum -> (1 x cols).
    Matrix col_sums() const;
    /// Column-wise mean -> (1 x cols).
    Matrix col_means() const;

    /// True when every element is finite.
    bool all_finite() const noexcept;

    /// Human-readable dump (tests / debugging).
    std::string to_string(int precision = 4) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Euclidean dot product of two equally-sized flat views.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm of a flat view.
double norm2(std::span<const double> a);

/// Maximum absolute difference between two matrices of identical shape.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace nofis::linalg
