#pragma once

// 4-lane AVX2 mirrors of the deterministic transcendentals in
// scalar_math.hpp. Each function performs the EXACT operation sequence of
// its scalar twin, one IEEE-754 op per step, in the same order — mul, add,
// sub, div, floor, max/min clamp, then the final range/NaN blends — so
// every lane is bitwise identical to the scalar result. No FMA (this TU is
// built with -mavx2 only), no reassociation, no rsqrt/rcp approximations.
//
// When editing, change scalar_math.hpp first and transcribe: the scalar
// file is the specification, this file is its vectorization.

#include <immintrin.h>

#include "linalg/kernels/scalar_math.hpp"

namespace nofis::linalg::kernels::avx2 {

/// Vector pow2i: 2^n per lane via biased-exponent construction; exact.
inline __m256d pow2i4(__m128i n) {
    const __m256i wide = _mm256_cvtepi32_epi64(n);
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(wide, _mm256_set1_epi64x(1023)), 52);
    return _mm256_castsi256_pd(bits);
}

/// Lane-wise k_exp. See scalar_math.hpp for the algorithm commentary.
inline __m256d kexp4(__m256d x) {
    using namespace cephes;
    const __m256d lo = _mm256_set1_pd(kExpUnderflow);
    const __m256d hi = _mm256_set1_pd(kExpOverflow);
    // max/min match the scalar (a > b ? a : b) clamps: NaN lanes collapse
    // to the bound and are restored by the last blend.
    __m256d xm = _mm256_max_pd(x, lo);
    xm = _mm256_min_pd(xm, hi);

    __m256d w = _mm256_add_pd(_mm256_mul_pd(xm, _mm256_set1_pd(kLog2E)),
                              _mm256_set1_pd(0.5));
    w = _mm256_floor_pd(w);
    // w is integer-valued and clamped, so truncation == exact conversion.
    const __m128i n = _mm256_cvttpd_epi32(w);

    __m256d r = _mm256_sub_pd(xm, _mm256_mul_pd(w, _mm256_set1_pd(kExpC1)));
    r = _mm256_sub_pd(r, _mm256_mul_pd(w, _mm256_set1_pd(kExpC2)));
    const __m256d rr = _mm256_mul_pd(r, r);
    __m256d px = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpP0), rr),
                               _mm256_set1_pd(kExpP1));
    px = _mm256_add_pd(_mm256_mul_pd(px, rr), _mm256_set1_pd(kExpP2));
    px = _mm256_mul_pd(r, px);
    __m256d qx = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kExpQ0), rr),
                               _mm256_set1_pd(kExpQ1));
    qx = _mm256_add_pd(_mm256_mul_pd(qx, rr), _mm256_set1_pd(kExpQ2));
    qx = _mm256_add_pd(_mm256_mul_pd(qx, rr), _mm256_set1_pd(kExpQ3));
    __m256d e = _mm256_add_pd(
        _mm256_set1_pd(1.0),
        _mm256_mul_pd(_mm256_set1_pd(2.0),
                      _mm256_div_pd(px, _mm256_sub_pd(qx, px))));

    // n >> 1 (vpsrad floors like the scalar arithmetic shift), two exact
    // 2^n factors applied in the scalar's order.
    const __m128i n1 = _mm_srai_epi32(n, 1);
    const __m128i n2 = _mm_sub_epi32(n, n1);
    e = _mm256_mul_pd(_mm256_mul_pd(e, pow2i4(n1)), pow2i4(n2));

    e = _mm256_blendv_pd(e, _mm256_set1_pd(__builtin_inf()),
                         _mm256_cmp_pd(x, hi, _CMP_GT_OQ));
    e = _mm256_blendv_pd(e, _mm256_setzero_pd(),
                         _mm256_cmp_pd(x, lo, _CMP_LT_OQ));
    // Canonical (sign-cleared) NaN out, matching scalar k_abs semantics.
    const __m256d ax = _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
    e = _mm256_blendv_pd(e, ax, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
    return e;
}

/// Big-branch tanh numerator/denominator: (1 − s, 1 + s), s = e^(−2|x|).
inline void ktanh4_big(__m256d ax, __m256d* num, __m256d* den) {
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d s = kexp4(_mm256_mul_pd(_mm256_set1_pd(-2.0), ax));
    *num = _mm256_sub_pd(one, s);
    *den = _mm256_add_pd(one, s);
}

/// Small-branch tanh numerator/denominator: (|x|·(Q + x²·P), Q).
inline void ktanh4_small(__m256d ax, __m256d* num, __m256d* den) {
    using namespace cephes;
    const __m256d x2 = _mm256_mul_pd(ax, ax);
    __m256d p = _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(kTanhP0), x2),
                              _mm256_set1_pd(kTanhP1));
    p = _mm256_add_pd(_mm256_mul_pd(p, x2), _mm256_set1_pd(kTanhP2));
    __m256d q = _mm256_add_pd(x2, _mm256_set1_pd(kTanhQ0));
    q = _mm256_add_pd(_mm256_mul_pd(q, x2), _mm256_set1_pd(kTanhQ1));
    q = _mm256_add_pd(_mm256_mul_pd(q, x2), _mm256_set1_pd(kTanhQ2));
    *num = _mm256_mul_pd(ax, _mm256_add_pd(q, _mm256_mul_pd(x2, p)));
    *den = q;
}

/// Lane-wise k_tanh. See scalar_math.hpp for the algorithm commentary
/// (single num/den division, magnitude on |x|, one sign bit-or at the
/// end). When every lane takes the same branch the other branch is skipped
/// entirely — the blend would discard it, so the results are unchanged;
/// NaN lanes compare false and ride the small branch, like the scalar.
inline __m256d ktanh4(__m256d x) {
    using namespace cephes;
    const __m256d signmask = _mm256_set1_pd(-0.0);
    const __m256d ax = _mm256_andnot_pd(signmask, x);
    const __m256d bigmask =
        _mm256_cmp_pd(ax, _mm256_set1_pd(kTanhBranch), _CMP_GE_OQ);
    const int mm = _mm256_movemask_pd(bigmask);

    __m256d num, den;
    if (mm == 0xF) {
        ktanh4_big(ax, &num, &den);
    } else if (mm == 0) {
        ktanh4_small(ax, &num, &den);
    } else {
        __m256d bnum, bden, snum, sden;
        ktanh4_big(ax, &bnum, &bden);
        ktanh4_small(ax, &snum, &sden);
        num = _mm256_blendv_pd(snum, bnum, bigmask);
        den = _mm256_blendv_pd(sden, bden, bigmask);
    }
    __m256d t = _mm256_div_pd(num, den);
    t = _mm256_or_pd(t, _mm256_and_pd(x, signmask));
    // Canonical NaN out (ax = sign-cleared input), same as the scalar.
    t = _mm256_blendv_pd(t, ax, _mm256_cmp_pd(x, x, _CMP_UNORD_Q));
    return t;
}

/// Lane-wise k_sigmoid: 1/(1 + kexp4(−x)); negation is the same sign-bit
/// xor the scalar compiler emits for -x.
inline __m256d ksigmoid4(__m256d x) {
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d nx = _mm256_xor_pd(x, _mm256_set1_pd(-0.0));
    return _mm256_div_pd(one, _mm256_add_pd(one, kexp4(nx)));
}

}  // namespace nofis::linalg::kernels::avx2
