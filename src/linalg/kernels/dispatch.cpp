// Runtime dispatch for the kernel layer: resolves the active flavour from
// set_choice() / the NOFIS_KERNELS environment variable, and splices the
// best available intrinsic backend (AVX2 or NEON) over the portable
// vectorized table. The public kernel entry points in kernels.hpp forward
// through the active table.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/kernels/table.hpp"

namespace nofis::linalg::kernels {

namespace detail {

namespace {

/// Copies every non-null slot of `overlay` over `base`.
Table splice(Table base, const Table* overlay) {
    if (!overlay) return base;
    if (overlay->matmul_rows) base.matmul_rows = overlay->matmul_rows;
    if (overlay->linear_act_rows)
        base.linear_act_rows = overlay->linear_act_rows;
    if (overlay->affine_fwd_rows)
        base.affine_fwd_rows = overlay->affine_fwd_rows;
    if (overlay->affine_inv_rows)
        base.affine_inv_rows = overlay->affine_inv_rows;
    if (overlay->scale_shift_rows)
        base.scale_shift_rows = overlay->scale_shift_rows;
    if (overlay->rqs_fwd_rows) base.rqs_fwd_rows = overlay->rqs_fwd_rows;
    if (overlay->rqs_inv_rows) base.rqs_inv_rows = overlay->rqs_inv_rows;
    if (overlay->rqs_bwd_rows) base.rqs_bwd_rows = overlay->rqs_bwd_rows;
    if (overlay->ew_add) base.ew_add = overlay->ew_add;
    if (overlay->ew_sub) base.ew_sub = overlay->ew_sub;
    if (overlay->ew_mul) base.ew_mul = overlay->ew_mul;
    if (overlay->ew_scale) base.ew_scale = overlay->ew_scale;
    if (overlay->ew_tanh) base.ew_tanh = overlay->ew_tanh;
    if (overlay->ew_exp) base.ew_exp = overlay->ew_exp;
    if (overlay->ew_tanh_bwd) base.ew_tanh_bwd = overlay->ew_tanh_bwd;
    return base;
}

struct SimdResolution {
    Table table;
    const char* backend;
};

const SimdResolution& simd_resolution() {
    static const SimdResolution r = [] {
        if (const Table* avx2 = avx2_table())
            return SimdResolution{splice(portable_table(), avx2), "avx2"};
        if (const Table* neon = neon_table())
            return SimdResolution{splice(portable_table(), neon), "neon"};
        return SimdResolution{portable_table(), "portable"};
    }();
    return r;
}

Choice env_choice() {
    const char* env = std::getenv("NOFIS_KERNELS");
    if (!env) return Choice::kSimd;
    if (const auto parsed = parse_choice(env))
        return *parsed == Choice::kAuto ? Choice::kSimd : *parsed;
    return Choice::kSimd;  // unknown value: keep the default, don't crash
}

std::atomic<const Table*>& active_table_slot() {
    // First use resolves NOFIS_KERNELS; set_choice overrides afterwards.
    static std::atomic<const Table*> slot{
        env_choice() == Choice::kScalar ? &scalar_table()
                                        : &simd_resolution().table};
    return slot;
}

const Table& active_table() noexcept {
    return *active_table_slot().load(std::memory_order_acquire);
}

}  // namespace

const Table& simd_table() { return simd_resolution().table; }

}  // namespace detail

using detail::active_table;

Choice active() noexcept {
    return &active_table() == &detail::scalar_table() ? Choice::kScalar
                                                      : Choice::kSimd;
}

void set_choice(Choice c) noexcept {
    const detail::Table* t = (c == Choice::kScalar)
                                 ? &detail::scalar_table()
                                 : &detail::simd_table();
    detail::active_table_slot().store(t, std::memory_order_release);
}

std::optional<Choice> parse_choice(const std::string& name) noexcept {
    if (name == "auto") return Choice::kAuto;
    if (name == "scalar") return Choice::kScalar;
    if (name == "simd") return Choice::kSimd;
    return std::nullopt;
}

const char* choice_name() noexcept {
    return active() == Choice::kScalar ? "scalar" : "simd";
}

const char* simd_backend() noexcept {
    return detail::simd_resolution().backend;
}

bool simd_active() noexcept { return active() == Choice::kSimd; }

void matmul_rows(const double* lhs, const double* rhs, double* out,
                 std::size_t r0, std::size_t r1, std::size_t k,
                 std::size_t n) {
    active_table().matmul_rows(lhs, rhs, out, r0, r1, k, n);
}

void linear_act_rows(const double* x, const double* w, const double* b,
                     double* y, std::size_t r0, std::size_t r1,
                     std::size_t in, std::size_t out, Act act) {
    active_table().linear_act_rows(x, w, b, y, r0, r1, in, out, act);
}

void affine_fwd_rows(const double* x, const double* h,
                     const std::size_t* idx_b, std::size_t nb,
                     double scale_cap, std::size_t dim, double* y,
                     double* log_det, std::size_t r0, std::size_t r1) {
    active_table().affine_fwd_rows(x, h, idx_b, nb, scale_cap, dim, y,
                                   log_det, r0, r1);
}

void affine_inv_rows(const double* y, const double* h,
                     const std::size_t* idx_b, std::size_t nb,
                     double scale_cap, std::size_t dim, double* x,
                     double* log_det, std::size_t r0, std::size_t r1) {
    active_table().affine_inv_rows(y, h, idx_b, nb, scale_cap, dim, x,
                                   log_det, r0, r1);
}

void scale_shift_rows(const double* x, const double* scale,
                      const double* shift, double* y, std::size_t dim,
                      std::size_t r0, std::size_t r1) {
    active_table().scale_shift_rows(x, scale, shift, y, dim, r0, r1);
}

void rqs_fwd_rows(const double* x, const double* h, const std::size_t* idx_b,
                  std::size_t nb, std::size_t num_bins, double tail_bound,
                  std::size_t dim, double* y, double* log_det, std::size_t r0,
                  std::size_t r1) {
    active_table().rqs_fwd_rows(x, h, idx_b, nb, num_bins, tail_bound, dim, y,
                                log_det, r0, r1);
}

void rqs_inv_rows(const double* y, const double* h, const std::size_t* idx_b,
                  std::size_t nb, std::size_t num_bins, double tail_bound,
                  std::size_t dim, double* x, double* log_det, std::size_t r0,
                  std::size_t r1) {
    active_table().rqs_inv_rows(y, h, idx_b, nb, num_bins, tail_bound, dim, x,
                                log_det, r0, r1);
}

void rqs_bwd_rows(const double* xb, const double* h, std::size_t nb,
                  std::size_t num_bins, double tail_bound, const double* gy,
                  const double* gld, double* gx, double* gh, std::size_t r0,
                  std::size_t r1) {
    active_table().rqs_bwd_rows(xb, h, nb, num_bins, tail_bound, gy, gld, gx,
                                gh, r0, r1);
}

void ew_add(const double* a, const double* b, double* out, std::size_t n) {
    active_table().ew_add(a, b, out, n);
}

void ew_sub(const double* a, const double* b, double* out, std::size_t n) {
    active_table().ew_sub(a, b, out, n);
}

void ew_mul(const double* a, const double* b, double* out, std::size_t n) {
    active_table().ew_mul(a, b, out, n);
}

void ew_scale(const double* a, double s, double* out, std::size_t n) {
    active_table().ew_scale(a, s, out, n);
}

void ew_tanh(const double* a, double* out, std::size_t n) {
    active_table().ew_tanh(a, out, n);
}

void ew_exp(const double* a, double* out, std::size_t n) {
    active_table().ew_exp(a, out, n);
}

void ew_tanh_bwd(const double* y, const double* g, double* out,
                 std::size_t n) {
    active_table().ew_tanh_bwd(y, g, out, n);
}

}  // namespace nofis::linalg::kernels
