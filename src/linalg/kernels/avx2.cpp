// AVX2 intrinsic kernels (x86-64). This TU is compiled with -mavx2 and
// -ffp-contract=off; every other TU stays on the baseline ISA, and the
// functions here are only ever reached after a runtime
// __builtin_cpu_supports("avx2") check in avx2_table().
//
// Bitwise contract: no FMA is ever emitted (-mavx2 without -mfma makes
// contraction impossible), and each output element accumulates its k-terms
// in the same ascending order as the scalar reference, so results
// (including NaN/Inf propagation) are bit-identical to the scalar kernels.
// tanh/exp/sigmoid use the 4-lane mirrors in avx2_math.hpp of the
// deterministic scalar ports in scalar_math.hpp — the one place where
// "same math" required owning the math instead of calling libm.

#include "linalg/kernels/table.hpp"

#if defined(__AVX2__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include "linalg/kernels/avx2_math.hpp"

namespace nofis::linalg::kernels::detail {

namespace {

/// Lane mask for a partial (1–3 column) vector tail: lane u active iff
/// u < rem.
inline __m256i tail_mask(std::size_t rem) {
    return _mm256_set_epi64x(rem > 3 ? -1 : 0, rem > 2 ? -1 : 0,
                             rem > 1 ? -1 : 0, -1);
}

/// Accumulates one output-row column block entirely in registers:
/// acc[m] (+)= Σ_k lhs_row[k] · rhs[k, j0 + 4m .. j0 + 4m + 3], k strictly
/// ascending. NR is the register-block width (NR × 4 columns); holding the
/// accumulators across the whole k loop removes the per-k reload/spill of
/// the output row that dominated the small-matrix profile. The per-element
/// operation chain — ((acc + a0·w0) + a1·w1) + … — is the scalar
/// reference's exactly.
template <int NR>
void accum_row_block(const double* lhs_row, const double* rhs, std::size_t k,
                     std::size_t n, std::size_t j0, __m256d* acc) {
    for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256d va = _mm256_set1_pd(lhs_row[kk]);
        const double* rp = rhs + kk * n + j0;
        for (int m = 0; m < NR; ++m)
            acc[m] = _mm256_add_pd(
                acc[m], _mm256_mul_pd(va, _mm256_loadu_pd(rp + 4 * m)));
    }
}

void matmul_rows_avx2(const double* lhs, const double* rhs, double* out,
                      std::size_t r0, std::size_t r1, std::size_t k,
                      std::size_t n) {
    for (std::size_t i = r0; i < r1; ++i) {
        double* out_row = out + i * n;
        const double* lhs_row = lhs + i * k;
        std::size_t j = 0;
        for (; j + 16 <= n; j += 16) {
            __m256d acc[4] = {_mm256_loadu_pd(out_row + j),
                              _mm256_loadu_pd(out_row + j + 4),
                              _mm256_loadu_pd(out_row + j + 8),
                              _mm256_loadu_pd(out_row + j + 12)};
            accum_row_block<4>(lhs_row, rhs, k, n, j, acc);
            _mm256_storeu_pd(out_row + j, acc[0]);
            _mm256_storeu_pd(out_row + j + 4, acc[1]);
            _mm256_storeu_pd(out_row + j + 8, acc[2]);
            _mm256_storeu_pd(out_row + j + 12, acc[3]);
        }
        for (; j + 4 <= n; j += 4) {
            __m256d acc[1] = {_mm256_loadu_pd(out_row + j)};
            accum_row_block<1>(lhs_row, rhs, k, n, j, acc);
            _mm256_storeu_pd(out_row + j, acc[0]);
        }
        if (j < n) {
            // Masked tail: inactive lanes load 0.0, compute garbage, and are
            // never stored; active lanes run the identical ascending chain.
            const __m256i mask = tail_mask(n - j);
            __m256d acc = _mm256_maskload_pd(out_row + j, mask);
            for (std::size_t kk = 0; kk < k; ++kk) {
                const __m256d va = _mm256_set1_pd(lhs_row[kk]);
                const __m256d wv = _mm256_maskload_pd(rhs + kk * n + j, mask);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(va, wv));
            }
            _mm256_maskstore_pd(out_row + j, mask, acc);
        }
    }
}

void ew_add_avx2(const double* a, const double* b, double* out,
                 std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
    for (; i < n; ++i) out[i] = a[i] + b[i];
}

void ew_sub_avx2(const double* a, const double* b, double* out,
                 std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
    for (; i < n; ++i) out[i] = a[i] - b[i];
}

void ew_mul_avx2(const double* a, const double* b, double* out,
                 std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                                _mm256_loadu_pd(b + i)));
    for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ew_scale_avx2(const double* a, double s, double* out, std::size_t n) {
    const __m256d vs = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vs));
    for (; i < n; ++i) out[i] = a[i] * s;
}

void ew_tanh_bwd_avx2(const double* y, const double* g, double* out,
                      std::size_t n) {
    const __m256d one = _mm256_set1_pd(1.0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vy = _mm256_loadu_pd(y + i);
        const __m256d d = _mm256_sub_pd(one, _mm256_mul_pd(vy, vy));
        _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(g + i), d));
    }
    for (; i < n; ++i) out[i] = g[i] * (1.0 - y[i] * y[i]);
}

void ew_tanh_avx2(const double* a, double* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, avx2::ktanh4(_mm256_loadu_pd(a + i)));
    for (; i < n; ++i) out[i] = k_tanh(a[i]);
}

void ew_exp_avx2(const double* a, double* out, std::size_t n) {
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(out + i, avx2::kexp4(_mm256_loadu_pd(a + i)));
    for (; i < n; ++i) out[i] = k_exp(a[i]);
}

/// 4-lane activation on v = y + b. Lane-wise bitwise identical to the
/// scalar k_* twins by construction.
__m256d apply_act4(__m256d v, Act act) {
    switch (act) {
        case Act::kNone:
            return v;
        case Act::kTanh:
            return avx2::ktanh4(v);
        case Act::kRelu:
            // max(v, 0) == (v > 0 ? v : 0); NaN lanes take 0 like the
            // scalar ternary.
            return _mm256_max_pd(v, _mm256_setzero_pd());
        case Act::kLeakyRelu: {
            const __m256d leak = _mm256_mul_pd(_mm256_set1_pd(0.01), v);
            const __m256d pos =
                _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_GT_OQ);
            return _mm256_blendv_pd(leak, v, pos);
        }
        case Act::kSigmoid:
            return avx2::ksigmoid4(v);
    }
    return v;
}

void linear_act_rows_avx2(const double* x, const double* w, const double* b,
                          double* y, std::size_t r0, std::size_t r1,
                          std::size_t in, std::size_t out, Act act) {
    for (std::size_t i = r0; i < r1; ++i) {
        const double* x_row = x + i * in;
        double* y_row = y + i * out;
        std::size_t j = 0;
        for (; j + 16 <= out; j += 16) {
            const __m256d z = _mm256_setzero_pd();
            __m256d acc[4] = {z, z, z, z};
            accum_row_block<4>(x_row, w, in, out, j, acc);
            for (int m = 0; m < 4; ++m) {
                const __m256d v =
                    _mm256_add_pd(acc[m], _mm256_loadu_pd(b + j + 4 * m));
                _mm256_storeu_pd(y_row + j + 4 * m, apply_act4(v, act));
            }
        }
        for (; j + 4 <= out; j += 4) {
            __m256d acc[1] = {_mm256_setzero_pd()};
            accum_row_block<1>(x_row, w, in, out, j, acc);
            const __m256d v = _mm256_add_pd(acc[0], _mm256_loadu_pd(b + j));
            _mm256_storeu_pd(y_row + j, apply_act4(v, act));
        }
        if (j < out) {
            // Masked tail (see matmul_rows_avx2): active lanes are bitwise
            // the full-vector computation, inactive lanes never stored.
            const __m256i mask = tail_mask(out - j);
            __m256d acc = _mm256_setzero_pd();
            for (std::size_t kk = 0; kk < in; ++kk) {
                const __m256d va = _mm256_set1_pd(x_row[kk]);
                const __m256d wv = _mm256_maskload_pd(w + kk * out + j, mask);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(va, wv));
            }
            const __m256d v =
                _mm256_add_pd(acc, _mm256_maskload_pd(b + j, mask));
            _mm256_maskstore_pd(y_row + j, mask, apply_act4(v, act));
        }
    }
}

// The affine kernels vectorize the expensive part — tanh/exp over four
// conditioner columns at once — and keep the idx_b gather/scatter and the
// ascending-j log-det accumulation scalar, exactly ordered as the
// reference. When nb < 4 (low-dimensional flows: nb = dim/2) the column
// loop has no full vector, so a second path vectorizes across four ROWS
// instead — lanes are independent rows, so each element's bits are
// unchanged, and each row's log-det still accumulates in ascending j.
void affine_narrow_rows4(const double* x, const double* h,
                       const std::size_t* idx_b, std::size_t nb,
                       double scale_cap, std::size_t dim, double* y,
                       double* log_det, std::size_t r, bool inverse) {
    const __m256d cap = _mm256_set1_pd(scale_cap);
    const __m256d signmask = _mm256_set1_pd(-0.0);
    const std::size_t stride = 2 * nb;
    const double* h0 = h + r * stride;
    double ld[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t j = 0; j < nb; ++j) {
        const __m256d hv =
            _mm256_set_pd(h0[3 * stride + j], h0[2 * stride + j],
                          h0[stride + j], h0[j]);
        const __m256d s = _mm256_mul_pd(cap, avx2::ktanh4(hv));
        const __m256d es =
            avx2::kexp4(inverse ? _mm256_xor_pd(s, signmask) : s);
        alignas(32) double sb[4];
        alignas(32) double eb[4];
        _mm256_store_pd(sb, s);
        _mm256_store_pd(eb, es);
        const std::size_t c = idx_b[j];
        for (int u = 0; u < 4; ++u) {
            const double t = h0[u * stride + j + nb];
            const std::size_t at = (r + u) * dim + c;
            y[at] = inverse ? (x[at] - t) * eb[u] : x[at] * eb[u] + t;
            ld[u] += sb[u];
        }
    }
    for (int u = 0; u < 4; ++u) log_det[r + u] += ld[u];
}

void affine_fwd_rows_avx2(const double* x, const double* h,
                          const std::size_t* idx_b, std::size_t nb,
                          double scale_cap, std::size_t dim, double* y,
                          double* log_det, std::size_t r0, std::size_t r1) {
    const __m256d cap = _mm256_set1_pd(scale_cap);
    std::size_t rr = r0;
    if (nb < 4) {
        for (; rr + 4 <= r1; rr += 4)
            affine_narrow_rows4(x, h, idx_b, nb, scale_cap, dim, y, log_det,
                              rr, /*inverse=*/false);
    }
    for (std::size_t r = rr; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        std::size_t j = 0;
        for (; j + 4 <= nb; j += 4) {
            const __m256d s =
                _mm256_mul_pd(cap, avx2::ktanh4(_mm256_loadu_pd(h_row + j)));
            const __m256d es = avx2::kexp4(s);
            alignas(32) double sb[4];
            alignas(32) double eb[4];
            _mm256_store_pd(sb, s);
            _mm256_store_pd(eb, es);
            for (int u = 0; u < 4; ++u) {
                const double t = h_row[j + u + nb];
                const std::size_t c = idx_b[j + u];
                y[r * dim + c] = x[r * dim + c] * eb[u] + t;
                ld += sb[u];
            }
        }
        for (; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            y[r * dim + c] = x[r * dim + c] * k_exp(s) + t;
            ld += s;
        }
        log_det[r] += ld;
    }
}

void affine_inv_rows_avx2(const double* y, const double* h,
                          const std::size_t* idx_b, std::size_t nb,
                          double scale_cap, std::size_t dim, double* x,
                          double* log_det, std::size_t r0, std::size_t r1) {
    const __m256d cap = _mm256_set1_pd(scale_cap);
    const __m256d signmask = _mm256_set1_pd(-0.0);
    std::size_t rr = r0;
    if (nb < 4) {
        for (; rr + 4 <= r1; rr += 4)
            affine_narrow_rows4(y, h, idx_b, nb, scale_cap, dim, x, log_det,
                              rr, /*inverse=*/true);
    }
    for (std::size_t r = rr; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        std::size_t j = 0;
        for (; j + 4 <= nb; j += 4) {
            const __m256d s =
                _mm256_mul_pd(cap, avx2::ktanh4(_mm256_loadu_pd(h_row + j)));
            const __m256d es = avx2::kexp4(_mm256_xor_pd(s, signmask));
            alignas(32) double sb[4];
            alignas(32) double eb[4];
            _mm256_store_pd(sb, s);
            _mm256_store_pd(eb, es);
            for (int u = 0; u < 4; ++u) {
                const double t = h_row[j + u + nb];
                const std::size_t c = idx_b[j + u];
                x[r * dim + c] = (y[r * dim + c] - t) * eb[u];
                ld += sb[u];
            }
        }
        for (; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            x[r * dim + c] = (y[r * dim + c] - t) * k_exp(-s);
            ld += s;
        }
        log_det[r] += ld;
    }
}

void scale_shift_rows_avx2(const double* x, const double* scale,
                           const double* shift, double* y, std::size_t dim,
                           std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* x_row = x + r * dim;
        double* y_row = y + r * dim;
        std::size_t c = 0;
        for (; c + 4 <= dim; c += 4)
            _mm256_storeu_pd(
                y_row + c,
                _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(x_row + c),
                                            _mm256_loadu_pd(scale + c)),
                              _mm256_loadu_pd(shift + c)));
        for (; c < dim; ++c) y_row[c] = x_row[c] * scale[c] + shift[c];
    }
}

}  // namespace

const Table* avx2_table() {
    if (!__builtin_cpu_supports("avx2")) return nullptr;
    static const Table t = [] {
        Table tab;  // null slots fall back to the portable kernels
        tab.matmul_rows = matmul_rows_avx2;
        tab.linear_act_rows = linear_act_rows_avx2;
        tab.affine_fwd_rows = affine_fwd_rows_avx2;
        tab.affine_inv_rows = affine_inv_rows_avx2;
        tab.scale_shift_rows = scale_shift_rows_avx2;
        tab.ew_add = ew_add_avx2;
        tab.ew_sub = ew_sub_avx2;
        tab.ew_mul = ew_mul_avx2;
        tab.ew_scale = ew_scale_avx2;
        tab.ew_tanh = ew_tanh_avx2;
        tab.ew_exp = ew_exp_avx2;
        tab.ew_tanh_bwd = ew_tanh_bwd_avx2;
        return tab;
    }();
    return &t;
}

}  // namespace nofis::linalg::kernels::detail

#else  // not compiled as AVX2 / not x86

namespace nofis::linalg::kernels::detail {
const Table* avx2_table() { return nullptr; }
}  // namespace nofis::linalg::kernels::detail

#endif
