#pragma once

// Internal dispatch plumbing for the kernel layer. Each backend fills a
// Table of function pointers; dispatch.cpp picks the active one. Not part
// of the public API — tests include it to pin individual backends against
// the scalar reference directly.

#include <cstddef>

#include "linalg/kernels/kernels.hpp"

namespace nofis::linalg::kernels::detail {

struct Table {
    void (*matmul_rows)(const double*, const double*, double*, std::size_t,
                        std::size_t, std::size_t, std::size_t) = nullptr;
    void (*linear_act_rows)(const double*, const double*, const double*,
                            double*, std::size_t, std::size_t, std::size_t,
                            std::size_t, Act) = nullptr;
    void (*affine_fwd_rows)(const double*, const double*, const std::size_t*,
                            std::size_t, double, std::size_t, double*,
                            double*, std::size_t, std::size_t) = nullptr;
    void (*affine_inv_rows)(const double*, const double*, const std::size_t*,
                            std::size_t, double, std::size_t, double*,
                            double*, std::size_t, std::size_t) = nullptr;
    void (*scale_shift_rows)(const double*, const double*, const double*,
                             double*, std::size_t, std::size_t,
                             std::size_t) = nullptr;
    void (*rqs_fwd_rows)(const double*, const double*, const std::size_t*,
                         std::size_t, std::size_t, double, std::size_t,
                         double*, double*, std::size_t, std::size_t) = nullptr;
    void (*rqs_inv_rows)(const double*, const double*, const std::size_t*,
                         std::size_t, std::size_t, double, std::size_t,
                         double*, double*, std::size_t, std::size_t) = nullptr;
    void (*rqs_bwd_rows)(const double*, const double*, std::size_t,
                         std::size_t, double, const double*, const double*,
                         double*, double*, std::size_t, std::size_t) = nullptr;
    void (*ew_add)(const double*, const double*, double*,
                   std::size_t) = nullptr;
    void (*ew_sub)(const double*, const double*, double*,
                   std::size_t) = nullptr;
    void (*ew_mul)(const double*, const double*, double*,
                   std::size_t) = nullptr;
    void (*ew_scale)(const double*, double, double*, std::size_t) = nullptr;
    void (*ew_tanh)(const double*, double*, std::size_t) = nullptr;
    void (*ew_exp)(const double*, double*, std::size_t) = nullptr;
    void (*ew_tanh_bwd)(const double*, const double*, double*,
                        std::size_t) = nullptr;
};

/// Serial reference kernels — every slot non-null.
const Table& scalar_table();

/// Portable vectorized kernels — every slot non-null.
const Table& portable_table();

/// Intrinsic backends: non-null only when compiled for this architecture
/// AND the CPU supports the ISA at runtime. A returned table may leave
/// slots null; dispatch falls back to the portable table per slot.
const Table* avx2_table();
const Table* neon_table();

/// The table the `simd` choice resolves to on this machine (portable with
/// any available intrinsic slots spliced in), plus its backend name.
const Table& simd_table();

}  // namespace nofis::linalg::kernels::detail
