#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace nofis::linalg::kernels {

/// Vectorized hot-path kernel layer (DESIGN.md §13).
///
/// Every kernel exists in two observable flavours selected at runtime:
///
///   * `scalar` — the serial reference implementation. Plain loops with the
///     exact operation order the pre-kernel code used; this is the honest
///     baseline every fused/SIMD kernel is bitwise-checked against.
///   * `simd`   — register-blocked, vectorized variants (AVX2 or NEON
///     intrinsics when the CPU has them, portable `#pragma omp simd`-style
///     loops otherwise) plus the fused inference kernels.
///
/// Determinism contract: for every kernel the per-output-element operation
/// and accumulation order is IDENTICAL across flavours and SIMD backends —
/// vectorization only widens the independent output lanes, never
/// reassociates a reduction, and no FMA contraction is permitted
/// (`-ffp-contract=off` on the kernel translation units, and no TU is
/// built with -mfma). tanh/exp/sigmoid do NOT call libm: the kernel layer
/// owns deterministic Cephes-style ports (scalar_math.hpp) whose AVX2
/// mirrors (avx2_math.hpp) perform the identical operation sequence per
/// lane. Consequently `scalar` and `simd` produce bitwise-identical
/// results, including the propagation of NaN/Inf inputs, and DESIGN.md
/// §8.2's any-thread-count bitwise guarantee holds unchanged for either
/// choice. (Swapping libm out re-baselined flow numerics by a few ulps vs
/// the pre-kernel goldens — the §8.2 re-baseline note records it.)
///
/// The active flavour comes from `--kernels auto|scalar|simd` (CLI) or the
/// NOFIS_KERNELS environment variable, `auto` (the default) resolving to
/// `simd`. Like `--threads`, the choice changes wall-clock only, never
/// results.
enum class Choice {
    kAuto,    ///< resolve to kSimd (best available backend)
    kScalar,  ///< serial reference kernels + legacy tape inference path
    kSimd,    ///< fused + vectorized kernels
};

/// Resolved active choice — never kAuto.
Choice active() noexcept;

/// Selects the kernel flavour (kAuto picks kSimd). Not safe to call
/// concurrently with in-flight numeric work, same caveat as
/// parallel::set_num_threads.
void set_choice(Choice c) noexcept;

/// Parses "auto" | "scalar" | "simd"; nullopt on anything else.
std::optional<Choice> parse_choice(const std::string& name) noexcept;

/// Name of the resolved active choice: "scalar" or "simd".
const char* choice_name() noexcept;

/// SIMD backend the `simd` flavour dispatches to on this machine:
/// "avx2", "neon", or "portable".
const char* simd_backend() noexcept;

/// True when the active flavour is the fused/vectorized one.
bool simd_active() noexcept;

/// Activation applied by the fused linear kernel (mirrors nn::Activation;
/// kept separate so linalg does not depend on nn).
enum class Act { kNone, kTanh, kRelu, kLeakyRelu, kSigmoid };

// --- batched row kernels -----------------------------------------------------
// All matrices are dense row-major. Row kernels operate on the row range
// [r0, r1) so parallel_for can tile them with disjoint writes (§8.2).

/// out[i,:] += Σ_k lhs[i,k] · rhs[k,:] for i in [r0, r1). `out` rows must be
/// zero-initialised; accumulation over k is strictly ascending per output
/// element. lhs is (rows x k), rhs is (k x n), out is (rows x n).
void matmul_rows(const double* lhs, const double* rhs, double* out,
                 std::size_t r0, std::size_t r1, std::size_t k,
                 std::size_t n);

/// Fused dense layer: y[i,:] = act(x[i,:] · W + b) for i in [r0, r1).
/// W is (in x out) row-major, b has `out` entries. The bias is added after
/// the full k-sum (matching matmul-then-add_bias order) and the activation
/// is applied last.
void linear_act_rows(const double* x, const double* w, const double* b,
                     double* y, std::size_t r0, std::size_t r1,
                     std::size_t in, std::size_t out, Act act);

/// Fused RealNVP affine-coupling forward transform for rows [r0, r1):
/// given the raw conditioner output h (rows x 2·nb), for each j < nb
///   s = scale_cap · tanh(h[i,j]),  t = h[i, j+nb],
///   y[i, idx_b[j]] = x[i, idx_b[j]] · exp(s) + t,
/// and log_det[i] += Σ_j s (ascending j). Passthrough columns of y must
/// already hold x's values (callers copy x into y first).
void affine_fwd_rows(const double* x, const double* h,
                     const std::size_t* idx_b, std::size_t nb,
                     double scale_cap, std::size_t dim, double* y,
                     double* log_det, std::size_t r0, std::size_t r1);

/// Inverse of affine_fwd_rows: x[i,c] = (y[i,c] − t) · exp(−s), with the
/// *forward* log-det (Σ_j s) added into log_det — the conditioner input
/// (the passthrough half) is identical in both directions.
void affine_inv_rows(const double* y, const double* h,
                     const std::size_t* idx_b, std::size_t nb,
                     double scale_cap, std::size_t dim, double* x,
                     double* log_det, std::size_t r0, std::size_t r1);

/// Row-broadcast affine map (ActNorm value path): for i in [r0, r1),
/// y[i,:] = x[i,:] ⊙ scale + shift, with scale/shift rows of length dim.
void scale_shift_rows(const double* x, const double* scale,
                      const double* shift, double* y, std::size_t dim,
                      std::size_t r0, std::size_t r1);

// --- rational-quadratic spline coupling (DESIGN.md §14) ----------------------
// Monotone RQS transform (Durkan et al., "Neural Spline Flows"): per
// transformed column j the conditioner provides 3·num_bins+1 raw params
// (num_bins widths, num_bins heights, num_bins+1 knot derivatives) mapped
// to a spline on [-tail_bound, tail_bound] with identity tails. `h` rows
// are laid out as nb consecutive param groups of size 3·num_bins+1.
//
// These kernels currently ship only the scalar reference implementation:
// the `simd` table points at the very same function (an explicit,
// documented fallback), so the scalar ≡ simd bitwise contract holds
// trivially. Unlike the affine kernels they may call libm log/sqrt/log1p —
// safe precisely because no independently-rounded vector variant exists;
// a future vectorized flavour must port those first (see scalar_math.hpp).

/// Hard cap on spline bins: lets the kernels use fixed stack buffers.
inline constexpr std::size_t kMaxRqsBins = 32;

/// Forward spline transform for rows [r0, r1): for each j < nb,
/// y[i, idx_b[j]] = RQS(x[i, idx_b[j]]; h[i, j-th group]) and
/// log_det[i] += Σ_j log RQS'(x) (ascending j). Passthrough columns of y
/// must already hold x's values (callers copy x into y first).
void rqs_fwd_rows(const double* x, const double* h, const std::size_t* idx_b,
                  std::size_t nb, std::size_t num_bins, double tail_bound,
                  std::size_t dim, double* y, double* log_det, std::size_t r0,
                  std::size_t r1);

/// Analytic inverse of rqs_fwd_rows, with the *forward* log-det at the
/// reconstructed input added into log_det — the conditioner input (the
/// passthrough half) is identical in both directions.
void rqs_inv_rows(const double* y, const double* h, const std::size_t* idx_b,
                  std::size_t nb, std::size_t num_bins, double tail_bound,
                  std::size_t dim, double* x, double* log_det, std::size_t r0,
                  std::size_t r1);

/// Reverse-mode backward of the forward transform on COMPACT inputs
/// (xb is rows x nb — transformed columns only). Given upstream grads
/// gy (rows x nb, ∂L/∂y elementwise) and gld (rows x 1, ∂L/∂log_det row
/// sums), ADDS ∂L/∂x into gx (rows x nb) and ∂L/∂h into gh (same layout
/// as h). Callers zero-initialise gx/gh.
void rqs_bwd_rows(const double* xb, const double* h, std::size_t nb,
                  std::size_t num_bins, double tail_bound, const double* gy,
                  const double* gld, double* gx, double* gh, std::size_t r0,
                  std::size_t r1);

// --- flat elementwise kernels (autodiff value & backward phases) -------------
// `out` may alias `a` (in-place accumulate forms); n may be 0.

void ew_add(const double* a, const double* b, double* out, std::size_t n);
void ew_sub(const double* a, const double* b, double* out, std::size_t n);
void ew_mul(const double* a, const double* b, double* out, std::size_t n);
void ew_scale(const double* a, double s, double* out, std::size_t n);
void ew_tanh(const double* a, double* out, std::size_t n);
void ew_exp(const double* a, double* out, std::size_t n);
/// Backward of tanh given its forward output y: out = g ⊙ (1 − y²).
void ew_tanh_bwd(const double* y, const double* g, double* out,
                 std::size_t n);

}  // namespace nofis::linalg::kernels
