// NEON intrinsic kernels (aarch64, where Advanced SIMD is baseline — no
// runtime feature probe needed). Same bitwise contract as the AVX2 TU:
// separate vmulq/vaddq (never vfmaq), ascending-k accumulation per output
// element. Compiled with -ffp-contract=off. libm-bound kernels fall back
// to the portable table.

#include "linalg/kernels/table.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace nofis::linalg::kernels::detail {

namespace {

void matmul_rows_neon(const double* lhs, const double* rhs, double* out,
                      std::size_t r0, std::size_t r1, std::size_t k,
                      std::size_t n) {
    for (std::size_t i = r0; i < r1; ++i) {
        double* out_row = out + i * n;
        const double* lhs_row = lhs + i * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double a = lhs_row[kk];
            const double* rp = rhs + kk * n;
            const float64x2_t va = vdupq_n_f64(a);
            std::size_t j = 0;
            for (; j + 4 <= n; j += 4) {
                float64x2_t c0 = vld1q_f64(out_row + j);
                float64x2_t c1 = vld1q_f64(out_row + j + 2);
                c0 = vaddq_f64(c0, vmulq_f64(va, vld1q_f64(rp + j)));
                c1 = vaddq_f64(c1, vmulq_f64(va, vld1q_f64(rp + j + 2)));
                vst1q_f64(out_row + j, c0);
                vst1q_f64(out_row + j + 2, c1);
            }
            for (; j + 2 <= n; j += 2) {
                float64x2_t c = vld1q_f64(out_row + j);
                c = vaddq_f64(c, vmulq_f64(va, vld1q_f64(rp + j)));
                vst1q_f64(out_row + j, c);
            }
            for (; j < n; ++j) out_row[j] += a * rp[j];
        }
    }
}

void ew_add_neon(const double* a, const double* b, double* out,
                 std::size_t n) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    for (; i < n; ++i) out[i] = a[i] + b[i];
}

void ew_sub_neon(const double* a, const double* b, double* out,
                 std::size_t n) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    for (; i < n; ++i) out[i] = a[i] - b[i];
}

void ew_mul_neon(const double* a, const double* b, double* out,
                 std::size_t n) {
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ew_scale_neon(const double* a, double s, double* out, std::size_t n) {
    const float64x2_t vs = vdupq_n_f64(s);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vs));
    for (; i < n; ++i) out[i] = a[i] * s;
}

void ew_tanh_bwd_neon(const double* y, const double* g, double* out,
                      std::size_t n) {
    const float64x2_t one = vdupq_n_f64(1.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const float64x2_t vy = vld1q_f64(y + i);
        const float64x2_t d = vsubq_f64(one, vmulq_f64(vy, vy));
        vst1q_f64(out + i, vmulq_f64(vld1q_f64(g + i), d));
    }
    for (; i < n; ++i) out[i] = g[i] * (1.0 - y[i] * y[i]);
}

}  // namespace

const Table* neon_table() {
    static const Table t = [] {
        Table tab;  // null slots fall back to the portable kernels
        tab.matmul_rows = matmul_rows_neon;
        tab.ew_add = ew_add_neon;
        tab.ew_sub = ew_sub_neon;
        tab.ew_mul = ew_mul_neon;
        tab.ew_scale = ew_scale_neon;
        tab.ew_tanh_bwd = ew_tanh_bwd_neon;
        return tab;
    }();
    return &t;
}

}  // namespace nofis::linalg::kernels::detail

#else  // not aarch64

namespace nofis::linalg::kernels::detail {
const Table* neon_table() { return nullptr; }
}  // namespace nofis::linalg::kernels::detail

#endif
