// Serial reference kernels. These loops define the numeric contract: the
// exact per-output-element operation and accumulation order every SIMD /
// fused variant must reproduce bitwise. They intentionally contain no
// sparsity shortcuts — a zero multiplier must still multiply so that
// 0·NaN == NaN and non-finite divergence propagates to all_finite() checks.
//
// tanh/exp/sigmoid go through the deterministic k_* ports in
// scalar_math.hpp, not libm — libm is the one piece of the pipeline whose
// rounding we do not control, and the AVX2 backend mirrors k_* op-for-op.

#include <cmath>

#include "linalg/kernels/scalar_math.hpp"
#include "linalg/kernels/table.hpp"

namespace nofis::linalg::kernels::detail {

namespace {

void matmul_rows_scalar(const double* lhs, const double* rhs, double* out,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t n) {
    for (std::size_t i = r0; i < r1; ++i) {
        double* out_row = out + i * n;
        const double* lhs_row = lhs + i * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double a = lhs_row[kk];
            const double* rhs_row = rhs + kk * n;
            for (std::size_t j = 0; j < n; ++j) out_row[j] += a * rhs_row[j];
        }
    }
}

double apply_act(double v, Act act) {
    switch (act) {
        case Act::kNone:
            return v;
        case Act::kTanh:
            return k_tanh(v);
        case Act::kRelu:
            return v > 0.0 ? v : 0.0;
        case Act::kLeakyRelu:
            return v > 0.0 ? v : 0.01 * v;
        case Act::kSigmoid:
            return k_sigmoid(v);
    }
    return v;
}

void linear_act_rows_scalar(const double* x, const double* w, const double* b,
                            double* y, std::size_t r0, std::size_t r1,
                            std::size_t in, std::size_t out, Act act) {
    for (std::size_t i = r0; i < r1; ++i) {
        const double* x_row = x + i * in;
        double* y_row = y + i * out;
        // Accumulate from zero in ascending-k order, bias strictly after the
        // full sum — the same order as matmul followed by add_row_broadcast.
        for (std::size_t j = 0; j < out; ++j) y_row[j] = 0.0;
        for (std::size_t kk = 0; kk < in; ++kk) {
            const double a = x_row[kk];
            const double* w_row = w + kk * out;
            for (std::size_t j = 0; j < out; ++j) y_row[j] += a * w_row[j];
        }
        for (std::size_t j = 0; j < out; ++j)
            y_row[j] = apply_act(y_row[j] + b[j], act);
    }
}

void affine_fwd_rows_scalar(const double* x, const double* h,
                            const std::size_t* idx_b, std::size_t nb,
                            double scale_cap, std::size_t dim, double* y,
                            double* log_det, std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            y[r * dim + c] = x[r * dim + c] * k_exp(s) + t;
            ld += s;
        }
        log_det[r] += ld;
    }
}

void affine_inv_rows_scalar(const double* y, const double* h,
                            const std::size_t* idx_b, std::size_t nb,
                            double scale_cap, std::size_t dim, double* x,
                            double* log_det, std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            x[r * dim + c] = (y[r * dim + c] - t) * k_exp(-s);
            ld += s;
        }
        log_det[r] += ld;
    }
}

void scale_shift_rows_scalar(const double* x, const double* scale,
                             const double* shift, double* y, std::size_t dim,
                             std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            y[r * dim + c] = x[r * dim + c] * scale[c] + shift[c];
}

// --- rational-quadratic splines (DESIGN.md §14) ------------------------------
// Per-element monotone RQS transform after Durkan et al., "Neural Spline
// Flows". All spline arithmetic lives in THIS translation unit (compiled
// with -ffp-contract=off like every kernel TU) and every flavour's table
// points here, so the bitwise scalar ≡ simd and tape ≡ value-path
// guarantees hold by construction. std::log/std::sqrt/std::log1p are
// permitted (unlike tanh/exp) because no independently-rounded vector
// variant of these kernels exists — see the note in kernels.hpp.

/// Fraction of the interval each bin keeps at minimum (keeps softmax bins
/// from collapsing and the log-det finite).
constexpr double kRqsMinBin = 1e-3;
/// Floor on knot derivatives (keeps the transform strictly monotone).
constexpr double kRqsMinDeriv = 1e-3;

/// Stable softplus log(1 + e^x) built on the deterministic k_exp.
double rqs_softplus(double x) {
    const double ax = k_abs(x);
    const double base = x > 0.0 ? x : 0.0;
    return base + std::log1p(k_exp(-ax));
}

/// Raw-parameter offset chosen so that zero raw derivatives map to slope
/// exactly 1: kRqsMinDeriv + softplus(shift) == 1.
double rqs_deriv_shift() {
    static const double shift = std::log(std::expm1(1.0 - kRqsMinDeriv));
    return shift;
}

/// Scratch for one spline instance: knot positions/heights/derivatives plus
/// the softmax weights needed by the backward pass.
struct RqsKnots {
    double xk[kMaxRqsBins + 1];
    double yk[kMaxRqsBins + 1];
    double dk[kMaxRqsBins + 1];
    double sw[kMaxRqsBins];  ///< softmax width weights (sum 1)
    double sh[kMaxRqsBins];  ///< softmax height weights (sum 1)
};

/// Maps the 3K+1 raw params `p` (K widths, K heights, K+1 derivatives) to
/// knots on [-B, B]. The last knot is pinned to exactly B (the softmax
/// weights sum to 1 mathematically; pinning removes cumsum rounding so the
/// bin search and the tail test agree on the boundary).
void rqs_build(const double* p, std::size_t K, double B, RqsKnots& kn) {
    const double span = 2.0 * B;
    const double floor_w = span * kRqsMinBin;
    const double free_w = span * (1.0 - static_cast<double>(K) * kRqsMinBin);
    for (int which = 0; which < 2; ++which) {
        const double* raw = p + (which == 0 ? 0 : K);
        double* sm = which == 0 ? kn.sw : kn.sh;
        double* knot = which == 0 ? kn.xk : kn.yk;
        double m = raw[0];
        for (std::size_t k = 1; k < K; ++k) m = raw[k] > m ? raw[k] : m;
        double sum = 0.0;
        for (std::size_t k = 0; k < K; ++k) {
            sm[k] = k_exp(raw[k] - m);
            sum += sm[k];
        }
        const double inv = 1.0 / sum;
        double acc = -B;
        knot[0] = -B;
        for (std::size_t k = 0; k < K; ++k) {
            sm[k] *= inv;
            acc += floor_w + free_w * sm[k];
            knot[k + 1] = acc;
        }
        knot[K] = B;
    }
    const double shift = rqs_deriv_shift();
    for (std::size_t k = 0; k <= K; ++k)
        kn.dk[k] = kRqsMinDeriv + rqs_softplus(p[2 * K + k] + shift);
}

/// Bin index of `v` against ascending knots; v must be in [-B, B].
std::size_t rqs_bin(double v, const double* knots, std::size_t K) {
    std::size_t k = 0;
    while (k + 1 < K && v >= knots[k + 1]) ++k;
    return k;
}

/// Forward transform of one element; writes log|dy/dx| into *logd.
/// Outside [-B, B] (and for NaN) the map is the identity with log-det 0.
double rqs_fwd_one(double x, const RqsKnots& kn, std::size_t K, double B,
                   double* logd) {
    if (!(x >= -B && x <= B)) {
        *logd = 0.0;
        return x;
    }
    const std::size_t k = rqs_bin(x, kn.xk, K);
    const double w = kn.xk[k + 1] - kn.xk[k];
    const double hb = kn.yk[k + 1] - kn.yk[k];
    const double s = hb / w;
    const double xi = (x - kn.xk[k]) / w;
    const double u = xi * (1.0 - xi);
    const double c2 = kn.dk[k] + kn.dk[k + 1] - 2.0 * s;
    const double den = s + c2 * u;
    const double num = s * xi * xi + kn.dk[k] * u;
    const double omxi = 1.0 - xi;
    const double mid = kn.dk[k + 1] * xi * xi + 2.0 * s * u +
                       kn.dk[k] * omxi * omxi;
    *logd = std::log((s * s * mid) / (den * den));
    return kn.yk[k] + hb * (num / den);
}

/// Inverse of rqs_fwd_one via the numerically stable quadratic root;
/// writes the FORWARD log-det at the reconstructed input into *logd.
double rqs_inv_one(double y, const RqsKnots& kn, std::size_t K, double B,
                   double* logd) {
    if (!(y >= -B && y <= B)) {
        *logd = 0.0;
        return y;
    }
    const std::size_t k = rqs_bin(y, kn.yk, K);
    const double w = kn.xk[k + 1] - kn.xk[k];
    const double hb = kn.yk[k + 1] - kn.yk[k];
    const double s = hb / w;
    const double dy = y - kn.yk[k];
    const double c2 = kn.dk[k] + kn.dk[k + 1] - 2.0 * s;
    const double qa = hb * (s - kn.dk[k]) + dy * c2;
    const double qb = hb * kn.dk[k] - dy * c2;
    const double qc = -s * dy;
    double disc = qb * qb - 4.0 * qa * qc;
    disc = disc > 0.0 ? disc : 0.0;  // clamp -0/rounding dust
    const double xi = (2.0 * qc) / (-qb - std::sqrt(disc));
    const double u = xi * (1.0 - xi);
    const double den = s + c2 * u;
    const double omxi = 1.0 - xi;
    const double mid = kn.dk[k + 1] * xi * xi + 2.0 * s * u +
                       kn.dk[k] * omxi * omxi;
    *logd = std::log((s * s * mid) / (den * den));
    return kn.xk[k] + xi * w;
}

void rqs_fwd_rows_scalar(const double* x, const double* h,
                         const std::size_t* idx_b, std::size_t nb,
                         std::size_t num_bins, double tail_bound,
                         std::size_t dim, double* y, double* log_det,
                         std::size_t r0, std::size_t r1) {
    const std::size_t group = 3 * num_bins + 1;
    RqsKnots kn;
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (nb * group);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            rqs_build(h_row + j * group, num_bins, tail_bound, kn);
            const std::size_t c = idx_b[j];
            double el = 0.0;
            y[r * dim + c] =
                rqs_fwd_one(x[r * dim + c], kn, num_bins, tail_bound, &el);
            ld += el;
        }
        log_det[r] += ld;
    }
}

void rqs_inv_rows_scalar(const double* y, const double* h,
                         const std::size_t* idx_b, std::size_t nb,
                         std::size_t num_bins, double tail_bound,
                         std::size_t dim, double* x, double* log_det,
                         std::size_t r0, std::size_t r1) {
    const std::size_t group = 3 * num_bins + 1;
    RqsKnots kn;
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (nb * group);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            rqs_build(h_row + j * group, num_bins, tail_bound, kn);
            const std::size_t c = idx_b[j];
            double el = 0.0;
            x[r * dim + c] =
                rqs_inv_one(y[r * dim + c], kn, num_bins, tail_bound, &el);
            ld += el;
        }
        log_det[r] += ld;
    }
}

/// Backward of one spline element: accumulates ∂L/∂x into *gx and ∂L/∂raw
/// params into gp[0..3K]. gy_el is ∂L/∂y, gl is ∂L/∂(this element's logd).
void rqs_bwd_one(double x, const double* p, const RqsKnots& kn,
                 std::size_t K, double B, double gy_el, double gl, double* gx,
                 double* gp) {
    if (!(x >= -B && x <= B)) {
        *gx += gy_el;  // identity tail: dy/dx = 1, logd ≡ 0
        return;
    }
    const std::size_t k = rqs_bin(x, kn.xk, K);
    const double w = kn.xk[k + 1] - kn.xk[k];
    const double hb = kn.yk[k + 1] - kn.yk[k];
    const double s = hb / w;
    const double xi = (x - kn.xk[k]) / w;
    const double u = xi * (1.0 - xi);
    const double omxi = 1.0 - xi;
    const double d0 = kn.dk[k];
    const double d1 = kn.dk[k + 1];
    const double c2 = d0 + d1 - 2.0 * s;
    const double den = s + c2 * u;
    const double num = s * xi * xi + d0 * u;
    const double mid = d1 * xi * xi + 2.0 * s * u + d0 * omxi * omxi;

    // Partials of num/den/mid w.r.t. the local variables (ξ, s, d0, d1).
    const double one_m2xi = 1.0 - 2.0 * xi;
    const double num_xi = 2.0 * s * xi + d0 * one_m2xi;
    const double den_xi = c2 * one_m2xi;
    const double mid_xi = 2.0 * (d1 * xi + s * one_m2xi - d0 * omxi);
    const double inv_den = 1.0 / den;
    const double inv_den2 = inv_den * inv_den;

    // y = yk + hb·num/den, logd = log(s²·mid/den²).
    const double y_xi = hb * (num_xi * den - num * den_xi) * inv_den2;
    const double y_s = hb * (xi * xi * den - num * (1.0 - 2.0 * u)) * inv_den2;
    const double y_d0 = hb * (u * den - num * u) * inv_den2;
    const double y_d1 = -hb * num * u * inv_den2;
    const double inv_mid = 1.0 / mid;
    const double l_xi = mid_xi * inv_mid - 2.0 * den_xi * inv_den;
    const double l_s = 2.0 / s + 2.0 * u * inv_mid -
                       2.0 * (1.0 - 2.0 * u) * inv_den;
    const double l_d0 = omxi * omxi * inv_mid - 2.0 * u * inv_den;
    const double l_d1 = xi * xi * inv_mid - 2.0 * u * inv_den;

    const double g_xi = gy_el * y_xi + gl * l_xi;
    const double g_s = gy_el * y_s + gl * l_s;
    const double g_d0 = gy_el * y_d0 + gl * l_d0;
    const double g_d1 = gy_el * y_d1 + gl * l_d1;
    const double g_hb = gy_el * (num * inv_den) + g_s / w;  // s = hb/w
    const double g_yk = gy_el;
    const double g_w = -(g_s * s + g_xi * xi) / w;  // via s and ξ
    const double g_xk = -g_xi / w;
    *gx += g_xi / w;

    // Chain knot grads through cumsum → scaled softmax → raw widths/heights.
    // width_i = 2B·kMinBin + span_free·softmax_i; xk_k sees width_i for
    // i < k, w sees width_k (and symmetrically for heights/yk_k/hb).
    // Softmax backward: g_raw_j = sm_j·(g_sm_j − Σ_i g_sm_i·sm_i).
    const double span_free =
        2.0 * B * (1.0 - static_cast<double>(K) * kRqsMinBin);
    double wsum_lt = 0.0;
    double hsum_lt = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        wsum_lt += kn.sw[i];
        hsum_lt += kn.sh[i];
    }
    const double wdot = span_free * (g_xk * wsum_lt + g_w * kn.sw[k]);
    const double hdot = span_free * (g_yk * hsum_lt + g_hb * kn.sh[k]);
    for (std::size_t i = 0; i < K; ++i) {
        const double gsw =
            span_free * ((i < k ? g_xk : 0.0) + (i == k ? g_w : 0.0));
        gp[i] += kn.sw[i] * (gsw - wdot);
        const double gsh =
            span_free * ((i < k ? g_yk : 0.0) + (i == k ? g_hb : 0.0));
        gp[K + i] += kn.sh[i] * (gsh - hdot);
    }
    // derivatives: d = kRqsMinDeriv + softplus(raw + shift).
    const double shift = rqs_deriv_shift();
    gp[2 * K + k] += g_d0 * k_sigmoid(p[2 * K + k] + shift);
    gp[2 * K + k + 1] += g_d1 * k_sigmoid(p[2 * K + k + 1] + shift);
}

void rqs_bwd_rows_scalar(const double* xb, const double* h, std::size_t nb,
                         std::size_t num_bins, double tail_bound,
                         const double* gy, const double* gld, double* gx,
                         double* gh, std::size_t r0, std::size_t r1) {
    const std::size_t group = 3 * num_bins + 1;
    RqsKnots kn;
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (nb * group);
        double* gh_row = gh + r * (nb * group);
        const double gl = gld[r];
        for (std::size_t j = 0; j < nb; ++j) {
            const double* p = h_row + j * group;
            rqs_build(p, num_bins, tail_bound, kn);
            rqs_bwd_one(xb[r * nb + j], p, kn, num_bins, tail_bound,
                        gy[r * nb + j], gl, &gx[r * nb + j],
                        gh_row + j * group);
        }
    }
}

void ew_add_scalar(const double* a, const double* b, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void ew_sub_scalar(const double* a, const double* b, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void ew_mul_scalar(const double* a, const double* b, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ew_scale_scalar(const double* a, double s, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void ew_tanh_scalar(const double* a, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = k_tanh(a[i]);
}

void ew_exp_scalar(const double* a, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = k_exp(a[i]);
}

void ew_tanh_bwd_scalar(const double* y, const double* g, double* out,
                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * (1.0 - y[i] * y[i]);
}

}  // namespace

const Table& scalar_table() {
    static const Table t = [] {
        Table tab;
        tab.matmul_rows = matmul_rows_scalar;
        tab.linear_act_rows = linear_act_rows_scalar;
        tab.affine_fwd_rows = affine_fwd_rows_scalar;
        tab.affine_inv_rows = affine_inv_rows_scalar;
        tab.scale_shift_rows = scale_shift_rows_scalar;
        tab.rqs_fwd_rows = rqs_fwd_rows_scalar;
        tab.rqs_inv_rows = rqs_inv_rows_scalar;
        tab.rqs_bwd_rows = rqs_bwd_rows_scalar;
        tab.ew_add = ew_add_scalar;
        tab.ew_sub = ew_sub_scalar;
        tab.ew_mul = ew_mul_scalar;
        tab.ew_scale = ew_scale_scalar;
        tab.ew_tanh = ew_tanh_scalar;
        tab.ew_exp = ew_exp_scalar;
        tab.ew_tanh_bwd = ew_tanh_bwd_scalar;
        return tab;
    }();
    return t;
}

}  // namespace nofis::linalg::kernels::detail
