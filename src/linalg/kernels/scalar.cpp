// Serial reference kernels. These loops define the numeric contract: the
// exact per-output-element operation and accumulation order every SIMD /
// fused variant must reproduce bitwise. They intentionally contain no
// sparsity shortcuts — a zero multiplier must still multiply so that
// 0·NaN == NaN and non-finite divergence propagates to all_finite() checks.
//
// tanh/exp/sigmoid go through the deterministic k_* ports in
// scalar_math.hpp, not libm — libm is the one piece of the pipeline whose
// rounding we do not control, and the AVX2 backend mirrors k_* op-for-op.

#include "linalg/kernels/scalar_math.hpp"
#include "linalg/kernels/table.hpp"

namespace nofis::linalg::kernels::detail {

namespace {

void matmul_rows_scalar(const double* lhs, const double* rhs, double* out,
                        std::size_t r0, std::size_t r1, std::size_t k,
                        std::size_t n) {
    for (std::size_t i = r0; i < r1; ++i) {
        double* out_row = out + i * n;
        const double* lhs_row = lhs + i * k;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const double a = lhs_row[kk];
            const double* rhs_row = rhs + kk * n;
            for (std::size_t j = 0; j < n; ++j) out_row[j] += a * rhs_row[j];
        }
    }
}

double apply_act(double v, Act act) {
    switch (act) {
        case Act::kNone:
            return v;
        case Act::kTanh:
            return k_tanh(v);
        case Act::kRelu:
            return v > 0.0 ? v : 0.0;
        case Act::kLeakyRelu:
            return v > 0.0 ? v : 0.01 * v;
        case Act::kSigmoid:
            return k_sigmoid(v);
    }
    return v;
}

void linear_act_rows_scalar(const double* x, const double* w, const double* b,
                            double* y, std::size_t r0, std::size_t r1,
                            std::size_t in, std::size_t out, Act act) {
    for (std::size_t i = r0; i < r1; ++i) {
        const double* x_row = x + i * in;
        double* y_row = y + i * out;
        // Accumulate from zero in ascending-k order, bias strictly after the
        // full sum — the same order as matmul followed by add_row_broadcast.
        for (std::size_t j = 0; j < out; ++j) y_row[j] = 0.0;
        for (std::size_t kk = 0; kk < in; ++kk) {
            const double a = x_row[kk];
            const double* w_row = w + kk * out;
            for (std::size_t j = 0; j < out; ++j) y_row[j] += a * w_row[j];
        }
        for (std::size_t j = 0; j < out; ++j)
            y_row[j] = apply_act(y_row[j] + b[j], act);
    }
}

void affine_fwd_rows_scalar(const double* x, const double* h,
                            const std::size_t* idx_b, std::size_t nb,
                            double scale_cap, std::size_t dim, double* y,
                            double* log_det, std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            y[r * dim + c] = x[r * dim + c] * k_exp(s) + t;
            ld += s;
        }
        log_det[r] += ld;
    }
}

void affine_inv_rows_scalar(const double* y, const double* h,
                            const std::size_t* idx_b, std::size_t nb,
                            double scale_cap, std::size_t dim, double* x,
                            double* log_det, std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            x[r * dim + c] = (y[r * dim + c] - t) * k_exp(-s);
            ld += s;
        }
        log_det[r] += ld;
    }
}

void scale_shift_rows_scalar(const double* x, const double* scale,
                             const double* shift, double* y, std::size_t dim,
                             std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            y[r * dim + c] = x[r * dim + c] * scale[c] + shift[c];
}

void ew_add_scalar(const double* a, const double* b, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void ew_sub_scalar(const double* a, const double* b, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void ew_mul_scalar(const double* a, const double* b, double* out,
                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ew_scale_scalar(const double* a, double s, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void ew_tanh_scalar(const double* a, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = k_tanh(a[i]);
}

void ew_exp_scalar(const double* a, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = k_exp(a[i]);
}

void ew_tanh_bwd_scalar(const double* y, const double* g, double* out,
                        std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * (1.0 - y[i] * y[i]);
}

}  // namespace

const Table& scalar_table() {
    static const Table t = [] {
        Table tab;
        tab.matmul_rows = matmul_rows_scalar;
        tab.linear_act_rows = linear_act_rows_scalar;
        tab.affine_fwd_rows = affine_fwd_rows_scalar;
        tab.affine_inv_rows = affine_inv_rows_scalar;
        tab.scale_shift_rows = scale_shift_rows_scalar;
        tab.ew_add = ew_add_scalar;
        tab.ew_sub = ew_sub_scalar;
        tab.ew_mul = ew_mul_scalar;
        tab.ew_scale = ew_scale_scalar;
        tab.ew_tanh = ew_tanh_scalar;
        tab.ew_exp = ew_exp_scalar;
        tab.ew_tanh_bwd = ew_tanh_bwd_scalar;
        return tab;
    }();
    return t;
}

}  // namespace nofis::linalg::kernels::detail
