#pragma once

// Deterministic transcendental kernels (DESIGN.md §13, re-baselined per
// §8.2 in PR 7).
//
// libm's tanh/exp dominate the flow hot path (~80 calls per row·layer) and
// cannot be vectorized without changing results, because no two libms — or
// even a libm and its own SIMD variants — round identically. So the kernel
// layer carries its own implementations, ported from the public-domain
// Cephes library (Moshier): ~1-2 ulp accuracy, and every operation is a
// single IEEE-754 mul/add/sub/div/compare/select in a FIXED order. The
// AVX2 variants in avx2_math.hpp perform the exact same operation sequence
// per lane (no FMA, no reassociation), so scalar and vector results are
// bitwise identical — including NaN payloads (canonicalized positive, see
// k_abs), signed zeros, infinities and gradual underflow.
//
// Style note: the scalar code below intentionally mirrors vector blend
// semantics — clamp via the (a > b ? a : b) forms that match
// _mm256_max_pd/_mm256_min_pd NaN behaviour, compute the main path on the
// clamped value, then apply range/NaN selects in the same order as the
// vector blends. Do not "simplify" it into early returns that reorder the
// selects.

#include <cstdint>
#include <cstring>

namespace nofis::linalg::kernels {

namespace cephes {

// exp: e^x = 2^n · e^r with r = x − n·ln2 (Cody-Waite split C1+C2),
// e^r = 1 + 2·r·P(r²) / (Q(r²) − r·P(r²)). (A division-free degree-13
// Taylor polynomial was benchmarked as an alternative and lost: its long
// serial Horner chain costs more than the rational's one vdivpd on the
// batched hot path.)
inline constexpr double kLog2E = 1.4426950408889634073599;
inline constexpr double kExpC1 = 6.93145751953125E-1;
inline constexpr double kExpC2 = 1.42860682030941723212E-6;
inline constexpr double kExpP0 = 1.26177193074810590878E-4;
inline constexpr double kExpP1 = 3.02994407707441961300E-2;
inline constexpr double kExpP2 = 9.99999999999999999910E-1;
inline constexpr double kExpQ0 = 3.00198505138664455042E-6;
inline constexpr double kExpQ1 = 2.52448340349684104192E-3;
inline constexpr double kExpQ2 = 2.27265548208155028766E-1;
inline constexpr double kExpQ3 = 2.00000000000000000005E0;
/// Above this, exp overflows double (ln DBL_MAX); result is +inf.
inline constexpr double kExpOverflow = 709.782712893383996843;
/// Below this, exp underflows even the denormals; result is +0.
inline constexpr double kExpUnderflow = -745.133219101941108420;

// tanh, |x| < 0.625: x + x·x²·P(x²)/Q(x²) (Q monic).
inline constexpr double kTanhP0 = -9.64399179425052238628E-1;
inline constexpr double kTanhP1 = -9.92877231001918586564E1;
inline constexpr double kTanhP2 = -1.61468768441708447952E3;
inline constexpr double kTanhQ0 = 1.12811678491632931402E2;
inline constexpr double kTanhQ1 = 2.23548839060100448583E3;
inline constexpr double kTanhQ2 = 4.84406305325125486048E3;
inline constexpr double kTanhBranch = 0.625;

}  // namespace cephes

/// 2^n for biased-exponent-representable n; callers split larger scalings
/// into two factors. Exact (a power of two), so multiplication by it only
/// rounds when the product over/underflows — deterministically.
inline double pow2i(int n) {
    const std::uint64_t bits = static_cast<std::uint64_t>(n + 1023) << 52;
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
}

/// |x| as a sign-bit clear (the vector andnot). Also the canonical NaN the
/// k_* functions return for NaN input: compilers do not preserve the sign
/// bit of a NaN through negation/folding (IEEE leaves it unspecified), so
/// a NaN result pinned to the *signed* input bits would differ between
/// translation units. Clearing the sign makes the output independent of
/// whatever the optimizer did to the argument's sign while keeping the
/// payload.
inline double k_abs(double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    bits &= 0x7fffffffffffffffULL;
    std::memcpy(&x, &bits, sizeof x);
    return x;
}

/// Deterministic e^x. Bitwise identical to the AVX2 lane computation.
inline double k_exp(double x) {
    using namespace cephes;
    // Clamp with max/min-style selects (NaN lanes collapse to the bound and
    // are restored by the final select).
    double xm = (x > kExpUnderflow) ? x : kExpUnderflow;  // max(x, lo)
    xm = (xm < kExpOverflow) ? xm : kExpOverflow;         // min(xm, hi)

    // n = floor(x·log2e + 0.5): round-half-up, matching _mm256_floor_pd.
    double w = xm * kLog2E + 0.5;
    w = __builtin_floor(w);
    const int n = static_cast<int>(w);

    double r = xm - w * kExpC1;
    r = r - w * kExpC2;
    const double rr = r * r;
    const double px = r * ((kExpP0 * rr + kExpP1) * rr + kExpP2);
    const double qx = ((kExpQ0 * rr + kExpQ1) * rr + kExpQ2) * rr + kExpQ3;
    double e = 1.0 + 2.0 * (px / (qx - px));

    // 2^n in two exact factors so n beyond the exponent range (denormal
    // results, or n = 1024 at the overflow edge) still scales correctly.
    const int n1 = n >> 1;  // arithmetic shift: floor, same as vpsrad
    const int n2 = n - n1;
    e = (e * pow2i(n1)) * pow2i(n2);

    // Range/NaN selects, in the same order as the vector blends. NaN in →
    // canonical (sign-cleared) NaN out; see k_abs for why not x itself.
    e = (x > kExpOverflow) ? __builtin_inf() : e;
    e = (x < kExpUnderflow) ? 0.0 : e;
    e = (x != x) ? k_abs(x) : e;
    return e;
}

/// Deterministic tanh(x). Bitwise identical to the AVX2 lane computation.
///
/// The magnitude is computed on |x| and the sign applied once at the end
/// as a bit-or: round-to-nearest is sign-symmetric, so this equals
/// computing on x directly for every finite magnitude while also making
/// odd symmetry exact — including tanh(−0) == −0, which the naive
/// x + x·(...) form destroys (−0 + +0 rounds to +0).
///
/// Both branches are phrased as a single num/den ratio so the whole
/// function costs ONE division (the tanh hot path is division-throughput
/// bound in the vector backend):
///   |x| ≥ 0.625:  (1 − s) / (1 + s) with s = e^(−2|x|)  [== 1 − 2s/(s+1);
///                  s underflow saturates to exactly 1, covering infinity]
///   |x| < 0.625:  |x|·(Q(x²) + x²·P(x²)) / Q(x²)
///                  [== |x| + |x|·x²·P/Q, accurate where the big form
///                  would cancel]
inline double k_tanh(double x) {
    using namespace cephes;
    const double ax = k_abs(x);

    double num, den;
    if (ax >= kTanhBranch) {
        const double s = k_exp(-2.0 * ax);
        num = 1.0 - s;
        den = 1.0 + s;
    } else {
        // NaN lands here (>= compares false) and rides through num.
        const double x2 = ax * ax;
        const double p = (kTanhP0 * x2 + kTanhP1) * x2 + kTanhP2;
        const double q = ((x2 + kTanhQ0) * x2 + kTanhQ1) * x2 + kTanhQ2;
        num = ax * (q + x2 * p);
        den = q;
    }
    double t = num / den;
    {  // copysign(t, x) as a bit-or, matching the vector or(sign, t)
        std::uint64_t tbits, xbits;
        std::memcpy(&tbits, &t, sizeof tbits);
        std::memcpy(&xbits, &x, sizeof xbits);
        tbits |= (xbits & 0x8000000000000000ULL);
        std::memcpy(&t, &tbits, sizeof t);
    }
    // Canonical NaN out (ax IS the sign-cleared input), never the NaN the
    // arithmetic above happened to produce — its sign/ordering is at the
    // optimizer's mercy.
    t = (x != x) ? ax : t;
    return t;
}

/// Deterministic logistic sigmoid 1/(1+e^(−x)), built on k_exp so the fused
/// kernels and the autodiff tape path agree bitwise.
inline double k_sigmoid(double x) { return 1.0 / (1.0 + k_exp(-x)); }

}  // namespace nofis::linalg::kernels
