// Portable vectorized kernels: register-blocked loops annotated with
// `#pragma omp simd` (honored via -fopenmp-simd; plain auto-vectorizable
// loops otherwise). The inner j loops are lane-parallel over independent
// output elements, so vectorization never reassociates an accumulation:
// each out[j] still sums its k-terms in strictly ascending order, exactly
// like the scalar reference. This TU is compiled with -ffp-contract=off so
// no mul+add pair is fused into an FMA — bitwise equality with the scalar
// kernels is a hard contract, not a tolerance.

#include "linalg/kernels/scalar_math.hpp"
#include "linalg/kernels/table.hpp"

namespace nofis::linalg::kernels::detail {

namespace {

void matmul_rows_portable(const double* lhs, const double* rhs, double* out,
                          std::size_t r0, std::size_t r1, std::size_t k,
                          std::size_t n) {
    for (std::size_t i = r0; i < r1; ++i) {
        double* out_row = out + i * n;
        const double* lhs_row = lhs + i * k;
        std::size_t kk = 0;
        // Register-blocked over k: four rhs rows stream per pass, each
        // out[j] accumulating its four terms in ascending-k order.
        for (; kk + 4 <= k; kk += 4) {
            const double a0 = lhs_row[kk];
            const double a1 = lhs_row[kk + 1];
            const double a2 = lhs_row[kk + 2];
            const double a3 = lhs_row[kk + 3];
            const double* r0p = rhs + kk * n;
            const double* r1p = r0p + n;
            const double* r2p = r1p + n;
            const double* r3p = r2p + n;
#pragma omp simd
            for (std::size_t j = 0; j < n; ++j) {
                double acc = out_row[j];
                acc = acc + a0 * r0p[j];
                acc = acc + a1 * r1p[j];
                acc = acc + a2 * r2p[j];
                acc = acc + a3 * r3p[j];
                out_row[j] = acc;
            }
        }
        for (; kk < k; ++kk) {
            const double a = lhs_row[kk];
            const double* rhs_row = rhs + kk * n;
#pragma omp simd
            for (std::size_t j = 0; j < n; ++j) out_row[j] += a * rhs_row[j];
        }
    }
}

void linear_act_rows_portable(const double* x, const double* w,
                              const double* b, double* y, std::size_t r0,
                              std::size_t r1, std::size_t in, std::size_t out,
                              Act act) {
    for (std::size_t i = r0; i < r1; ++i) {
        const double* x_row = x + i * in;
        double* y_row = y + i * out;
#pragma omp simd
        for (std::size_t j = 0; j < out; ++j) y_row[j] = 0.0;
        std::size_t kk = 0;
        for (; kk + 4 <= in; kk += 4) {
            const double a0 = x_row[kk];
            const double a1 = x_row[kk + 1];
            const double a2 = x_row[kk + 2];
            const double a3 = x_row[kk + 3];
            const double* w0 = w + kk * out;
            const double* w1 = w0 + out;
            const double* w2 = w1 + out;
            const double* w3 = w2 + out;
#pragma omp simd
            for (std::size_t j = 0; j < out; ++j) {
                double acc = y_row[j];
                acc = acc + a0 * w0[j];
                acc = acc + a1 * w1[j];
                acc = acc + a2 * w2[j];
                acc = acc + a3 * w3[j];
                y_row[j] = acc;
            }
        }
        for (; kk < in; ++kk) {
            const double a = x_row[kk];
            const double* w_row = w + kk * out;
#pragma omp simd
            for (std::size_t j = 0; j < out; ++j) y_row[j] += a * w_row[j];
        }
        switch (act) {
            case Act::kNone:
#pragma omp simd
                for (std::size_t j = 0; j < out; ++j) y_row[j] += b[j];
                break;
            case Act::kTanh:
                for (std::size_t j = 0; j < out; ++j)
                    y_row[j] = k_tanh(y_row[j] + b[j]);
                break;
            case Act::kRelu:
#pragma omp simd
                for (std::size_t j = 0; j < out; ++j) {
                    const double v = y_row[j] + b[j];
                    y_row[j] = v > 0.0 ? v : 0.0;
                }
                break;
            case Act::kLeakyRelu:
#pragma omp simd
                for (std::size_t j = 0; j < out; ++j) {
                    const double v = y_row[j] + b[j];
                    y_row[j] = v > 0.0 ? v : 0.01 * v;
                }
                break;
            case Act::kSigmoid:
                for (std::size_t j = 0; j < out; ++j)
                    y_row[j] = k_sigmoid(y_row[j] + b[j]);
                break;
        }
    }
}

// The affine transform is dominated by tanh/exp; the deterministic k_*
// ports keep those calls bitwise-equal to the scalar reference (and to the
// vectorized AVX2 variant), while the fusion removes the s/t temporaries.
void affine_fwd_rows_portable(const double* x, const double* h,
                              const std::size_t* idx_b, std::size_t nb,
                              double scale_cap, std::size_t dim, double* y,
                              double* log_det, std::size_t r0,
                              std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            y[r * dim + c] = x[r * dim + c] * k_exp(s) + t;
            ld += s;
        }
        log_det[r] += ld;
    }
}

void affine_inv_rows_portable(const double* y, const double* h,
                              const std::size_t* idx_b, std::size_t nb,
                              double scale_cap, std::size_t dim, double* x,
                              double* log_det, std::size_t r0,
                              std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* h_row = h + r * (2 * nb);
        double ld = 0.0;
        for (std::size_t j = 0; j < nb; ++j) {
            const double s = scale_cap * k_tanh(h_row[j]);
            const double t = h_row[j + nb];
            const std::size_t c = idx_b[j];
            x[r * dim + c] = (y[r * dim + c] - t) * k_exp(-s);
            ld += s;
        }
        log_det[r] += ld;
    }
}

void scale_shift_rows_portable(const double* x, const double* scale,
                               const double* shift, double* y,
                               std::size_t dim, std::size_t r0,
                               std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
        const double* x_row = x + r * dim;
        double* y_row = y + r * dim;
#pragma omp simd
        for (std::size_t c = 0; c < dim; ++c)
            y_row[c] = x_row[c] * scale[c] + shift[c];
    }
}

void ew_add_portable(const double* a, const double* b, double* out,
                     std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void ew_sub_portable(const double* a, const double* b, double* out,
                     std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void ew_mul_portable(const double* a, const double* b, double* out,
                     std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ew_scale_portable(const double* a, double s, double* out,
                       std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void ew_tanh_portable(const double* a, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = k_tanh(a[i]);
}

void ew_exp_portable(const double* a, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = k_exp(a[i]);
}

void ew_tanh_bwd_portable(const double* y, const double* g, double* out,
                          std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) out[i] = g[i] * (1.0 - y[i] * y[i]);
}

}  // namespace

const Table& portable_table() {
    static const Table t = [] {
        Table tab;
        tab.matmul_rows = matmul_rows_portable;
        tab.linear_act_rows = linear_act_rows_portable;
        tab.affine_fwd_rows = affine_fwd_rows_portable;
        tab.affine_inv_rows = affine_inv_rows_portable;
        tab.scale_shift_rows = scale_shift_rows_portable;
        // The RQS spline kernels have no vectorized flavour yet: the data
        // layout is a per-element O(K) scan with two libm logs, so the simd
        // table deliberately reuses the scalar reference — the bitwise
        // scalar ≡ simd contract then holds with zero risk. Revisit if the
        // spline path ever shows up in profiles (kernels.hpp note).
        tab.rqs_fwd_rows = scalar_table().rqs_fwd_rows;
        tab.rqs_inv_rows = scalar_table().rqs_inv_rows;
        tab.rqs_bwd_rows = scalar_table().rqs_bwd_rows;
        tab.ew_add = ew_add_portable;
        tab.ew_sub = ew_sub_portable;
        tab.ew_mul = ew_mul_portable;
        tab.ew_scale = ew_scale_portable;
        tab.ew_tanh = ew_tanh_portable;
        tab.ew_exp = ew_exp_portable;
        tab.ew_tanh_bwd = ew_tanh_bwd_portable;
        return tab;
    }();
    return t;
}

}  // namespace nofis::linalg::kernels::detail
