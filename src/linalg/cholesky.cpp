#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/solver_error.hpp"

namespace nofis::linalg {

Cholesky::Cholesky(const Matrix& a) : n_(a.rows()), l_(a.rows(), a.rows()) {
    if (a.rows() != a.cols())
        throw std::invalid_argument("Cholesky: matrix must be square");
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
            if (i == j) {
                if (s <= 0.0)
                    throw SingularMatrixError(
                        "Cholesky: matrix is not positive definite");
                l_(i, i) = std::sqrt(s);
            } else {
                l_(i, j) = s / l_(j, j);
            }
        }
    }
}

std::vector<double> Cholesky::solve(std::span<const double> b) const {
    if (b.size() != n_)
        throw std::invalid_argument("Cholesky::solve: bad rhs size");
    // Forward: L y = b
    std::vector<double> y(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
        y[i] = s / l_(i, i);
    }
    // Backward: Lᵀ x = y
    for (std::size_t ii = n_; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n_; ++k) s -= l_(k, ii) * y[k];
        y[ii] = s / l_(ii, ii);
    }
    return y;
}

std::vector<double> Cholesky::multiply_lower(std::span<const double> x) const {
    if (x.size() != n_)
        throw std::invalid_argument("Cholesky::multiply_lower: bad size");
    std::vector<double> y(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i)
        for (std::size_t k = 0; k <= i; ++k) y[i] += l_(i, k) * x[k];
    return y;
}

std::vector<double> Cholesky::solve_lower(std::span<const double> b) const {
    if (b.size() != n_)
        throw std::invalid_argument("Cholesky::solve_lower: bad size");
    std::vector<double> y(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
        y[i] = s / l_(i, i);
    }
    return y;
}

double Cholesky::log_determinant() const noexcept {
    double s = 0.0;
    for (std::size_t i = 0; i < n_; ++i) s += std::log(l_(i, i));
    return 2.0 * s;
}

}  // namespace nofis::linalg
