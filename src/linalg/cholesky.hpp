#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace nofis::linalg {

/// Cholesky factorisation A = L·Lᵀ of a symmetric positive-definite matrix.
///
/// Used by the full-covariance Gaussian (sampling = L·z, log-pdf needs
/// log det = 2·Σ log L_ii) and by the normal-equation least-squares path.
class Cholesky {
public:
    /// Throws std::runtime_error when A is not positive definite (within a
    /// small jitter tolerance).
    explicit Cholesky(const Matrix& a);

    std::size_t dim() const noexcept { return n_; }

    /// The lower-triangular factor L.
    const Matrix& lower() const noexcept { return l_; }

    /// Solves A x = b via two triangular solves.
    std::vector<double> solve(std::span<const double> b) const;

    /// y = L x (for transforming standard-normal draws).
    std::vector<double> multiply_lower(std::span<const double> x) const;

    /// Solves L y = b (forward substitution only).
    std::vector<double> solve_lower(std::span<const double> b) const;

    /// log det A = 2 Σ log L_ii.
    double log_determinant() const noexcept;

private:
    std::size_t n_ = 0;
    Matrix l_;
};

}  // namespace nofis::linalg
