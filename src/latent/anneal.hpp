#pragma once

#include <cstddef>
#include <string>

namespace nofis::latent {

/// Shape of the level ladder the latent chains anneal along.
enum class AnnealKind {
    kLinear,  ///< a_t falls linearly from a_start to 0
    kGeom,    ///< geometric decay toward 0 (spends more steps near the end)
    kNone,    ///< no annealing: every step targets the final level a = 0
};

/// Parses "linear" / "geom" / "none"; throws std::invalid_argument otherwise.
AnnealKind parse_anneal(const std::string& name);
const char* anneal_name(AnnealKind kind) noexcept;

/// Deterministic annealing ladder for the latent exploration chains
/// (DESIGN.md §16): step t of S targets the tempered failure indicator at
/// level a_t, interpolated from a_start (the training schedule's first,
/// easiest level) down to exactly 0 (the true failure set) at t = S. Early
/// steps therefore accept moves toward the broad near-failure basin; late
/// steps concentrate the chains on Ω itself.
class AnnealSchedule {
public:
    /// `a_start` <= 0 collapses every level to 0 (the schedule's first
    /// level already is the failure set).
    AnnealSchedule(AnnealKind kind, double a_start, std::size_t steps);

    /// Level a_t for step t in [0, steps]; t >= steps returns exactly 0.
    double level(std::size_t step) const noexcept;

    std::size_t steps() const noexcept { return steps_; }
    double a_start() const noexcept { return a_start_; }

private:
    AnnealKind kind_;
    double a_start_;
    std::size_t steps_;
};

}  // namespace nofis::latent
