#include "latent/anneal.hpp"

#include <cmath>
#include <stdexcept>

namespace nofis::latent {

namespace {
/// Geometric decay floor: the geom ladder follows a_start · r^frac, shifted
/// and rescaled so it hits a_start at frac = 0 and exactly 0 at frac = 1.
constexpr double kGeomFloor = 0.01;
}  // namespace

AnnealKind parse_anneal(const std::string& name) {
    if (name == "linear") return AnnealKind::kLinear;
    if (name == "geom") return AnnealKind::kGeom;
    if (name == "none") return AnnealKind::kNone;
    throw std::invalid_argument("unknown anneal schedule '" + name +
                                "' (expected linear|geom|none)");
}

const char* anneal_name(AnnealKind kind) noexcept {
    switch (kind) {
        case AnnealKind::kLinear: return "linear";
        case AnnealKind::kGeom: return "geom";
        case AnnealKind::kNone: return "none";
    }
    return "?";
}

AnnealSchedule::AnnealSchedule(AnnealKind kind, double a_start,
                               std::size_t steps)
    : kind_(kind), a_start_(a_start > 0.0 ? a_start : 0.0), steps_(steps) {}

double AnnealSchedule::level(std::size_t step) const noexcept {
    if (kind_ == AnnealKind::kNone || a_start_ <= 0.0) return 0.0;
    if (steps_ == 0 || step >= steps_) return 0.0;
    const double frac =
        static_cast<double>(step) / static_cast<double>(steps_);
    switch (kind_) {
        case AnnealKind::kLinear:
            return a_start_ * (1.0 - frac);
        case AnnealKind::kGeom:
            return a_start_ * (std::pow(kGeomFloor, frac) - kGeomFloor) /
                   (1.0 - kGeomFloor);
        case AnnealKind::kNone:
            break;
    }
    return 0.0;
}

}  // namespace nofis::latent
