#include "latent/refine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace nofis::latent {

dist::GaussianMixture fit_refinement(const ExploreResult& explored,
                                     std::size_t dim,
                                     const RefineConfig& cfg) {
    const linalg::Matrix& h = explored.harvest;
    const std::size_t n = h.rows();
    if (n == 0 || h.cols() != dim || explored.harvest_chain.size() != n)
        throw std::invalid_argument("latent::fit_refinement: empty or ragged harvest");
    std::size_t num_chains = 0;
    for (std::size_t c : explored.harvest_chain)
        num_chains = std::max(num_chains, c + 1);

    // Per-chain moment fit: mean and diagonal sigma of the chain's rows.
    std::vector<dist::GaussianMixture::Component> comps;
    comps.reserve(num_chains);
    for (std::size_t c = 0; c < num_chains; ++c) {
        std::size_t count = 0;
        std::vector<double> mean(dim, 0.0);
        for (std::size_t r = 0; r < n; ++r) {
            if (explored.harvest_chain[r] != c) continue;
            ++count;
            const auto row = h.row_span(r);
            for (std::size_t j = 0; j < dim; ++j) mean[j] += row[j];
        }
        if (count == 0) continue;
        for (double& m : mean) m /= static_cast<double>(count);
        std::vector<double> sigma(dim, cfg.sigma_floor);
        for (std::size_t j = 0; j < dim; ++j) {
            double var = 0.0;
            for (std::size_t r = 0; r < n; ++r) {
                if (explored.harvest_chain[r] != c) continue;
                const double dx = h(r, j) - mean[j];
                var += dx * dx;
            }
            var /= static_cast<double>(count);
            sigma[j] = std::max(std::sqrt(var), cfg.sigma_floor);
        }
        comps.push_back({static_cast<double>(count), std::move(mean),
                         std::move(sigma)});
    }
    dist::GaussianMixture mix(std::move(comps));

    // EM polish over the pooled harvest (unit weights): chains that settled
    // into the same lobe merge, stragglers keep their own component.
    if (cfg.em_iters > 0) {
        const std::vector<double> w(n, 1.0);
        for (std::size_t it = 0; it < cfg.em_iters; ++it)
            mix.ce_update(h, w, cfg.sigma_floor);
    }
    return mix;
}

}  // namespace nofis::latent
