#pragma once

#include "core/diagnostics.hpp"
#include "dist/gaussian_mixture.hpp"
#include "estimators/problem.hpp"
#include "flow/coupling_stack.hpp"

namespace nofis::latent {

/// Final importance-sampling estimate with the latent defensive mixture
/// proposal q_z = α·N(0, I) + (1−α)·refined, pushed forward through the
/// trained flow. Because both components live in base space and share the
/// transport T, the pushforward density is exact:
///     log q_x(T(z)) = log q_z(z) − log|det ∂T/∂z|,
/// and the balance-heuristic weight of every draw is p(x) / q_x(x) against
/// the full mixture — the estimator is unbiased for any α in (0, 1] and
/// degenerates to the plain Eq. (2) final IS in the α → 1 limit.
///
/// Mirrors NofisEstimator::importance_estimate's determinism contract: one
/// batched g_rows over all draws (row-order call indices), serial row-order
/// reduction, bitwise identical at any thread count. Counts `n_draws` calls
/// and opens the usual "final_is" span / g_calls.final_is counter so the
/// honest-accounting ledger stays additive.
estimators::EstimateResult defensive_estimate(
    const flow::CouplingStack& trained_flow,
    const estimators::RareEventProblem& problem, rng::Engine& eng,
    std::size_t n_draws, const dist::GaussianMixture& refined, double alpha,
    core::IsDiagnostics* diag = nullptr);

}  // namespace nofis::latent
