#include "latent/defensive_is.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rng/normal.hpp"
#include "telemetry/telemetry.hpp"

namespace nofis::latent {

estimators::EstimateResult defensive_estimate(
    const flow::CouplingStack& trained_flow,
    const estimators::RareEventProblem& problem, rng::Engine& eng,
    std::size_t n_draws, const dist::GaussianMixture& refined, double alpha,
    core::IsDiagnostics* diag) {
    if (!(alpha > 0.0) || alpha > 1.0)
        throw std::invalid_argument(
            "latent::defensive_estimate: alpha must be in (0, 1]");
    const std::size_t d_dim = trained_flow.dim();
    if (refined.dim() != d_dim)
        throw std::invalid_argument(
            "latent::defensive_estimate: refined mixture dim mismatch");
    const std::size_t blocks = trained_flow.num_blocks();
    const telemetry::ScopedSpan is_span("final_is");
    telemetry::count("g_calls.final_is", n_draws);
    estimators::CountedProblem counted(problem);

    // Component choice per draw, then batched sampling of each component.
    const double lw_flow = std::log(alpha);
    const double lw_ref = std::log1p(-alpha);  // −inf at α = 1 (flow only)
    std::vector<bool> from_ref(n_draws);
    std::size_t n_ref = 0;
    for (std::size_t r = 0; r < n_draws; ++r) {
        from_ref[r] = eng.uniform() < 1.0 - alpha;
        if (from_ref[r]) ++n_ref;
    }
    const linalg::Matrix z_ref =
        n_ref > 0 ? refined.sample(eng, n_ref) : linalg::Matrix(0, d_dim);
    const linalg::Matrix z_base =
        rng::standard_normal_matrix(eng, n_draws - n_ref, d_dim);

    // Exact latent mixture log-density per draw (both components are
    // closed-form in base space; no inverse transport needed).
    linalg::Matrix z0(n_draws, d_dim);
    std::vector<double> log_mix(n_draws);
    std::size_t ir = 0;
    std::size_t ib = 0;
    for (std::size_t r = 0; r < n_draws; ++r) {
        const auto row =
            from_ref[r] ? z_ref.row_span(ir++) : z_base.row_span(ib++);
        std::copy(row.begin(), row.end(), z0.row_span(r).begin());
        const double a = lw_flow + rng::standard_normal_log_pdf(row);
        const double b = lw_ref + refined.log_pdf(row);
        const double m = std::max(a, b);
        log_mix[r] = m + std::log(std::exp(a - m) + std::exp(b - m));
    }

    // One forward transport for every draw; the pushforward density only
    // needs the forward log-det.
    std::vector<double> log_det(n_draws, 0.0);
    const linalg::Matrix x =
        trained_flow.transport_range(z0, 0, blocks, log_det);

    // Batched g (parallel, row-order call indices); serial row-order
    // reduction keeps the estimate bitwise identical at any thread count.
    const std::vector<double> g_vals = counted.g_rows(x);

    double total = 0.0;
    core::IsDiagnostics d;
    d.draws = n_draws;
    double sum_w = 0.0;
    double sum_w2 = 0.0;
    double all_sum_w = 0.0;
    double all_sum_w2 = 0.0;
    for (std::size_t r = 0; r < n_draws; ++r) {
        const auto xr = x.row_span(r);
        const double log_q = log_mix[r] - log_det[r];
        const double raw_w =
            std::exp(rng::standard_normal_log_pdf(xr) - log_q);
        all_sum_w += raw_w;
        all_sum_w2 += raw_w * raw_w;
        const double gv = g_vals[r];
        if (gv > 0.0) continue;
        total += raw_w;
        sum_w += raw_w;
        sum_w2 += raw_w * raw_w;
        d.max_weight = std::max(d.max_weight, raw_w);
        ++d.hits;
    }
    estimators::EstimateResult res;
    res.p_hat = total / static_cast<double>(n_draws);
    res.calls = counted.calls();
    res.failed = !std::isfinite(res.p_hat);
    d.effective_sample_size = sum_w2 > 0.0 ? (sum_w * sum_w) / sum_w2 : 0.0;
    d.ess_all =
        all_sum_w2 > 0.0 ? (all_sum_w * all_sum_w) / all_sum_w2 : 0.0;
    if (n_draws > 0 && all_sum_w > 0.0) {
        const double mean_w = all_sum_w / static_cast<double>(n_draws);
        const double var_w = std::max(
            all_sum_w2 / static_cast<double>(n_draws) - mean_w * mean_w, 0.0);
        d.weight_cv = std::sqrt(var_w) / mean_w;
    }
    if (diag != nullptr) *diag = d;
    return res;
}

}  // namespace nofis::latent
