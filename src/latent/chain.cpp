#include "latent/chain.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "rng/normal.hpp"

namespace nofis::latent {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// min(τ(a − g), 0): the tempered log-indicator of Eq. (6)/(9). Non-finite
/// g (a clamped fault or a propagated ±inf) maps to −inf so the state is
/// never preferred.
double tempered_log_weight(double tau, double a, double g) noexcept {
    if (std::isnan(g)) return kNegInf;
    const double t = tau * (a - g);
    if (std::isnan(t)) return kNegInf;
    return std::min(t, 0.0);
}

/// Metropolis decision with defined behaviour at −inf targets: a chain
/// whose current state became unsupported (level tightened past it) escapes
/// on the first supported proposal instead of comparing −inf − −inf = NaN.
bool accept_move(double u, double cur_lt, double prop_lt) noexcept {
    if (prop_lt == kNegInf || std::isnan(prop_lt)) return false;
    if (cur_lt == kNegInf || std::isnan(cur_lt)) return true;
    return std::log(u) < prop_lt - cur_lt;
}

}  // namespace

ExploreResult explore(const flow::CouplingStack& trained_flow,
                      const estimators::RareEventProblem& problem,
                      const ChainConfig& cfg, std::uint64_t master_seed) {
    const std::size_t k = cfg.chains;
    const std::size_t s = cfg.steps;
    if (k == 0 || s == 0)
        throw std::invalid_argument("latent::explore: chains and steps must be >= 1");
    const std::size_t d = trained_flow.dim();
    if (problem.dim() != d)
        throw std::invalid_argument("latent::explore: flow/problem dim mismatch");
    const std::size_t blocks = trained_flow.num_blocks();
    const double sigma =
        cfg.rw_sigma > 0.0 ? cfg.rw_sigma
                           : 2.38 / std::sqrt(static_cast<double>(d));
    const AnnealSchedule sched(cfg.anneal, cfg.a_start, s);

    // One substream per chain: stable under chain-count changes, no draws
    // shared with the caller's engine beyond the master seed.
    std::vector<rng::Engine> eng;
    eng.reserve(k);
    for (std::size_t i = 0; i < k; ++i)
        eng.push_back(rng::substream(master_seed, i));

    ExploreResult res;
    const std::size_t burn_in = s / 2;
    const std::size_t kept_steps = s - burn_in;
    res.harvest = linalg::Matrix(kept_steps * k, d);
    res.harvest_chain.reserve(kept_steps * k);

    // Initial states: z_i ~ N(0, I) from each chain's own substream, then
    // one batched g over the pushforwards (row-order call indices).
    linalg::Matrix z_cur(k, d);
    for (std::size_t i = 0; i < k; ++i)
        rng::fill_standard_normal(eng[i], z_cur.row_span(i));
    std::vector<double> log_det(k, 0.0);
    std::vector<double> g_cur =
        problem.g_rows(trained_flow.transport_range(z_cur, 0, blocks, log_det));
    res.g_calls += k;
    std::vector<double> base_lp_cur(k);
    for (std::size_t i = 0; i < k; ++i)
        base_lp_cur[i] = rng::standard_normal_log_pdf(z_cur.row_span(i));

    linalg::Matrix z_prop(k, d);
    std::size_t harvest_row = 0;
    for (std::size_t t = 1; t <= s; ++t) {
        const double a_t = sched.level(t);
        for (std::size_t i = 0; i < k; ++i) {
            const auto cur = z_cur.row_span(i);
            const auto prop = z_prop.row_span(i);
            for (std::size_t j = 0; j < d; ++j)
                prop[j] = cur[j] + sigma * rng::standard_normal(eng[i]);
        }
        log_det.assign(k, 0.0);
        const std::vector<double> g_prop = problem.g_rows(
            trained_flow.transport_range(z_prop, 0, blocks, log_det));
        res.g_calls += k;
        // Serial accept/reject in chain order; the uniform is consumed
        // unconditionally so every chain's stream position is a pure
        // function of (master_seed, chain, step).
        for (std::size_t i = 0; i < k; ++i) {
            const double u = eng[i].uniform();
            const double prop_lp =
                rng::standard_normal_log_pdf(z_prop.row_span(i));
            const double cur_lt =
                tempered_log_weight(cfg.tau, a_t, g_cur[i]) + base_lp_cur[i];
            const double prop_lt =
                tempered_log_weight(cfg.tau, a_t, g_prop[i]) + prop_lp;
            ++res.proposals;
            if (accept_move(u, cur_lt, prop_lt)) {
                const auto prop = z_prop.row_span(i);
                const auto cur = z_cur.row_span(i);
                std::copy(prop.begin(), prop.end(), cur.begin());
                g_cur[i] = g_prop[i];
                base_lp_cur[i] = prop_lp;
                ++res.accepted;
            }
        }
        if (t > burn_in) {
            for (std::size_t i = 0; i < k; ++i) {
                const auto cur = z_cur.row_span(i);
                std::copy(cur.begin(), cur.end(),
                          res.harvest.row_span(harvest_row).begin());
                res.harvest_chain.push_back(i);
                ++harvest_row;
            }
        }
    }
    return res;
}

}  // namespace nofis::latent
