#include "latent/latent_explore.hpp"

#include <optional>
#include <stdexcept>
#include <string>

#include "latent/chain.hpp"
#include "latent/defensive_is.hpp"
#include "latent/refine.hpp"
#include "telemetry/telemetry.hpp"

namespace nofis::latent {

estimators::EstimateResult explore_and_estimate(
    const flow::CouplingStack& trained_flow,
    const estimators::RareEventProblem& problem, rng::Engine& eng,
    std::size_t n_is_total, double tau, double a_start,
    const LatentConfig& cfg, core::IsDiagnostics* diag,
    LatentReport* report) {
    if (cfg.chains == 0 || cfg.steps == 0)
        throw std::invalid_argument(
            "latent: --latent-chains and --latent-steps must be >= 1");
    if (!(cfg.alpha > 0.0) || cfg.alpha > 1.0)
        throw std::invalid_argument("latent: --latent-alpha must be in (0, 1]");
    const std::size_t explore_budget = cfg.chains * (cfg.steps + 1);
    if (n_is_total <= explore_budget)
        throw std::invalid_argument(
            "latent: exploration budget " + std::to_string(explore_budget) +
            " (= chains * (steps + 1)) must leave final-IS draws out of "
            "n_is = " + std::to_string(n_is_total));
    const std::size_t n_final = n_is_total - explore_budget;

    // One master-seed draw regardless of K: the chain substreams derive
    // from it, so the caller's stream position does not depend on the
    // chain count and the final-IS draws below stay aligned.
    const std::uint64_t master_seed = eng();

    std::optional<dist::GaussianMixture> refined;
    LatentReport rep;
    {
        const telemetry::ScopedSpan span("latent_explore");
        ChainConfig ccfg;
        ccfg.chains = cfg.chains;
        ccfg.steps = cfg.steps;
        ccfg.rw_sigma = cfg.rw_sigma;
        ccfg.anneal = cfg.anneal;
        ccfg.tau = tau;
        ccfg.a_start = a_start;
        const ExploreResult ex = explore(trained_flow, problem, ccfg,
                                         master_seed);
        RefineConfig rcfg;
        rcfg.sigma_floor = cfg.sigma_floor;
        rcfg.em_iters = cfg.em_iters;
        refined.emplace(fit_refinement(ex, trained_flow.dim(), rcfg));
        rep.explore_calls = ex.g_calls;
        rep.harvest_rows = ex.harvest.rows();
        rep.components = refined->num_components();
        rep.acceptance_rate = ex.acceptance_rate();
        telemetry::count("g_calls.latent_explore", ex.g_calls);
        telemetry::metric("latent_acceptance_rate", rep.acceptance_rate);
        telemetry::metric("latent_harvest_rows",
                          static_cast<double>(rep.harvest_rows));
        telemetry::metric("latent_components",
                          static_cast<double>(rep.components));
    }

    estimators::EstimateResult est = defensive_estimate(
        trained_flow, problem, eng, n_final, *refined, cfg.alpha, diag);
    rep.final_is_draws = n_final;
    // Honest budget: the exploration calls ride on top of the final-IS
    // calls counted by defensive_estimate — the sum is n_is_total.
    est.calls += rep.explore_calls;
    if (report != nullptr) *report = rep;
    return est;
}

}  // namespace nofis::latent
