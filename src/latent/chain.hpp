#pragma once

#include <cstdint>
#include <vector>

#include "estimators/problem.hpp"
#include "flow/coupling_stack.hpp"
#include "latent/anneal.hpp"

namespace nofis::latent {

/// Knobs of the annealed latent random walk (DESIGN.md §16).
struct ChainConfig {
    std::size_t chains = 8;  ///< K — independent Metropolis walkers
    std::size_t steps = 40;  ///< S — proposals per walker
    /// Random-walk proposal stddev in base space; <= 0 selects the classic
    /// 2.38 / sqrt(d) Roberts–Rosenthal scaling.
    double rw_sigma = 0.0;
    AnnealKind anneal = AnnealKind::kLinear;
    double tau = 20.0;    ///< temperature of the tempered indicator
    double a_start = 0.0; ///< first (easiest) level of the ladder
};

/// Harvested latent states plus the exploration ledger.
struct ExploreResult {
    /// Post-burn-in chain states, one row per (chain, kept step) in step-
    /// major order. Rejected steps repeat the previous state — the correct
    /// MCMC weighting, and it keeps the row count a pure function of the
    /// config. Never empty for steps >= 1.
    linalg::Matrix harvest;
    std::vector<std::size_t> harvest_chain;  ///< owning chain per row

    std::size_t g_calls = 0;    ///< exactly chains * (steps + 1)
    std::size_t accepted = 0;
    std::size_t proposals = 0;  ///< chains * steps

    double acceptance_rate() const noexcept {
        return proposals > 0
                   ? static_cast<double>(accepted) /
                         static_cast<double>(proposals)
                   : 0.0;
    }
};

/// Runs K independent annealed Metropolis random-walk chains in the base
/// space of `trained_flow`, targeting the pulled-back tempered failure
/// indicator exp(min(τ(a_t − g(T(z))), 0)) · N(z; 0, I) so walkers migrate
/// toward failure lobes the flow under-covers.
///
/// Determinism contract: chain i draws exclusively from
/// rng::substream(master_seed, i) (d proposal normals + 1 accept uniform
/// per step, consumed unconditionally), all K proposals of a step are
/// evaluated as ONE g_rows batch (row-order call indices under a
/// GuardedProblem), and accept/reject runs serially in chain order — so the
/// harvest is bitwise identical at any thread count, any kernel flavour,
/// and cache off/cold/warm.
ExploreResult explore(const flow::CouplingStack& trained_flow,
                      const estimators::RareEventProblem& problem,
                      const ChainConfig& cfg, std::uint64_t master_seed);

}  // namespace nofis::latent
