#pragma once

#include "dist/gaussian_mixture.hpp"
#include "latent/chain.hpp"

namespace nofis::latent {

/// Knobs of the latent refinement fit.
struct RefineConfig {
    /// Per-dim sigma floor of every fitted component. Keeps the refined
    /// proposal's support covering the base distribution locally, which the
    /// defensive mixture needs for finite weights (same role as the
    /// Adapt-IS floor in dist::GaussianMixture::ce_update).
    double sigma_floor = 0.05;
    /// Weighted-EM polish iterations over the pooled harvest after the
    /// per-chain moment fit (0 keeps the raw moment components).
    std::size_t em_iters = 2;
};

/// Fits the latent refinement distribution from harvested chain states:
/// one diagonal-Gaussian component per chain (each chain tends to settle
/// into one failure lobe) from that chain's post-burn-in moments, weighted
/// by harvest share, then optionally polished with unweighted EM over the
/// pooled harvest so chains that found the same lobe merge their mass.
/// Deterministic: pure arithmetic over the harvest, no RNG.
dist::GaussianMixture fit_refinement(const ExploreResult& explored,
                                     std::size_t dim,
                                     const RefineConfig& cfg = {});

}  // namespace nofis::latent
