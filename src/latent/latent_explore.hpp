#pragma once

#include <cstdint>

#include "core/diagnostics.hpp"
#include "estimators/problem.hpp"
#include "flow/coupling_stack.hpp"
#include "latent/anneal.hpp"

namespace nofis::latent {

/// Configuration of the latent-space exploration estimator (DESIGN.md §16).
/// Lives inside core::NofisConfig; `enabled = false` keeps every existing
/// run bit-identical.
struct LatentConfig {
    bool enabled = false;
    std::size_t chains = 8;  ///< K — independent annealed walkers
    std::size_t steps = 40;  ///< S — Metropolis proposals per walker
    /// Defensive mixture weight on the learned flow's own base measure:
    /// q_z = α·N(0,I) + (1−α)·refined. α → 1 recovers plain final IS.
    double alpha = 0.8;
    AnnealKind anneal = AnnealKind::kLinear;
    double rw_sigma = 0.0;     ///< proposal stddev; <= 0 = 2.38/sqrt(d)
    double sigma_floor = 0.05; ///< refinement component sigma floor
    std::size_t em_iters = 2;  ///< EM polish passes over the harvest
};

/// What the exploration phase did — surfaced through RunResult / the CLI.
struct LatentReport {
    std::size_t explore_calls = 0;   ///< g-calls spent by the chains
    std::size_t final_is_draws = 0;  ///< defensive-mixture draws
    std::size_t harvest_rows = 0;
    std::size_t components = 0;      ///< refined mixture size after EM
    double acceptance_rate = 0.0;
};

/// The full latent-exploration estimate on an already-trained flow:
/// explore (K·(S+1) g-calls, "latent_explore" span), fit the refinement
/// mixture, then spend the REMAINING n_is_total − K·(S+1) draws on the
/// defensive-mixture final IS ("final_is" span) — so the total g-budget is
/// exactly what plain final IS with n_is_total draws would spend.
///
/// `problem` should be the run's Guarded(Cached(problem)) composition;
/// every evaluation goes through g_rows with row-order call indices.
/// Consumes one draw from `eng` for the chain master seed, then only the
/// final-IS draws — results are bitwise identical for any chain count's
/// thread schedule. Throws std::invalid_argument when n_is_total does not
/// leave at least one final-IS draw after the exploration budget.
estimators::EstimateResult explore_and_estimate(
    const flow::CouplingStack& trained_flow,
    const estimators::RareEventProblem& problem, rng::Engine& eng,
    std::size_t n_is_total, double tau, double a_start,
    const LatentConfig& cfg, core::IsDiagnostics* diag = nullptr,
    LatentReport* report = nullptr);

}  // namespace nofis::latent
