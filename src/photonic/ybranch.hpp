#pragma once

#include <complex>
#include <span>
#include <vector>

namespace nofis::photonic {

/// Scalar coupled-mode transfer-matrix model of a photonic Y-branch splitter
/// under boundary (sidewall) deformation — the paper's test case #9.
///
/// The branch taper of length L is discretised into segments. The local
/// waveguide width is w(z) = w_nom(z) + Σ_k c_k x_k sin(kπz/L): a 26-mode
/// Fourier parameterisation of the line-edge deformation, driven by the
/// standard-normal vector x. Within each segment a two-mode amplitude
/// vector (fundamental, first higher-order/radiative) propagates with
///  - width-dependent propagation constants β₁(w), β₂(w),
///  - slope-driven inter-mode coupling θ ∝ dδw/dz (asymmetric walls scatter
///    power into the higher mode),
///  - width-dependent loss on the higher mode (it leaks into the slab) and
///    a small fundamental-mode scattering loss when the width deviates.
/// The figure of merit is the fundamental-mode power transmission
/// T = |a₁(L)|², and the failure event is T < 0.32.
class YBranchModel {
public:
    struct Params {
        std::size_t num_modes = 26;      ///< deformation dimensions
        std::size_t segments = 64;
        double length_um = 20.0;
        double w_in_um = 0.5;            ///< input width
        double w_out_um = 1.2;           ///< output width
        double lambda_um = 1.55;
        double n_eff1 = 2.44;            ///< fundamental effective index
        double n_eff2 = 2.31;            ///< higher-order effective index
        double dn_dw1 = 0.30;            ///< d n_eff1 / d w [1/µm]
        double dn_dw2 = 0.55;            ///< d n_eff2 / d w [1/µm]
        double deform_amp_um = 0.0272;    ///< per-mode deformation amplitude
        double couple_strength = 1.9;    ///< slope-to-coupling factor
        double loss2_per_um = 0.28;      ///< higher-mode leakage loss
        double loss1_scatter = 0.055;    ///< fundamental scattering factor
        double nominal_split = 0.70;     ///< amplitude kept in the arm
    };

    YBranchModel() : YBranchModel(Params()) {}
    explicit YBranchModel(Params p);

    /// Power transmission T(x) in [0, 1]; x.size() == num_modes.
    double transmission(std::span<const double> x) const;

    /// Deformed width profile at segment centres (for tests / plots).
    std::vector<double> width_profile(std::span<const double> x) const;

    std::size_t num_modes() const noexcept { return p_.num_modes; }

private:
    Params p_;
    std::vector<double> z_centers_;  ///< segment centres [µm]
    std::vector<double> w_nominal_;  ///< nominal width at centres
};

}  // namespace nofis::photonic
