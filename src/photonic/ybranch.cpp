#include "photonic/ybranch.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace nofis::photonic {

YBranchModel::YBranchModel(Params p) : p_(p) {
    if (p_.segments < 2)
        throw std::invalid_argument("YBranchModel: need >= 2 segments");
    z_centers_.resize(p_.segments);
    w_nominal_.resize(p_.segments);
    const double dz = p_.length_um / static_cast<double>(p_.segments);
    for (std::size_t s = 0; s < p_.segments; ++s) {
        const double z = (static_cast<double>(s) + 0.5) * dz;
        z_centers_[s] = z;
        const double t = z / p_.length_um;
        w_nominal_[s] = p_.w_in_um + (p_.w_out_um - p_.w_in_um) * t;
    }
}

std::vector<double> YBranchModel::width_profile(
    std::span<const double> x) const {
    if (x.size() != p_.num_modes)
        throw std::invalid_argument("YBranchModel: dimension mismatch");
    std::vector<double> w(w_nominal_);
    const double pi = std::numbers::pi;
    for (std::size_t s = 0; s < w.size(); ++s) {
        const double t = z_centers_[s] / p_.length_um;
        double dw = 0.0;
        for (std::size_t k = 0; k < p_.num_modes; ++k) {
            const double ck =
                p_.deform_amp_um / (1.0 + 0.25 * static_cast<double>(k));
            dw += ck * x[k] * std::sin(pi * static_cast<double>(k + 1) * t);
        }
        w[s] += dw;
    }
    return w;
}

double YBranchModel::transmission(std::span<const double> x) const {
    const std::vector<double> w = width_profile(x);
    const double dz = p_.length_um / static_cast<double>(p_.segments);
    const double k0 = 2.0 * std::numbers::pi / p_.lambda_um;

    // Two-mode complex amplitudes; all power launched in the fundamental,
    // scaled by the nominal splitter ratio of the arm under study.
    std::complex<double> a1(p_.nominal_split, 0.0);
    std::complex<double> a2(0.0, 0.0);

    double w_prev = w.front();
    for (std::size_t s = 0; s < p_.segments; ++s) {
        const double dwidth = w[s] - w_nominal_[s];
        const double slope = (w[s] - w_prev) / dz;
        w_prev = w[s];

        // Width-dependent propagation constants.
        const double beta1 = k0 * (p_.n_eff1 + p_.dn_dw1 * dwidth);
        const double beta2 = k0 * (p_.n_eff2 + p_.dn_dw2 * dwidth);

        // Sidewall-slope-driven inter-mode rotation.
        const double theta = p_.couple_strength * slope * dz;
        const double c = std::cos(theta);
        const double sn = std::sin(theta);
        const std::complex<double> b1 = c * a1 - sn * a2;
        const std::complex<double> b2 = sn * a1 + c * a2;

        // Propagation phase + loss. The higher mode leaks continuously; the
        // fundamental sees weak scattering growing with |deformation|.
        const double loss1 = p_.loss1_scatter * dwidth * dwidth * dz;
        const double loss2 = p_.loss2_per_um * dz;
        a1 = b1 * std::polar(std::exp(-loss1), beta1 * dz);
        a2 = b2 * std::polar(std::exp(-loss2), beta2 * dz);
    }
    return std::norm(a1) + 0.15 * std::norm(a2);
}

}  // namespace nofis::photonic
