#include "telemetry/telemetry.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace nofis::telemetry {

namespace detail {
std::atomic<RunTrace*> g_active{nullptr};
}  // namespace detail

SpanNode& SpanNode::find_or_add(std::string_view child_name) {
    for (auto& c : children)
        if (c->name == child_name) return *c;
    children.push_back(std::make_unique<SpanNode>());
    children.back()->name = std::string(child_name);
    return *children.back();
}

const SpanNode* SpanNode::find(std::string_view child_name) const noexcept {
    for (const auto& c : children)
        if (c->name == child_name) return c.get();
    return nullptr;
}

RunTrace::RunTrace() : owner_(std::this_thread::get_id()) {
    root_.name = "run";
}

void RunTrace::add_counter(std::string_view name, std::uint64_t delta) {
    std::lock_guard lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end())
        it->second += delta;
    else
        counters_.emplace(std::string(name), delta);
}

std::uint64_t RunTrace::counter(std::string_view name) const {
    std::lock_guard lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, std::uint64_t> RunTrace::counters() const {
    std::lock_guard lock(mutex_);
    return {counters_.begin(), counters_.end()};
}

void RunTrace::set_metric(std::string_view name, double value) {
    std::lock_guard lock(mutex_);
    const auto it = metrics_.find(name);
    if (it != metrics_.end())
        it->second = value;
    else
        metrics_.emplace(std::string(name), value);
}

double RunTrace::metric(std::string_view name, double fallback) const {
    std::lock_guard lock(mutex_);
    const auto it = metrics_.find(name);
    return it == metrics_.end() ? fallback : it->second;
}

bool RunTrace::has_metric(std::string_view name) const {
    std::lock_guard lock(mutex_);
    return metrics_.find(name) != metrics_.end();
}

std::map<std::string, double> RunTrace::metrics() const {
    std::lock_guard lock(mutex_);
    return {metrics_.begin(), metrics_.end()};
}

void set_active(RunTrace* trace) noexcept {
    if (trace != nullptr) {
        trace->owner_ = std::this_thread::get_id();
        trace->current_ = &trace->root_;
    }
    detail::g_active.store(trace, std::memory_order_relaxed);
}

void adopt_span_tree() noexcept {
    RunTrace* trace = active();
    if (trace == nullptr || trace->owner_ == std::this_thread::get_id())
        return;
    trace->owner_ = std::this_thread::get_id();
    trace->current_ = &trace->root_;
}

ScopedSpan::ScopedSpan(std::string_view name) {
    RunTrace* tr = active();
    if (tr == nullptr || tr->owner_ != std::this_thread::get_id()) return;
    trace_ = tr;
    parent_ = tr->current_;
    node_ = &parent_->find_or_add(name);
    tr->current_ = node_;
    t0_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
    if (trace_ == nullptr) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    node_->wall_ms +=
        std::chrono::duration<double, std::milli>(dt).count();
    ++node_->count;
    // Unwind even if scopes were torn down out of order by an exception
    // propagating through several spans at once.
    if (trace_->current_ == node_) trace_->current_ = parent_;
}

void write_json_string(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char ch : s) {
        switch (ch) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(ch)));
                    os << buf;
                } else {
                    os << ch;
                }
        }
    }
    os << '"';
}

void write_json_number(std::ostream& os, double v) {
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    // Shortest round-trippable decimal; printf-style so the caller's
    // stream precision/flags are irrelevant (and untouched).
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

namespace {

void write_span(std::ostream& os, const SpanNode& node) {
    os << "{\"name\":";
    write_json_string(os, node.name);
    os << ",\"wall_ms\":";
    write_json_number(os, node.wall_ms);
    os << ",\"count\":" << node.count;
    if (!node.children.empty()) {
        os << ",\"children\":[";
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            if (i > 0) os << ',';
            write_span(os, *node.children[i]);
        }
        os << ']';
    }
    os << '}';
}

}  // namespace

void RunTrace::write_json(std::ostream& os) const {
    os << "{\"schema\":\"nofis-metrics-v1\"";
    os << ",\"spans\":";
    write_span(os, root_);
    {
        std::lock_guard lock(mutex_);
        os << ",\"counters\":{";
        bool first = true;
        for (const auto& [name, value] : counters_) {
            if (!first) os << ',';
            first = false;
            write_json_string(os, name);
            os << ':' << value;
        }
        os << "},\"metrics\":{";
        first = true;
        for (const auto& [name, value] : metrics_) {
            if (!first) os << ',';
            first = false;
            write_json_string(os, name);
            os << ':';
            write_json_number(os, value);
        }
        os << '}';
    }
    os << '}';
}

std::string RunTrace::to_json() const {
    std::ostringstream os;
    write_json(os);
    return os.str();
}

}  // namespace nofis::telemetry
