#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace nofis::telemetry {

class RunTrace;

/// One node of the hierarchical wall-clock trace: cumulative elapsed time
/// and invocation count for a named scope, plus ordered children. Repeated
/// entries into the same scope (e.g. the per-epoch phases of a training
/// stage) accumulate into one node rather than appending siblings, so the
/// tree stays bounded by the code's scope structure, not the run length.
struct SpanNode {
    std::string name;
    double wall_ms = 0.0;    ///< cumulative elapsed wall-clock time
    std::size_t count = 0;   ///< completed entries into this scope
    std::vector<std::unique_ptr<SpanNode>> children;  ///< in first-seen order

    /// Child with `child_name`, created on first use.
    SpanNode& find_or_add(std::string_view child_name);
    /// Child lookup without creation; nullptr when absent.
    const SpanNode* find(std::string_view child_name) const noexcept;
};

/// Telemetry record of one run: a span tree (wall-clock), monotonic
/// counters, and scalar metrics, serialisable as a single JSON object.
///
/// Thread model — chosen so instrumentation can never perturb results:
///   * The span tree belongs to the thread that activated the trace (the
///     orchestrator). ScopedSpan silently no-ops on any other thread, so
///     worker lanes cannot race on the tree.
///   * Counters and metrics are mutex-protected and may be written from
///     any thread (the thread pool and the tiled matmul report through
///     them).
/// Nothing in here touches an RNG stream or the math being measured:
/// estimates are bitwise identical with telemetry on or off.
class RunTrace {
public:
    RunTrace();

    // --- span tree (orchestrator thread only) -----------------------------
    SpanNode& root() noexcept { return root_; }
    const SpanNode& root() const noexcept { return root_; }

    // --- monotonic counters (any thread) ----------------------------------
    void add_counter(std::string_view name, std::uint64_t delta);
    std::uint64_t counter(std::string_view name) const;
    std::map<std::string, std::uint64_t> counters() const;

    // --- scalar metrics, last write wins (any thread) ---------------------
    void set_metric(std::string_view name, double value);
    /// `fallback` when the metric was never set.
    double metric(std::string_view name, double fallback = 0.0) const;
    bool has_metric(std::string_view name) const;
    std::map<std::string, double> metrics() const;

    /// Serialises the whole record as one JSON object (spans / counters /
    /// metrics). No external dependencies; non-finite numbers are emitted
    /// as `null` so the output always parses.
    void write_json(std::ostream& os) const;
    std::string to_json() const;

private:
    friend class ScopedSpan;
    friend void set_active(RunTrace* trace) noexcept;
    friend void adopt_span_tree() noexcept;

    SpanNode root_;
    SpanNode* current_ = &root_;     ///< innermost open span
    std::thread::id owner_;          ///< thread allowed to touch the tree

    mutable std::mutex mutex_;       ///< guards counters_ and metrics_
    std::map<std::string, std::uint64_t, std::less<>> counters_;
    std::map<std::string, double, std::less<>> metrics_;
};

namespace detail {
/// The process-global sink. Plain pointer behind an atomic: instrumented
/// hot paths read it with one relaxed load and skip every clock read and
/// allocation when no trace is active — the advertised zero-cost-off mode.
extern std::atomic<RunTrace*> g_active;
}  // namespace detail

/// Currently active trace, or nullptr when telemetry is off.
inline RunTrace* active() noexcept {
    return detail::g_active.load(std::memory_order_relaxed);
}

/// Installs `trace` as the process-global sink (nullptr turns telemetry
/// off). The calling thread becomes the span-tree owner. Not meant to be
/// called while instrumented work is in flight.
void set_active(RunTrace* trace) noexcept;

/// Re-binds the active trace's span tree to the calling thread, which
/// becomes the new owner; ScopedSpans on the previous owner silently no-op
/// from here on. No-op when telemetry is off or the caller already owns
/// the tree. May only be called while no span is open on the previous
/// owner — the serving scheduler thread adopts the tree at loop start,
/// while the main thread is parked waiting for shutdown, which satisfies
/// that by construction.
void adopt_span_tree() noexcept;

/// RAII wall-clock span. Construction opens (or re-enters) the child scope
/// `name` under the innermost open span of the active trace; destruction
/// adds the elapsed time. A no-op — no clock read, no allocation — when no
/// trace is active or when constructed off the owner thread.
class ScopedSpan {
public:
    explicit ScopedSpan(std::string_view name);
    ~ScopedSpan();
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    RunTrace* trace_ = nullptr;
    SpanNode* node_ = nullptr;
    SpanNode* parent_ = nullptr;
    std::chrono::steady_clock::time_point t0_;
};

/// Adds `delta` to the named counter of the active trace; no-op when off.
/// Safe from any thread.
inline void count(std::string_view name, std::uint64_t delta = 1) {
    if (RunTrace* tr = active()) tr->add_counter(name, delta);
}

/// Sets a scalar metric on the active trace; no-op when off.
inline void metric(std::string_view name, double value) {
    if (RunTrace* tr = active()) tr->set_metric(name, value);
}

/// Appends a JSON string literal (quoted, escaped) to `os`. Exposed for
/// other writers that extend the record (bench_common's exporter).
void write_json_string(std::ostream& os, std::string_view s);

/// Appends a JSON number; non-finite values become `null` so the document
/// stays valid.
void write_json_number(std::ostream& os, double v);

}  // namespace nofis::telemetry
