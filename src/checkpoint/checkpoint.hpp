#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "estimators/guarded_problem.hpp"
#include "linalg/matrix.hpp"
#include "nn/optimizer.hpp"

namespace nofis::checkpoint {

/// Durable checkpoint/resume settings for NofisEstimator::run
/// (DESIGN.md §12). Orthogonal to results by construction: a checkpointed
/// run, an uncheckpointed run, and a killed-and-resumed run all produce
/// bitwise-identical estimates.
struct CheckpointConfig {
    /// Snapshot directory; empty disables checkpointing entirely.
    std::string dir;
    /// Additionally snapshot every K epochs inside a stage (0 = stage
    /// boundaries only). Epoch snapshots carry the optimizer moments and
    /// the stage's rollback anchor so resume can re-enter mid-attempt.
    std::size_t every_epochs = 0;
    /// Restart from the latest valid snapshot in `dir` (corrupt or torn
    /// snapshots are skipped back to the previous valid one; a fingerprint
    /// mismatch is an error). Off = start fresh, appending new snapshots.
    bool resume = false;
    /// Valid snapshots retained after each write (older ones are pruned).
    std::size_t keep = 3;
    /// Caller-supplied entropy folded into the run fingerprint (the CLI
    /// mixes its seed and fault-injection rates in, so checkpoints from a
    /// different seed can never be resumed by accident).
    std::uint64_t salt = 0;
    /// Test hook: throw SimulatedCrash immediately after the Nth snapshot
    /// write of this process (0 = never). Lets tests kill a run at an exact
    /// checkpoint boundary without racing a real signal.
    std::size_t crash_after_snapshots = 0;

    bool enabled() const noexcept { return !dir.empty(); }
};

/// Thrown by the crash_after_snapshots test hook. Derives from
/// std::runtime_error so harnesses that treat it as a generic failure still
/// work, but tests can catch it precisely.
struct SimulatedCrash : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Per-stage training record persisted in snapshots. Mirrors
/// core::StageDiagnostics field-for-field; duplicated here (rather than
/// included) because nofis_core links against this library, not the other
/// way around.
struct StageRecord {
    std::size_t stage = 0;
    double level = 0.0;
    std::vector<double> epoch_loss;  ///< NaN sentinels preserved bit-exact
    double inside_fraction = 0.0;
    std::size_t retries = 0;
    std::vector<std::string> retry_reasons;
    std::size_t skipped_epochs = 0;
};

/// Everything needed to continue a NofisEstimator::run bitwise-identically
/// from a stage boundary (or, with has_partial, from an epoch boundary
/// inside a stage): flow parameters and retry-tightened scale caps, the
/// RNG stream position, the fault guard's call index and ledger, g-call
/// accounting, completed stage diagnostics, and — for mid-stage snapshots —
/// the Adam moments, decayed learning rate, attempt counters, and the
/// stage's rollback anchor.
struct TrainSnapshot {
    std::uint64_t fingerprint = 0;  ///< run identity (config + levels + salt)
    std::uint64_t next_stage = 1;   ///< 1-based; num_stages+1 = training done
    std::vector<linalg::Matrix> params;
    std::vector<double> scale_caps;
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t guard_call_index = 0;
    estimators::FaultReport guard_report;
    std::uint64_t train_g_calls = 0;
    std::uint64_t g_grad_calls = 0;
    std::uint64_t cached_hits = 0;  ///< evalcache hits before the snapshot
    std::vector<StageRecord> stages;  ///< completed stages

    // --- mid-stage (epoch) snapshot extras, valid when has_partial -------
    bool has_partial = false;
    std::uint64_t next_epoch = 0;
    std::uint64_t attempt = 0;
    double attempt_lr = 0.0;    ///< lr0 of the current attempt
    double attempt_clip = 0.0;  ///< grad clip of the current attempt
    double stage_lr = 0.0;      ///< decayed per-epoch lr, mid-attempt
    nn::OptimizerState opt_state;
    std::vector<linalg::Matrix> stage_start_params;  ///< rollback anchor
    StageRecord partial;  ///< in-flight stage diagnostics so far
};

/// Binary serialisation of one snapshot: magic "NOFISCKP" | u32 version |
/// payload | trailing u64 FNV-1a checksum over everything before it. All
/// doubles round-trip as raw 8-byte patterns, so restored state is
/// bit-exact (including NaN loss sentinels).
std::string encode_snapshot(const TrainSnapshot& snapshot);
/// Decodes and verifies; std::nullopt on any damage (bad magic/version,
/// truncation, checksum mismatch) — torn or bit-flipped snapshots are
/// detected here, never half-applied.
std::optional<TrainSnapshot> decode_snapshot(const std::string& bytes);

/// A directory of numbered snapshots ("ckpt-00000042.nofisckpt"). Writes go
/// through util::AtomicFile (temp + fsync + rename + directory fsync);
/// loads scan from the newest sequence number down, skipping invalid files,
/// so a torn final snapshot falls back to the previous valid one.
class CheckpointDir {
public:
    /// Opens (creating if needed) the snapshot directory. Throws
    /// std::runtime_error when the directory cannot be created.
    CheckpointDir(std::string dir, std::size_t keep);

    /// Durably writes `snapshot` under the next sequence number, then
    /// prunes all but the newest `keep` valid snapshots. Throws on I/O
    /// failure (injected or real); an existing snapshot is never damaged.
    void write(const TrainSnapshot& snapshot);

    /// Newest decodable snapshot whose fingerprint matches, skipping
    /// corrupt/torn files. std::nullopt when none exists. Throws
    /// std::runtime_error when a valid snapshot exists but its fingerprint
    /// differs (resuming under a changed config would silently diverge).
    std::optional<TrainSnapshot> load_latest(std::uint64_t fingerprint) const;

    /// Snapshot files written by this object (the crash_after_snapshots
    /// test hook counts these).
    std::size_t writes() const noexcept { return writes_; }
    const std::string& dir() const noexcept { return dir_; }

private:
    std::string dir_;
    std::size_t keep_;
    std::uint64_t next_seq_ = 1;
    std::size_t writes_ = 0;
};

/// FNV-1a accumulator for run fingerprints: feed every config field that
/// defines the run's identity; resuming checks the stored fingerprint so a
/// snapshot can never silently continue a different run.
class FingerprintBuilder {
public:
    FingerprintBuilder& add(std::uint64_t v) noexcept;
    FingerprintBuilder& add(double v) noexcept;  ///< raw bit pattern
    FingerprintBuilder& add(const std::string& s) noexcept;
    std::uint64_t value() const noexcept { return hash_; }

private:
    void add_bytes(const void* data, std::size_t n) noexcept;
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// --- graceful stop ------------------------------------------------------
// SIGINT/SIGTERM handlers for long training runs: the first signal sets a
// flag that NofisEstimator::run polls at stage boundaries — it finishes the
// in-flight stage, writes a final checkpoint, and returns with
// RunResult::interrupted set so the caller can exit cleanly. (The serve
// path keeps its own handler: it drains in-flight requests instead.)

/// Installs the stop handlers (idempotent).
void install_stop_handlers();
/// True once SIGINT/SIGTERM arrived (or request_stop was called).
bool stop_requested() noexcept;
/// Programmatic stop for tests.
void request_stop() noexcept;
/// Clears the flag (between runs / tests).
void reset_stop_request() noexcept;

}  // namespace nofis::checkpoint
