#include "checkpoint/checkpoint.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/atomic_file.hpp"

namespace nofis::checkpoint {

namespace {

constexpr char kMagic[8] = {'N', 'O', 'F', 'I', 'S', 'C', 'K', 'P'};
constexpr std::uint32_t kVersion = 1;
constexpr const char* kExtension = ".nofisckpt";
constexpr const char* kPrefix = "ckpt-";

std::uint64_t fnv1a(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

// --- encoding ----------------------------------------------------------

void put_u64(std::string& out, std::uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
}

void put_u8(std::string& out, std::uint8_t v) {
    out.push_back(static_cast<char>(v));
}

void put_f64(std::string& out, double v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    out.append(buf, 8);
}

void put_string(std::string& out, const std::string& s) {
    put_u64(out, s.size());
    out.append(s);
}

void put_f64_vec(std::string& out, const std::vector<double>& v) {
    put_u64(out, v.size());
    for (double x : v) put_f64(out, x);
}

void put_string_vec(std::string& out, const std::vector<std::string>& v) {
    put_u64(out, v.size());
    for (const auto& s : v) put_string(out, s);
}

void put_matrix(std::string& out, const linalg::Matrix& m) {
    put_u64(out, m.rows());
    put_u64(out, m.cols());
    for (double x : m.flat()) put_f64(out, x);
}

void put_matrix_vec(std::string& out, const std::vector<linalg::Matrix>& v) {
    put_u64(out, v.size());
    for (const auto& m : v) put_matrix(out, m);
}

void put_fault_report(std::string& out, const estimators::FaultReport& r) {
    put_u64(out, r.counts.size());
    for (std::size_t c : r.counts) put_u64(out, c);
    put_u64(out, r.retry_attempts);
    put_u64(out, r.recovered);
    put_u64(out, r.clamped);
    put_u64(out, r.propagated);
    put_u8(out, r.has_first ? 1 : 0);
    put_u64(out, static_cast<std::uint64_t>(r.first_kind));
    put_string(out, r.first_message);
    put_f64_vec(out, r.first_x);
    put_u64(out, r.first_call_index);
}

void put_stage_record(std::string& out, const StageRecord& s) {
    put_u64(out, s.stage);
    put_f64(out, s.level);
    put_f64_vec(out, s.epoch_loss);
    put_f64(out, s.inside_fraction);
    put_u64(out, s.retries);
    put_string_vec(out, s.retry_reasons);
    put_u64(out, s.skipped_epochs);
}

void put_opt_state(std::string& out, const nn::OptimizerState& s) {
    put_u64(out, static_cast<std::uint64_t>(s.step_count));
    put_matrix_vec(out, s.slots);
}

// --- decoding ----------------------------------------------------------

struct Truncated {};  ///< internal parse failure; never escapes decode

/// Bounds-checked reader over the verified payload.
class Reader {
public:
    Reader(const char* data, std::size_t size) : p_(data), end_(data + size) {}

    std::uint64_t u64() {
        need(8);
        std::uint64_t v;
        std::memcpy(&v, p_, 8);
        p_ += 8;
        return v;
    }
    std::uint8_t u8() {
        need(1);
        return static_cast<std::uint8_t>(*p_++);
    }
    double f64() {
        need(8);
        double v;
        std::memcpy(&v, p_, 8);
        p_ += 8;
        return v;
    }
    std::string str() {
        const std::uint64_t n = u64();
        need(n);
        std::string s(p_, n);
        p_ += n;
        return s;
    }
    std::vector<double> f64_vec() {
        const std::uint64_t n = u64();
        need(n * 8);
        std::vector<double> v(n);
        for (auto& x : v) x = f64();
        return v;
    }
    std::vector<std::string> str_vec() {
        const std::uint64_t n = u64();
        if (n > remaining()) throw Truncated{};
        std::vector<std::string> v;
        v.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) v.push_back(str());
        return v;
    }
    linalg::Matrix matrix() {
        const std::uint64_t rows = u64();
        const std::uint64_t cols = u64();
        need(rows * cols * 8);
        linalg::Matrix m(rows, cols);
        for (double& x : m.flat()) x = f64();
        return m;
    }
    std::vector<linalg::Matrix> matrix_vec() {
        const std::uint64_t n = u64();
        if (n > remaining()) throw Truncated{};
        std::vector<linalg::Matrix> v;
        v.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) v.push_back(matrix());
        return v;
    }
    estimators::FaultReport fault_report() {
        estimators::FaultReport r;
        const std::uint64_t kinds = u64();
        if (kinds != r.counts.size()) throw Truncated{};
        for (auto& c : r.counts) c = u64();
        r.retry_attempts = u64();
        r.recovered = u64();
        r.clamped = u64();
        r.propagated = u64();
        r.has_first = u8() != 0;
        const std::uint64_t kind = u64();
        if (kind >= static_cast<std::uint64_t>(
                        estimators::FaultKind::kCount))
            throw Truncated{};
        r.first_kind = static_cast<estimators::FaultKind>(kind);
        r.first_message = str();
        r.first_x = f64_vec();
        r.first_call_index = u64();
        return r;
    }
    StageRecord stage_record() {
        StageRecord s;
        s.stage = u64();
        s.level = f64();
        s.epoch_loss = f64_vec();
        s.inside_fraction = f64();
        s.retries = u64();
        s.retry_reasons = str_vec();
        s.skipped_epochs = u64();
        return s;
    }
    nn::OptimizerState opt_state() {
        nn::OptimizerState s;
        s.step_count = static_cast<long>(u64());
        s.slots = matrix_vec();
        return s;
    }
    bool done() const noexcept { return p_ == end_; }

private:
    std::size_t remaining() const noexcept {
        return static_cast<std::size_t>(end_ - p_);
    }
    void need(std::uint64_t n) const {
        if (n > remaining()) throw Truncated{};
    }
    const char* p_;
    const char* end_;
};

std::uint64_t parse_seq(const std::filesystem::path& file) {
    const std::string name = file.filename().string();
    const std::size_t prefix_len = std::strlen(kPrefix);
    if (name.rfind(kPrefix, 0) != 0) return 0;
    if (name.size() <= prefix_len || file.extension() != kExtension) return 0;
    std::uint64_t seq = 0;
    for (std::size_t i = prefix_len;
         i < name.size() - std::strlen(kExtension); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9') return 0;
        seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return seq;
}

/// Snapshot files in `dir`, newest sequence first.
std::vector<std::pair<std::uint64_t, std::filesystem::path>> list_snapshots(
    const std::string& dir) {
    namespace fs = std::filesystem;
    std::vector<std::pair<std::uint64_t, fs::path>> files;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file()) continue;
        const std::uint64_t seq = parse_seq(entry.path());
        if (seq > 0) files.emplace_back(seq, entry.path());
    }
    std::sort(files.begin(), files.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    return files;
}

std::atomic<bool> g_stop_requested{false};
std::atomic<bool> g_handlers_installed{false};

void on_stop_signal(int) {
    g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

std::string encode_snapshot(const TrainSnapshot& s) {
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    char vbuf[4];
    std::memcpy(vbuf, &kVersion, 4);
    out.append(vbuf, 4);
    put_u64(out, s.fingerprint);
    put_u64(out, s.next_stage);
    put_matrix_vec(out, s.params);
    put_f64_vec(out, s.scale_caps);
    for (std::uint64_t w : s.rng_state) put_u64(out, w);
    put_u64(out, s.guard_call_index);
    put_fault_report(out, s.guard_report);
    put_u64(out, s.train_g_calls);
    put_u64(out, s.g_grad_calls);
    put_u64(out, s.cached_hits);
    put_u64(out, s.stages.size());
    for (const auto& st : s.stages) put_stage_record(out, st);
    put_u8(out, s.has_partial ? 1 : 0);
    if (s.has_partial) {
        put_u64(out, s.next_epoch);
        put_u64(out, s.attempt);
        put_f64(out, s.attempt_lr);
        put_f64(out, s.attempt_clip);
        put_f64(out, s.stage_lr);
        put_opt_state(out, s.opt_state);
        put_matrix_vec(out, s.stage_start_params);
        put_stage_record(out, s.partial);
    }
    put_u64(out, fnv1a(out.data(), out.size()));
    return out;
}

std::optional<TrainSnapshot> decode_snapshot(const std::string& bytes) {
    constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4;
    if (bytes.size() < kHeaderBytes + 8) return std::nullopt;
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + sizeof(kMagic), 4);
    if (version != kVersion) return std::nullopt;
    // Trailing checksum covers everything before it; a torn tail or a
    // flipped bit anywhere fails here before any field is trusted.
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + bytes.size() - 8, 8);
    if (stored != fnv1a(bytes.data(), bytes.size() - 8)) return std::nullopt;

    try {
        Reader r(bytes.data() + kHeaderBytes,
                 bytes.size() - kHeaderBytes - 8);
        TrainSnapshot s;
        s.fingerprint = r.u64();
        s.next_stage = r.u64();
        s.params = r.matrix_vec();
        s.scale_caps = r.f64_vec();
        for (auto& w : s.rng_state) w = r.u64();
        s.guard_call_index = r.u64();
        s.guard_report = r.fault_report();
        s.train_g_calls = r.u64();
        s.g_grad_calls = r.u64();
        s.cached_hits = r.u64();
        const std::uint64_t stage_count = r.u64();
        s.stages.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(stage_count, 4096)));
        for (std::uint64_t i = 0; i < stage_count; ++i)
            s.stages.push_back(r.stage_record());
        s.has_partial = r.u8() != 0;
        if (s.has_partial) {
            s.next_epoch = r.u64();
            s.attempt = r.u64();
            s.attempt_lr = r.f64();
            s.attempt_clip = r.f64();
            s.stage_lr = r.f64();
            s.opt_state = r.opt_state();
            s.stage_start_params = r.matrix_vec();
            s.partial = r.stage_record();
        }
        if (!r.done()) return std::nullopt;
        return s;
    } catch (const Truncated&) {
        return std::nullopt;
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

CheckpointDir::CheckpointDir(std::string dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(std::max<std::size_t>(keep, 1)) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (!fs::is_directory(dir_))
        throw std::runtime_error("checkpoint: cannot create directory '" +
                                 dir_ + "'");
    for (const auto& [seq, path] : list_snapshots(dir_)) {
        (void)path;
        next_seq_ = std::max(next_seq_, seq + 1);
    }
}

void CheckpointDir::write(const TrainSnapshot& snapshot) {
    namespace fs = std::filesystem;
    char name[64];
    std::snprintf(name, sizeof(name), "%s%08llu%s", kPrefix,
                  static_cast<unsigned long long>(next_seq_), kExtension);
    const std::string path = (fs::path(dir_) / name).string();
    util::atomic_write_file(path, encode_snapshot(snapshot));
    ++next_seq_;
    ++writes_;

    // Prune: keep the newest `keep_` snapshots. Pruning failures are
    // swallowed — stale snapshots waste space but never correctness.
    const auto files = list_snapshots(dir_);
    for (std::size_t i = keep_; i < files.size(); ++i) {
        std::error_code ec;
        fs::remove(files[i].second, ec);
    }
}

std::optional<TrainSnapshot> CheckpointDir::load_latest(
    std::uint64_t fingerprint) const {
    for (const auto& [seq, path] : list_snapshots(dir_)) {
        (void)seq;
        std::ifstream is(path, std::ios::binary);
        if (!is) continue;
        std::string bytes((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
        auto snapshot = decode_snapshot(bytes);
        if (!snapshot) continue;  // torn/corrupt: fall back to older
        if (snapshot->fingerprint != fingerprint)
            throw std::runtime_error(
                "checkpoint: snapshot '" + path.string() +
                "' belongs to a different run configuration (fingerprint "
                "mismatch) — refusing to resume");
        return snapshot;
    }
    return std::nullopt;
}

FingerprintBuilder& FingerprintBuilder::add(std::uint64_t v) noexcept {
    add_bytes(&v, sizeof(v));
    return *this;
}

FingerprintBuilder& FingerprintBuilder::add(double v) noexcept {
    add_bytes(&v, sizeof(v));
    return *this;
}

FingerprintBuilder& FingerprintBuilder::add(const std::string& s) noexcept {
    add(static_cast<std::uint64_t>(s.size()));
    add_bytes(s.data(), s.size());
    return *this;
}

void FingerprintBuilder::add_bytes(const void* data, std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        hash_ ^= p[i];
        hash_ *= 0x100000001b3ULL;
    }
}

void install_stop_handlers() {
    if (g_handlers_installed.exchange(true, std::memory_order_relaxed))
        return;
    std::signal(SIGINT, on_stop_signal);
    std::signal(SIGTERM, on_stop_signal);
}

bool stop_requested() noexcept {
    return g_stop_requested.load(std::memory_order_relaxed);
}

void request_stop() noexcept {
    g_stop_requested.store(true, std::memory_order_relaxed);
}

void reset_stop_request() noexcept {
    g_stop_requested.store(false, std::memory_order_relaxed);
}

}  // namespace nofis::checkpoint
