#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace nofis::telemetry {
class RunTrace;
}

namespace nofis::parallel {

/// Utilisation snapshot of one pool: fork-join jobs dispatched, lane bodies
/// executed, and cumulative per-lane busy wall-clock. Busy time is sampled
/// only while a telemetry trace is active (two steady_clock reads per lane
/// per job); with telemetry off the pool does no timing at all. The job and
/// task tallies are plain relaxed counters and always on.
struct PoolStats {
    std::size_t lanes = 0;
    std::uint64_t jobs = 0;   ///< ThreadPool::run invocations
    std::uint64_t tasks = 0;  ///< lane bodies executed across all jobs
    std::vector<double> lane_busy_ms;  ///< cumulative busy time per lane
};

/// Number of hardware threads, never less than 1.
std::size_t hardware_threads() noexcept;

/// Fixed-size pool of worker threads executing fork-join jobs.
///
/// A pool of L "lanes" owns L-1 persistent workers; lane 0 always runs on
/// the calling thread, so a 1-lane pool spawns no threads at all. `run`
/// blocks until every lane finished its body. Jobs are not reentrant — a
/// body must not call back into the same pool (parallel_for detects this
/// and degrades to inline execution instead).
class ThreadPool {
public:
    explicit ThreadPool(std::size_t lanes);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t lanes() const noexcept { return lanes_; }

    /// Runs body(lane) once per lane in [0, lanes()); lane 0 executes on
    /// the caller. If bodies throw, the exception of the lowest lane is
    /// rethrown after every lane completed.
    void run(const std::function<void(std::size_t)>& body);

    /// Cumulative utilisation of this pool since construction.
    PoolStats stats() const;

private:
    struct Impl;
    std::size_t lanes_;
    std::unique_ptr<Impl> impl_;
};

/// Lanes of the process-global pool (see set_num_threads).
std::size_t num_threads();

/// Resizes the process-global pool. 0 restores the default (the
/// NOFIS_THREADS environment variable if set, else hardware_threads()).
/// Not safe to call concurrently with parallel work in flight.
void set_num_threads(std::size_t lanes);

/// Fork-join loop over [0, n): splits the range into one contiguous,
/// deterministic chunk per lane ([lane*n/L, (lane+1)*n/L)) and runs
/// body(begin, end) for each non-empty chunk on the global pool.
///
/// Determinism contract: chunk boundaries depend on the lane count, so a
/// caller that needs bitwise-identical results across thread counts must
/// (a) write only to disjoint per-index locations inside the body and
/// (b) perform every reduction serially, in index order, after the call
/// returns. All batch evaluation in this repo follows that discipline.
///
/// Nested calls (from inside a body) and calls while another thread holds
/// the pool run inline on the caller — same results, no deadlock.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Rethrows the first (lowest-index) non-null exception, if any. Batch
/// evaluators record per-index failures during a parallel_for and call
/// this afterwards so the surfaced exception does not depend on thread
/// count or scheduling.
void rethrow_first(std::span<const std::exception_ptr> errors);

/// Utilisation of the process-global pool (created on first use).
PoolStats pool_stats();

/// Row count at which a batched flow evaluation saturates the global pool:
/// enough rows per lane for the tiled matmul's static chunks to amortise
/// the fork-join, independent of how many requests contributed the rows.
/// The serving scheduler sizes its micro-batches with this by default
/// (scaled up when the fused simd kernels are active — see
/// serve/scheduler.cpp; this layer stays below linalg so it cannot ask the
/// kernel dispatch itself).
std::size_t preferred_batch_rows() noexcept;

/// Dumps pool_stats() into `trace` as counters (pool.jobs, pool.tasks) and
/// metrics (pool.lanes, pool.lane<i>.busy_ms, pool.busy_ms). Called by the
/// metrics exporters right before serialising a run record.
void export_pool_stats(telemetry::RunTrace& trace);

}  // namespace nofis::parallel
