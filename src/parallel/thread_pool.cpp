#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace nofis::parallel {

namespace {

/// True while the current thread is executing inside a parallel region;
/// nested parallel_for calls fall back to inline execution.
thread_local bool t_in_parallel_region = false;

}  // namespace

std::size_t hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

struct ThreadPool::Impl {
    std::mutex run_mutex;  ///< serialises whole jobs from different callers
    std::mutex m;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    const std::function<void(std::size_t)>* body = nullptr;
    std::uint64_t generation = 0;
    std::size_t pending = 0;
    bool shutdown = false;
    std::vector<std::exception_ptr> lane_error;
    std::vector<std::thread> workers;

    void worker_loop(std::size_t lane) {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)>* job = nullptr;
            {
                std::unique_lock lock(m);
                cv_work.wait(lock, [&] {
                    return shutdown || generation != seen;
                });
                if (shutdown) return;
                seen = generation;
                job = body;
            }
            t_in_parallel_region = true;
            try {
                (*job)(lane);
            } catch (...) {
                lane_error[lane] = std::current_exception();
            }
            t_in_parallel_region = false;
            {
                std::lock_guard lock(m);
                if (--pending == 0) cv_done.notify_one();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t lanes)
    : lanes_(lanes == 0 ? 1 : lanes), impl_(std::make_unique<Impl>()) {
    impl_->lane_error.resize(lanes_);
    impl_->workers.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane)
        impl_->workers.emplace_back([this, lane] { impl_->worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(impl_->m);
        impl_->shutdown = true;
    }
    impl_->cv_work.notify_all();
    for (auto& w : impl_->workers) w.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& body) {
    std::lock_guard run_lock(impl_->run_mutex);
    for (auto& e : impl_->lane_error) e = nullptr;
    if (lanes_ > 1) {
        std::lock_guard lock(impl_->m);
        impl_->body = &body;
        impl_->pending = lanes_ - 1;
        ++impl_->generation;
        impl_->cv_work.notify_all();
    }
    const bool was_inside = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
        body(0);
    } catch (...) {
        impl_->lane_error[0] = std::current_exception();
    }
    t_in_parallel_region = was_inside;
    if (lanes_ > 1) {
        std::unique_lock lock(impl_->m);
        impl_->cv_done.wait(lock, [&] { return impl_->pending == 0; });
        impl_->body = nullptr;
    }
    for (const auto& e : impl_->lane_error)
        if (e) std::rethrow_exception(e);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

std::size_t default_lanes() {
    if (const char* env = std::getenv("NOFIS_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return hardware_threads();
}

/// The global pool, created on first use.
ThreadPool& global_pool() {
    std::lock_guard lock(g_pool_mutex);
    if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_lanes());
    return *g_pool;
}

}  // namespace

std::size_t num_threads() { return global_pool().lanes(); }

void set_num_threads(std::size_t lanes) {
    const std::size_t want = lanes == 0 ? default_lanes() : lanes;
    std::lock_guard lock(g_pool_mutex);
    if (g_pool && g_pool->lanes() == want) return;
    g_pool = std::make_unique<ThreadPool>(want);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    if (t_in_parallel_region) {  // nested: degrade to inline
        body(0, n);
        return;
    }
    ThreadPool& pool = global_pool();
    const std::size_t lanes = std::min(pool.lanes(), n);
    if (lanes <= 1) {
        body(0, n);
        return;
    }
    pool.run([&](std::size_t lane) {
        if (lane >= lanes) return;
        const std::size_t begin = lane * n / lanes;
        const std::size_t end = (lane + 1) * n / lanes;
        if (begin < end) body(begin, end);
    });
}

void rethrow_first(std::span<const std::exception_ptr> errors) {
    for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
}

}  // namespace nofis::parallel
