#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace nofis::parallel {

namespace {

/// True while the current thread is executing inside a parallel region;
/// nested parallel_for calls fall back to inline execution.
thread_local bool t_in_parallel_region = false;

}  // namespace

std::size_t hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

struct ThreadPool::Impl {
    std::mutex run_mutex;  ///< serialises whole jobs from different callers
    std::mutex m;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    const std::function<void(std::size_t)>* body = nullptr;
    std::uint64_t generation = 0;
    std::size_t pending = 0;
    bool shutdown = false;
    std::vector<std::exception_ptr> lane_error;
    std::vector<std::thread> workers;

    // Utilisation telemetry. Counters are relaxed (snapshot-consistent is
    // enough for a metrics record); busy-time clock reads happen only while
    // a trace is active, keeping the off mode free of timing syscalls.
    std::atomic<std::uint64_t> jobs{0};
    std::atomic<std::uint64_t> tasks{0};
    std::vector<std::atomic<std::uint64_t>> lane_busy_ns;

    /// Runs one lane body, tallying task count and (if telemetry is on)
    /// the lane's busy wall-clock. Never lets an exception escape past the
    /// lane_error slot.
    void run_lane(const std::function<void(std::size_t)>& job,
                  std::size_t lane) {
        const bool timed = telemetry::active() != nullptr;
        const auto t0 = timed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
        tasks.fetch_add(1, std::memory_order_relaxed);
        try {
            job(lane);
        } catch (...) {
            lane_error[lane] = std::current_exception();
        }
        if (timed) {
            const auto dt = std::chrono::steady_clock::now() - t0;
            lane_busy_ns[lane].fetch_add(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                        .count()),
                std::memory_order_relaxed);
        }
    }

    void worker_loop(std::size_t lane) {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)>* job = nullptr;
            {
                std::unique_lock lock(m);
                cv_work.wait(lock, [&] {
                    return shutdown || generation != seen;
                });
                if (shutdown) return;
                seen = generation;
                job = body;
            }
            t_in_parallel_region = true;
            run_lane(*job, lane);
            t_in_parallel_region = false;
            {
                std::lock_guard lock(m);
                if (--pending == 0) cv_done.notify_one();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t lanes)
    : lanes_(lanes == 0 ? 1 : lanes), impl_(std::make_unique<Impl>()) {
    impl_->lane_error.resize(lanes_);
    impl_->lane_busy_ns = std::vector<std::atomic<std::uint64_t>>(lanes_);
    impl_->workers.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane)
        impl_->workers.emplace_back([this, lane] { impl_->worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(impl_->m);
        impl_->shutdown = true;
    }
    impl_->cv_work.notify_all();
    for (auto& w : impl_->workers) w.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& body) {
    std::lock_guard run_lock(impl_->run_mutex);
    impl_->jobs.fetch_add(1, std::memory_order_relaxed);
    for (auto& e : impl_->lane_error) e = nullptr;
    if (lanes_ > 1) {
        std::lock_guard lock(impl_->m);
        impl_->body = &body;
        impl_->pending = lanes_ - 1;
        ++impl_->generation;
        impl_->cv_work.notify_all();
    }
    const bool was_inside = t_in_parallel_region;
    t_in_parallel_region = true;
    impl_->run_lane(body, 0);
    t_in_parallel_region = was_inside;
    if (lanes_ > 1) {
        std::unique_lock lock(impl_->m);
        impl_->cv_done.wait(lock, [&] { return impl_->pending == 0; });
        impl_->body = nullptr;
    }
    for (const auto& e : impl_->lane_error)
        if (e) std::rethrow_exception(e);
}

namespace {

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

std::size_t default_lanes() {
    if (const char* env = std::getenv("NOFIS_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<std::size_t>(v);
    }
    return hardware_threads();
}

/// The global pool, created on first use.
ThreadPool& global_pool() {
    std::lock_guard lock(g_pool_mutex);
    if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_lanes());
    return *g_pool;
}

}  // namespace

std::size_t num_threads() { return global_pool().lanes(); }

void set_num_threads(std::size_t lanes) {
    const std::size_t want = lanes == 0 ? default_lanes() : lanes;
    std::lock_guard lock(g_pool_mutex);
    if (g_pool && g_pool->lanes() == want) return;
    g_pool = std::make_unique<ThreadPool>(want);
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body) {
    if (n == 0) return;
    if (t_in_parallel_region) {  // nested: degrade to inline
        body(0, n);
        return;
    }
    ThreadPool& pool = global_pool();
    const std::size_t lanes = std::min(pool.lanes(), n);
    if (lanes <= 1) {
        body(0, n);
        return;
    }
    pool.run([&](std::size_t lane) {
        if (lane >= lanes) return;
        const std::size_t begin = lane * n / lanes;
        const std::size_t end = (lane + 1) * n / lanes;
        if (begin < end) body(begin, end);
    });
}

void rethrow_first(std::span<const std::exception_ptr> errors) {
    for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
}

PoolStats ThreadPool::stats() const {
    PoolStats s;
    s.lanes = lanes_;
    s.jobs = impl_->jobs.load(std::memory_order_relaxed);
    s.tasks = impl_->tasks.load(std::memory_order_relaxed);
    s.lane_busy_ms.reserve(lanes_);
    for (const auto& ns : impl_->lane_busy_ns)
        s.lane_busy_ms.push_back(
            static_cast<double>(ns.load(std::memory_order_relaxed)) / 1e6);
    return s;
}

PoolStats pool_stats() { return global_pool().stats(); }

std::size_t preferred_batch_rows() noexcept {
    // 16 rows per lane keeps every lane's static matmul chunk a real tile;
    // the floor of 64 keeps single-lane serving from degenerating to
    // per-request row counts.
    return std::max<std::size_t>(64, 16 * num_threads());
}

void export_pool_stats(telemetry::RunTrace& trace) {
    const PoolStats s = pool_stats();
    trace.add_counter("pool.jobs", s.jobs);
    trace.add_counter("pool.tasks", s.tasks);
    trace.set_metric("pool.lanes", static_cast<double>(s.lanes));
    double total_ms = 0.0;
    for (std::size_t lane = 0; lane < s.lane_busy_ms.size(); ++lane) {
        trace.set_metric("pool.lane" + std::to_string(lane) + ".busy_ms",
                         s.lane_busy_ms[lane]);
        total_ms += s.lane_busy_ms[lane];
    }
    trace.set_metric("pool.busy_ms", total_ms);
}

}  // namespace nofis::parallel
