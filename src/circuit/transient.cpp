#include "circuit/transient.hpp"

#include <stdexcept>

namespace nofis::circuit {

TransientAnalysis::TransientAnalysis(const Netlist& netlist, Config cfg)
    : netlist_(&netlist),
      cfg_(cfg),
      waveforms_(netlist.voltage_sources().size()) {
    if (!(cfg_.dt > 0.0) || !(cfg_.t_stop > 0.0) || cfg_.dt > cfg_.t_stop)
        throw std::invalid_argument("TransientAnalysis: bad time grid");
}

void TransientAnalysis::set_source_waveform(std::size_t vsource,
                                            std::function<double(double)> w) {
    waveforms_.at(vsource) = std::move(w);
}

TransientAnalysis::Result TransientAnalysis::run() const {
    const MnaSystem sys(*netlist_);
    const std::size_t n = sys.dim();
    const double inv_h = 1.0 / cfg_.dt;

    // Companion matrix A = G + C/h, factored once.
    linalg::Matrix a = sys.g_matrix();
    a += sys.c_matrix() * inv_h;
    const linalg::LuDecomposition lu(a);

    // Initial state.
    std::vector<double> x(n, 0.0);
    if (cfg_.start_from_dc) {
        // DC with waveforms evaluated at t = 0.
        linalg::Matrix g0 = sys.g_matrix();
        std::vector<double> b0(sys.rhs().begin(), sys.rhs().end());
        const auto vsrcs = netlist_->voltage_sources();
        for (std::size_t k = 0; k < vsrcs.size(); ++k)
            if (waveforms_[k])
                b0[sys.branch_index(k)] = vsrcs[k].volts * waveforms_[k](0.0);
        x = linalg::LuDecomposition(g0).solve(b0);
    }

    const auto steps =
        static_cast<std::size_t>(cfg_.t_stop / cfg_.dt + 0.5);
    Result result;
    result.time.reserve(steps + 1);
    result.state.reserve(steps + 1);
    result.time.push_back(0.0);
    result.state.push_back(x);

    const auto vsrcs = netlist_->voltage_sources();
    std::vector<double> rhs(n);
    for (std::size_t k = 1; k <= steps; ++k) {
        const double t = static_cast<double>(k) * cfg_.dt;
        // b(t) + (C/h) x_k.
        std::copy(sys.rhs().begin(), sys.rhs().end(), rhs.begin());
        for (std::size_t s = 0; s < vsrcs.size(); ++s)
            if (waveforms_[s])
                rhs[sys.branch_index(s)] = vsrcs[s].volts * waveforms_[s](t);
        for (std::size_t r = 0; r < n; ++r) {
            double acc = rhs[r];
            for (std::size_t c = 0; c < n; ++c) {
                const double cv = sys.c_matrix()(r, c);
                if (cv != 0.0) acc += cv * inv_h * x[c];
            }
            rhs[r] = acc;
        }
        x = lu.solve(rhs);
        result.time.push_back(t);
        result.state.push_back(x);
    }
    return result;
}

}  // namespace nofis::circuit
