#pragma once

#include <span>
#include <vector>

#include "circuit/nonlinear.hpp"

namespace nofis::circuit {

/// 6T SRAM cell read-stability model, computed from real nonlinear DC
/// solves (Newton on the level-1 MOSFET models) — the application domain
/// the paper's introduction motivates (SRAM cells must fail with
/// P < 1e-6 [2, 8, 10, 12]).
///
/// The static noise margin (SNM) is extracted with Seevinck's rotated
/// butterfly-curve method: each half-cell's voltage transfer curve is
/// traced in the read configuration (access transistor on, bitline
/// precharged to VDD), the two curves are rotated by 45°, and the SNM is
/// the side of the largest square that fits in the smaller butterfly lobe.
///
/// Threshold-voltage variation of the six transistors (pull-down, pull-up,
/// access; left and right) enters through the 6 standard-normal variables.
class SramCellModel {
public:
    struct Params {
        double vdd = 1.0;
        double beta_n = 200e-6;  ///< pull-down strength [A/V²]
        double beta_p = 80e-6;   ///< pull-up strength [A/V²]
        double beta_ax = 100e-6; ///< access strength [A/V²]
        double vt_n = 0.30;
        double vt_p = 0.30;
        double lambda = 0.05;
        double sigma_vt = 0.05;  ///< VT variation per unit x [V]
        std::size_t vtc_points = 33;
    };

    SramCellModel() : SramCellModel(Params()) {}
    explicit SramCellModel(Params p) : p_(p) {}

    /// Read static noise margin [V] for variation vector x (size 6:
    /// {PD_L, PU_L, AX_L, PD_R, PU_R, AX_R} threshold shifts).
    double static_noise_margin(std::span<const double> x) const;

    /// One half-cell VTC in the read configuration: output voltage versus
    /// the forced input voltage for the inverter whose device VT shifts
    /// are (d_pd, d_pu, d_ax). Exposed for tests and plotting.
    std::vector<double> read_vtc(std::span<const double> vin_grid,
                                 double d_pd, double d_pu, double d_ax) const;

    static constexpr std::size_t kNumVariables = 6;

private:
    double half_cell_output(double vin, double d_pd, double d_pu,
                            double d_ax) const;

    Params p_;
};

}  // namespace nofis::circuit
