#include "circuit/dc.hpp"

#include <stdexcept>

#include "linalg/lu.hpp"

namespace nofis::circuit {

DcSolution::DcSolution(const Netlist& netlist) : nodes_(netlist.num_nodes()) {
    const MnaSystem sys(netlist);
    x_ = linalg::solve(sys.g_matrix(), sys.rhs());
}

double DcSolution::voltage(NodeId n) const {
    if (n == 0) return 0.0;
    if (n > nodes_) throw std::out_of_range("DcSolution::voltage");
    return x_[n - 1];
}

double DcSolution::source_current(std::size_t k) const {
    const std::size_t idx = nodes_ + k;
    if (idx >= x_.size()) throw std::out_of_range("DcSolution::source_current");
    return x_[idx];
}

double dc_voltage(const Netlist& netlist, NodeId node) {
    return DcSolution(netlist).voltage(node);
}

}  // namespace nofis::circuit
