#include "circuit/mna.hpp"

namespace nofis::circuit {

namespace {

/// Adds `v` at (r, c) when both indices refer to non-ground unknowns.
/// MNA convention: ground rows/columns are dropped; node k maps to index
/// k - 1.
void stamp(linalg::Matrix& m, std::size_t r_node, std::size_t c_node,
           double v) {
    if (r_node == 0 || c_node == 0) return;
    m(r_node - 1, c_node - 1) += v;
}

}  // namespace

MnaSystem::MnaSystem(const Netlist& netlist)
    : nodes_(netlist.num_nodes()),
      dim_(netlist.num_nodes() + netlist.voltage_sources().size()),
      g_(dim_, dim_),
      c_(dim_, dim_),
      rhs_(dim_, 0.0) {
    for (const auto& r : netlist.resistors()) {
        const double g = 1.0 / r.ohms;
        stamp(g_, r.n1, r.n1, g);
        stamp(g_, r.n2, r.n2, g);
        stamp(g_, r.n1, r.n2, -g);
        stamp(g_, r.n2, r.n1, -g);
    }
    for (const auto& c : netlist.capacitors()) {
        stamp(c_, c.n1, c.n1, c.farads);
        stamp(c_, c.n2, c.n2, c.farads);
        stamp(c_, c.n1, c.n2, -c.farads);
        stamp(c_, c.n2, c.n1, -c.farads);
    }
    for (const auto& v : netlist.vccs()) {
        // Current gm (v_cp - v_cn) leaves out_p, enters out_n.
        stamp(g_, v.out_p, v.ctrl_p, v.gm);
        stamp(g_, v.out_p, v.ctrl_n, -v.gm);
        stamp(g_, v.out_n, v.ctrl_p, -v.gm);
        stamp(g_, v.out_n, v.ctrl_n, v.gm);
    }
    for (const auto& i : netlist.current_sources()) {
        // Current flows n1 -> n2 through the source: leaves n1, enters n2.
        if (i.n1 != 0) rhs_[i.n1 - 1] -= i.amps;
        if (i.n2 != 0) rhs_[i.n2 - 1] += i.amps;
    }
    const auto vsrcs = netlist.voltage_sources();
    for (std::size_t k = 0; k < vsrcs.size(); ++k) {
        const auto& v = vsrcs[k];
        const std::size_t br = branch_index(k);
        if (v.pos != 0) {
            g_(v.pos - 1, br) += 1.0;
            g_(br, v.pos - 1) += 1.0;
        }
        if (v.neg != 0) {
            g_(v.neg - 1, br) -= 1.0;
            g_(br, v.neg - 1) -= 1.0;
        }
        rhs_[br] = v.volts;
    }
}

}  // namespace nofis::circuit
