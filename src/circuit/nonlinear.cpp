#include "circuit/nonlinear.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/mna.hpp"
#include "linalg/lu.hpp"
#include "linalg/solver_error.hpp"

namespace nofis::circuit {

namespace {
/// Tiny conductance from every device terminal to ground: keeps the
/// Jacobian non-singular for floating gates and cut-off devices (the
/// standard SPICE gmin device).
constexpr double kGmin = 1e-12;
}  // namespace

NonlinearCircuit::NonlinearCircuit(Netlist linear_part)
    : linear_(std::move(linear_part)) {}

void NonlinearCircuit::add(Mosfet m) { mosfets_.push_back(m); }
void NonlinearCircuit::add(Diode d) { diodes_.push_back(d); }

MosfetOp NonlinearCircuit::evaluate(const Mosfet& m, double vd, double vg,
                                    double vs) {
    // PMOS handled by operating in sign-flipped voltage space; the drain
    // current then flips sign back.
    const double s = m.is_pmos ? -1.0 : 1.0;
    double ud = s * vd;
    double ug = s * vg;
    double us = s * vs;
    // The square-law device is symmetric: if u_d < u_s the roles swap and
    // the (NMOS-convention) current is negative.
    double sign_swap = 1.0;
    if (ud < us) {
        std::swap(ud, us);
        sign_swap = -1.0;
    }
    const double vgs = ug - us;
    const double vds = ud - us;
    const double vov = vgs - m.vt;

    MosfetOp op;
    op.vgs = vgs;
    op.vds = vds;
    double id;
    if (vov <= 0.0) {
        id = 0.0;
        op.region = MosfetOp::Region::kCutoff;
    } else if (vds < vov) {
        id = m.beta * (vov * vds - 0.5 * vds * vds) * (1.0 + m.lambda * vds);
        op.region = MosfetOp::Region::kTriode;
    } else {
        id = 0.5 * m.beta * vov * vov * (1.0 + m.lambda * vds);
        op.region = MosfetOp::Region::kSaturation;
    }
    // Current into the *actual* drain terminal.
    op.id = s * sign_swap * id;
    return op;
}

NonlinearCircuit::Companion NonlinearCircuit::linearise(const Mosfet& m,
                                                        double vd, double vg,
                                                        double vs) {
    // Analytic partials are error-prone across the PMOS/swap sign maze;
    // the device equation is smooth and cheap, so a central difference at
    // machine-friendly step gives Jacobian entries accurate to ~1e-9 —
    // plenty for Newton, whose convergence test is on the residual.
    const double h = 1e-7;
    const auto id = [&](double d, double g, double s) {
        return evaluate(m, d, g, s).id;
    };
    Companion c{};
    c.gds = (id(vd + h, vg, vs) - id(vd - h, vg, vs)) / (2.0 * h);
    c.gm = (id(vd, vg + h, vs) - id(vd, vg - h, vs)) / (2.0 * h);
    c.i_eq = id(vd, vg, vs);
    return c;
}

double NonlinearCircuit::voltage(std::span<const double> solution,
                                 NodeId node) const {
    if (node == 0) return 0.0;
    if (node > linear_.num_nodes())
        throw std::out_of_range("NonlinearCircuit::voltage");
    return solution[node - 1];
}

MosfetOp NonlinearCircuit::mosfet_op(std::span<const double> solution,
                                     std::size_t index) const {
    const Mosfet& m = mosfets_.at(index);
    return evaluate(m, voltage(solution, m.drain), voltage(solution, m.gate),
                    voltage(solution, m.source));
}

std::vector<double> NonlinearCircuit::solve_dc(
    const SolveOptions& opts, std::span<const double> initial) const {
    const MnaSystem base(linear_);
    const std::size_t n = base.dim();

    std::vector<double> x(n, 0.0);
    if (!initial.empty()) {
        if (initial.size() > n)
            throw std::invalid_argument("NonlinearCircuit: bad initial size");
        for (double v : initial)
            if (!std::isfinite(v))
                throw BadInputError(
                    "NonlinearCircuit: non-finite initial guess");
        std::copy(initial.begin(), initial.end(), x.begin());
    }

    const auto node_v = [&](NodeId node) {
        return node == 0 ? 0.0 : x[node - 1];
    };
    // Adds ∂I/∂v at (row=node_r, col=node_c) when both are non-ground.
    const auto stamp_g = [](linalg::Matrix& g, NodeId r, NodeId c,
                            double v) {
        if (r != 0 && c != 0) g(r - 1, c - 1) += v;
    };

    for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
        linalg::Matrix g = base.g_matrix();
        std::vector<double> b(base.rhs().begin(), base.rhs().end());

        for (const auto& m : mosfets_) {
            const double vd = node_v(m.drain);
            const double vg = node_v(m.gate);
            const double vs = node_v(m.source);
            const Companion c = linearise(m, vd, vg, vs);
            // I_D(v) ≈ i_eq + gds (vd - vd0) + gm (vg - vg0)
            //               - (gds + gm)(vs - vs0), flowing drain -> source.
            const double dIdd = c.gds;
            const double dIdg = c.gm;
            const double dIds = -(c.gds + c.gm);
            const double i0 =
                c.i_eq - dIdd * vd - dIdg * vg - dIds * vs;
            stamp_g(g, m.drain, m.drain, dIdd);
            stamp_g(g, m.drain, m.gate, dIdg);
            stamp_g(g, m.drain, m.source, dIds);
            stamp_g(g, m.source, m.drain, -dIdd);
            stamp_g(g, m.source, m.gate, -dIdg);
            stamp_g(g, m.source, m.source, -dIds);
            if (m.drain != 0) b[m.drain - 1] -= i0;
            if (m.source != 0) b[m.source - 1] += i0;
            // gmin stabilisers.
            stamp_g(g, m.drain, m.drain, kGmin);
            stamp_g(g, m.gate, m.gate, kGmin);
            stamp_g(g, m.source, m.source, kGmin);
        }
        for (const auto& d : diodes_) {
            const double v = node_v(d.anode) - node_v(d.cathode);
            const double arg = std::min(v / d.v_thermal, 40.0);
            const double ex = std::exp(arg);
            const double gd =
                std::max(d.i_sat / d.v_thermal * ex, kGmin);
            const double id = d.i_sat * (ex - 1.0);
            const double i0 = id - gd * v;
            stamp_g(g, d.anode, d.anode, gd);
            stamp_g(g, d.cathode, d.cathode, gd);
            stamp_g(g, d.anode, d.cathode, -gd);
            stamp_g(g, d.cathode, d.anode, -gd);
            if (d.anode != 0) b[d.anode - 1] -= i0;
            if (d.cathode != 0) b[d.cathode - 1] += i0;
        }

        const auto x_new = linalg::LuDecomposition(g).solve(b);
        double max_step = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            double step = x_new[k] - x[k];
            // Damp only the node voltages; branch currents may move freely.
            if (k < linear_.num_nodes())
                step = std::clamp(step, -opts.damping_limit,
                                  opts.damping_limit);
            x[k] += step;
            max_step = std::max(max_step, std::abs(step));
        }
        if (max_step < opts.tolerance) return x;
    }
    throw NonConvergenceError("NonlinearCircuit: Newton failed to converge");
}

}  // namespace nofis::circuit
