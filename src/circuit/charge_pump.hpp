#pragma once

#include <span>

namespace nofis::circuit {

/// Behavioural model of a PLL charge-pump output stage (after Gao et al.,
/// ICCAD 2019 — the paper's Charge Pump reference [9]).
///
/// Topology: a cascoded PMOS UP branch (reference mirror device, output
/// mirror device, cascode pair) and a cascoded NMOS DN branch mirror the
/// same reference current onto the output node; series switch devices and
/// bias devices complete the 16-transistor stage. Each device follows the
/// square-law model with channel-length modulation
///     I_D = ½ β (V_GS − V_T)² (1 + λ V_DS)
/// and device k carries its own threshold/beta variation driven by the
/// standard-normal x_k. The output voltage is found by a bisection solve of
/// KCL at the output node (UP current = DN current + load current), and the
/// reported metric is the UP/DN current mismatch at that operating point.
class ChargePumpModel {
public:
    struct Params {
        double vdd = 1.8;        ///< supply [V]
        double i_ref = 250e-6;   ///< reference current [A]
        double beta_n = 4e-3;    ///< NMOS transconductance factor [A/V²]
        double beta_p = 2e-3;    ///< PMOS transconductance factor [A/V²]
        double vt_n = 0.45;      ///< nominal NMOS threshold [V]
        double vt_p = 0.45;      ///< nominal PMOS threshold magnitude [V]
        double lambda = 0.08;    ///< channel-length modulation [1/V]
        double sigma_vt = 0.055; ///< threshold variation per unit x [V]
        double sigma_beta = 0.11;///< relative beta variation per unit x
        double r_load = 200e3;   ///< output load to VDD/2 [Ω]
        double r_switch = 400.0; ///< nominal switch on-resistance [Ω]
    };

    ChargePumpModel() : p_() {}
    explicit ChargePumpModel(Params p) : p_(p) {}

    /// x.size() == 16 (one standard-normal per device).
    /// Returns |I_up − I_dn| at the solved output operating point [A].
    double mismatch_amps(std::span<const double> x) const;

    /// The solved DC output voltage (diagnostics / tests).
    double output_voltage(std::span<const double> x) const;

    static constexpr std::size_t kNumVariables = 16;

private:
    struct BranchCurrents {
        double i_up;
        double i_dn;
    };
    BranchCurrents branch_currents(std::span<const double> x,
                                   double v_out) const;
    double solve_vout(std::span<const double> x) const;

    Params p_;
};

}  // namespace nofis::circuit
