#pragma once

#include <complex>

#include "circuit/mna.hpp"

namespace nofis::circuit {

/// Small-signal AC analysis: solves (G + jωC) x = b at one frequency with
/// the netlist's sources as the (real) excitation phasors.
class AcSolution {
public:
    AcSolution(const Netlist& netlist, double freq_hz);

    std::complex<double> voltage(NodeId n) const;

    /// |v(out)| / |v(in)| in dB.
    double gain_db(NodeId out, NodeId in) const;

private:
    std::size_t nodes_;
    std::vector<std::complex<double>> x_;
};

/// Magnitude response sweep of v(out) over the given frequencies.
std::vector<double> ac_magnitude_sweep(const Netlist& netlist, NodeId out,
                                       std::span<const double> freqs_hz);

}  // namespace nofis::circuit
