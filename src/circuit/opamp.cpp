#include "circuit/opamp.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/ac.hpp"

namespace nofis::circuit {

Netlist OpampModel::build(std::span<const double> x) const {
    if (x.size() != kNumVariables)
        throw std::invalid_argument("OpampModel: expects 5 variables");

    const double gm1 = p_.gm0 * std::exp(p_.alpha * x[0]);
    const double gm2 = p_.gm0 * std::exp(p_.alpha * x[1]);
    const double gm3 = p_.gm0 * std::exp(p_.alpha * x[2]);
    // Wider devices -> larger output conductance -> smaller load resistance.
    const double r1 = p_.r0 * std::exp(-p_.alpha * x[3]);
    const double r2 = p_.r0 * std::exp(-p_.alpha * x[4]);
    const double r3 = p_.r0;
    const double gmf =
        p_.gmf_ratio * p_.gm0 * std::exp(0.5 * p_.alpha * (x[0] + x[3]));

    // Nodes: 1 input, 2 stage-1 out, 3 stage-2 out, 4 output.
    Netlist net(4);
    net.add(VoltageSource{kInputNode, 0, 1.0});

    net.add(Vccs{2, 0, kInputNode, 0, gm1});
    net.add(Resistor{2, 0, r1});
    net.add(Capacitor{2, 0, p_.c_stage});

    net.add(Vccs{3, 0, 2, 0, gm2});
    net.add(Resistor{3, 0, r2});
    net.add(Capacitor{3, 0, p_.c_stage});

    net.add(Vccs{kOutputNode, 0, 3, 0, gm3});
    net.add(Resistor{kOutputNode, 0, r3});
    net.add(Capacitor{kOutputNode, 0, p_.c_load});

    // Miller compensation across stages 2-3 and the feedforward path that
    // makes the gain depend on the variables non-multiplicatively.
    net.add(Capacitor{2, kOutputNode, p_.c_miller});
    net.add(Vccs{kOutputNode, 0, 2, 0, gmf});
    return net;
}

double OpampModel::gain_db(std::span<const double> x) const {
    const Netlist net = build(x);
    return AcSolution(net, p_.freq_hz).gain_db(kOutputNode, kInputNode);
}

}  // namespace nofis::circuit
