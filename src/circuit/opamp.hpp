#pragma once

#include <span>

#include "circuit/netlist.hpp"

namespace nofis::circuit {

/// Small-signal macromodel of a three-stage amplifier (after Yan et al.,
/// ISSCC 2012 — the paper's Opamp reference [22]): three gm stages with
/// resistive/capacitive loads, Miller compensation, and a feedforward path,
/// driving a 1 nF load.
///
/// Process variation enters through 5 standard-normal variables x:
/// x0..x2 modulate the stage transconductances (width -> gm, lognormal),
/// x3..x4 modulate the first two stages' output conductances. Every gain
/// query assembles the perturbed netlist and runs a full MNA AC solve — the
/// "expensive simulation" g() of the paper, reproduced for real.
class OpampModel {
public:
    /// Nominal element values.
    struct Params {
        double gm0 = 2e-4;        ///< nominal stage transconductance [S]
        double r0 = 113.6e3;      ///< nominal stage load [Ω]
        double alpha = 0.115;     ///< lognormal variation strength
        double c_stage = 1e-12;   ///< stage parasitic [F]
        double c_load = 1e-9;     ///< output load [F]
        double c_miller = 2e-12;  ///< compensation [F]
        double gmf_ratio = 0.1;   ///< feedforward gm / gm0
        double freq_hz = 10.0;    ///< gain measurement frequency
    };

    OpampModel() : p_() {}
    explicit OpampModel(Params p) : p_(p) {}

    /// Builds the perturbed small-signal netlist (x.size() == 5).
    Netlist build(std::span<const double> x) const;

    /// Closed-loop of the measurement: |v(out)/v(in)| in dB from AC MNA.
    double gain_db(std::span<const double> x) const;

    static constexpr std::size_t kNumVariables = 5;
    static constexpr NodeId kInputNode = 1;
    static constexpr NodeId kOutputNode = 4;

private:
    Params p_;
};

}  // namespace nofis::circuit
