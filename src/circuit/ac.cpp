#include "circuit/ac.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace nofis::circuit {

AcSolution::AcSolution(const Netlist& netlist, double freq_hz)
    : nodes_(netlist.num_nodes()) {
    const MnaSystem sys(netlist);
    const double omega = 2.0 * std::numbers::pi * freq_hz;
    const std::size_t n = sys.dim();
    std::vector<std::complex<double>> a(n * n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            a[r * n + c] = {sys.g_matrix()(r, c),
                            omega * sys.c_matrix()(r, c)};
    std::vector<std::complex<double>> b(n);
    for (std::size_t r = 0; r < n; ++r) b[r] = sys.rhs()[r];
    x_ = linalg::ComplexLu(std::move(a), n).solve(b);
}

std::complex<double> AcSolution::voltage(NodeId n) const {
    if (n == 0) return {0.0, 0.0};
    if (n > nodes_) throw std::out_of_range("AcSolution::voltage");
    return x_[n - 1];
}

double AcSolution::gain_db(NodeId out, NodeId in) const {
    const double num = std::abs(voltage(out));
    const double den = std::abs(voltage(in));
    if (den == 0.0) throw std::domain_error("AcSolution::gain_db: |v_in| = 0");
    return 20.0 * std::log10(num / den);
}

std::vector<double> ac_magnitude_sweep(const Netlist& netlist, NodeId out,
                                       std::span<const double> freqs_hz) {
    std::vector<double> mags;
    mags.reserve(freqs_hz.size());
    for (double f : freqs_hz)
        mags.push_back(std::abs(AcSolution(netlist, f).voltage(out)));
    return mags;
}

}  // namespace nofis::circuit
