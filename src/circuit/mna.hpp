#pragma once

#include <complex>

#include "circuit/netlist.hpp"
#include "linalg/matrix.hpp"

namespace nofis::circuit {

/// Modified nodal analysis assembly: stamps the netlist into
///   (G + jωC) x = b,
/// where x = [node voltages 1..N | voltage-source branch currents].
///
/// `stamp_g` produces the real conductance matrix (R, VCCS, V-source rows);
/// `stamp_c` the susceptance matrix (capacitors); `stamp_rhs` the excitation
/// vector (current sources + voltage-source values).
class MnaSystem {
public:
    explicit MnaSystem(const Netlist& netlist);

    std::size_t dim() const noexcept { return dim_; }
    std::size_t num_nodes() const noexcept { return nodes_; }

    const linalg::Matrix& g_matrix() const noexcept { return g_; }
    const linalg::Matrix& c_matrix() const noexcept { return c_; }
    std::span<const double> rhs() const noexcept { return rhs_; }

    /// Index of a voltage source's branch-current unknown.
    std::size_t branch_index(std::size_t vsource) const {
        return nodes_ + vsource;
    }

private:
    std::size_t nodes_ = 0;
    std::size_t dim_ = 0;
    linalg::Matrix g_;
    linalg::Matrix c_;
    std::vector<double> rhs_;
};

}  // namespace nofis::circuit
