#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nofis::circuit {

/// Node index; 0 is ground. Nodes are dense: a netlist with max node id N
/// has MNA unknowns v_1..v_N (plus one branch current per voltage source).
using NodeId = std::size_t;

/// Linear(ised) circuit elements supported by the MNA engine. This covers
/// everything a small-signal analog macromodel needs: R, C, independent
/// sources, and voltage-controlled current sources (transistor gm / go).
struct Resistor {
    NodeId n1, n2;
    double ohms;
};

struct Capacitor {
    NodeId n1, n2;
    double farads;
};

/// DC/AC current source driving current from n1 to n2 (into n2).
struct CurrentSource {
    NodeId n1, n2;
    double amps;
};

/// Ideal voltage source (adds one branch-current unknown).
struct VoltageSource {
    NodeId pos, neg;
    double volts;
};

/// VCCS: current gm·(v_cp − v_cn) flows from out_p to out_n.
struct Vccs {
    NodeId out_p, out_n;
    NodeId ctrl_p, ctrl_n;
    double gm;
};

/// A flat element-list netlist. Intentionally minimal: build programmatic
/// macromodels (the Opamp test case), no parser needed.
class Netlist {
public:
    /// Declares `n` non-ground nodes (ids 1..n are then valid).
    explicit Netlist(std::size_t num_nodes) : num_nodes_(num_nodes) {}

    std::size_t num_nodes() const noexcept { return num_nodes_; }

    void add(Resistor r);
    void add(Capacitor c);
    void add(CurrentSource i);
    /// Returns the source's index (used to select the AC excitation).
    std::size_t add(VoltageSource v);
    void add(Vccs g);

    std::span<const Resistor> resistors() const noexcept { return resistors_; }
    std::span<const Capacitor> capacitors() const noexcept {
        return capacitors_;
    }
    std::span<const CurrentSource> current_sources() const noexcept {
        return isources_;
    }
    std::span<const VoltageSource> voltage_sources() const noexcept {
        return vsources_;
    }
    std::span<const Vccs> vccs() const noexcept { return vccs_; }

    /// Mutable access for parameter sweeps (process variation re-stamps).
    Vccs& vccs_at(std::size_t i) { return vccs_.at(i); }
    Resistor& resistor_at(std::size_t i) { return resistors_.at(i); }

private:
    void check_node(NodeId n, const char* what) const;

    std::size_t num_nodes_;
    std::vector<Resistor> resistors_;
    std::vector<Capacitor> capacitors_;
    std::vector<CurrentSource> isources_;
    std::vector<VoltageSource> vsources_;
    std::vector<Vccs> vccs_;
};

}  // namespace nofis::circuit
