#pragma once

#include "circuit/mna.hpp"

namespace nofis::circuit {

/// DC operating point of a linear netlist: solves G x = b.
class DcSolution {
public:
    explicit DcSolution(const Netlist& netlist);

    /// Voltage at node `n` (0 = ground = 0 V).
    double voltage(NodeId n) const;

    /// Branch current through voltage source `k` (positive into `pos`).
    double source_current(std::size_t k) const;

private:
    std::size_t nodes_;
    std::vector<double> x_;
};

/// One-shot convenience: node voltage of a fresh DC solve.
double dc_voltage(const Netlist& netlist, NodeId node);

}  // namespace nofis::circuit
