#include "circuit/charge_pump.hpp"

#include <cmath>
#include <stdexcept>

namespace nofis::circuit {

namespace {

/// Square-law drain current with channel-length modulation; clamps to the
/// cut-off region (Vov <= 0 -> no current).
double square_law(double beta, double vov, double lambda, double vds) {
    if (vov <= 0.0) return 0.0;
    return 0.5 * beta * vov * vov * (1.0 + lambda * std::max(vds, 0.0));
}

}  // namespace

ChargePumpModel::BranchCurrents ChargePumpModel::branch_currents(
    std::span<const double> x, double v_out) const {
    if (x.size() != kNumVariables)
        throw std::invalid_argument("ChargePumpModel: expects 16 variables");

    const auto vt = [&](std::size_t k, double nominal) {
        return nominal + p_.sigma_vt * x[k];
    };
    const auto beta = [&](std::size_t k, double nominal) {
        return nominal * (1.0 + p_.sigma_beta * x[k]);
    };

    // Reference current generator (devices 12, 13): a shared bandgap-ish
    // reference with per-branch routing mismatch.
    const double i_ref_up = p_.i_ref * (1.0 + 0.5 * p_.sigma_beta * x[12]);
    const double i_ref_dn = p_.i_ref * (1.0 + 0.5 * p_.sigma_beta * x[13]);

    // --- UP branch (PMOS, devices 0-5) ----------------------------------------
    // Diode-connected reference mirror (0) sets the shared gate; ref cascode
    // (2) and bias device (5) shift the effective reference operating point.
    const double beta0 = beta(0, p_.beta_p);
    const double vsg0 = vt(0, p_.vt_p) + std::sqrt(2.0 * i_ref_up / beta0) +
                        0.02 * p_.sigma_vt * x[2] +
                        0.05 * p_.sigma_beta * x[5];
    // Output mirror (1) behind output cascode (3) and the UP switch (4,
    // driver 14 modulates its on-resistance).
    const double beta1 = beta(1, p_.beta_p);
    const double vov1 = vsg0 - vt(1, p_.vt_p);
    const double r_sw_up =
        p_.r_switch * (1.0 + 0.3 * p_.sigma_beta * (x[4] + x[14]));
    const double vsd_casc_up =
        std::sqrt(2.0 * i_ref_up / beta(3, p_.beta_p)) + 0.5 * p_.sigma_vt * x[3];
    // Estimate branch current iteratively once for the switch drop (the
    // outer bisection on v_out supplies the self-consistency).
    double i_up = square_law(beta1, vov1, p_.lambda, p_.vdd - v_out);
    const double vsd1 =
        p_.vdd - (v_out + i_up * r_sw_up + vsd_casc_up);
    i_up = square_law(beta1, vov1, p_.lambda, vsd1);

    // --- DN branch (NMOS, devices 6-11) ---------------------------------------
    const double beta6 = beta(6, p_.beta_n);
    const double vgs6 = vt(6, p_.vt_n) + std::sqrt(2.0 * i_ref_dn / beta6) +
                        0.02 * p_.sigma_vt * x[8] +
                        0.05 * p_.sigma_beta * x[11];
    const double beta7 = beta(7, p_.beta_n);
    const double vov7 = vgs6 - vt(7, p_.vt_n);
    const double r_sw_dn =
        p_.r_switch * (1.0 + 0.3 * p_.sigma_beta * (x[10] + x[15]));
    const double vds_casc_dn =
        std::sqrt(2.0 * i_ref_dn / beta(9, p_.beta_n)) + 0.5 * p_.sigma_vt * x[9];
    double i_dn = square_law(beta7, vov7, p_.lambda, v_out);
    const double vds7 = v_out - (i_dn * r_sw_dn + vds_casc_dn);
    i_dn = square_law(beta7, vov7, p_.lambda, vds7);

    return {i_up, i_dn};
}

double ChargePumpModel::solve_vout(std::span<const double> x) const {
    // KCL residual at the output node; monotone decreasing in v, so
    // bisection is safe.
    const double v_mid = 0.5 * p_.vdd;
    const auto residual = [&](double v) {
        const auto bc = branch_currents(x, v);
        return bc.i_up - bc.i_dn - (v - v_mid) / p_.r_load;
    };
    double lo = 0.02;
    double hi = p_.vdd - 0.02;
    double f_lo = residual(lo);
    double f_hi = residual(hi);
    if (f_lo < 0.0) return lo;   // degenerate corner: UP branch dead
    if (f_hi > 0.0) return hi;   // degenerate corner: DN branch dead
    for (int it = 0; it < 60; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double fm = residual(mid);
        if (fm > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double ChargePumpModel::output_voltage(std::span<const double> x) const {
    return solve_vout(x);
}

double ChargePumpModel::mismatch_amps(std::span<const double> x) const {
    const double v = solve_vout(x);
    const auto bc = branch_currents(x, v);
    return std::abs(bc.i_up - bc.i_dn);
}

}  // namespace nofis::circuit
