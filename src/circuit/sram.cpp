#include "circuit/sram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace nofis::circuit {

double SramCellModel::half_cell_output(double vin, double d_pd, double d_pu,
                                       double d_ax) const {
    // Nodes: 1 = forced input, 2 = storage/output node, 3 = VDD rail
    // (also serves as the precharged bitline and the asserted wordline).
    Netlist net(3);
    net.add(VoltageSource{1, 0, vin});
    net.add(VoltageSource{3, 0, p_.vdd});

    NonlinearCircuit circuit(std::move(net));
    // Pull-down NMOS: drain = storage, gate = input, source = ground.
    circuit.add(Mosfet{2, 1, 0, p_.beta_n, p_.vt_n + d_pd, p_.lambda, false});
    // Pull-up PMOS: drain = storage, gate = input, source = VDD.
    circuit.add(Mosfet{2, 1, 3, p_.beta_p, p_.vt_p + d_pu, p_.lambda, true});
    // Access NMOS: bitline (VDD) to storage, gate = wordline (VDD).
    circuit.add(Mosfet{3, 3, 2, p_.beta_ax, p_.vt_n + d_ax, p_.lambda, false});

    // Warm start at mid-rail for reliable Newton convergence across the
    // VTC's high-gain transition.
    std::vector<double> guess = {vin, 0.5 * p_.vdd, p_.vdd};
    const auto solution = circuit.solve_dc({}, guess);
    return circuit.voltage(solution, 2);
}

std::vector<double> SramCellModel::read_vtc(std::span<const double> vin_grid,
                                            double d_pd, double d_pu,
                                            double d_ax) const {
    std::vector<double> out;
    out.reserve(vin_grid.size());
    for (double v : vin_grid)
        out.push_back(half_cell_output(v, d_pd, d_pu, d_ax));
    return out;
}

double SramCellModel::static_noise_margin(std::span<const double> x) const {
    if (x.size() != kNumVariables)
        throw std::invalid_argument("SramCellModel: expects 6 variables");
    const double s = p_.sigma_vt;

    // Voltage grid for both half-cell VTCs.
    const std::size_t n = p_.vtc_points;
    std::vector<double> grid(n);
    for (std::size_t i = 0; i < n; ++i)
        grid[i] = p_.vdd * static_cast<double>(i) /
                  static_cast<double>(n - 1);
    // Curve A: v2 = f_L(v1); curve B: v1 = f_R(v2).
    const auto f_left = read_vtc(grid, s * x[0], s * x[1], s * x[2]);
    const auto f_right = read_vtc(grid, s * x[3], s * x[4], s * x[5]);

    // Read-VTCs are monotone decreasing, so curve B (x = f_R(y)) inverts to
    // a single-valued, monotone-decreasing y = f_R⁻¹(x). A square of side s
    // fits in the lobe where curve A runs above curve B iff
    //     ∃x : f_L(x) − f_R⁻¹(x + s) ≥ s
    // (bottom-right corner on B, top-left corner on A); symmetrically for
    // the other lobe. Each lobe's SNM is found by bisection on s (the
    // fit predicate is monotone in s); the cell SNM is the smaller lobe.
    // y = f_R⁻¹(x) from the descending samples (x = f_right[j],
    // y = grid[j]); NaN outside curve B's x-range so that fit comparisons
    // against out-of-domain points correctly fail (squares must lie inside
    // the butterfly eye, not in invented clamp regions).
    const auto f_right_inv = [&](double at) {
        if (at > f_right.front() || at < f_right.back())
            return std::numeric_limits<double>::quiet_NaN();
        std::size_t lo = 0;
        std::size_t hi = f_right.size() - 1;
        while (hi - lo > 1) {
            const std::size_t mid = (lo + hi) / 2;
            (f_right[mid] > at ? lo : hi) = mid;
        }
        const double span = f_right[hi] - f_right[lo];
        const double t = span == 0.0 ? 0.0 : (at - f_right[lo]) / span;
        return grid[lo] + t * (grid[hi] - grid[lo]);
    };
    // y = f_L(x) by linear interpolation on the uniform input grid.
    const auto f_left_at = [&](double at) {
        const double pos = std::clamp(at, 0.0, p_.vdd) / p_.vdd *
                           static_cast<double>(n - 1);
        const auto lo = std::min<std::size_t>(
            static_cast<std::size_t>(pos), n - 2);
        const double t = pos - static_cast<double>(lo);
        return f_left[lo] + t * (f_left[lo + 1] - f_left[lo]);
    };

    const auto fits = [&](double s, bool lobe_a_above) {
        const std::size_t scan = 2 * n;
        for (std::size_t i = 0; i <= scan; ++i) {
            const double x0 = p_.vdd * static_cast<double>(i) /
                              static_cast<double>(scan);
            if (lobe_a_above) {
                // Both curves decrease, so over the square's x-extent
                // [x0, x0+s] the upper boundary (curve A) is lowest at the
                // right edge and the lower boundary (curve B) highest at
                // the left edge: fit ⟺ f_L(x0+s) − f_R⁻¹(x0) ≥ s.
                if (f_left_at(x0 + s) - f_right_inv(x0) >= s) return true;
            } else {
                if (f_right_inv(x0 + s) - f_left_at(x0) >= s) return true;
            }
        }
        return false;
    };

    const auto lobe_snm = [&](bool lobe_a_above) {
        double lo = 0.0;
        double hi = p_.vdd;
        if (!fits(1e-6, lobe_a_above)) return 0.0;
        for (int it = 0; it < 30; ++it) {
            const double mid = 0.5 * (lo + hi);
            (fits(mid, lobe_a_above) ? lo : hi) = mid;
        }
        return lo;
    };

    return std::min(lobe_snm(true), lobe_snm(false));
}

}  // namespace nofis::circuit
