#include "circuit/netlist.hpp"

#include <stdexcept>

namespace nofis::circuit {

void Netlist::check_node(NodeId n, const char* what) const {
    if (n > num_nodes_)
        throw std::invalid_argument(std::string("Netlist: node id out of "
                                                "range for ") +
                                    what);
}

void Netlist::add(Resistor r) {
    check_node(r.n1, "resistor");
    check_node(r.n2, "resistor");
    if (!(r.ohms > 0.0))
        throw std::invalid_argument("Netlist: resistance must be positive");
    resistors_.push_back(r);
}

void Netlist::add(Capacitor c) {
    check_node(c.n1, "capacitor");
    check_node(c.n2, "capacitor");
    if (!(c.farads > 0.0))
        throw std::invalid_argument("Netlist: capacitance must be positive");
    capacitors_.push_back(c);
}

void Netlist::add(CurrentSource i) {
    check_node(i.n1, "current source");
    check_node(i.n2, "current source");
    isources_.push_back(i);
}

std::size_t Netlist::add(VoltageSource v) {
    check_node(v.pos, "voltage source");
    check_node(v.neg, "voltage source");
    vsources_.push_back(v);
    return vsources_.size() - 1;
}

void Netlist::add(Vccs g) {
    check_node(g.out_p, "vccs");
    check_node(g.out_n, "vccs");
    check_node(g.ctrl_p, "vccs");
    check_node(g.ctrl_n, "vccs");
    vccs_.push_back(g);
}

}  // namespace nofis::circuit
