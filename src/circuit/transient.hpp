#pragma once

#include <functional>
#include <vector>

#include "circuit/mna.hpp"
#include "linalg/lu.hpp"

namespace nofis::circuit {

/// Linear transient analysis of an MNA system with the backward-Euler
/// companion method:
///     (G + C/h) x_{k+1} = b(t_{k+1}) + (C/h) x_k.
/// The system matrix is factored once per run (fixed step size), so each
/// step costs one O(n²) solve. Supports time-varying independent sources
/// through a per-source waveform callback.
class TransientAnalysis {
public:
    struct Config {
        double t_stop = 1e-3;
        double dt = 1e-6;
        /// Start from the DC operating point (otherwise from zero state).
        bool start_from_dc = true;
    };

    /// `waveforms[k]`, when present, replaces voltage source k's value with
    /// waveforms[k](t) at each step (current sources keep their DC value).
    TransientAnalysis(const Netlist& netlist, Config cfg);

    /// Scales voltage source `k`'s excitation by w(t) during the run.
    void set_source_waveform(std::size_t vsource,
                             std::function<double(double)> w);

    struct Result {
        std::vector<double> time;
        /// node_voltage[step][node-1]; branch currents appended after nodes.
        std::vector<std::vector<double>> state;

        double voltage(std::size_t step, NodeId node) const {
            return node == 0 ? 0.0 : state.at(step).at(node - 1);
        }
    };

    /// Runs the simulation and returns the sampled trajectory.
    Result run() const;

private:
    const Netlist* netlist_;
    Config cfg_;
    std::vector<std::function<double(double)>> waveforms_;
};

}  // namespace nofis::circuit
