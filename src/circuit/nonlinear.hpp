#pragma once

#include <vector>

#include "circuit/netlist.hpp"
#include "linalg/matrix.hpp"

namespace nofis::circuit {

/// Level-1 (square-law) MOSFET with channel-length modulation.
/// NMOS: I_D flows drain->source when V_GS > VT. PMOS is handled by the
/// usual sign flips (pass `is_pmos = true` and a positive `vt` magnitude).
struct Mosfet {
    NodeId drain;
    NodeId gate;
    NodeId source;
    double beta;    ///< transconductance factor [A/V²]
    double vt;      ///< threshold magnitude [V]
    double lambda;  ///< channel-length modulation [1/V]
    bool is_pmos = false;
};

/// Shockley diode, linearised per Newton iteration.
struct Diode {
    NodeId anode;
    NodeId cathode;
    double i_sat = 1e-14;  ///< saturation current [A]
    double v_thermal = 0.02585;
};

/// Operating-point view of one MOSFET (diagnostics / tests).
struct MosfetOp {
    double id;   ///< drain current [A]
    double vgs;  ///< gate-source voltage (sign-adjusted for PMOS)
    double vds;
    enum class Region { kCutoff, kTriode, kSaturation } region;
};

/// Nonlinear DC solver: a linear Netlist (R, I, V sources, VCCS) plus
/// nonlinear devices, solved with damped Newton–Raphson on the MNA
/// equations. Each iteration stamps the devices' small-signal companions
/// (gm, gds, I_eq) into a copy of the linear system and performs one LU
/// solve; voltage steps are clamped for robustness (source stepping is
/// unnecessary at these circuit sizes).
class NonlinearCircuit {
public:
    struct SolveOptions {
        std::size_t max_iterations = 100;
        double tolerance = 1e-9;     ///< max |Δv| convergence test [V]
        double damping_limit = 0.5;  ///< max per-iteration node update [V]
    };

    explicit NonlinearCircuit(Netlist linear_part);

    void add(Mosfet m);
    void add(Diode d);

    std::size_t num_mosfets() const noexcept { return mosfets_.size(); }

    /// Solves the DC operating point. `initial` (optional) seeds the node
    /// voltages; defaults to all-zero. Throws std::runtime_error when
    /// Newton fails to converge.
    std::vector<double> solve_dc(const SolveOptions& opts,
                                 std::span<const double> initial = {}) const;
    std::vector<double> solve_dc() const { return solve_dc(SolveOptions()); }

    /// Node voltage from a solution vector returned by solve_dc.
    double voltage(std::span<const double> solution, NodeId node) const;

    /// Operating point of MOSFET `index` at a solved state.
    MosfetOp mosfet_op(std::span<const double> solution,
                       std::size_t index) const;

    const Netlist& linear_part() const noexcept { return linear_; }
    Netlist& linear_part() noexcept { return linear_; }
    Mosfet& mosfet_at(std::size_t i) { return mosfets_.at(i); }

private:
    struct Companion {
        double gm;
        double gds;
        double i_eq;  ///< equivalent current source drain->source
    };
    static MosfetOp evaluate(const Mosfet& m, double vd, double vg, double vs);
    static Companion linearise(const Mosfet& m, double vd, double vg,
                               double vs);

    Netlist linear_;
    std::vector<Mosfet> mosfets_;
    std::vector<Diode> diodes_;
};

}  // namespace nofis::circuit
