#include "util/io_fault.hpp"

namespace nofis::util {

namespace {

/// splitmix64 finaliser — the same mixer testcases::FaultInjector uses, so
/// (seed, op index) yields an i.i.d.-quality uniform without mutable state.
std::uint64_t mix64(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double hash_uniform(std::uint64_t seed, std::uint64_t index,
                    std::uint64_t stream) noexcept {
    const std::uint64_t bits = mix64(mix64(seed ^ stream) ^ index);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// Distinct stream tags so write-op and read-op decisions never alias.
constexpr std::uint64_t kWriteStream = 0x77ULL;
constexpr std::uint64_t kReadStream = 0x72ULL;

std::atomic<IoFaultInjector*> g_injector{nullptr};

}  // namespace

IoFault IoFaultInjector::next_write_fault() const noexcept {
    const std::size_t index =
        write_ops_.fetch_add(1, std::memory_order_relaxed);
    const double u = hash_uniform(cfg_.seed, index, kWriteStream);
    double edge = cfg_.enospc_rate;
    if (u < edge) {
        enospc_.fetch_add(1, std::memory_order_relaxed);
        return IoFault::kEnospc;
    }
    edge += cfg_.torn_write_rate;
    if (u < edge) {
        torn_.fetch_add(1, std::memory_order_relaxed);
        return IoFault::kTornWrite;
    }
    edge += cfg_.corrupt_rate;
    if (u < edge) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return IoFault::kCorruptBit;
    }
    return IoFault::kNone;
}

IoFault IoFaultInjector::next_read_fault() const noexcept {
    const std::size_t index =
        read_ops_.fetch_add(1, std::memory_order_relaxed);
    const double u = hash_uniform(cfg_.seed, index, kReadStream);
    double edge = cfg_.short_read_rate;
    if (u < edge) {
        short_read_.fetch_add(1, std::memory_order_relaxed);
        return IoFault::kShortRead;
    }
    edge += cfg_.corrupt_rate;
    if (u < edge) {
        corrupt_.fetch_add(1, std::memory_order_relaxed);
        return IoFault::kCorruptBit;
    }
    return IoFault::kNone;
}

IoFaultInjector* io_fault_injector() noexcept {
    return g_injector.load(std::memory_order_relaxed);
}

void set_io_fault_injector(IoFaultInjector* injector) noexcept {
    g_injector.store(injector, std::memory_order_relaxed);
}

ScopedIoFaultInjector::ScopedIoFaultInjector(IoFaultInjector* injector)
    : previous_(g_injector.exchange(injector, std::memory_order_relaxed)) {}

ScopedIoFaultInjector::~ScopedIoFaultInjector() {
    g_injector.store(previous_, std::memory_order_relaxed);
}

}  // namespace nofis::util
