#pragma once

#include <ios>

namespace nofis::util {

/// RAII guard for a stream's format state. Anything that needs a specific
/// precision or set of flags on a caller-provided stream (the flow
/// serializer's setprecision(17), diagnostics' setprecision(4)) wraps the
/// write in one of these so the caller's formatting is untouched after the
/// call — previously those leaked into every subsequent << on the stream.
class IosStateGuard {
public:
    explicit IosStateGuard(std::ios_base& stream)
        : stream_(stream),
          flags_(stream.flags()),
          precision_(stream.precision()),
          width_(stream.width()) {}

    ~IosStateGuard() {
        stream_.flags(flags_);
        stream_.precision(precision_);
        stream_.width(width_);
    }

    IosStateGuard(const IosStateGuard&) = delete;
    IosStateGuard& operator=(const IosStateGuard&) = delete;

private:
    std::ios_base& stream_;
    std::ios_base::fmtflags flags_;
    std::streamsize precision_;
    std::streamsize width_;
};

}  // namespace nofis::util
