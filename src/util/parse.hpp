#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace nofis::util {

/// Strict numeric parsing for CLI flags. Unlike a bare strtoul/strtod with
/// a null endptr — which silently turns "--repeats abc" into 0 — these
/// reject anything that is not exactly one number:
///   * empty input and leading whitespace,
///   * a sign on unsigned values ("-3" wraps under strtoull; here it fails),
///   * trailing garbage ("12x", "3.5GB"),
///   * out-of-range magnitudes and non-finite doubles.
/// They return std::nullopt instead of erroring out so callers choose the
/// failure mode (the flag helpers in bench_common exit with a diagnostic).
std::optional<std::uint64_t> parse_u64(std::string_view s);
std::optional<double> parse_double(std::string_view s);

}  // namespace nofis::util
