#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace nofis::util {

/// fsyncs the file at `path` (opens a descriptor, fsyncs, closes). The data
/// must already be flushed to the kernel (stream flush / close); this pushes
/// it to stable storage. Throws std::runtime_error when the file cannot be
/// opened or the fsync fails.
void fsync_path(const std::string& path);

/// Best-effort fsync of `path`'s parent directory, making a just-renamed
/// entry durable. Failures are swallowed: some filesystems reject directory
/// fsync, and a missed directory sync degrades to "rename may be lost on
/// power cut" — never to a torn file.
void fsync_parent_dir(const std::string& path) noexcept;

/// All-or-nothing file replacement: buffer the contents in memory, then
/// commit() writes them to a temp file in the target's directory, fsyncs,
/// renames over the target, and fsyncs the directory. A crash at any point
/// leaves either the old file or the new one — never a truncated mix; an
/// abandoned AtomicFile (no commit) leaves the target untouched.
///
/// Consults the global util::io_fault_injector() on commit:
///   kEnospc     — throws before anything reaches the target; the previous
///                 file survives and no temp file is left behind.
///   kTornWrite  — persists only a prefix (simulating a crash mid-write
///                 followed by the rename), so readers must detect the
///                 damage by checksum.
///   kCorruptBit — flips one payload bit before writing.
class AtomicFile {
public:
    explicit AtomicFile(std::string path) : path_(std::move(path)) {}

    /// In-memory buffer; write the new contents here.
    std::ostream& stream() noexcept { return buffer_; }

    /// Durably replaces the target with the buffered contents. Throws
    /// std::runtime_error on any I/O failure (injected or real); the target
    /// is untouched unless the rename happened.
    void commit();

    const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    std::ostringstream buffer_;
};

/// One-shot convenience: atomic_write_file(p, s) == AtomicFile(p) << s,
/// commit().
void atomic_write_file(const std::string& path, std::string_view contents);

}  // namespace nofis::util
