#include "util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace nofis::util {

namespace {

bool leading_junk(std::string_view s, bool allow_sign) {
    if (s.empty()) return true;
    const unsigned char c0 = static_cast<unsigned char>(s.front());
    if (std::isspace(c0)) return true;  // strtoull/strtod would skip it
    if (!allow_sign && (s.front() == '-' || s.front() == '+')) return true;
    return false;
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view s) {
    if (leading_junk(s, /*allow_sign=*/false)) return std::nullopt;
    const std::string buf(s);
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (errno == ERANGE) return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

std::optional<double> parse_double(std::string_view s) {
    if (leading_junk(s, /*allow_sign=*/true)) return std::nullopt;
    const std::string buf(s);
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (errno == ERANGE || !std::isfinite(v)) return std::nullopt;
    return v;
}

}  // namespace nofis::util
