#pragma once

#include <atomic>
#include <cstdint>

namespace nofis::util {

/// Deterministic I/O fault injection for the durable-write paths (checkpoint
/// snapshots, evalcache disk logs, atomic metric/model exports). Mirrors
/// testcases::FaultInjector's contract for g-evaluations: every injection
/// decision is a pure hash of (seed, operation index), so a given write or
/// read number always faults the same way no matter how callers interleave.
///
/// Rates are per-operation probabilities evaluated in a fixed order (at most
/// one fault per operation). Write operations consult enospc / torn-write /
/// corrupt-bit; read operations consult short-read / corrupt-bit.
struct IoFaultConfig {
    double enospc_rate = 0.0;       ///< fail a write with an ENOSPC-style error
    double torn_write_rate = 0.0;   ///< persist only a prefix of the bytes
    double corrupt_rate = 0.0;      ///< flip one bit of the payload
    double short_read_rate = 0.0;   ///< truncate / fail a read back
    std::uint64_t seed = 0x10faa1ULL;

    bool any() const noexcept {
        return enospc_rate > 0.0 || torn_write_rate > 0.0 ||
               corrupt_rate > 0.0 || short_read_rate > 0.0;
    }
};

/// What a single I/O operation should do.
enum class IoFault {
    kNone,
    kEnospc,      ///< write path: throw before any byte reaches the target
    kTornWrite,   ///< write path: only a prefix of the bytes is persisted
    kCorruptBit,  ///< either path: one payload bit is flipped
    kShortRead,   ///< read path: the read comes back truncated / failed
};

/// Thread-safe deterministic injector. Instances keep an exact ledger of
/// what they injected so tests can assert count-for-count against the
/// recovery paths, exactly like FaultInjector's g ledger.
class IoFaultInjector {
public:
    explicit IoFaultInjector(IoFaultConfig cfg) : cfg_(cfg) {}

    /// Decides the fate of the next write operation (atomic-file commit or
    /// disk-log append). Consumes one write-op index.
    IoFault next_write_fault() const noexcept;
    /// Decides the fate of the next read-back operation. Consumes one
    /// read-op index.
    IoFault next_read_fault() const noexcept;

    const IoFaultConfig& config() const noexcept { return cfg_; }

    // --- exact injection ledger ------------------------------------------
    std::size_t write_ops() const noexcept {
        return write_ops_.load(std::memory_order_relaxed);
    }
    std::size_t read_ops() const noexcept {
        return read_ops_.load(std::memory_order_relaxed);
    }
    std::size_t injected_enospc() const noexcept {
        return enospc_.load(std::memory_order_relaxed);
    }
    std::size_t injected_torn_writes() const noexcept {
        return torn_.load(std::memory_order_relaxed);
    }
    std::size_t injected_corrupt() const noexcept {
        return corrupt_.load(std::memory_order_relaxed);
    }
    std::size_t injected_short_reads() const noexcept {
        return short_read_.load(std::memory_order_relaxed);
    }
    std::size_t injected_total() const noexcept {
        return injected_enospc() + injected_torn_writes() +
               injected_corrupt() + injected_short_reads();
    }

private:
    IoFaultConfig cfg_;
    mutable std::atomic<std::size_t> write_ops_{0};
    mutable std::atomic<std::size_t> read_ops_{0};
    mutable std::atomic<std::size_t> enospc_{0};
    mutable std::atomic<std::size_t> torn_{0};
    mutable std::atomic<std::size_t> corrupt_{0};
    mutable std::atomic<std::size_t> short_read_{0};
};

/// Process-global injector consulted by AtomicFile and evalcache::DiskLog.
/// nullptr (the default) is the zero-cost off mode: one relaxed load and no
/// hashing on every durable write. Not owned; the installer keeps it alive.
IoFaultInjector* io_fault_injector() noexcept;
void set_io_fault_injector(IoFaultInjector* injector) noexcept;

/// RAII installer: swaps the global injector in on construction and restores
/// the previous one on destruction (tests and FaultInjector use this so a
/// throwing test body can never leak faults into later tests).
class ScopedIoFaultInjector {
public:
    explicit ScopedIoFaultInjector(IoFaultInjector* injector);
    ~ScopedIoFaultInjector();
    ScopedIoFaultInjector(const ScopedIoFaultInjector&) = delete;
    ScopedIoFaultInjector& operator=(const ScopedIoFaultInjector&) = delete;

private:
    IoFaultInjector* previous_;
};

}  // namespace nofis::util
