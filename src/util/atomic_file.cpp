#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/io_fault.hpp"

namespace nofis::util {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("atomic write: " + what);
}

int open_readonly(const std::string& path) noexcept {
    return ::open(path.c_str(), O_RDONLY);
}

}  // namespace

void fsync_path(const std::string& path) {
    const int fd = open_readonly(path);
    if (fd < 0)
        fail("cannot open '" + path + "' for fsync (" +
             std::strerror(errno) + ")");
    const int rc = ::fsync(fd);
    const int saved = errno;
    ::close(fd);
    if (rc != 0)
        fail("fsync of '" + path + "' failed (" + std::strerror(saved) + ")");
}

void fsync_parent_dir(const std::string& path) noexcept {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path parent = fs::path(path).parent_path();
    if (parent.empty()) parent = ".";
    const int fd = open_readonly(parent.string());
    if (fd < 0) return;
    ::fsync(fd);  // best effort; see header
    ::close(fd);
}

void AtomicFile::commit() {
    namespace fs = std::filesystem;
    std::string contents = std::move(buffer_).str();
    buffer_.str(std::string());

    std::size_t persist_bytes = contents.size();
    if (IoFaultInjector* inj = io_fault_injector()) {
        switch (inj->next_write_fault()) {
            case IoFault::kEnospc:
                fail("injected ENOSPC writing '" + path_ + "'");
            case IoFault::kTornWrite:
                // Simulates a crash mid-write that still reached the target:
                // only a prefix survives, so readers must catch it by
                // checksum. Half the payload keeps the header readable.
                persist_bytes = contents.size() / 2;
                break;
            case IoFault::kCorruptBit:
                if (!contents.empty()) {
                    const std::size_t bit =
                        (inj->config().seed ^ contents.size()) %
                        (contents.size() * 8);
                    contents[bit / 8] ^= static_cast<char>(1u << (bit % 8));
                }
                break;
            case IoFault::kShortRead:
            case IoFault::kNone:
                break;
        }
    }

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) fail("cannot create temp file '" + tmp + "'");
        os.write(contents.data(),
                 static_cast<std::streamsize>(persist_bytes));
        os.flush();
        if (!os) {
            os.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            fail("write to temp file '" + tmp + "' failed");
        }
    }
    try {
        fsync_path(tmp);
    } catch (...) {
        std::error_code ec;
        fs::remove(tmp, ec);
        throw;
    }
    std::error_code ec;
    fs::rename(tmp, path_, ec);
    if (ec) {
        std::error_code ec2;
        fs::remove(tmp, ec2);
        fail("rename '" + tmp + "' -> '" + path_ + "' failed (" +
             ec.message() + ")");
    }
    fsync_parent_dir(path_);
}

void atomic_write_file(const std::string& path, std::string_view contents) {
    AtomicFile file(path);
    file.stream().write(contents.data(),
                        static_cast<std::streamsize>(contents.size()));
    file.commit();
}

}  // namespace nofis::util
