#include "autodiff/var.hpp"

#include <stdexcept>
#include <unordered_set>

namespace nofis::autodiff {

void Node::ensure_grad() {
    if (!grad_ready || grad.rows() != value.rows() ||
        grad.cols() != value.cols()) {
        grad = linalg::Matrix(value.rows(), value.cols());
        grad_ready = true;
    }
}

Var::Var(linalg::Matrix value, bool requires_grad)
    : node_(std::make_shared<Node>(std::move(value), requires_grad)) {}

void Var::zero_grad() {
    node_->grad = linalg::Matrix(node_->value.rows(), node_->value.cols());
    node_->grad_ready = true;
}

namespace {

/// Iterative post-order DFS producing a reverse-topological visit order.
void topo_sort(const std::shared_ptr<Node>& root,
               std::vector<Node*>& order) {
    std::unordered_set<Node*> visited;
    std::vector<std::pair<Node*, std::size_t>> stack;
    stack.emplace_back(root.get(), 0);
    visited.insert(root.get());
    while (!stack.empty()) {
        auto& [node, next_child] = stack.back();
        if (next_child < node->parents.size()) {
            Node* child = node->parents[next_child].get();
            ++next_child;
            if (visited.insert(child).second) stack.emplace_back(child, 0);
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }
}

}  // namespace

void Var::backward() const {
    if (!node_) throw std::logic_error("Var::backward on empty Var");
    if (node_->value.rows() != 1 || node_->value.cols() != 1)
        throw std::logic_error("Var::backward requires a scalar (1x1) output");

    std::vector<Node*> order;
    topo_sort(node_, order);

    // Gradient buffers only where gradients can flow — frozen leaves stay
    // untouched (and unallocated). Leaf parameters keep whatever was
    // accumulated before the sweep unless the caller zeroed them explicitly
    // — standard accumulate semantics.
    for (Node* n : order)
        if (n->requires_grad) n->ensure_grad();

    node_->ensure_grad();
    node_->grad(0, 0) += 1.0;

    // `order` is post-order (leaves first); iterate in reverse so each node
    // is processed after everything that consumes it.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node* n = *it;
        if (n->backward) n->backward(*n);
    }
}

}  // namespace nofis::autodiff
