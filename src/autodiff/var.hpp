#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"

namespace nofis::autodiff {

/// One node of the reverse-mode computation graph.
///
/// `value` is the forward result; `grad` accumulates ∂(scalar output)/∂value
/// during the backward sweep. `backward` pushes this node's grad into its
/// parents' grads (chain rule). Nodes are reference-counted so a graph lives
/// exactly as long as some Var still points into it.
struct Node {
    linalg::Matrix value;
    linalg::Matrix grad;
    bool requires_grad = false;
    bool grad_ready = false;  // grad matrix allocated & zeroed for this sweep
    std::vector<std::shared_ptr<Node>> parents;
    std::function<void(Node&)> backward;  // may be empty for leaves

    explicit Node(linalg::Matrix v, bool req)
        : value(std::move(v)), requires_grad(req) {}

    void ensure_grad();
};

/// Value-semantic handle to a computation-graph node.
///
/// A `Var` either wraps a leaf (input data or trainable parameter) or the
/// result of an op from ops.hpp. Calling `backward()` on a 1x1 result runs
/// the reverse sweep and deposits gradients on every reachable leaf with
/// `requires_grad() == true`.
class Var {
public:
    Var() = default;

    /// Leaf node. `requires_grad = true` marks a trainable parameter.
    explicit Var(linalg::Matrix value, bool requires_grad = false);

    /// Internal: wrap an existing node (used by ops).
    explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

    bool valid() const noexcept { return node_ != nullptr; }

    const linalg::Matrix& value() const { return node_->value; }
    /// Mutable access for optimizers (leaf parameters only).
    linalg::Matrix& mutable_value() { return node_->value; }

    const linalg::Matrix& grad() const { return node_->grad; }
    bool requires_grad() const noexcept { return node_->requires_grad; }
    void set_requires_grad(bool v) noexcept { node_->requires_grad = v; }

    std::size_t rows() const { return node_->value.rows(); }
    std::size_t cols() const { return node_->value.cols(); }

    /// Zeroes this node's gradient buffer (parameters between steps).
    void zero_grad();

    /// Reverse-mode sweep from this node; requires a 1x1 (scalar) value.
    /// Seeds d(out)/d(out) = 1 and visits the graph in reverse topological
    /// order.
    void backward() const;

    std::shared_ptr<Node> node() const { return node_; }

private:
    std::shared_ptr<Node> node_;
};

}  // namespace nofis::autodiff
