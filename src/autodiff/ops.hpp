#pragma once

#include <span>
#include <vector>

#include "autodiff/var.hpp"

namespace nofis::autodiff {

/// Reverse-mode ops over Matrix-valued Vars.
///
/// Every op returns a fresh Var whose node records parents and a backward
/// closure. Gradient flow is pruned automatically: a result requires grad
/// only if some parent does, and the backward closure only deposits into
/// parents that require grad — this is what implements the paper's
/// freeze-earlier-blocks training (frozen parameters simply opt out).

// --- binary ------------------------------------------------------------------
Var matmul(const Var& a, const Var& b);
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
/// Element-wise (Hadamard) product.
Var mul(const Var& a, const Var& b);
/// x + bias with bias (1 x cols) broadcast over rows.
Var add_bias(const Var& x, const Var& bias);

// --- unary / scalar ------------------------------------------------------------
Var neg(const Var& a);
Var scale(const Var& a, double s);
Var add_const(const Var& a, double c);
Var tanh_v(const Var& a);
Var sigmoid_v(const Var& a);
Var relu_v(const Var& a);
Var leaky_relu_v(const Var& a, double slope = 0.01);
Var exp_v(const Var& a);
/// Natural log; caller guarantees positive inputs.
Var log_v(const Var& a);
Var softplus_v(const Var& a);
Var square_v(const Var& a);
/// Element-wise product with a constant (non-differentiated) matrix.
Var hadamard_const(const Var& a, const linalg::Matrix& c);

// --- fused coupling transforms -------------------------------------------------
/// Differentiable monotone rational-quadratic spline transform (DESIGN.md
/// §14). `xb` (n x nb) holds the transformed coordinates; `h`
/// (n x nb·(3·num_bins+1)) the raw conditioner output, one param group per
/// column of xb. Returns y (n x nb) and the per-row log|det J| (n x 1).
/// Values come from the dispatched kernels::rqs_fwd_rows, so the tape and
/// value paths agree bitwise; the backward pass is the analytic
/// kernels::rqs_bwd_rows (property-tested against finite differences).
struct RqsForward {
    Var y;
    Var log_det;
};
RqsForward rqs_forward(const Var& xb, const Var& h, std::size_t num_bins,
                       double tail_bound);

// --- reductions ----------------------------------------------------------------
/// Sum of all elements -> 1x1.
Var sum(const Var& a);
/// Mean of all elements -> 1x1.
Var mean(const Var& a);
/// Row-wise sums -> (rows x 1).
Var row_sums(const Var& a);

// --- structural ------------------------------------------------------------------
/// Copy of the columns selected by idx (gradient scatters back).
Var select_cols(const Var& a, std::span<const std::size_t> idx);
/// Builds an (rows x total_cols) matrix placing a's columns at idx_a and b's
/// at idx_b; the two index sets must partition [0, total_cols).
Var combine_cols(const Var& a, std::span<const std::size_t> idx_a,
                 const Var& b, std::span<const std::size_t> idx_b,
                 std::size_t total_cols);

/// <a, c> = Σ_ij a_ij c_ij as a 1x1 Var. The constant c is typically an
/// externally-computed gradient (e.g. ∂/∂z of a black-box tempered target),
/// making this the injection point for non-graph gradient information:
/// d(result)/da = c exactly.
Var dot_constant(const Var& a, const linalg::Matrix& c);

}  // namespace nofis::autodiff
