#include "autodiff/gradcheck.hpp"

#include <algorithm>
#include <cmath>

namespace nofis::autodiff {

GradCheckResult grad_check(const std::function<Var(const Var&)>& f,
                           const linalg::Matrix& input, double eps,
                           double tol) {
    // Analytic gradient.
    Var x(input, /*requires_grad=*/true);
    Var out = f(x);
    out.backward();
    const linalg::Matrix analytic = x.grad();

    GradCheckResult res;
    linalg::Matrix probe = input;
    for (std::size_t i = 0; i < probe.size(); ++i) {
        const double orig = probe.flat()[i];
        probe.flat()[i] = orig + eps;
        const double fp = f(Var(probe)).value()(0, 0);
        probe.flat()[i] = orig - eps;
        const double fm = f(Var(probe)).value()(0, 0);
        probe.flat()[i] = orig;

        const double numeric = (fp - fm) / (2.0 * eps);
        const double a = analytic.flat()[i];
        const double abs_err = std::abs(a - numeric);
        const double rel_err =
            abs_err / std::max({1.0, std::abs(a), std::abs(numeric)});
        res.max_abs_error = std::max(res.max_abs_error, abs_err);
        res.max_rel_error = std::max(res.max_rel_error, rel_err);
    }
    res.passed = res.max_rel_error <= tol;
    return res;
}

}  // namespace nofis::autodiff
