#pragma once

#include <functional>

#include "autodiff/var.hpp"

namespace nofis::autodiff {

/// Result of a finite-difference gradient verification.
struct GradCheckResult {
    double max_abs_error = 0.0;   // max |analytic - numeric|
    double max_rel_error = 0.0;   // max scaled error
    bool passed = false;
};

/// Verifies the reverse-mode gradient of `f` with respect to `input` by
/// central differences.
///
/// `f` must build a fresh graph from the Var it is given and return a scalar
/// (1x1) Var. `input` supplies the evaluation point; every element is
/// perturbed by ±eps. Passing tolerance is on the *scaled* error
/// |a - n| / max(1, |a|, |n|) <= tol.
GradCheckResult grad_check(
    const std::function<Var(const Var&)>& f, const linalg::Matrix& input,
    double eps = 1e-5, double tol = 1e-6);

}  // namespace nofis::autodiff
