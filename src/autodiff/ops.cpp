#include "autodiff/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/kernels/kernels.hpp"
#include "linalg/kernels/scalar_math.hpp"

namespace nofis::autodiff {

namespace {

using linalg::Matrix;

/// Creates the result node; wires parents; only installs `bw` when gradient
/// flow is actually needed.
template <typename Backward>
Var make_op(Matrix value, std::vector<std::shared_ptr<Node>> parents,
            Backward&& bw) {
    bool req = false;
    for (const auto& p : parents) req = req || p->requires_grad;
    auto node = std::make_shared<Node>(std::move(value), req);
    node->parents = std::move(parents);
    if (req) node->backward = std::forward<Backward>(bw);
    return Var(node);
}

/// Adds `delta` into `parent`'s grad if that parent participates in
/// differentiation.
void accumulate(Node& parent, const Matrix& delta) {
    if (!parent.requires_grad) return;
    parent.ensure_grad();
    parent.grad += delta;
}

void check_same_shape(const Var& a, const Var& b, const char* op) {
    if (a.rows() != b.rows() || a.cols() != b.cols())
        throw std::invalid_argument(std::string(op) + ": shape mismatch");
}

}  // namespace

Var matmul(const Var& a, const Var& b) {
    if (a.cols() != b.rows())
        throw std::invalid_argument("matmul: inner dimension mismatch");
    auto pa = a.node();
    auto pb = b.node();
    return make_op(a.value().matmul(b.value()), {pa, pb},
                   [pa, pb](Node& self) {
                       if (pa->requires_grad)
                           accumulate(*pa,
                                      self.grad.matmul(pb->value.transposed()));
                       if (pb->requires_grad)
                           accumulate(*pb,
                                      pa->value.transposed().matmul(self.grad));
                   });
}

Var add(const Var& a, const Var& b) {
    check_same_shape(a, b, "add");
    auto pa = a.node();
    auto pb = b.node();
    return make_op(a.value() + b.value(), {pa, pb}, [pa, pb](Node& self) {
        accumulate(*pa, self.grad);
        accumulate(*pb, self.grad);
    });
}

Var sub(const Var& a, const Var& b) {
    check_same_shape(a, b, "sub");
    auto pa = a.node();
    auto pb = b.node();
    return make_op(a.value() - b.value(), {pa, pb}, [pa, pb](Node& self) {
        accumulate(*pa, self.grad);
        if (pb->requires_grad) accumulate(*pb, -self.grad);
    });
}

Var mul(const Var& a, const Var& b) {
    check_same_shape(a, b, "mul");
    auto pa = a.node();
    auto pb = b.node();
    return make_op(a.value().hadamard(b.value()), {pa, pb},
                   [pa, pb](Node& self) {
                       if (pa->requires_grad)
                           accumulate(*pa, self.grad.hadamard(pb->value));
                       if (pb->requires_grad)
                           accumulate(*pb, self.grad.hadamard(pa->value));
                   });
}

Var add_bias(const Var& x, const Var& bias) {
    if (bias.rows() != 1 || bias.cols() != x.cols())
        throw std::invalid_argument("add_bias: bias must be 1 x cols(x)");
    auto px = x.node();
    auto pb = bias.node();
    return make_op(x.value().add_row_broadcast(bias.value()), {px, pb},
                   [px, pb](Node& self) {
                       accumulate(*px, self.grad);
                       if (pb->requires_grad)
                           accumulate(*pb, self.grad.col_sums());
                   });
}

Var neg(const Var& a) { return scale(a, -1.0); }

Var scale(const Var& a, double s) {
    auto pa = a.node();
    return make_op(a.value() * s, {pa}, [pa, s](Node& self) {
        accumulate(*pa, self.grad * s);
    });
}

Var add_const(const Var& a, double c) {
    auto pa = a.node();
    return make_op(a.value().map([c](double v) { return v + c; }), {pa},
                   [pa](Node& self) { accumulate(*pa, self.grad); });
}

Var tanh_v(const Var& a) {
    auto pa = a.node();
    Matrix y(a.rows(), a.cols());
    linalg::kernels::ew_tanh(a.value().data(), y.data(), y.size());
    auto node = std::make_shared<Node>(std::move(y), pa->requires_grad);
    node->parents = {pa};
    if (node->requires_grad) {
        node->backward = [pa](Node& self) {
            Matrix d(self.value.rows(), self.value.cols());
            linalg::kernels::ew_tanh_bwd(self.value.data(), self.grad.data(),
                                         d.data(), d.size());
            accumulate(*pa, d);
        };
    }
    return Var(node);
}

Var sigmoid_v(const Var& a) {
    auto pa = a.node();
    // Same k_sigmoid as the fused kernels so the tape and value paths
    // agree bitwise regardless of kernel flavour.
    Matrix y = a.value().map(linalg::kernels::k_sigmoid);
    auto node = std::make_shared<Node>(std::move(y), pa->requires_grad);
    node->parents = {pa};
    if (node->requires_grad) {
        node->backward = [pa](Node& self) {
            Matrix d(self.value.rows(), self.value.cols());
            for (std::size_t i = 0; i < d.size(); ++i) {
                const double s = self.value.flat()[i];
                d.flat()[i] = self.grad.flat()[i] * s * (1.0 - s);
            }
            accumulate(*pa, d);
        };
    }
    return Var(node);
}

Var relu_v(const Var& a) {
    auto pa = a.node();
    return make_op(a.value().map([](double v) { return v > 0.0 ? v : 0.0; }),
                   {pa}, [pa](Node& self) {
                       Matrix d(self.grad);
                       for (std::size_t i = 0; i < d.size(); ++i)
                           if (pa->value.flat()[i] <= 0.0) d.flat()[i] = 0.0;
                       accumulate(*pa, d);
                   });
}

Var leaky_relu_v(const Var& a, double slope) {
    auto pa = a.node();
    return make_op(
        a.value().map([slope](double v) { return v > 0.0 ? v : slope * v; }),
        {pa}, [pa, slope](Node& self) {
            Matrix d(self.grad);
            for (std::size_t i = 0; i < d.size(); ++i)
                if (pa->value.flat()[i] <= 0.0) d.flat()[i] *= slope;
            accumulate(*pa, d);
        });
}

Var exp_v(const Var& a) {
    auto pa = a.node();
    Matrix y(a.rows(), a.cols());
    linalg::kernels::ew_exp(a.value().data(), y.data(), y.size());
    auto node = std::make_shared<Node>(std::move(y), pa->requires_grad);
    node->parents = {pa};
    if (node->requires_grad) {
        node->backward = [pa](Node& self) {
            accumulate(*pa, self.grad.hadamard(self.value));
        };
    }
    return Var(node);
}

Var log_v(const Var& a) {
    auto pa = a.node();
    return make_op(a.value().map([](double v) { return std::log(v); }), {pa},
                   [pa](Node& self) {
                       Matrix d(self.grad.rows(), self.grad.cols());
                       for (std::size_t i = 0; i < d.size(); ++i)
                           d.flat()[i] =
                               self.grad.flat()[i] / pa->value.flat()[i];
                       accumulate(*pa, d);
                   });
}

Var softplus_v(const Var& a) {
    auto pa = a.node();
    // Numerically stable: log(1+e^x) = max(x,0) + log1p(e^{-|x|}).
    return make_op(
        a.value().map([](double v) {
            return std::max(v, 0.0) + std::log1p(std::exp(-std::abs(v)));
        }),
        {pa}, [pa](Node& self) {
            Matrix d(self.grad.rows(), self.grad.cols());
            for (std::size_t i = 0; i < d.size(); ++i) {
                const double x = pa->value.flat()[i];
                d.flat()[i] = self.grad.flat()[i] / (1.0 + std::exp(-x));
            }
            accumulate(*pa, d);
        });
}

Var square_v(const Var& a) {
    auto pa = a.node();
    return make_op(a.value().map([](double v) { return v * v; }), {pa},
                   [pa](Node& self) {
                       Matrix d = self.grad.hadamard(pa->value) * 2.0;
                       accumulate(*pa, d);
                   });
}

Var hadamard_const(const Var& a, const linalg::Matrix& c) {
    if (a.rows() != c.rows() || a.cols() != c.cols())
        throw std::invalid_argument("hadamard_const: shape mismatch");
    auto pa = a.node();
    return make_op(a.value().hadamard(c), {pa}, [pa, c](Node& self) {
        accumulate(*pa, self.grad.hadamard(c));
    });
}

RqsForward rqs_forward(const Var& xb, const Var& h, std::size_t num_bins,
                       double tail_bound) {
    namespace kernels = linalg::kernels;
    const std::size_t n = xb.rows();
    const std::size_t nb = xb.cols();
    const std::size_t group = 3 * num_bins + 1;
    if (num_bins == 0 || num_bins > kernels::kMaxRqsBins)
        throw std::invalid_argument("rqs_forward: bad num_bins");
    if (h.rows() != n || h.cols() != nb * group)
        throw std::invalid_argument("rqs_forward: conditioner shape mismatch");

    auto px = xb.node();
    auto ph = h.node();
    // Compact layout: every column is transformed, so idx_b is the identity.
    std::vector<std::size_t> idx(nb);
    for (std::size_t j = 0; j < nb; ++j) idx[j] = j;
    Matrix y(n, nb);
    Matrix ld(n, 1);
    kernels::rqs_fwd_rows(px->value.data(), ph->value.data(), idx.data(), nb,
                          num_bins, tail_bound, nb, y.data(), ld.data(), 0, n);

    const bool req = px->requires_grad || ph->requires_grad;
    auto ynode = std::make_shared<Node>(std::move(y), req);
    auto lnode = std::make_shared<Node>(std::move(ld), req);
    ynode->parents = {px, ph};
    lnode->parents = {px, ph};
    if (req) {
        // The kernel backward takes both upstream grads at once; each output
        // node contributes its own grad with the other slot zeroed, and the
        // shared parents accumulate both contributions.
        auto bwd = [px, ph, num_bins, tail_bound, nb](const Matrix& gy,
                                                      const Matrix& gld) {
            Matrix gx(px->value.rows(), px->value.cols());
            Matrix gh(ph->value.rows(), ph->value.cols());
            linalg::kernels::rqs_bwd_rows(
                px->value.data(), ph->value.data(), nb, num_bins, tail_bound,
                gy.data(), gld.data(), gx.data(), gh.data(), 0,
                px->value.rows());
            accumulate(*px, gx);
            accumulate(*ph, gh);
        };
        ynode->backward = [bwd, n](Node& self) {
            bwd(self.grad, Matrix(n, 1));
        };
        lnode->backward = [bwd, n, nb](Node& self) {
            bwd(Matrix(n, nb), self.grad);
        };
    }
    return {Var(ynode), Var(lnode)};
}

Var sum(const Var& a) {
    auto pa = a.node();
    Matrix s(1, 1);
    s(0, 0) = a.value().sum();
    return make_op(std::move(s), {pa}, [pa](Node& self) {
        accumulate(*pa, Matrix(pa->value.rows(), pa->value.cols(),
                               self.grad(0, 0)));
    });
}

Var mean(const Var& a) {
    auto pa = a.node();
    Matrix s(1, 1);
    s(0, 0) = a.value().mean();
    const double inv_n = 1.0 / static_cast<double>(a.value().size());
    return make_op(std::move(s), {pa}, [pa, inv_n](Node& self) {
        accumulate(*pa, Matrix(pa->value.rows(), pa->value.cols(),
                               self.grad(0, 0) * inv_n));
    });
}

Var row_sums(const Var& a) {
    auto pa = a.node();
    return make_op(a.value().row_sums(), {pa}, [pa](Node& self) {
        Matrix d(pa->value.rows(), pa->value.cols());
        for (std::size_t r = 0; r < d.rows(); ++r)
            for (std::size_t c = 0; c < d.cols(); ++c)
                d(r, c) = self.grad(r, 0);
        accumulate(*pa, d);
    });
}

Var select_cols(const Var& a, std::span<const std::size_t> idx) {
    auto pa = a.node();
    std::vector<std::size_t> idx_copy(idx.begin(), idx.end());
    return make_op(a.value().select_cols(idx), {pa},
                   [pa, idx_copy](Node& self) {
                       Matrix d(pa->value.rows(), pa->value.cols());
                       for (std::size_t r = 0; r < d.rows(); ++r)
                           for (std::size_t j = 0; j < idx_copy.size(); ++j)
                               d(r, idx_copy[j]) += self.grad(r, j);
                       accumulate(*pa, d);
                   });
}

Var combine_cols(const Var& a, std::span<const std::size_t> idx_a,
                 const Var& b, std::span<const std::size_t> idx_b,
                 std::size_t total_cols) {
    if (a.rows() != b.rows())
        throw std::invalid_argument("combine_cols: row mismatch");
    if (idx_a.size() != a.cols() || idx_b.size() != b.cols() ||
        idx_a.size() + idx_b.size() != total_cols)
        throw std::invalid_argument("combine_cols: index sizes inconsistent");
    auto pa = a.node();
    auto pb = b.node();
    Matrix out(a.rows(), total_cols);
    out.scatter_cols(idx_a, a.value());
    out.scatter_cols(idx_b, b.value());
    std::vector<std::size_t> ia(idx_a.begin(), idx_a.end());
    std::vector<std::size_t> ib(idx_b.begin(), idx_b.end());
    return make_op(std::move(out), {pa, pb}, [pa, pb, ia, ib](Node& self) {
        if (pa->requires_grad)
            accumulate(*pa, self.grad.select_cols(ia));
        if (pb->requires_grad)
            accumulate(*pb, self.grad.select_cols(ib));
    });
}

Var dot_constant(const Var& a, const linalg::Matrix& c) {
    if (a.rows() != c.rows() || a.cols() != c.cols())
        throw std::invalid_argument("dot_constant: shape mismatch");
    auto pa = a.node();
    Matrix s(1, 1);
    for (std::size_t i = 0; i < c.size(); ++i)
        s(0, 0) += a.value().flat()[i] * c.flat()[i];
    return make_op(std::move(s), {pa}, [pa, c](Node& self) {
        accumulate(*pa, c * self.grad(0, 0));
    });
}

}  // namespace nofis::autodiff
