#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/transient.hpp"

namespace {

using namespace nofis::circuit;

TEST(Transient, RcChargingMatchesAnalyticSolution) {
    // 1 V step into R = 1k, C = 1uF (τ = 1 ms): v(t) = 1 - e^{-t/τ}.
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Capacitor{2, 0, 1e-6});

    TransientAnalysis::Config cfg;
    cfg.t_stop = 5e-3;
    cfg.dt = 1e-6;
    cfg.start_from_dc = false;
    TransientAnalysis tr(net, cfg);
    const auto result = tr.run();

    for (double t : {1e-3, 2e-3, 4e-3}) {
        const auto step = static_cast<std::size_t>(t / cfg.dt + 0.5);
        const double expected = 1.0 - std::exp(-t / 1e-3);
        EXPECT_NEAR(result.voltage(step, 2), expected, 2e-3) << "t=" << t;
    }
    // Fully settled by 5 tau.
    EXPECT_NEAR(result.voltage(result.time.size() - 1, 2), 1.0, 0.01);
}

TEST(Transient, DcStartIsSteadyForConstantSource) {
    Netlist net(2);
    net.add(VoltageSource{1, 0, 2.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Resistor{2, 0, 1000.0});
    net.add(Capacitor{2, 0, 1e-6});
    TransientAnalysis::Config cfg;
    cfg.t_stop = 1e-3;
    cfg.dt = 1e-5;
    TransientAnalysis tr(net, cfg);
    const auto result = tr.run();
    // Started at the operating point: nothing moves.
    for (std::size_t s = 0; s < result.time.size(); s += 10)
        EXPECT_NEAR(result.voltage(s, 2), 1.0, 1e-9);
}

TEST(Transient, SineDriveReproducesAcMagnitudeAtPole) {
    // Drive the RC at its pole frequency; steady-state amplitude must match
    // the AC analysis (1/sqrt(2)).
    Netlist net(2);
    net.add(VoltageSource{1, 0, 1.0});
    net.add(Resistor{1, 2, 1000.0});
    net.add(Capacitor{2, 0, 1e-6});
    const double f = 1.0 / (2.0 * std::numbers::pi * 1e-3);

    TransientAnalysis::Config cfg;
    cfg.t_stop = 50e-3;  // many periods to settle
    cfg.dt = 2e-6;
    cfg.start_from_dc = false;
    TransientAnalysis tr(net, cfg);
    tr.set_source_waveform(0, [f](double t) {
        return std::sin(2.0 * std::numbers::pi * f * t);
    });
    const auto result = tr.run();

    // Peak of the last 20% of the run.
    double peak = 0.0;
    for (std::size_t s = result.time.size() * 4 / 5; s < result.time.size();
         ++s)
        peak = std::max(peak, std::abs(result.voltage(s, 2)));
    EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Transient, EnergyDecaysWithoutSource) {
    // Pre-charged C discharging through R: strictly decaying voltage.
    Netlist net(1);
    net.add(Resistor{1, 0, 1000.0});
    net.add(Capacitor{1, 0, 1e-6});
    net.add(CurrentSource{0, 1, 1e-3});  // sets the DC start point at 1 V

    TransientAnalysis::Config cfg;
    cfg.t_stop = 3e-3;
    cfg.dt = 1e-5;
    TransientAnalysis tr(net, cfg);
    // DC start gives v = 1 V; the source stays on, so instead verify
    // steady state is reached and stays bounded.
    const auto result = tr.run();
    for (std::size_t s = 0; s < result.time.size(); ++s) {
        EXPECT_GE(result.voltage(s, 1), 0.0);
        EXPECT_LE(result.voltage(s, 1), 1.0 + 1e-9);
    }
}

TEST(Transient, ValidatesTimeGrid) {
    Netlist net(1);
    net.add(Resistor{1, 0, 1.0});
    TransientAnalysis::Config bad;
    bad.dt = 0.0;
    EXPECT_THROW(TransientAnalysis(net, bad), std::invalid_argument);
    bad.dt = 2.0;
    bad.t_stop = 1.0;
    EXPECT_THROW(TransientAnalysis(net, bad), std::invalid_argument);
}

}  // namespace
