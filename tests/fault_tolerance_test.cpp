#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/nonlinear.hpp"
#include "core/levels.hpp"
#include "core/nofis.hpp"
#include "estimators/guarded_problem.hpp"
#include "flow/serialize.hpp"
#include "linalg/lu.hpp"
#include "linalg/solver_error.hpp"
#include "nn/optimizer.hpp"
#include "rng/normal.hpp"
#include "testcases/circuit_cases.hpp"
#include "testcases/fault_injector.hpp"

namespace {

using namespace nofis;
using core::LevelSchedule;
using core::NofisConfig;
using core::NofisEstimator;
using estimators::FaultKind;
using estimators::GuardConfig;
using estimators::GuardedProblem;
using testcases::FaultInjector;
using testcases::FaultInjectorConfig;

/// Same analytic problem the nofis_test suite uses: Ω = {x0 >= t},
/// P = 1 - Φ(t).
class HalfSpace2D final : public estimators::RareEventProblem {
public:
    explicit HalfSpace2D(double t) : t_(t) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override { return t_ - x[0]; }
    double g_grad(std::span<const double> x,
                  std::span<double> grad) const override {
        grad[0] = -1.0;
        grad[1] = 0.0;
        return t_ - x[0];
    }
    double analytic() const { return 1.0 - rng::normal_cdf(t_); }

private:
    double t_;
};

/// Always fails with a structured solver error.
class AlwaysThrows final : public estimators::RareEventProblem {
public:
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double>) const override {
        throw SingularMatrixError("synthetic breakdown");
    }
};

/// Faults on the first `faulty_calls` evaluations, then behaves like a
/// half-space — models a transient solver glitch a perturbed retry fixes.
class FlakyProblem final : public estimators::RareEventProblem {
public:
    explicit FlakyProblem(std::size_t faulty_calls)
        : faulty_calls_(faulty_calls) {}
    std::size_t dim() const noexcept override { return 2; }
    double g(std::span<const double> x) const override {
        if (calls_++ < faulty_calls_)
            throw NonConvergenceError("transient glitch");
        return 1.0 - x[0];
    }
    std::size_t calls() const noexcept { return calls_; }

private:
    std::size_t faulty_calls_;
    mutable std::size_t calls_ = 0;
};

NofisConfig small_config() {
    NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {16, 16};
    cfg.epochs = 60;
    cfg.samples_per_epoch = 40;
    cfg.learning_rate = 7e-3;
    cfg.lr_decay = 0.99;
    cfg.tau = 10.0;
    cfg.n_is = 800;
    return cfg;
}

std::vector<double> random_point(rng::Engine& eng, std::size_t d) {
    std::vector<double> x(d);
    for (double& v : x) v = rng::standard_normal(eng);
    return x;
}

// ---------------------------------------------------------------------------
// Structured solver errors (satellite: SolverError hierarchy)
// ---------------------------------------------------------------------------

TEST(SolverError, SingularLuThrowsStructuredKind) {
    linalg::Matrix zeros(2, 2);
    try {
        linalg::LuDecomposition lu(zeros);
        FAIL() << "singular matrix must throw";
    } catch (const SolverError& e) {
        EXPECT_EQ(e.kind(), SolverError::Kind::kSingularMatrix);
    }
    // The subclass stays catchable as std::runtime_error, so pre-existing
    // catch sites keep working.
    EXPECT_THROW(linalg::LuDecomposition lu(zeros), std::runtime_error);
    EXPECT_THROW(linalg::LuDecomposition lu(zeros), SingularMatrixError);
}

TEST(SolverError, NewtonFailureThrowsNonConvergence) {
    circuit::Netlist net(2);
    net.add(circuit::VoltageSource{1, 0, 5.0});
    net.add(circuit::Resistor{1, 2, 1000.0});
    circuit::NonlinearCircuit c(std::move(net));
    c.add(circuit::Diode{2, 0});

    circuit::NonlinearCircuit::SolveOptions opts;
    opts.max_iterations = 0;  // force immediate failure
    try {
        c.solve_dc(opts);
        FAIL() << "zero-iteration Newton must not converge";
    } catch (const SolverError& e) {
        EXPECT_EQ(e.kind(), SolverError::Kind::kNonConvergence);
    }
}

TEST(SolverError, NonFiniteInitialGuessIsBadInput) {
    circuit::Netlist net(2);
    net.add(circuit::VoltageSource{1, 0, 5.0});
    net.add(circuit::Resistor{1, 2, 1000.0});
    circuit::NonlinearCircuit c(std::move(net));
    c.add(circuit::Diode{2, 0});

    std::vector<double> bad(3, std::numeric_limits<double>::quiet_NaN());
    try {
        c.solve_dc(circuit::NonlinearCircuit::SolveOptions(), bad);
        FAIL() << "NaN initial guess must be rejected";
    } catch (const SolverError& e) {
        EXPECT_EQ(e.kind(), SolverError::Kind::kBadInput);
    }
}

// ---------------------------------------------------------------------------
// GuardedProblem policies
// ---------------------------------------------------------------------------

TEST(GuardedProblem, FaultFreeEvaluationsAreBitIdenticalPassthrough) {
    HalfSpace2D prob(2.0);
    GuardedProblem guard(prob);
    rng::Engine eng(11);
    std::vector<double> g1(2);
    std::vector<double> g2(2);
    for (int i = 0; i < 50; ++i) {
        const auto x = random_point(eng, 2);
        EXPECT_EQ(guard.g(x), prob.g(x));
        EXPECT_EQ(guard.g_grad(x, g1), prob.g_grad(x, g2));
        EXPECT_EQ(g1, g2);
    }
    EXPECT_EQ(guard.report().total_faults(), 0u);
    EXPECT_EQ(guard.report().retry_attempts, 0u);
}

TEST(GuardedProblem, ClampPolicyMapsThrowToFailSafeValue) {
    AlwaysThrows prob;
    GuardConfig cfg;
    cfg.policy = GuardConfig::Policy::kClampToFail;
    cfg.clamp_value = 1e9;
    GuardedProblem guard(prob, cfg);

    const std::vector<double> x = {0.1, -0.3};
    std::vector<double> grad = {7.0, 7.0};
    EXPECT_EQ(guard.g(x), 1e9);
    EXPECT_EQ(guard.g_grad(x, grad), 1e9);
    EXPECT_EQ(grad[0], 0.0);  // clamp zeroes the gradient it can't compute
    EXPECT_EQ(grad[1], 0.0);

    const auto& rep = guard.report();
    EXPECT_EQ(rep.count(FaultKind::kSingularMatrix), 2u);
    EXPECT_EQ(rep.clamped, 2u);
    EXPECT_TRUE(rep.has_first);
    EXPECT_EQ(rep.first_kind, FaultKind::kSingularMatrix);
    EXPECT_EQ(rep.first_x, x);
}

TEST(GuardedProblem, RetryPolicyRecoversFromTransientFault) {
    FlakyProblem prob(1);  // only the very first call faults
    GuardConfig cfg;
    cfg.policy = GuardConfig::Policy::kRetryPerturb;
    cfg.max_retries = 3;
    cfg.perturb_sigma = 1e-9;
    GuardedProblem guard(prob, cfg);

    const std::vector<double> x = {0.25, 0.0};
    const double v = guard.g(x);
    EXPECT_NEAR(v, 0.75, 1e-6);  // perturbed retry of g = 1 - x0
    const auto& rep = guard.report();
    EXPECT_EQ(rep.count(FaultKind::kNonConvergence), 1u);
    EXPECT_EQ(rep.retry_attempts, 1u);
    EXPECT_EQ(rep.recovered, 1u);
    EXPECT_EQ(rep.clamped, 0u);
    EXPECT_EQ(prob.calls(), 2u);  // original + one retry probe
}

TEST(GuardedProblem, RetryPolicyClampsWhenRetriesExhaust) {
    AlwaysThrows prob;
    GuardConfig cfg;
    cfg.policy = GuardConfig::Policy::kRetryPerturb;
    cfg.max_retries = 2;
    GuardedProblem guard(prob, cfg);

    EXPECT_EQ(guard.g(std::vector<double>{0.0, 0.0}), cfg.clamp_value);
    const auto& rep = guard.report();
    // Original fault + 2 faulty retry probes, each counted.
    EXPECT_EQ(rep.count(FaultKind::kSingularMatrix), 3u);
    EXPECT_EQ(rep.retry_attempts, 2u);
    EXPECT_EQ(rep.recovered, 0u);
    EXPECT_EQ(rep.clamped, 1u);
}

TEST(GuardedProblem, PropagatePolicyRethrowsOriginalExceptionType) {
    AlwaysThrows prob;
    GuardConfig cfg;
    cfg.policy = GuardConfig::Policy::kPropagate;
    GuardedProblem guard(prob, cfg);

    EXPECT_THROW(guard.g(std::vector<double>{0.0, 0.0}), SingularMatrixError);
    EXPECT_EQ(guard.report().propagated, 1u);
    EXPECT_EQ(guard.report().count(FaultKind::kSingularMatrix), 1u);
}

TEST(GuardedProblem, NonFiniteValuesAreFaultsNotExceptions) {
    class NanProblem final : public estimators::RareEventProblem {
    public:
        std::size_t dim() const noexcept override { return 1; }
        double g(std::span<const double>) const override {
            return std::numeric_limits<double>::quiet_NaN();
        }
    } prob;

    GuardConfig cfg;
    cfg.policy = GuardConfig::Policy::kPropagate;
    GuardedProblem guard(prob, cfg);
    // Propagate hands the NaN back (there is nothing to rethrow) ...
    EXPECT_TRUE(std::isnan(guard.g(std::vector<double>{0.0})));
    EXPECT_EQ(guard.report().count(FaultKind::kNonFiniteValue), 1u);

    // ... while clamp replaces it with the fail-safe value.
    cfg.policy = GuardConfig::Policy::kClampToFail;
    GuardedProblem clamped(prob, cfg);
    EXPECT_EQ(clamped.g(std::vector<double>{0.0}), cfg.clamp_value);
}

// ---------------------------------------------------------------------------
// FaultInjector determinism and exact ledgers
// ---------------------------------------------------------------------------

TEST(FaultInjector, DecisionsAreDeterministicAcrossInstances) {
    HalfSpace2D prob(1.0);
    FaultInjectorConfig cfg;
    cfg.nan_rate = 0.05;
    cfg.throw_rate = 0.05;
    cfg.inf_rate = 0.03;
    cfg.seed = 123;

    auto trace = [&](const FaultInjector& inj) {
        std::string t;
        rng::Engine eng(5);
        for (int i = 0; i < 400; ++i) {
            const auto x = random_point(eng, 2);
            try {
                const double v = inj.g(x);
                t += std::isnan(v) ? 'n' : (std::isinf(v) ? 'i' : '.');
            } catch (const SingularMatrixError&) {
                t += 's';
            } catch (const NonConvergenceError&) {
                t += 'c';
            }
        }
        return t;
    };
    const FaultInjector a(prob, cfg);
    const FaultInjector b(prob, cfg);
    EXPECT_EQ(trace(a), trace(b));
    EXPECT_GT(a.injected_total(), 0u);
    EXPECT_EQ(a.injected_total(), b.injected_total());
    EXPECT_EQ(a.injected_singular(), b.injected_singular());
    EXPECT_EQ(a.injected_nonconvergence(), b.injected_nonconvergence());
}

TEST(FaultInjector, NanBurstHitsExactCallWindow) {
    HalfSpace2D prob(1.0);
    FaultInjectorConfig cfg;
    cfg.nan_burst_begin = 3;
    cfg.nan_burst_end = 6;
    const FaultInjector inj(prob, cfg);

    const std::vector<double> x = {0.0, 0.0};
    for (int i = 0; i < 10; ++i) {
        const double v = inj.g(x);
        if (i >= 3 && i < 6)
            EXPECT_TRUE(std::isnan(v)) << "call " << i;
        else
            EXPECT_EQ(v, 1.0) << "call " << i;
    }
    EXPECT_EQ(inj.injected_nan(), 3u);
    EXPECT_EQ(inj.calls(), 10u);
}

TEST(FaultInjector, LatencyInjectionIsNotAFault) {
    HalfSpace2D prob(1.0);
    FaultInjectorConfig cfg;
    cfg.latency_rate = 1.0;
    cfg.latency_us = 1.0;
    const FaultInjector inj(prob, cfg);
    const std::vector<double> x = {0.5, 0.0};
    for (int i = 0; i < 5; ++i) EXPECT_EQ(inj.g(x), 0.5);
    EXPECT_EQ(inj.injected_latency(), 5u);
    EXPECT_EQ(inj.injected_total(), 0u);
}

TEST(FaultInjector, GuardReportMatchesInjectorLedgerExactly) {
    HalfSpace2D prob(2.0);
    FaultInjectorConfig icfg;
    icfg.nan_rate = 0.03;
    icfg.throw_rate = 0.04;
    icfg.inf_rate = 0.02;
    icfg.seed = 77;
    const FaultInjector inj(prob, icfg);

    GuardConfig gcfg;
    gcfg.policy = GuardConfig::Policy::kRetryPerturb;
    gcfg.max_retries = 2;
    GuardedProblem guard(inj, gcfg);

    rng::Engine eng(9);
    std::vector<double> grad(2);
    const std::size_t top_level = 1500;
    for (std::size_t i = 0; i < top_level; ++i) {
        const auto x = random_point(eng, 2);
        if (i % 2 == 0)
            guard.g(x);
        else
            guard.g_grad(x, grad);
    }

    const auto& rep = guard.report();
    EXPECT_GT(inj.injected_total(), 0u);
    EXPECT_GT(rep.retry_attempts, 0u);
    // Every guard attempt (top-level or retry probe) is one injector call,
    // and every injected fault is recorded by the guard — the ledgers must
    // agree count-for-count.
    EXPECT_EQ(inj.calls(), top_level + rep.retry_attempts);
    EXPECT_EQ(rep.count(FaultKind::kSingularMatrix), inj.injected_singular());
    EXPECT_EQ(rep.count(FaultKind::kNonConvergence),
              inj.injected_nonconvergence());
    EXPECT_EQ(rep.count(FaultKind::kNonFiniteValue) +
                  rep.count(FaultKind::kNonFiniteGrad),
              inj.injected_nan() + inj.injected_inf());
    EXPECT_EQ(rep.total_faults(), inj.injected_total());
}

// ---------------------------------------------------------------------------
// Gradient clipping modes (satellite: global-norm vs legacy per-value)
// ---------------------------------------------------------------------------

TEST(GradClip, GlobalNormPreservesDirectionPerValueDoesNot) {
    linalg::Matrix value(1, 2);
    autodiff::Var p(value, /*requires_grad=*/true);

    auto set_grad = [&]() {
        linalg::Matrix g(1, 2);
        g(0, 0) = 30.0;
        g(0, 1) = 40.0;  // global L2 norm 50, direction (0.6, 0.8)
        p.node()->grad = g;
    };

    nn::Adam opt({p}, 1e-3);
    set_grad();
    const double norm =
        opt.clip_gradients(nn::GradClipMode::kGlobalNorm, 5.0);
    EXPECT_DOUBLE_EQ(norm, 50.0);  // returns the pre-clip norm
    EXPECT_NEAR(p.grad()(0, 0), 3.0, 1e-12);
    EXPECT_NEAR(p.grad()(0, 1), 4.0, 1e-12);  // direction preserved

    set_grad();
    const double norm2 =
        opt.clip_gradients(nn::GradClipMode::kPerValue, 5.0);
    EXPECT_DOUBLE_EQ(norm2, 50.0);
    EXPECT_DOUBLE_EQ(p.grad()(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(p.grad()(0, 1), 5.0);  // legacy clamp distorts direction
}

TEST(GradClip, NoScalingBelowThreshold) {
    linalg::Matrix value(1, 2);
    autodiff::Var p(value, true);
    linalg::Matrix g(1, 2);
    g(0, 0) = 0.3;
    g(0, 1) = 0.4;
    p.node()->grad = g;
    nn::Adam opt({p}, 1e-3);
    EXPECT_DOUBLE_EQ(opt.clip_gradients(nn::GradClipMode::kGlobalNorm, 5.0),
                     0.5);
    EXPECT_DOUBLE_EQ(p.grad()(0, 0), 0.3);
    EXPECT_DOUBLE_EQ(p.grad()(0, 1), 0.4);
}

TEST(GradClip, ExplodeLimitIsModeAware) {
    // Global-norm: limit and norm share a scale, so the threshold is
    // exactly factor * clip — bitwise, to keep historical runs identical.
    EXPECT_EQ(nn::grad_explode_limit(nn::GradClipMode::kGlobalNorm, 0.5, 2.0,
                                     10000),
              2.0 * 0.5);

    // Per-value: a uniform gradient of magnitude `clip` per component is
    // perfectly healthy yet has norm clip * sqrt(P). With P = 10000,
    // clip = 0.5, factor = 2 the old mode-blind threshold (factor * clip
    // = 1) would flag a norm of 50 — a gradient the clip itself considers
    // in-bounds — as an explosion. The mode-aware limit is
    // factor * clip * sqrt(P) = 100.
    const double per_value =
        nn::grad_explode_limit(nn::GradClipMode::kPerValue, 0.5, 2.0, 10000);
    EXPECT_DOUBLE_EQ(per_value, 100.0);
    const double healthy_norm = 0.5 * std::sqrt(10000.0);  // = 50
    EXPECT_GT(healthy_norm, 2.0 * 0.5);  // the old threshold misfired here
    EXPECT_LE(healthy_norm, per_value);  // the mode-aware one does not

    // Degenerate parameter count clamps to 1 instead of collapsing to 0.
    EXPECT_DOUBLE_EQ(
        nn::grad_explode_limit(nn::GradClipMode::kPerValue, 0.5, 2.0, 0),
        1.0);
}

// End-to-end regression for the mode mismatch: a run whose gradients are
// legitimately above factor*clip in norm (but per-component in bounds)
// must not be rolled back under kPerValue clipping.
TEST(GradClip, PerValueModeDoesNotTriggerSpuriousRollback) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    cfg.grad_clip_mode = nn::GradClipMode::kPerValue;
    // This trajectory's pre-clip norms exceed 26 (its ~2.7k parameters put
    // even component-wise-modest gradients at norm ~ clip*sqrt(P)), so the
    // old mode-blind threshold factor*clip = 2.5 misfired on every stage.
    // The mode-aware limit factor*clip*sqrt(P) ≈ 130 correctly reads the
    // same gradients as healthy.
    cfg.grad_clip = 5.0;
    cfg.grad_explode_factor = 0.5;
    cfg.stage_max_retries = 2;
    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.7, 0.0}));
    rng::Engine eng(3);
    const auto run = est.run(prob, eng);
    EXPECT_EQ(run.health.stage_retries, 0u)
        << "healthy per-value-clipped gradients were misread as explosions";
    for (const auto& s : run.stages) {
        EXPECT_EQ(s.retries, 0u) << "stage " << s.stage;
        EXPECT_EQ(s.skipped_epochs, 0u) << "stage " << s.stage;
    }
}

// ---------------------------------------------------------------------------
// Parameter snapshot / restore (rollback building block)
// ---------------------------------------------------------------------------

TEST(Snapshot, RestoreReturnsStackToCheckpointedState) {
    flow::StackConfig scfg;
    scfg.dim = 2;
    scfg.num_blocks = 2;
    scfg.layers_per_block = 2;
    scfg.hidden = {8};
    rng::Engine eng(21);
    flow::CouplingStack stack(scfg, eng);

    const flow::ParamSnapshot checkpoint = flow::snapshot_params(stack);
    ASSERT_FALSE(checkpoint.empty());

    for (auto& p : stack.params())
        for (double& v : p.mutable_value().flat()) v += 0.5;
    bool changed = false;
    {
        const auto now = flow::snapshot_params(stack);
        for (std::size_t i = 0; i < now.size(); ++i)
            for (std::size_t k = 0; k < now[i].size(); ++k)
                if (now[i].flat()[k] != checkpoint[i].flat()[k]) changed = true;
    }
    EXPECT_TRUE(changed);

    flow::restore_params(stack, checkpoint);
    const auto restored = flow::snapshot_params(stack);
    ASSERT_EQ(restored.size(), checkpoint.size());
    for (std::size_t i = 0; i < restored.size(); ++i)
        for (std::size_t k = 0; k < restored[i].size(); ++k)
            EXPECT_EQ(restored[i].flat()[k], checkpoint[i].flat()[k]);
}

TEST(Snapshot, RestoreRejectsMismatchedArchitecture) {
    flow::StackConfig a;
    a.dim = 2;
    a.num_blocks = 2;
    a.layers_per_block = 2;
    a.hidden = {8};
    flow::StackConfig b = a;
    b.hidden = {4};
    rng::Engine eng(3);
    flow::CouplingStack sa(a, eng);
    flow::CouplingStack sb(b, eng);
    EXPECT_THROW(flow::restore_params(sb, flow::snapshot_params(sa)),
                 std::runtime_error);
}

TEST(ScaleCap, TightenMultipliesBoundAndValidatesBlock) {
    rng::Engine eng(4);
    flow::AffineCoupling layer(2, true, {4}, eng, 2.0);
    EXPECT_DOUBLE_EQ(layer.scale_cap(), 2.0);
    layer.scale_cap_multiply(0.5);
    EXPECT_DOUBLE_EQ(layer.scale_cap(), 1.0);

    flow::StackConfig scfg;
    scfg.dim = 2;
    scfg.num_blocks = 2;
    scfg.layers_per_block = 2;
    scfg.hidden = {4};
    flow::CouplingStack stack(scfg, eng);
    EXPECT_NO_THROW(stack.tighten_scale_cap(1, 0.7));
    EXPECT_THROW(stack.tighten_scale_cap(2, 0.7), std::out_of_range);
}

// ---------------------------------------------------------------------------
// End-to-end: fault-tolerant NofisEstimator::run
// ---------------------------------------------------------------------------

TEST(FaultTolerantRun, CleanRunReportsHealthyStateAndExactCalls) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.7, 0.0}));
    rng::Engine eng(3);
    const auto run = est.run(prob, eng);

    EXPECT_FALSE(run.health.degraded());
    EXPECT_EQ(run.health.faults.total_faults(), 0u);
    EXPECT_EQ(run.health.stage_retries, 0u);
    EXPECT_EQ(run.health.g_retry_calls, 0u);
    EXPECT_EQ(run.estimate.calls,
              3u * cfg.epochs * cfg.samples_per_epoch + cfg.n_is);
    EXPECT_NE(run.health.summary().find("clean"), std::string::npos);

    // All-draw proposal diagnostics are populated and consistent.
    EXPECT_EQ(run.is_diag.draws, cfg.n_is);
    EXPECT_LE(run.is_diag.hits, run.is_diag.draws);
    EXPECT_GT(run.is_diag.ess_all, 0.0);
    EXPECT_LE(run.is_diag.ess_all, static_cast<double>(cfg.n_is) + 1e-9);
    EXPECT_GE(run.is_diag.weight_cv, 0.0);
    EXPECT_DOUBLE_EQ(run.health.ess_all, run.is_diag.ess_all);
    EXPECT_DOUBLE_EQ(run.health.final_ess,
                     run.is_diag.effective_sample_size);
}

TEST(FaultTolerantRun, StageRollbackFiresOnInjectedNanLossAndRecovers) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    // Propagate lets the injected NaN reach the KL loss so the stage-level
    // rollback (not the per-call guard) must do the recovering.
    cfg.guard.policy = GuardConfig::Policy::kPropagate;
    cfg.stage_max_retries = 2;

    FaultInjectorConfig icfg;
    // Poison exactly the first epoch of stage 1 (samples_per_epoch g calls).
    icfg.nan_burst_begin = 0;
    icfg.nan_burst_end = cfg.samples_per_epoch;
    const FaultInjector inj(prob, icfg);

    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.7, 0.0}));
    rng::Engine eng(3);
    const auto run = est.run(inj, eng);

    ASSERT_FALSE(run.stages.empty());
    EXPECT_GE(run.stages[0].retries, 1u);
    ASSERT_FALSE(run.stages[0].retry_reasons.empty());
    EXPECT_EQ(run.stages[0].retry_reasons[0], "non-finite KL loss");
    EXPECT_GE(run.health.stage_retries, 1u);
    EXPECT_GE(run.health.stages_rolled_back, 1u);
    EXPECT_TRUE(run.health.degraded());
    EXPECT_EQ(run.health.faults.count(FaultKind::kNonFiniteValue),
              inj.injected_nan());

    // The retried stage still trains to completion and the run converges.
    EXPECT_EQ(run.stages[0].epoch_loss.size(), cfg.epochs);
    ASSERT_FALSE(run.estimate.failed);
    EXPECT_TRUE(std::isfinite(run.estimate.p_hat));
    EXPECT_GT(run.estimate.p_hat, 0.0);
    EXPECT_LT(estimators::log_error(run.estimate.p_hat, prob.analytic()),
              1.0);
}

TEST(FaultTolerantRun, SkippedEpochsRecordNanSentinelNotFabricatedLoss) {
    HalfSpace2D prob(2.5);
    NofisConfig cfg = small_config();
    cfg.epochs = 10;
    // Propagate + zero stage retries: the poisoned first epoch lands in the
    // legacy skip path instead of triggering a rollback.
    cfg.guard.policy = GuardConfig::Policy::kPropagate;
    cfg.stage_max_retries = 0;

    FaultInjectorConfig icfg;
    icfg.nan_burst_begin = 0;
    icfg.nan_burst_end = cfg.samples_per_epoch;  // exactly epoch 0, stage 1
    const FaultInjector inj(prob, icfg);

    NofisEstimator est(cfg, LevelSchedule::manual({1.5, 0.7, 0.0}));
    rng::Engine eng(3);
    const auto run = est.run(inj, eng);

    ASSERT_FALSE(run.stages.empty());
    const auto& s0 = run.stages[0];
    ASSERT_EQ(s0.epoch_loss.size(), cfg.epochs);
    EXPECT_GE(s0.skipped_epochs, 1u);
    // The skipped epoch computed no loss; fabricating 0.0 (or replaying the
    // previous epoch's value) used to fake convergence in the curves.
    EXPECT_TRUE(std::isnan(s0.epoch_loss[0]));
    EXPECT_TRUE(std::isfinite(s0.epoch_loss.back()));
    EXPECT_TRUE(std::isfinite(s0.first_finite_loss()));
    EXPECT_EQ(s0.first_finite_loss(), s0.epoch_loss[1]);
    EXPECT_EQ(s0.last_finite_loss(), s0.epoch_loss.back());

    // The CSV consumer skips sentinel rows entirely: no "nan" cells, and no
    // row for stage 1 / epoch 0.
    const std::string csv = core::loss_curve_csv(run.stages);
    EXPECT_EQ(csv.find("nan"), std::string::npos);
    EXPECT_EQ(csv.find("\n1,1.5,0,"), std::string::npos);
    EXPECT_NE(csv.find("\n1,1.5,1,"), std::string::npos);
}

TEST(FaultTolerantRun, OpampSurvivesFivePercentFaultRate) {
    const testcases::OpampCase opamp;
    NofisConfig cfg;
    cfg.layers_per_block = 4;
    cfg.hidden = {16, 16};
    cfg.epochs = 12;
    cfg.samples_per_epoch = 50;
    cfg.learning_rate = 5e-3;
    cfg.lr_decay = 0.99;
    cfg.tau = 15.0;
    cfg.n_is = 600;
    const auto levels =
        LevelSchedule::manual(opamp.nofis_budget().levels);

    NofisEstimator est(cfg, levels);
    rng::Engine clean_eng(42);
    const auto clean = est.run(opamp, clean_eng);
    ASSERT_FALSE(clean.estimate.failed);
    const double clean_err =
        estimators::log_error(clean.estimate.p_hat, opamp.golden_pr());

    // 5% of g calls fault: half NaN returns, half structured solver throws.
    FaultInjectorConfig icfg;
    icfg.nan_rate = 0.025;
    icfg.throw_rate = 0.025;
    icfg.seed = 99;
    const FaultInjector inj(opamp, icfg);

    rng::Engine faulty_eng(42);
    const auto faulty = est.run(inj, faulty_eng);

    // The run completes, the estimate stays usable, and the health report
    // is exact against the injector's ledger.
    ASSERT_FALSE(faulty.estimate.failed);
    EXPECT_TRUE(std::isfinite(faulty.estimate.p_hat));
    EXPECT_GT(faulty.estimate.p_hat, 0.0);
    EXPECT_TRUE(faulty.health.degraded());
    EXPECT_GT(inj.injected_total(), 0u);
    EXPECT_EQ(faulty.health.faults.total_faults(), inj.injected_total());
    EXPECT_EQ(faulty.health.faults.count(FaultKind::kSingularMatrix),
              inj.injected_singular());
    EXPECT_EQ(faulty.health.faults.count(FaultKind::kNonConvergence),
              inj.injected_nonconvergence());
    EXPECT_EQ(faulty.health.g_retry_calls,
              faulty.health.faults.retry_attempts);
    // Degraded runs charge retries to the budget on top of the clean count.
    EXPECT_EQ(faulty.estimate.calls,
              clean.estimate.calls + faulty.health.g_retry_calls);

    const double faulty_err =
        estimators::log_error(faulty.estimate.p_hat, opamp.golden_pr());
    // Acceptance: within 2x of the fault-free run's relative error. The
    // small absolute floor keeps an unusually lucky clean run (err near 0)
    // from turning the 2x band into a sliver of Monte-Carlo noise.
    EXPECT_LE(faulty_err, std::max(2.0 * clean_err, 0.5));
}

TEST(RunHealth, SummaryFlagsDegradedRuns) {
    core::RunHealth h;
    EXPECT_FALSE(h.degraded());
    EXPECT_NE(h.summary().find("clean"), std::string::npos);
    h.stage_retries = 1;
    EXPECT_TRUE(h.degraded());
    EXPECT_NE(h.summary().find("DEGRADED"), std::string::npos);
}

}  // namespace
